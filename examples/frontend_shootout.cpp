/**
 * @file
 * frontend_shootout: compare front-end organizations on one benchmark.
 *
 * Runs the Section 5 machine with every front end the library models —
 * sequential fetch with 1..4/unlimited taken branches per cycle and the
 * trace cache, each under both the ideal and the 2-level PAp branch
 * predictor — and reports baseline IPC, IPC with value prediction, the
 * VP speedup, and front-end statistics. This is the experiment an
 * architect would run to decide whether a planned fetch upgrade makes a
 * value predictor worth its area.
 *
 * Usage: frontend_shootout [--benchmark gcc] [--insts 150000]
 */

#include <cstdio>

#include "common/options.hpp"
#include "common/table_printer.hpp"
#include "core/pipeline_machine.hpp"
#include "workloads/workload.hpp"

namespace
{

using namespace vpsim;

void
addRow(TablePrinter &table, const std::string &label,
       const std::vector<TraceRecord> &trace, const PipelineConfig &base)
{
    PipelineConfig off = base;
    off.useValuePrediction = false;
    PipelineConfig on = base;
    on.useValuePrediction = true;

    const PipelineResult r_off = runPipelineMachine(trace, off);
    const PipelineResult r_on = runPipelineMachine(trace, on);
    const double speedup = static_cast<double>(r_off.cycles) /
                           static_cast<double>(r_on.cycles);

    std::string extra = "-";
    if (base.frontEnd == FrontEndKind::TraceCache) {
        extra = "TC hit " + TablePrinter::percentCell(r_on.tcHitRate, 0);
    } else if (!base.perfectBranchPredictor) {
        extra =
            "bp acc " + TablePrinter::percentCell(r_on.branchAccuracy, 0);
    }
    table.addRow({label, TablePrinter::numberCell(r_off.ipc, 2),
                  TablePrinter::numberCell(r_on.ipc, 2),
                  TablePrinter::percentCell(speedup - 1.0), extra});
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.declare("benchmark", "gcc", "benchmark to run");
    options.declare("insts", "150000", "dynamic instructions to capture");
    options.parse(argc, argv, "front-end comparison harness");

    const std::string bench = options.getString("benchmark");
    const auto trace = captureWorkloadTrace(
        bench, static_cast<std::uint64_t>(options.getInt("insts")));

    TablePrinter table(
        "front-end shootout on " + bench +
            " (window 40, issue 40, Section 5 machine)",
        {"front end", "IPC base", "IPC +VP", "VP speedup", "notes"});

    for (const bool ideal : {true, false}) {
        const std::string bp = ideal ? ", ideal BP" : ", 2-level BTB";
        for (const unsigned taken : {1u, 2u, 4u, 0u}) {
            PipelineConfig config;
            config.frontEnd = FrontEndKind::Sequential;
            config.maxTakenBranches = taken;
            config.perfectBranchPredictor = ideal;
            const std::string label =
                (taken == 0 ? "seq, unlimited taken"
                            : "seq, " + std::to_string(taken) +
                                  " taken/cycle") +
                bp;
            addRow(table, label, trace, config);
        }
        PipelineConfig tc;
        tc.frontEnd = FrontEndKind::TraceCache;
        tc.perfectBranchPredictor = ideal;
        addRow(table, "trace cache" + bp, trace, tc);
        table.addSeparator();
    }

    std::fputs(table.render().c_str(), stdout);
    std::puts("\nreading guide: value prediction pays off only once the "
              "front end can cross multiple taken branches per cycle "
              "(the paper's core claim)");
    return 0;
}
