/**
 * @file
 * did_explorer: per-benchmark deep dive into dependence structure.
 *
 * For one benchmark this prints the full DID histogram (Figure 3.4 row),
 * the predictability x DID joint distribution (Figure 3.5 row), and the
 * hottest value-producing static instructions with their per-pc stride
 * accuracy — the level of detail an architect would use to understand
 * WHY a benchmark does or does not profit from wider fetch.
 *
 * Usage: did_explorer [--benchmark vortex] [--insts 400000] [--top 12]
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "analysis/did.hpp"
#include "analysis/predictability.hpp"
#include "common/options.hpp"
#include "common/table_printer.hpp"
#include "predictor/factory.hpp"
#include "workloads/workload.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    options.declare("benchmark", "vortex", "benchmark to analyze");
    options.declare("insts", "400000", "dynamic instructions to capture");
    options.declare("top", "12", "hottest static instructions to list");
    options.parse(argc, argv, "dependence-structure explorer");

    const std::string bench = options.getString("benchmark");
    const auto trace = captureWorkloadTrace(
        bench, static_cast<std::uint64_t>(options.getInt("insts")));

    // --- DID histogram ---
    const DidAnalysis did = analyzeDid(trace);
    TablePrinter hist("DID distribution for " + bench,
                      {"bucket", "arcs", "fraction"});
    for (std::size_t bucket = 0; bucket < did.distribution.numBuckets();
         ++bucket) {
        hist.addRow({"DID " + did.distribution.bucketLabel(bucket),
                     std::to_string(did.distribution.bucketCount(bucket)),
                     TablePrinter::percentCell(
                         did.distribution.bucketFraction(bucket))});
    }
    std::fputs(hist.render().c_str(), stdout);
    std::printf("average DID %.1f over %llu arcs; %.1f%% at DID >= 4\n\n",
                did.averageDid,
                static_cast<unsigned long long>(did.totalArcs),
                did.fracDidAtLeast4 * 100.0);

    // --- predictability x DID ---
    const PredictabilityAnalysis pa = analyzePredictability(trace);
    std::printf("dependence predictability (infinite stride table):\n"
                "  unpredictable          %5.1f%%\n"
                "  predictable, DID 1     %5.1f%%\n"
                "  predictable, DID 2     %5.1f%%\n"
                "  predictable, DID 3     %5.1f%%\n"
                "  predictable, DID >= 4  %5.1f%%   <- exploitable only "
                "with wide fetch\n\n",
                pa.fracUnpredictable * 100.0,
                pa.fracPredictableDid1 * 100.0,
                pa.fracPredictableDid2 * 100.0,
                pa.fracPredictableDid3 * 100.0,
                pa.fracPredictableDid4Plus * 100.0);

    // --- hottest producers and their per-pc stride accuracy ---
    struct PcStats
    {
        std::uint64_t executions = 0;
        std::uint64_t correct = 0;
    };
    std::map<Addr, PcStats> per_pc;
    const auto predictor = makePredictor(PredictorKind::Stride);
    for (const TraceRecord &rec : trace) {
        if (!rec.producesValue())
            continue;
        PcStats &stats = per_pc[rec.pc];
        ++stats.executions;
        const RawPrediction raw = predictor->lookup(rec.pc);
        const bool hit = raw.hasPrediction && raw.value == rec.result;
        if (hit)
            ++stats.correct;
        predictor->train(rec.pc, rec.result, hit);
    }
    std::vector<std::pair<Addr, PcStats>> hot(per_pc.begin(),
                                              per_pc.end());
    std::sort(hot.begin(), hot.end(), [](const auto &a, const auto &b) {
        return a.second.executions > b.second.executions;
    });
    const auto top = static_cast<std::size_t>(options.getInt("top"));

    TablePrinter hot_table("hottest value producers in " + bench,
                           {"pc", "executions", "stride accuracy"});
    for (std::size_t i = 0; i < hot.size() && i < top; ++i) {
        char pc_text[32];
        std::snprintf(pc_text, sizeof(pc_text), "0x%llx",
                      static_cast<unsigned long long>(hot[i].first));
        const double acc = hot[i].second.executions == 0
            ? 0.0
            : static_cast<double>(hot[i].second.correct) /
              static_cast<double>(hot[i].second.executions);
        hot_table.addRow({pc_text,
                          std::to_string(hot[i].second.executions),
                          TablePrinter::percentCell(acc)});
    }
    std::fputs(hot_table.render().c_str(), stdout);
    return 0;
}
