/**
 * @file
 * trace_tool: capture, store, inspect and reload binary trace files.
 *
 * Demonstrates the trace I/O layer that decouples workload execution
 * from simulation (the role Shade trace files played for the paper's
 * authors): capture a benchmark to a .vptrace file once, then drive any
 * experiment from the file.
 *
 *   trace_tool --benchmark perl --insts 100000 --out perl.vptrace
 *   trace_tool --in perl.vptrace --dump 16
 */

#include <cstdio>

#include "common/logging.hpp"
#include "common/options.hpp"
#include "trace/trace_io.hpp"
#include "vm/assembler.hpp"
#include "vm/interpreter.hpp"
#include "trace/trace_stats.hpp"
#include "workloads/workload.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    options.declare("benchmark", "perl", "benchmark to capture");
    options.declare("insts", "100000", "dynamic instructions to capture");
    options.declare("out", "", "write the captured trace to this file");
    options.declare("in", "", "read a trace file instead of capturing");
    options.declare("asm", "",
                    "assemble and run this .s file instead of a "
                    "bundled benchmark");
    options.declare("dump", "8", "print the first N records");
    options.parse(argc, argv, "trace capture/inspection tool");

    std::vector<TraceRecord> trace;
    std::string source_name;
    if (!options.getString("asm").empty()) {
        source_name = options.getString("asm");
        const Program program = assembleFile(source_name);
        Interpreter interp(program, Memory{});
        interp.run(static_cast<std::uint64_t>(options.getInt("insts")),
                   &trace);
        std::printf("assembled and ran %s: %zu records\n",
                    source_name.c_str(), trace.size());
    } else if (!options.getString("in").empty()) {
        source_name = options.getString("in");
        trace = readTraceFile(source_name);
        std::printf("loaded %zu records from %s\n", trace.size(),
                    source_name.c_str());
    } else {
        source_name = options.getString("benchmark");
        trace = captureWorkloadTrace(
            source_name,
            static_cast<std::uint64_t>(options.getInt("insts")));
        std::printf("captured %zu records from %s\n", trace.size(),
                    source_name.c_str());
    }

    std::fputs(computeTraceStats(trace).report(source_name).c_str(),
               stdout);

    const auto dump = static_cast<std::size_t>(options.getInt("dump"));
    for (std::size_t i = 0; i < trace.size() && i < dump; ++i) {
        const TraceRecord &rec = trace[i];
        std::printf("  [%llu] pc=0x%llx %-5s rd=%d result=0x%llx%s\n",
                    static_cast<unsigned long long>(rec.seq),
                    static_cast<unsigned long long>(rec.pc),
                    std::string(opcodeName(rec.op)).c_str(),
                    rec.rd == invalidReg ? -1 : static_cast<int>(rec.rd),
                    static_cast<unsigned long long>(rec.result),
                    rec.isControlFlow()
                        ? (rec.taken ? " taken" : " not-taken")
                        : "");
    }

    const std::string out = options.getString("out");
    if (!out.empty()) {
        writeTraceFile(out, trace);
        std::printf("wrote %zu records to %s\n", trace.size(),
                    out.c_str());
        // Round-trip check.
        const auto reloaded = readTraceFile(out);
        fatalIf(reloaded.size() != trace.size(),
                "round-trip record count mismatch");
        std::puts("round-trip verified");
    }
    return 0;
}
