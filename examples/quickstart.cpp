/**
 * @file
 * Quickstart: the library's core loop in ~60 lines.
 *
 * Captures a trace from one of the bundled SPECint95-style benchmarks,
 * summarizes it, measures its dependence structure (average DID), and
 * shows the paper's headline effect: the speedup of value prediction on
 * the ideal machine at a low (4) versus a high (40) fetch rate.
 *
 * Usage: quickstart [--benchmark m88ksim] [--insts 200000]
 */

#include <cstdio>

#include "analysis/did.hpp"
#include "analysis/predictability.hpp"
#include "common/options.hpp"
#include "core/ideal_machine.hpp"
#include "trace/trace_stats.hpp"
#include "workloads/workload.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    options.declare("benchmark", "m88ksim", "benchmark to run");
    options.declare("insts", "200000", "dynamic instructions to capture");
    options.parse(argc, argv, "value-prediction quickstart");

    const std::string bench = options.getString("benchmark");
    const auto insts =
        static_cast<std::uint64_t>(options.getInt("insts"));

    // 1. Capture a dynamic trace by actually executing the benchmark.
    const std::vector<TraceRecord> trace =
        captureWorkloadTrace(bench, insts);
    std::fputs(computeTraceStats(trace).report(bench).c_str(), stdout);

    // 2. Dependence structure: the DID tells us how far apart producers
    //    and consumers are in the dynamic instruction stream.
    const DidAnalysis did = analyzeDid(trace);
    std::printf("\naverage DID: %.1f  (%.1f%% of dependencies span >= 4 "
                "instructions)\n",
                did.averageDid, did.fracDidAtLeast4 * 100.0);

    const PredictabilityAnalysis pred = analyzePredictability(trace);
    std::printf("stride-predictable dependencies: %.1f%% "
                "(%.1f%% predictable with DID >= 4)\n",
                pred.fracPredictable() * 100.0,
                pred.fracPredictableDid4Plus * 100.0);

    // 3. The headline effect: value prediction barely helps a 4-wide
    //    machine but transforms a 40-wide one.
    for (const unsigned rate : {4u, 40u}) {
        IdealMachineConfig config;
        config.fetchRate = rate;
        const double speedup = idealVpSpeedup(trace, config);
        std::printf("ideal machine, fetch rate %2u: value prediction "
                    "speedup %+.1f%%\n",
                    rate, (speedup - 1.0) * 100.0);
    }
    return 0;
}
