/**
 * @file
 * paper_tour: the whole paper in one run.
 *
 * Walks the paper's argument end to end on small traces: Table 3.2's
 * worked example, the DID structure (Figures 3.3/3.4), the
 * predictability split (Figure 3.5), the ideal-machine bandwidth sweep
 * (Figure 3.1), and the Section 5 machine with its three front ends
 * (Figures 5.1-5.3). For publication-scale sweeps run the bench
 * binaries; this example is the five-minute narrative version.
 *
 * Usage: paper_tour [--insts 120000] [--benchmark m88ksim]
 */

#include <cstdio>

#include "analysis/did.hpp"
#include "analysis/predictability.hpp"
#include "common/options.hpp"
#include "core/ideal_machine.hpp"
#include "core/pipeline_machine.hpp"
#include "workloads/workload.hpp"

namespace
{

using namespace vpsim;

void
section(const char *title)
{
    std::printf("\n--- %s ---\n", title);
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    options.declare("benchmark", "m88ksim", "benchmark to tour");
    options.declare("insts", "120000", "dynamic instructions");
    options.parse(argc, argv, "guided tour of the paper's experiments");

    const std::string bench = options.getString("benchmark");
    const auto insts =
        static_cast<std::uint64_t>(options.getInt("insts"));
    const auto trace = captureWorkloadTrace(bench, insts);
    std::printf("touring '%s' (%zu dynamic instructions)\n",
                bench.c_str(), trace.size());

    section("1. why fetch bandwidth gates value prediction (Table 3.2)");
    std::puts("a correct prediction is only USEFUL if producer and\n"
              "consumer are in flight together; dependents fetched "
              "cycles\nlater find their operands computed already.");
    IdealMachineConfig probe;
    probe.fetchRate = 4;
    probe.useValuePrediction = true;
    const IdealMachineResult narrow = runIdealMachine(trace, probe);
    probe.fetchRate = 40;
    const IdealMachineResult wide = runIdealMachine(trace, probe);
    std::printf("  predictions made at BW=4:  %llu, useful: %llu\n",
                static_cast<unsigned long long>(narrow.predictionsMade),
                static_cast<unsigned long long>(
                    narrow.usefulPredictions));
    std::printf("  predictions made at BW=40: %llu, useful: %llu\n",
                static_cast<unsigned long long>(wide.predictionsMade),
                static_cast<unsigned long long>(wide.usefulPredictions));

    section("2. dependence structure (Figures 3.3/3.4)");
    const DidAnalysis did = analyzeDid(trace);
    std::printf("  mean DID (arcs <= 256): %.1f; %.1f%% of arcs span "
                ">= 4 insts\n",
                did.averageDidTrimmed, did.fracDidAtLeast4 * 100.0);

    section("3. predictability x distance (Figure 3.5)");
    const PredictabilityAnalysis pa = analyzePredictability(trace);
    std::printf("  unpredictable %.1f%% | predictable short (DID<4) "
                "%.1f%% | predictable long (DID>=4) %.1f%%\n",
                pa.fracUnpredictable * 100.0,
                pa.fracPredictableShort() * 100.0,
                pa.fracPredictableDid4Plus * 100.0);
    std::puts("  only the last group turns into speedup on a wide "
              "machine.");

    section("4. the ideal-machine sweep (Figure 3.1)");
    for (const unsigned rate : {4u, 8u, 16u, 32u, 40u}) {
        IdealMachineConfig config;
        config.fetchRate = rate;
        std::printf("  BW=%-2u  VP speedup %+6.1f%%\n", rate,
                    (idealVpSpeedup(trace, config) - 1.0) * 100.0);
    }

    section("5. the Section 5 machine (Figures 5.1-5.3)");
    struct Row
    {
        const char *label;
        PipelineConfig config;
    };
    std::vector<Row> rows;
    for (const unsigned taken : {1u, 4u}) {
        Row row;
        row.label = taken == 1 ? "seq fetch, 1 taken, ideal BTB "
                               : "seq fetch, 4 taken, ideal BTB ";
        row.config.maxTakenBranches = taken;
        rows.push_back(row);
    }
    {
        Row row;
        row.label = "seq fetch, 4 taken, 2-lvl BTB ";
        row.config.maxTakenBranches = 4;
        row.config.perfectBranchPredictor = false;
        rows.push_back(row);
    }
    {
        Row row;
        row.label = "trace cache, ideal BTB        ";
        row.config.frontEnd = FrontEndKind::TraceCache;
        rows.push_back(row);
    }
    for (const Row &row : rows) {
        const double speedup = pipelineVpSpeedup(trace, row.config);
        std::printf("  %s VP speedup %+6.1f%%\n", row.label,
                    (speedup - 1.0) * 100.0);
    }

    section("6. full statistics of the best configuration");
    PipelineConfig best;
    best.frontEnd = FrontEndKind::TraceCache;
    best.useValuePrediction = true;
    best.useInterleavedVpTable = true;
    std::fputs(runPipelineMachine(trace, best).report().c_str(), stdout);

    std::puts("\nconclusion (paper section 6): value prediction's "
              "potential is\nunlocked by high-bandwidth instruction "
              "fetch - at 4-wide fetch it is\nnearly worthless, beyond "
              "taken-branch limits it pays for itself.");
    return 0;
}
