# Word-by-word memory copy: the classic all-stride kernel. Source and
# destination cursors, the loop counter and the store addresses all
# stride, so nearly every dependence is value predictable; at wide fetch
# the copy runs at the machine width.
        li   s0, 512          # words to copy
        li   s1, 0x10000      # src
        li   s2, 0x20000      # dst
loop:
        ld   t0, 0(s1)
        st   t0, 0(s2)
        addi s1, s1, 8
        addi s2, s2, 8
        addi s0, s0, -1
        bne  s0, zero, loop
        halt
