# Iterative Fibonacci: a stride-hostile value stream (each fib value is
# the sum of the previous two -- neither last-value nor stride can track
# it) wrapped in perfectly predictable loop control. Useful as a small
# probe of what the classifier declines.
        li   s0, 40          # iterations per pass
        li   s1, 0           # fib(n-1)
        li   s2, 1           # fib(n)
loop:
        add  t0, s1, s2
        mv   s1, s2
        mv   s2, t0
        addi s0, s0, -1
        bne  s0, zero, loop
        halt
