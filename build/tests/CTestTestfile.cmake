# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_trace_io[1]_include.cmake")
include("/root/repo/build/tests/test_predictor[1]_include.cmake")
include("/root/repo/build/tests/test_bpred[1]_include.cmake")
include("/root/repo/build/tests/test_fetch[1]_include.cmake")
include("/root/repo/build/tests/test_vptable[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
