#!/usr/bin/env python3
"""AST-level semantic analysis for the vpsim tree.

Thin launcher for scripts/analysis/ (the engine, two frontends, and
the four checkers: span-lifetime, status-dataflow, lock-order,
taxonomy). See docs/STATIC_ANALYSIS.md for the checker catalog.

Usage:
    python3 scripts/vpsim_analyze.py                 # gate vs baseline
    python3 scripts/vpsim_analyze.py --list          # show everything
    python3 scripts/vpsim_analyze.py --self-test     # fixture check
    python3 scripts/vpsim_analyze.py --update-baseline
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from analysis.engine import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
