#!/usr/bin/env python3
"""Validate and compare perf_harness JSON reports (schema vpsim-perf-1).

Two modes:

  perf_report.py --validate FILE
      Schema-check a single report (used by scripts/smoke_bench.sh and
      the CI perf-smoke job). Exits non-zero with a diagnostic if any
      required field is missing or ill-typed.

  perf_report.py --compare BASELINE CURRENT [--max-mips-drop PCT]
                 [--markdown]
      Compare two reports model-by-model and print MIPS, wall-clock and
      peak-RSS deltas, e.g. against the latest committed BENCH_*.json.
      When both reports carry mips_min (the fastest-repeat figure the
      harness emits alongside the median) the comparison uses it, so a
      busy machine's one-sided noise cannot masquerade as a code
      regression. With --max-mips-drop the script exits 1 if any model
      common to both reports lost more than PCT percent MIPS — the CI
      perf-smoke gate. --markdown additionally emits the comparison as
      a GitHub-flavored table (pasteable into docs/PERF.md).

      Invoking with two bare positional files (no --compare) is the
      legacy informational spelling and still works.

The schema is documented in docs/PERF.md.
"""

import argparse
import json
import sys

SCHEMA = "vpsim-perf-1"

TOP_FIELDS = {
    "schema": str,
    "insts_per_benchmark": int,
    "repeats": int,
    "benchmarks": list,
    "total_instructions": int,
    "process_peak_rss_bytes": int,
    "models": list,
    "derived": dict,
}

MODEL_FIELDS = {
    "name": str,
    "wall_seconds": (int, float),
    "wall_seconds_all": list,
    "mips": (int, float),
    "peak_rss_bytes": int,
    "cycles_digest": int,
}

# Added by the PR 7 harness; absent from older committed reports, so
# they are validated only when present.
OPTIONAL_MODEL_FIELDS = {
    "wall_seconds_min": (int, float),
    "mips_min": (int, float),
}

DERIVED_FIELDS = {
    "span_vs_per_record_speedup": (int, float),
    "span_vs_per_record_speedup_vp": (int, float),
}


def fail(message):
    print(f"perf_report: {message}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj, fields, where):
    for key, expected in fields.items():
        if key not in obj:
            fail(f"{where}: missing field '{key}'")
        value = obj[key]
        # bool is an int subclass; never a valid numeric field here.
        if isinstance(value, bool) or not isinstance(value, expected):
            fail(f"{where}: field '{key}' has type "
                 f"{type(value).__name__}, expected "
                 f"{getattr(expected, '__name__', expected)}")


def load_report(path):
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(f"{path}: {error}")
    if not isinstance(report, dict):
        fail(f"{path}: top level is not an object")
    return report


def validate(path):
    report = load_report(path)
    check_fields(report, TOP_FIELDS, path)
    if report["schema"] != SCHEMA:
        fail(f"{path}: schema is '{report['schema']}', expected "
             f"'{SCHEMA}'")
    if report["repeats"] < 1:
        fail(f"{path}: repeats must be >= 1")
    if not report["benchmarks"]:
        fail(f"{path}: benchmarks list is empty")
    if not all(isinstance(b, str) for b in report["benchmarks"]):
        fail(f"{path}: benchmarks must be strings")
    if not report["models"]:
        fail(f"{path}: models list is empty")
    for index, model in enumerate(report["models"]):
        where = f"{path}: models[{index}]"
        if not isinstance(model, dict):
            fail(f"{where}: not an object")
        check_fields(model, MODEL_FIELDS, where)
        present_optional = {key: expected for key, expected
                            in OPTIONAL_MODEL_FIELDS.items()
                            if key in model}
        check_fields(model, present_optional, where)
        samples = model["wall_seconds_all"]
        if len(samples) != report["repeats"]:
            fail(f"{where}: {len(samples)} wall-clock samples for "
                 f"{report['repeats']} repeats")
        if not all(isinstance(s, (int, float)) and not isinstance(s, bool)
                   and s >= 0 for s in samples):
            fail(f"{where}: wall_seconds_all entries must be "
                 f"non-negative numbers")
        if model["mips"] < 0:
            fail(f"{where}: negative mips")
    names = [model["name"] for model in report["models"]]
    if len(names) != len(set(names)):
        fail(f"{path}: duplicate model names")
    check_fields(report["derived"], DERIVED_FIELDS, f"{path}: derived")
    return report


def format_delta(base, current, suffix=""):
    if base == 0:
        return "n/a"
    delta = (current - base) / base * 100.0
    return f"{delta:+.1f}%{suffix}"


def comparison_mips(base, cur):
    """The MIPS pair to compare for one model, preferring the
    noise-resistant fastest-repeat figure when both reports have it."""
    if "mips_min" in base and "mips_min" in cur:
        return base["mips_min"], cur["mips_min"], "mips_min"
    return base["mips"], cur["mips"], "mips"


def compare(baseline_path, current_path, max_mips_drop=None,
            markdown=False):
    baseline = validate(baseline_path)
    current = validate(current_path)
    base_models = {m["name"]: m for m in baseline["models"]}
    cur_models = {m["name"]: m for m in current["models"]}

    print(f"baseline: {baseline_path} "
          f"({baseline['insts_per_benchmark']} insts x "
          f"{len(baseline['benchmarks'])} benchmarks, "
          f"{baseline['repeats']} repeats)")
    print(f"current:  {current_path} "
          f"({current['insts_per_benchmark']} insts x "
          f"{len(current['benchmarks'])} benchmarks, "
          f"{current['repeats']} repeats)")
    if (baseline["insts_per_benchmark"] != current["insts_per_benchmark"]
            or baseline["benchmarks"] != current["benchmarks"]):
        print("note: workloads differ; deltas compare unlike runs")
    print()
    header = (f"{'model':<24} {'base MIPS':>10} {'cur MIPS':>10} "
              f"{'delta':>8} {'base RSS':>10} {'cur RSS':>10} "
              f"{'delta':>8}")
    print(header)
    print("-" * len(header))
    regressions = []
    markdown_rows = []
    for name in base_models:
        if name not in cur_models:
            print(f"{name:<24} (missing from current)")
            continue
        base, cur = base_models[name], cur_models[name]
        base_mips, cur_mips, metric = comparison_mips(base, cur)
        base_mib = base["peak_rss_bytes"] / (1024.0 * 1024.0)
        cur_mib = cur["peak_rss_bytes"] / (1024.0 * 1024.0)
        print(f"{name:<24} {base_mips:>10.2f} {cur_mips:>10.2f} "
              f"{format_delta(base_mips, cur_mips):>8} "
              f"{base_mib:>9.1f}M {cur_mib:>9.1f}M "
              f"{format_delta(base['peak_rss_bytes'], cur['peak_rss_bytes']):>8}")
        markdown_rows.append(
            f"| `{name}` | {base_mips:.2f} | {cur_mips:.2f} | "
            f"{format_delta(base_mips, cur_mips)} |")
        if base_mips > 0:
            drop = (base_mips - cur_mips) / base_mips * 100.0
            if max_mips_drop is not None and drop > max_mips_drop:
                regressions.append((name, metric, drop))
    for name in cur_models:
        if name not in base_models:
            print(f"{name:<24} (new in current: "
                  f"{cur_models[name]['mips']:.2f} MIPS)")
    print()
    for key in DERIVED_FIELDS:
        print(f"{key}: baseline {baseline['derived'][key]:.3f}, "
              f"current {current['derived'][key]:.3f}")

    if markdown:
        print()
        print("| model | baseline MIPS | current MIPS | delta |")
        print("|---|---:|---:|---:|")
        for row in markdown_rows:
            print(row)

    if regressions:
        print(file=sys.stderr)
        for name, metric, drop in regressions:
            print(f"perf_report: model '{name}' lost {drop:.1f}% "
                  f"{metric} (gate: {max_mips_drop:.0f}%)",
                  file=sys.stderr)
        sys.exit(1)


def main():
    parser = argparse.ArgumentParser(
        description="Validate or compare perf_harness JSON reports")
    parser.add_argument("--validate", metavar="FILE",
                        help="schema-check one report and exit")
    parser.add_argument("--compare", nargs=2,
                        metavar=("BASELINE", "CURRENT"),
                        help="compare two reports model-by-model")
    parser.add_argument("--max-mips-drop", type=float, metavar="PCT",
                        help="with --compare: exit 1 if any common "
                             "model lost more than PCT%% MIPS")
    parser.add_argument("--markdown", action="store_true",
                        help="with --compare: also print a markdown "
                             "table for docs/PERF.md")
    parser.add_argument("files", nargs="*",
                        help="legacy BASELINE CURRENT comparison mode")
    options = parser.parse_args()

    if options.validate:
        if options.files or options.compare:
            parser.error("--validate takes no other files")
        validate(options.validate)
        print(f"{options.validate}: valid {SCHEMA} report")
        return
    if options.compare:
        if options.files:
            parser.error("--compare takes no positional files")
        compare(options.compare[0], options.compare[1],
                max_mips_drop=options.max_mips_drop,
                markdown=options.markdown)
        return
    if len(options.files) != 2:
        parser.error("comparison mode needs exactly BASELINE and CURRENT")
    if options.max_mips_drop is not None or options.markdown:
        parser.error("--max-mips-drop/--markdown require --compare")
    compare(options.files[0], options.files[1])


if __name__ == "__main__":
    main()
