"""The semantic model both frontends produce and all checkers consume.

Deliberately small: it captures exactly the facts the four checkers
need — function definitions with structured bodies, declarations and
their types, thread-safety annotations, enums with evaluated values —
not general C++ semantics. A checker never sees tokens it did not ask
for, and never knows whether libclang or the internal parser built the
model.
"""


class Stmt:
    """One statement: its tokens (excluding any nested brace groups)
    plus the parsed brace groups (lambda bodies, brace-init lists) as
    sub-blocks, in source order."""

    __slots__ = ("tokens", "line", "sub_blocks")

    def __init__(self, tokens, line, sub_blocks=None):
        self.tokens = tokens
        self.line = line
        self.sub_blocks = sub_blocks or []

    def text(self):
        return " ".join(t.text for t in self.tokens)

    def __repr__(self):
        return "Stmt(%r @%d)" % (self.text()[:60], self.line)


class Block:
    """A structured region of a function body.

    kind: "compound" | "if" | "else" | "while" | "for" | "dowhile"
          | "switch" | "case" | "lambda"
    header: condition / loop-header / case-label tokens ([] otherwise)
    items: ordered Stmt and Block children
    """

    __slots__ = ("kind", "header", "items", "line")

    def __init__(self, kind, header, items, line):
        self.kind = kind
        self.header = header
        self.items = items
        self.line = line

    def __repr__(self):
        return "Block(%s @%d, %d items)" % (self.kind, self.line,
                                            len(self.items))


class FunctionDef:
    """A function definition (or bodyless declaration when body is
    None, kept for the Status-returning-function index)."""

    __slots__ = ("name", "qualname", "class_name", "file", "line",
                 "return_tokens", "param_tokens", "body",
                 "annotations", "params")

    def __init__(self, name, qualname, class_name, file, line,
                 return_tokens, param_tokens, body, annotations):
        self.name = name
        self.qualname = qualname          # e.g. "vpsim::fleet::classifyExit"
        self.class_name = class_name      # innermost class, or None
        self.file = file
        self.line = line
        self.return_tokens = return_tokens
        self.param_tokens = param_tokens  # raw tokens between ( )
        self.body = body                  # Block("compound") or None
        # {"requires": [expr], "excludes": [...], "acquire": [...],
        #  "release": [...]} — normalized lock expressions.
        self.annotations = annotations
        self.params = parse_params(param_tokens)

    def returns_status_by_value(self):
        toks = [t.text for t in self.return_tokens
                if t.text not in ("const", "inline", "static",
                                  "virtual", "constexpr", "friend",
                                  "vpsim", "io", "::")]
        return toks[-1:] == ["Status"] and not any(
            t.text in ("&", "*") for t in self.return_tokens)

    def __repr__(self):
        return "FunctionDef(%s @%s:%d)" % (self.qualname, self.file,
                                           self.line)


class VarDecl:
    """A member or global variable declaration."""

    __slots__ = ("name", "type_text", "file", "line", "class_name")

    def __init__(self, name, type_text, file, line, class_name):
        self.name = name
        self.type_text = type_text
        self.file = file
        self.line = line
        self.class_name = class_name


class EnumDef:
    __slots__ = ("name", "file", "line", "enumerators")

    def __init__(self, name, file, line, enumerators):
        self.name = name
        self.file = file
        self.line = line
        # [(name, value:int|None, line)]
        self.enumerators = enumerators

    def values(self):
        """{enumerator: value} with implicit values filled in."""
        out = {}
        nxt = 0
        for name, value, _line in self.enumerators:
            if value is None:
                value = nxt
            out[name] = value
            nxt = value + 1
        return out


class SourceModel:
    """Everything extracted from one source file."""

    __slots__ = ("path", "raw_lines", "functions", "enums",
                 "member_vars")

    def __init__(self, path, raw_lines):
        self.path = path                  # repo-relative, forward /
        self.raw_lines = raw_lines
        self.functions = []               # FunctionDef (defs + decls)
        self.enums = []                   # EnumDef
        self.member_vars = []             # VarDecl


class Model:
    """The whole-program model: all parsed files plus cross-file
    indexes the checkers share."""

    def __init__(self):
        self.files = {}                   # path -> SourceModel

    def add(self, source_model):
        self.files[source_model.path] = source_model

    # ---- indexes ----------------------------------------------------

    def all_functions(self):
        for sm in self.files.values():
            for fn in sm.functions:
                yield fn

    def all_enums(self):
        for sm in self.files.values():
            for en in sm.enums:
                yield en

    def status_function_names(self):
        """Names (unqualified) of by-value Status-returning functions
        anywhere in the model, split into free/unique names and
        member names grouped by class."""
        names = set()
        for fn in self.all_functions():
            if fn.returns_status_by_value():
                names.add(fn.name)
        return names

    def status_members_by_class(self):
        out = {}
        for fn in self.all_functions():
            if fn.class_name and fn.returns_status_by_value():
                out.setdefault(fn.class_name, set()).add(fn.name)
        return out

    def functions_by_name(self):
        out = {}
        for fn in self.all_functions():
            if fn.body is not None:
                out.setdefault(fn.name, []).append(fn)
        return out

    def subsystem_of(self, path):
        """Top-level subsystem a repo-relative path belongs to:
        "trace" for src/trace/..., "bench" for bench/..., etc."""
        parts = path.split("/")
        if parts[0] == "src" and len(parts) > 1:
            return parts[1]
        return parts[0]


def parse_params(param_tokens):
    """[(type_text, name)] from raw parameter-list tokens. Best-effort:
    splits on top-level commas; the name is the last identifier (or ""
    for unnamed parameters), the type is everything before it."""
    params = []
    depth = 0
    current = []
    groups = []
    for tok in param_tokens:
        if tok.text in "(<[{":
            depth += 1
        elif tok.text in ")>]}":
            depth -= 1
        if tok.text == "," and depth == 0:
            groups.append(current)
            current = []
        else:
            current.append(tok)
    if current:
        groups.append(current)
    for group in groups:
        # Strip default argument.
        cut = len(group)
        depth = 0
        for idx, tok in enumerate(group):
            if tok.text in "(<[{":
                depth += 1
            elif tok.text in ")>]}":
                depth -= 1
            elif tok.text == "=" and depth == 0:
                cut = idx
                break
        group = group[:cut]
        if not group:
            continue
        if group[-1].kind == "ident" and len(group) > 1:
            name = group[-1].text
            type_text = " ".join(t.text for t in group[:-1])
        else:
            name = ""
            type_text = " ".join(t.text for t in group)
        params.append((type_text, name))
    return params


def normalize_lock_expr(text):
    """Canonical spelling of a lock expression: no spaces, no leading
    this->, no trailing parens from e.g. `mutex()` getters."""
    text = text.replace(" ", "")
    if text.startswith("this->"):
        text = text[len("this->"):]
    return text
