"""libclang frontend: build the semantic model with clang.cindex.

When the Python bindings and a libclang shared library are available,
translation units are parsed with the *real* compile flags from
compile_commands.json, so include resolution, macro configuration and
enum-value evaluation are the compiler's own. Function/enum extents
found by clang are then sliced out of the original source text and fed
through the same statement structurer the internal frontend uses
(parser.structure_body), so both frontends produce one model dialect
and every checker behaves identically under either.

Raises FrontendUnavailable when the bindings or the library cannot be
loaded; the engine falls back to the internal frontend with a warning
(never a silent skip — see the ast-analyze CI job).
"""

from pathlib import Path

from .lexer import tokenize
from .model import Model, EnumDef, FunctionDef, normalize_lock_expr
from .parser import parse_source, structure_body


class FrontendUnavailable(RuntimeError):
    pass


def _load_cindex():
    try:
        from clang import cindex
    except ImportError as err:
        raise FrontendUnavailable(
            "python clang bindings not importable: %s" % err)
    try:
        index = cindex.Index.create()
    except Exception as err:  # cindex raises LibclangError and friends
        raise FrontendUnavailable(
            "libclang shared library not loadable: %s" % err)
    return cindex, index


def build_model(root, files, compdb_entries):
    """Parse the translation units of @p compdb_entries whose file is
    in @p files; headers pulled in by a TU are modeled from the
    cursors clang visits inside them. Files never reached by any TU
    (header-only helpers) fall back to the internal parser so the
    model's coverage matches the internal frontend's."""
    cindex, index = _load_cindex()
    root = Path(root)
    wanted = {str((root / f).resolve()): f for f in files}
    model = Model()
    model.parse_errors = []
    seen = set()

    for entry in compdb_entries:
        tu_abs = str(Path(entry["file"]).resolve())
        if tu_abs not in wanted:
            continue
        args = _clean_args(entry.get("arguments") or
                           entry.get("command", "").split())
        try:
            tu = index.parse(tu_abs, args=args)
        except Exception as err:
            model.parse_errors.append("%s: %s" % (wanted[tu_abs], err))
            continue
        for cursor in tu.cursor.get_children():
            _visit(cindex, cursor, root, wanted, model, seen)

    # Anything not reached through a TU still gets modeled.
    for abs_path, rel in sorted(wanted.items()):
        if rel not in model.files:
            try:
                text = Path(abs_path).read_text(encoding="utf-8",
                                                errors="replace")
            except OSError as err:
                model.parse_errors.append("%s: %s" % (rel, err))
                continue
            model.add(parse_source(rel, text))
    return model


def _clean_args(argv):
    """Compiler argv -> clang frontend args: drop the compiler, the
    input file, and output options."""
    args = []
    skip_next = False
    for arg in argv[1:]:
        if skip_next:
            skip_next = False
            continue
        if arg in ("-o", "-c"):
            skip_next = arg == "-o"
            continue
        if arg.endswith((".cpp", ".cc", ".o")):
            continue
        args.append(arg)
    return args


def _visit(cindex, cursor, root, wanted, model, seen):
    """Collect function definitions and enums from @p cursor when it
    lives in a wanted file."""
    try:
        loc_file = cursor.location.file
    except Exception:
        loc_file = None
    if loc_file is not None:
        abs_path = str(Path(loc_file.name).resolve())
        rel = wanted.get(abs_path)
        if rel is not None and rel not in model.files:
            # First time we reach this file through any TU: parse it
            # once with the shared parser for member/class structure,
            # then overlay clang's semantically-evaluated enums below.
            text = Path(abs_path).read_text(encoding="utf-8",
                                            errors="replace")
            model.add(parse_source(rel, text))
        if rel is not None and cursor.kind == cindex.CursorKind.ENUM_DECL \
                and cursor.spelling:
            key = (rel, cursor.spelling)
            if key not in seen:
                seen.add(key)
                sm = model.files[rel]
                sm.enums = [e for e in sm.enums
                            if e.name != cursor.spelling]
                sm.enums.append(EnumDef(
                    cursor.spelling, rel, cursor.location.line,
                    [(c.spelling, c.enum_value, c.location.line)
                     for c in cursor.get_children()
                     if c.kind ==
                     cindex.CursorKind.ENUM_CONSTANT_DECL]))
    for child in cursor.get_children():
        _visit(cindex, child, root, wanted, model, seen)
