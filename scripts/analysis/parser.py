"""Structural C++ parser for the internal analysis frontend.

Builds the semantic model (model.py) from a token stream: namespaces
and classes for qualified names, enum definitions with evaluated
literal values, member variable declarations, and function definitions
with their bodies parsed into Stmt/Block trees.

This is not a general C++ parser — it is a *structural* one: it
bracket-matches reliably (the lexer guarantees literals cannot confuse
it), understands declaration contexts, and classifies statements, but
it does not do overload resolution or template instantiation. The
checkers are written against exactly the facts it can extract; the
libclang frontend extracts the same facts with a real compiler and
feeds the same statement structurer, so the two frontends converge by
construction.
"""

from .lexer import tokenize
from .model import (Block, EnumDef, FunctionDef, SourceModel, Stmt,
                    VarDecl, normalize_lock_expr)

_CONTROL_KEYWORDS = {"if", "while", "for", "switch", "do", "else",
                     "return", "catch", "case", "default", "goto",
                     "break", "continue", "try", "throw", "new",
                     "delete", "sizeof", "alignof", "static_assert",
                     "co_return", "co_await", "co_yield"}

_ANNOTATION_MACROS = {"REQUIRES": "requires", "EXCLUDES": "excludes",
                      "ACQUIRE": "acquire", "RELEASE": "release"}

_OPEN = {"(": ")", "[": "]", "{": "}"}


def parse_source(path, text):
    """Parse @p text into a SourceModel for repo-relative @p path."""
    sm = SourceModel(path, text.splitlines())
    tokens = tokenize(text)
    _Parser(sm, tokens).parse_decl_region(0, len(tokens),
                                          namespaces=(), class_name=None)
    return sm


def structure_body(tokens, start, end, line):
    """Parse tokens[start:end] (contents between a function body's
    braces) into a Block("compound") tree. Shared by both frontends."""
    items = _parse_statements(tokens, start, end)
    return Block("compound", [], items, line)


class _Parser:
    def __init__(self, sm, tokens):
        self.sm = sm
        self.tokens = tokens

    # ---- declaration regions (namespace / class / top level) --------

    def parse_decl_region(self, i, end, namespaces, class_name):
        toks = self.tokens
        while i < end:
            t = toks[i]
            if t.text == "namespace" and t.kind == "ident":
                i = self._parse_namespace(i, end, namespaces,
                                          class_name)
            elif t.text in ("class", "struct") and \
                    self._is_class_definition(i, end):
                i = self._parse_class(i, end, namespaces)
            elif t.text == "enum":
                i = self._parse_enum(i, end)
            elif t.text == "template":
                i = self._skip_template_header(i, end)
            elif t.text in ("using", "typedef", "extern",
                            "static_assert", "friend"):
                i = self._skip_to(i, end, ";") + 1
            elif t.text in ("public", "private", "protected") and \
                    i + 1 < end and toks[i + 1].text == ":":
                i += 2
            elif t.text == ";":
                i += 1
            else:
                i = self._parse_member_or_function(i, end, namespaces,
                                                  class_name)
        return i

    def _parse_namespace(self, i, end, namespaces, class_name):
        toks = self.tokens
        j = i + 1
        names = []
        while j < end and toks[j].text != "{" and toks[j].text != ";":
            if toks[j].kind == "ident":
                names.append(toks[j].text)
            j += 1
        if j >= end or toks[j].text == ";":  # namespace alias
            return j + 1
        close = _match_group(toks, j, end)
        self.parse_decl_region(j + 1, close, namespaces + tuple(names),
                               class_name)
        return close + 1

    def _is_class_definition(self, i, end):
        """class/struct followed eventually by { before ; at depth 0
        (else it is a forward declaration or an elaborated type in a
        declaration)."""
        toks = self.tokens
        depth = 0
        j = i + 1
        while j < end:
            text = toks[j].text
            if text in "(<[":
                depth += 1
            elif text in ")>]":
                depth -= 1
            elif depth == 0:
                if text == "{":
                    return True
                if text in (";", "=") or (text == ")"):
                    return False
            j += 1
        return False

    def _parse_class(self, i, end, namespaces):
        toks = self.tokens
        j = i + 1
        name = None
        while j < end and toks[j].text != "{":
            # The class name is the last plain identifier before a
            # base-clause ":" or the brace (skips attribute macros like
            # CAPABILITY("mutex") via their balanced parens).
            if toks[j].text == "(":
                j = _match_group(toks, j, end) + 1
                continue
            if toks[j].text == ":":
                break
            if toks[j].kind == "ident" and toks[j].text != "final":
                name = toks[j].text
            j += 1
        while j < end and toks[j].text != "{":
            j += 1
        if j >= end:
            return end
        close = _match_group(toks, j, end)
        if name:
            self.parse_decl_region(j + 1, close, namespaces, name)
        return close + 1

    def _parse_enum(self, i, end):
        toks = self.tokens
        j = i + 1
        if j < end and toks[j].text in ("class", "struct"):
            j += 1
        name = None
        if j < end and toks[j].kind == "ident":
            name = toks[j].text
            j += 1
        while j < end and toks[j].text not in ("{", ";"):
            j += 1
        if j >= end or toks[j].text == ";":
            return j + 1
        close = _match_group(toks, j, end)
        enumerators = []
        k = j + 1
        while k < close:
            if toks[k].kind == "ident":
                ename = toks[k].text
                eline = toks[k].line
                value = None
                k += 1
                if k < close and toks[k].text == "=":
                    expr_start = k + 1
                    while k < close and toks[k].text != ",":
                        if toks[k].text in _OPEN:
                            k = _match_group(toks, k, close)
                        k += 1
                    value = _eval_int(toks[expr_start:k])
                else:
                    while k < close and toks[k].text != ",":
                        k += 1
                enumerators.append((ename, value, eline))
            k += 1
        if name:
            self.sm.enums.append(EnumDef(name, self.sm.path,
                                         toks[i].line, enumerators))
        return close + 1

    def _skip_template_header(self, i, end):
        toks = self.tokens
        j = i + 1
        if j >= end or toks[j].text != "<":
            return j
        depth = 0
        while j < end:
            text = toks[j].text
            if text == "<":
                depth += 1
            elif text == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif text == ">>":
                depth -= 2
                if depth <= 0:
                    return j + 1
            elif text in "([{":
                j = _match_group(toks, j, end)
            j += 1
        return end

    # ---- members and functions --------------------------------------

    def _parse_member_or_function(self, i, end, namespaces,
                                  class_name):
        """Parse one declaration starting at @p i: a function
        definition/declaration or a variable declaration. Returns the
        index just past it."""
        toks = self.tokens
        j = i
        paren = None  # index of the parameter-list "("
        name_idx = None
        while j < end:
            text = toks[j].text
            if text == ";":
                if paren is not None and name_idx is not None:
                    self._record_function(i, name_idx, paren, None,
                                          namespaces, class_name,
                                          qual_end=j)
                else:
                    self._record_var(i, j, class_name)
                return j + 1
            if text == "=":
                # Variable with initializer, or = default/delete/0.
                k = self._skip_to(j, end, ";")
                if paren is not None and name_idx is not None:
                    self._record_function(i, name_idx, paren, None,
                                          namespaces, class_name,
                                          qual_end=j)
                else:
                    self._record_var(i, j, class_name)
                return k + 1
            if text == "{":
                if paren is not None and name_idx is not None:
                    close = _match_group(toks, j, end)
                    self._record_function(i, name_idx, paren,
                                          (j, close), namespaces,
                                          class_name, qual_end=j)
                    return close + 1
                # Brace initializer on a variable: skip the group.
                j = _match_group(toks, j, end)
                j += 1
                continue
            if text == "(":
                prev = toks[j - 1] if j > i else None
                if paren is None and prev is not None and \
                        prev.kind == "ident" and \
                        prev.text not in _CONTROL_KEYWORDS:
                    paren = j
                    name_idx = j - 1
                    j = _match_group(toks, j, end) + 1
                    # Constructor member-init list: scan balanced
                    # groups until the body brace.
                    if j < end and toks[j].text == ":":
                        j = self._skip_ctor_init(j + 1, end)
                    continue
                j = _match_group(toks, j, end) + 1
                continue
            if text == ":" and paren is None and toks[j - 1].kind == \
                    "ident" and j > i and toks[i].text == "case":
                return self._skip_to(j, end, ";") + 1
            if text in ("operator",):
                # Skip operator overloads entirely.
                k = self._skip_to(j, end, "{")
                semi = self._skip_to(j, end, ";")
                if semi < k:
                    return semi + 1
                if k >= end:
                    return end
                return _match_group(toks, k, end) + 1
            if text == "->":
                # Trailing return type: scan to the body or semicolon.
                j += 1
                continue
            if text in "[<":
                grp = _match_group(toks, j, end)
                if grp > j:
                    j = grp
                j += 1
                continue
            j += 1
        return end

    def _skip_ctor_init(self, j, end):
        """j is just past the ":" of a constructor member-init list;
        returns the index of the body "{"."""
        toks = self.tokens
        while j < end:
            text = toks[j].text
            if text.isidentifier() or text == "::":
                j += 1
                if j < end and toks[j].text in ("(", "{", "<"):
                    j = _match_group(toks, j, end) + 1
                    if j < end and toks[j].text in ("(", "{"):
                        # templated base: Base<T>{...}
                        if toks[j - 1].text == ">":
                            j = _match_group(toks, j, end) + 1
                continue
            if text == ",":
                j += 1
                continue
            if text == "{":
                return j
            if text == "...":
                j += 1
                continue
            j += 1
        return end

    def _record_function(self, start, name_idx, paren, body_span,
                         namespaces, class_name, qual_end):
        toks = self.tokens
        name_parts = [toks[name_idx].text]
        k = name_idx - 1
        while k - 1 >= start and toks[k].text == "::" and \
                toks[k - 1].kind == "ident":
            name_parts.insert(0, toks[k - 1].text)
            k -= 2
        name = name_parts[-1]
        # Out-of-line member definition: Class::name(...)
        owner = class_name
        if len(name_parts) >= 2:
            owner = name_parts[-2]
        return_tokens = [t for t in toks[start:k + 1]
                         if t.text not in ("inline", "static",
                                           "virtual", "explicit",
                                           "constexpr", "friend",
                                           "mutable", "typename")]
        return_tokens = _strip_attributes(return_tokens)
        # Destructors / constructors have no return type; fine.
        param_close = _match_group(toks, paren, len(toks))
        param_tokens = toks[paren + 1:param_close]
        annotations = self._parse_annotations(param_close + 1,
                                              qual_end)
        body = None
        if body_span is not None:
            b0, b1 = body_span
            body = structure_body(toks, b0 + 1, b1, toks[b0].line)
        qualname = "::".join(namespaces +
                             ((owner,) if owner else ()) + (name,))
        self.sm.functions.append(FunctionDef(
            name, qualname, owner, self.sm.path, toks[name_idx].line,
            return_tokens, param_tokens, body, annotations))

    def _parse_annotations(self, j, end):
        """REQUIRES/EXCLUDES/ACQUIRE/RELEASE between the parameter
        list and the body/semicolon."""
        toks = self.tokens
        out = {"requires": [], "excludes": [], "acquire": [],
               "release": []}
        while j < end:
            text = toks[j].text
            if text in _ANNOTATION_MACROS and j + 1 < end and \
                    toks[j + 1].text == "(":
                close = _match_group(toks, j + 1, end)
                args = _split_args(toks, j + 2, close)
                out[_ANNOTATION_MACROS[text]].extend(
                    normalize_lock_expr("".join(a)) for a in args if a)
                j = close + 1
                continue
            if text == "(":
                j = _match_group(toks, j, end) + 1
                continue
            j += 1
        return out

    def _record_var(self, start, semi, class_name):
        """Best-effort variable declaration between start and the ;
        — used for the Mutex-member and container indexes."""
        toks = self.tokens
        # Find the declared name: last identifier at depth 0 before
        # ";", "=", "{", or "(" (initializer).
        depth = 0
        name = None
        name_line = None
        type_end = None
        j = start
        while j < semi:
            text = toks[j].text
            if text in "(<[{":
                depth += 1
            elif text in ")>]}":
                depth -= 1
            elif depth == 0 and text in ("=",):
                break
            elif depth == 0 and toks[j].kind == "ident" and \
                    text not in ("const", "mutable", "static",
                                 "constexpr", "inline", "GUARDED_BY",
                                 "PT_GUARDED_BY"):
                name = text
                name_line = toks[j].line
                type_end = j
            j += 1
        if name is None or type_end is None or type_end == start:
            return
        type_text = " ".join(t.text for t in toks[start:type_end])
        if not type_text:
            return
        self.sm.member_vars.append(VarDecl(name, type_text,
                                           self.sm.path,
                                           name_line, class_name))

    def _skip_to(self, i, end, target):
        toks = self.tokens
        j = i
        while j < end:
            text = toks[j].text
            if text == target:
                return j
            if text in _OPEN and target not in _OPEN.values():
                j = _match_group(toks, j, end)
            j += 1
        return end


# ---- statement structurer (shared with the libclang frontend) -------

def _parse_statements(tokens, i, end):
    items = []
    while i < end:
        t = tokens[i]
        text = t.text
        if text == ";":
            i += 1
            continue
        if text == "{":
            close = _match_group(tokens, i, end)
            items.append(Block("compound", [],
                               _parse_statements(tokens, i + 1, close),
                               t.line))
            i = close + 1
            continue
        if text in ("if", "while", "switch") and i + 1 < end and \
                tokens[i + 1].text == "(":
            cond_close = _match_group(tokens, i + 1, end)
            header = list(tokens[i + 2:cond_close])
            body_items, i2 = _parse_one_statement(tokens,
                                                  cond_close + 1, end)
            kind = {"if": "if", "while": "while",
                    "switch": "switch"}[text]
            if kind == "switch":
                body_items = _group_cases(body_items)
            items.append(Block(kind, header, body_items, t.line))
            i = i2
            if text == "if" and i < end and tokens[i].text == "else":
                else_line = tokens[i].line
                body_items, i = _parse_one_statement(tokens, i + 1,
                                                     end)
                items.append(Block("else", [], body_items, else_line))
            continue
        if text == "for" and i + 1 < end and tokens[i + 1].text == "(":
            cond_close = _match_group(tokens, i + 1, end)
            header = list(tokens[i + 2:cond_close])
            body_items, i = _parse_one_statement(tokens,
                                                 cond_close + 1, end)
            items.append(Block("for", header, body_items, t.line))
            continue
        if text == "do":
            body_items, i = _parse_one_statement(tokens, i + 1, end)
            header = []
            if i < end and tokens[i].text == "while" and \
                    i + 1 < end and tokens[i + 1].text == "(":
                cond_close = _match_group(tokens, i + 1, end)
                header = list(tokens[i + 2:cond_close])
                i = cond_close + 1
                if i < end and tokens[i].text == ";":
                    i += 1
            items.append(Block("dowhile", header, body_items, t.line))
            continue
        if text in ("case", "default"):
            j = i
            while j < end and tokens[j].text != ":":
                j += 1
            items.append(Block("case", list(tokens[i:j]), [], t.line))
            i = j + 1
            continue
        if text == "try":
            body_items, i = _parse_one_statement(tokens, i + 1, end)
            items.append(Block("compound", [], body_items, t.line))
            while i < end and tokens[i].text == "catch":
                cond_close = _match_group(tokens, i + 1, end)
                body_items, i = _parse_one_statement(tokens,
                                                     cond_close + 1,
                                                     end)
                items.append(Block("compound", [], body_items, t.line))
            continue
        # Plain statement: accumulate to the ; at depth 0, capturing
        # any brace groups (lambdas, brace-init) as sub-blocks.
        stmt_tokens = []
        sub_blocks = []
        j = i
        depth = 0
        while j < end:
            tt = tokens[j].text
            if tt == "{":
                # A brace group inside a statement: a lambda body or a
                # brace-init list. Parse it as a nested block so lock
                # scopes and span uses inside lambdas stay visible,
                # and keep it out of the statement's own tokens.
                close = _match_group(tokens, j, end)
                sub_blocks.append(Block(
                    "lambda", [],
                    _parse_statements(tokens, j + 1, close),
                    tokens[j].line))
                j = close + 1
                continue
            if tt in "([":
                depth += 1
            elif tt in ")]":
                depth -= 1
            elif tt == ";" and depth <= 0:
                break
            stmt_tokens.append(tokens[j])
            j += 1
        items.append(Stmt(stmt_tokens, t.line, sub_blocks))
        i = j + 1
    return items


def _parse_one_statement(tokens, i, end):
    """The single statement (or brace block) controlled by an
    if/while/for; returns (items, next_index)."""
    while i < end and tokens[i].text == ";":
        return [], i + 1
    if i < end and tokens[i].text == "{":
        close = _match_group(tokens, i, end)
        return _parse_statements(tokens, i + 1, close), close + 1
    # A single controlled statement — possibly itself an if/for/....
    items = _parse_statements_limit_one(tokens, i, end)
    return items


def _parse_statements_limit_one(tokens, i, end):
    """Parse exactly one statement starting at i."""
    # Reuse the general machinery on a window that we cut after the
    # first complete statement: simplest is to parse the full region
    # and take the first item — but that would re-parse repeatedly.
    # Instead find this statement's extent, then parse just it.
    t = tokens[i].text
    if t in ("if", "while", "for", "switch", "do", "try"):
        ext = _control_extent(tokens, i, end)
        return _parse_statements(tokens, i, ext), ext
    j = i
    depth = 0
    while j < end:
        tt = tokens[j].text
        if tt in "([{":
            j = _match_group(tokens, j, end)
        elif tt == ";" and depth == 0:
            j += 1
            break
        j += 1
    return _parse_statements(tokens, i, j), j


def _control_extent(tokens, i, end):
    """Index just past the control statement starting at i."""
    t = tokens[i].text
    j = i + 1
    if t == "do":
        j = _statement_extent(tokens, j, end)
        if j < end and tokens[j].text == "while":
            j = _match_group(tokens, j + 1, end) + 1
            if j < end and tokens[j].text == ";":
                j += 1
        return j
    if t == "try":
        if j < end and tokens[j].text == "{":
            j = _match_group(tokens, j, end) + 1
        while j < end and tokens[j].text == "catch":
            j = _match_group(tokens, j + 1, end) + 1
            if j < end and tokens[j].text == "{":
                j = _match_group(tokens, j, end) + 1
        return j
    if j < end and tokens[j].text == "(":
        j = _match_group(tokens, j, end) + 1
    j = _statement_extent(tokens, j, end)
    if t == "if" and j < end and tokens[j].text == "else":
        j = _statement_extent(tokens, j + 1, end)
    return j


def _statement_extent(tokens, i, end):
    if i >= end:
        return end
    t = tokens[i].text
    if t == "{":
        return _match_group(tokens, i, end) + 1
    if t in ("if", "while", "for", "switch", "do", "try"):
        return _control_extent(tokens, i, end)
    j = i
    while j < end:
        tt = tokens[j].text
        if tt in "([{":
            j = _match_group(tokens, j, end)
        elif tt == ";":
            return j + 1
        j += 1
    return end


def _group_cases(items):
    """Regroup a switch body's flat items so each Block("case") owns
    the statements through the next label."""
    out = []
    current = None
    for item in items:
        if isinstance(item, Block) and item.kind == "case":
            current = Block("case", item.header, [], item.line)
            out.append(current)
        elif current is not None:
            current.items.append(item)
        else:
            out.append(item)
    return out


# ---- shared helpers -------------------------------------------------

def _match_group(tokens, i, end):
    """Index of the token closing the group opened at @p i ("(", "[",
    "{" — or "<" for template argument lists, best-effort). Returns i
    if tokens[i] opens nothing."""
    opener = tokens[i].text
    if opener == "<":
        depth = 0
        j = i
        while j < end:
            text = tokens[j].text
            if text == "<":
                depth += 1
            elif text == ">":
                depth -= 1
                if depth == 0:
                    return j
            elif text == ">>":
                depth -= 2
                if depth <= 0:
                    return j
            elif text in (";", "{"):
                return i  # not a template argument list after all
            elif text in "([":
                j = _match_group(tokens, j, end)
            j += 1
        return i
    if opener not in _OPEN:
        return i
    depth = 0
    j = i
    while j < end:
        text = tokens[j].text
        if text == opener:
            depth += 1
        elif text == _OPEN[opener]:
            depth -= 1
            if depth == 0:
                return j
        j += 1
    return end - 1


def _split_args(tokens, i, end):
    """Comma-separated argument texts between i and end."""
    args = []
    current = []
    depth = 0
    j = i
    while j < end:
        text = tokens[j].text
        if text in "([{<":
            depth += 1
        elif text in ")]}>":
            depth -= 1
        if text == "," and depth == 0:
            args.append(current)
            current = []
        else:
            current.append(text)
        j += 1
    args.append(current)
    return args


def _strip_attributes(tokens):
    """Drop [[...]] attribute groups from a token list."""
    out = []
    i = 0
    n = len(tokens)
    while i < n:
        if tokens[i].text == "[" and i + 1 < n and \
                tokens[i + 1].text == "[":
            depth = 0
            while i < n:
                if tokens[i].text == "[":
                    depth += 1
                elif tokens[i].text == "]":
                    depth -= 1
                    if depth == 0:
                        break
                i += 1
            i += 1
            continue
        out.append(tokens[i])
        i += 1
    return out


def _eval_int(tokens):
    """Evaluate a literal integer enumerator value; None when the
    expression is not a plain (possibly negated) integer literal."""
    texts = [t.text for t in tokens]
    neg = False
    while texts and texts[0] in ("+", "-", "(", ")"):
        if texts[0] == "-":
            neg = not neg
        texts = [t for t in texts[1:] if t not in ("(", ")")]
    if len(texts) != 1:
        return None
    text = texts[0].rstrip("uUlL").replace("'", "")
    try:
        value = int(text, 0)
    except ValueError:
        return None
    return -value if neg else value
