"""vpsim-analyze engine: file discovery, frontend selection,
suppression, baseline gating, and the fixture self-test.

Pipeline:  compile_commands.json (+ src headers)  ->  frontend
(libclang when loadable, internal otherwise)  ->  semantic model  ->
checkers  ->  findings  ->  `lint:allow` suppression  ->  baseline
delta.  Exit 0 only when the delta is empty in BOTH directions: a new
finding must be fixed/suppressed/baselined, and a baseline entry whose
finding disappeared must be deleted (stale entries hide regressions
that reintroduce the same finding).

Baseline entries are line-number independent (digits are normalized)
so pure code motion does not churn the file.
"""

import argparse
import json
import re
import sys
from pathlib import Path

from . import CHECKERS
from .frontend_internal import build_model as build_internal
from .frontend_libclang import FrontendUnavailable, \
    build_model as build_libclang
from . import check_span_lifetime, check_status_dataflow, \
    check_lock_order, check_taxonomy

CHECKER_MODULES = {
    "span-lifetime": check_span_lifetime,
    "status-dataflow": check_status_dataflow,
    "lock-order": check_lock_order,
    "taxonomy": check_taxonomy,
}
assert sorted(CHECKER_MODULES) == sorted(CHECKERS)

ANALYZED_PREFIXES = ("src/", "bench/")
ALLOW_RE = re.compile(r"lint:allow\s+([\w-]+)")
EXPECT_RE = re.compile(r"lint:expect\s+([\w-]+)")


# ---- file discovery ------------------------------------------------


def discover_files(root, compdb_path):
    """Repo-relative files to analyze: every compile_commands.json TU
    under src/ or bench/, plus all headers under src/ (contracts live
    in headers; TU-only coverage would skip header-only helpers).
    Without a compdb, globs the same prefixes."""
    root = Path(root)
    files = set()
    entries = []
    if compdb_path and Path(compdb_path).is_file():
        entries = json.loads(Path(compdb_path).read_text())
        for entry in entries:
            try:
                rel = Path(entry["file"]).resolve().relative_to(
                    root.resolve())
            except ValueError:
                continue
            rel = rel.as_posix()
            if rel.startswith(ANALYZED_PREFIXES):
                files.add(rel)
    else:
        for pattern in ("src/**/*.cpp", "bench/**/*.cpp"):
            for path in root.glob(pattern):
                files.add(path.relative_to(root).as_posix())
    for path in root.glob("src/**/*.hpp"):
        files.add(path.relative_to(root).as_posix())
    return sorted(files), entries


# ---- model + findings ----------------------------------------------


def build_model(root, files, entries, frontend, log=print):
    """(model, frontend_used). frontend: auto|libclang|internal."""
    if frontend in ("auto", "libclang"):
        try:
            return build_libclang(root, files, entries), "libclang"
        except FrontendUnavailable as err:
            if frontend == "libclang":
                raise
            log("vpsim-analyze: libclang unavailable (%s); using the "
                "internal frontend" % err, file=sys.stderr)
    return build_internal(root, files), "internal"


class Finding:
    __slots__ = ("path", "line", "checker", "message")

    def __init__(self, path, line, checker, message):
        self.path = path
        self.line = line
        self.checker = checker
        self.message = message

    def render(self):
        return "%s:%d: [%s] %s" % (self.path, self.line, self.checker,
                                   self.message)

    def baseline_key(self):
        # Digits normalized so line references inside messages (and
        # the finding line itself) do not churn the baseline on code
        # motion; the (path, checker, shape-of-message) triple is
        # stable.
        return "%s: [%s] %s" % (self.path, self.checker,
                                re.sub(r"\d+", "N", self.message))


def run_checkers(model, checker_names):
    findings = []

    def report(path, line, checker, message):
        findings.append(Finding(path, line, checker, message))

    for name in checker_names:
        CHECKER_MODULES[name].run(model, report)
    findings.sort(key=lambda f: (f.path, f.line, f.checker))
    return findings


def apply_suppressions(model, findings):
    """Drop findings carrying a `lint:allow <checker>` on the flagged
    line or in the contiguous comment block above it (same convention
    as scripts/lint_project.py)."""
    kept = []
    for f in findings:
        sm = model.files.get(f.path)
        if sm is not None and _neighborhood_allows(
                sm.raw_lines, f.line, f.checker):
            continue
        kept.append(f)
    return kept


def _neighborhood_allows(raw_lines, lineno, checker):
    if 0 <= lineno - 1 < len(raw_lines) and \
            checker in ALLOW_RE.findall(raw_lines[lineno - 1]):
        return True
    candidate = lineno - 2
    while 0 <= candidate < len(raw_lines):
        stripped = raw_lines[candidate].lstrip()
        if not stripped.startswith("//"):
            break
        if checker in ALLOW_RE.findall(raw_lines[candidate]):
            return True
        candidate -= 1
    return False


# ---- baseline ------------------------------------------------------


def load_baseline(path):
    entries = []
    if Path(path).is_file():
        for line in Path(path).read_text().splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                entries.append(line)
    return entries


def write_baseline(path, findings):
    lines = [
        "# vpsim-analyze baseline: pre-existing findings tolerated by",
        "# the `ast_analyze` gate. Regenerate with",
        "#   python3 scripts/vpsim_analyze.py --update-baseline",
        "# Entries are line-number independent (digits normalized).",
        "# An entry whose finding no longer fires is STALE and fails",
        "# the gate: delete it when you fix the finding.",
    ]
    lines += sorted({f.baseline_key() for f in findings})
    Path(path).write_text("\n".join(lines) + "\n")


def baseline_delta(findings, baseline_entries):
    current = {f.baseline_key(): f for f in findings}
    baseline = set(baseline_entries)
    new = [f for key, f in sorted(current.items())
           if key not in baseline]
    stale = sorted(baseline - set(current))
    return new, stale


# ---- self-test -----------------------------------------------------


def self_test(root, checker_names, out=sys.stderr):
    """Every fixture under tests/lint_fixtures/ast must yield EXACTLY
    its `lint:expect <checker>` set after suppression. A flat .cpp
    fixture is modeled alone; a directory fixture is modeled as a
    mini source tree (paths relative to the fixture directory, so a
    file at <fixture>/src/trace/x.hpp belongs to subsystem `trace`
    and cross-subsystem checks are exercisable)."""
    fixture_root = Path(root) / "tests" / "lint_fixtures" / "ast"
    if not fixture_root.is_dir():
        print("vpsim-analyze --self-test: no fixtures at %s"
              % fixture_root, file=out)
        return 1
    failures = 0
    ran = 0
    for entry in sorted(fixture_root.iterdir()):
        if entry.is_dir():
            files = sorted(
                p.relative_to(entry).as_posix()
                for p in entry.rglob("*")
                if p.suffix in (".cpp", ".hpp"))
            fixture_base = entry
        elif entry.suffix == ".cpp":
            files = [entry.name]
            fixture_base = fixture_root
        else:
            continue
        ran += 1
        model = build_internal(fixture_base, files)
        for err in model.parse_errors:
            print("vpsim-analyze --self-test: %s: parse error: %s"
                  % (entry.name, err), file=out)
            failures += 1
        findings = apply_suppressions(
            model, run_checkers(model, checker_names))
        got = {(f.path, f.checker, f.line) for f in findings}
        expected = set()
        for rel in files:
            text = (fixture_base / rel).read_text()
            for idx, line in enumerate(text.splitlines(), start=1):
                for m in EXPECT_RE.finditer(line):
                    expected.add((rel, m.group(1), idx))
        unknown = {c for _, c, _ in expected} - set(CHECKER_MODULES)
        if unknown:
            print("vpsim-analyze --self-test: %s expects unknown "
                  "checker(s): %s" % (entry.name,
                                      ", ".join(sorted(unknown))),
                  file=out)
            failures += 1
        for path, checker, line in sorted(expected - got):
            print("vpsim-analyze --self-test: %s: seeded %s finding "
                  "at %s:%d NOT caught" % (entry.name, checker, path,
                                           line), file=out)
            failures += 1
        for path, checker, line in sorted(got - expected):
            print("vpsim-analyze --self-test: %s: FALSE POSITIVE %s "
                  "at %s:%d" % (entry.name, checker, path, line),
                  file=out)
            failures += 1
    if ran == 0:
        print("vpsim-analyze --self-test: no fixtures found",
              file=out)
        return 1
    if failures:
        print("vpsim-analyze --self-test: FAILED (%d problem(s) "
              "across %d fixture(s))" % (failures, ran), file=out)
        return 1
    print("vpsim-analyze --self-test: OK (%d fixtures, exact match)"
          % ran)
    return 0


# ---- CLI -----------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="vpsim_analyze.py",
        description="AST-level semantic checks: %s"
        % ", ".join(CHECKERS))
    parser.add_argument("--root", default=None,
                        help="repo root (default: two dirs up)")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json (default: "
                        "<root>/build/compile_commands.json)")
    parser.add_argument("--frontend", default="auto",
                        choices=("auto", "libclang", "internal"))
    parser.add_argument("--checkers", default=",".join(CHECKERS),
                        help="comma-separated subset to run")
    parser.add_argument("--baseline", default=None,
                        help="baseline file (default: "
                        "scripts/analysis/baseline.txt)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from current "
                        "findings")
    parser.add_argument("--list", action="store_true",
                        help="print every finding (even baselined)")
    parser.add_argument("--self-test", action="store_true",
                        help="check every seeded fixture is caught "
                        "exactly")
    args = parser.parse_args(argv)

    root = Path(args.root) if args.root else \
        Path(__file__).resolve().parents[2]
    checker_names = [c.strip() for c in args.checkers.split(",")
                     if c.strip()]
    unknown = set(checker_names) - set(CHECKER_MODULES)
    if unknown:
        print("vpsim-analyze: unknown checker(s): %s"
              % ", ".join(sorted(unknown)), file=sys.stderr)
        return 2

    if args.self_test:
        return self_test(root, checker_names)

    compdb = args.compdb or (root / "build" / "compile_commands.json")
    baseline_path = args.baseline or \
        (root / "scripts" / "analysis" / "baseline.txt")

    files, entries = discover_files(root, compdb)
    if not files:
        print("vpsim-analyze: no files to analyze under %s" % root,
              file=sys.stderr)
        return 2
    model, used = build_model(root, files, entries, args.frontend)
    for err in model.parse_errors:
        print("vpsim-analyze: warning: %s" % err, file=sys.stderr)

    findings = apply_suppressions(
        model, run_checkers(model, checker_names))

    if args.list:
        for f in findings:
            print(f.render())
        print("vpsim-analyze: %d finding(s) over %d files "
              "(frontend: %s)" % (len(findings), len(files), used))
        return 0

    if args.update_baseline:
        write_baseline(baseline_path, findings)
        print("vpsim-analyze: baseline rewritten with %d entr%s"
              % (len(findings), "y" if len(findings) == 1 else "ies"))
        return 0

    new, stale = baseline_delta(findings, load_baseline(baseline_path))
    for f in new:
        print(f.render())
    for key in stale:
        print("vpsim-analyze: STALE baseline entry (finding no "
              "longer fires — delete it): %s" % key)
    if new or stale:
        print("vpsim-analyze: FAILED — %d new finding(s), %d stale "
              "baseline entr%s (frontend: %s)"
              % (len(new), len(stale),
                 "y" if len(stale) == 1 else "ies", used),
              file=sys.stderr)
        return 1
    print("vpsim-analyze: OK — %d files, %d finding(s) all "
          "baselined, no drift (frontend: %s)"
          % (len(files), len(findings), used))
    return 0
