"""Internal frontend: build the semantic model with the bundled
lexer/parser — no compiler, no dependencies beyond the Python stdlib.

Used whenever libclang is unavailable (the common case on minimal
build hosts), and as the reference the self-test always runs, so the
`ast_analyze` ctest gates every tree regardless of toolchain.
"""

from pathlib import Path

from .model import Model
from .parser import parse_source


def build_model(root, files):
    """Parse @p files (repo-relative paths under @p root) into a
    Model. Files that fail to read are skipped with a note in
    Model.parse_errors (an unreadable file must not silently shrink
    the analysis surface — the engine reports these)."""
    model = Model()
    model.parse_errors = []
    for rel in files:
        path = Path(root) / rel
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as err:
            model.parse_errors.append("%s: %s" % (rel, err))
            continue
        model.add(parse_source(rel, text))
    return model
