"""vpsim-analyze: AST-level semantic analysis over compile_commands.json.

Four project-specific checkers enforce contracts that token-level
linting cannot see (docs/STATIC_ANALYSIS.md, "Layer 4"):

  span-lifetime     TraceSpan/TraceColumns invalidation on the next
                    nextBlock()/nextColumns()/reset() of their source,
                    and spans escaping their source's scope.
  status-dataflow   Status values discarded, overwritten before read,
                    or propagated across subsystem boundaries without
                    Status::wrap().
  lock-order        Global Mutex acquisition graph from MutexLock
                    nesting + ACQUIRE/REQUIRES/EXCLUDES annotations;
                    cycles and EXCLUDES violations.
  taxonomy          Fleet worker exit-code constants vs. the StatusCode
                    enum and the classification switches: round-trip
                    consistency so the two can never drift.

The engine is frontend-agnostic: a libclang (clang.cindex) frontend is
used when the bindings and a compilation database are available, and a
self-contained internal C++ frontend (lexer + structural parser, no
dependencies beyond the Python stdlib) otherwise, so the pass gates
every tree ctest runs on. Both frontends produce the same semantic
model (model.py); the checkers never know which one ran.
"""

__version__ = "1.0"

CHECKERS = ["span-lifetime", "status-dataflow", "lock-order", "taxonomy"]
