"""Token-level semantic helpers shared by the checkers: call
extraction with receiver chains, local-declaration recognition, and
assignment splitting. All operate on the Stmt/Block model, never on
raw text."""

from .model import Block, Stmt


class Call:
    """One call expression inside a statement."""

    __slots__ = ("name", "receiver", "qualifier", "args",
                 "name_index", "line", "arg_index_of")

    def __init__(self, name, receiver, qualifier, args, name_index,
                 line, arg_index_of):
        self.name = name            # member/function identifier
        self.receiver = receiver    # "src", "this", "a.b" or None
        self.qualifier = qualifier  # "io::" style prefix or ""
        self.args = args            # [[Token]] split on top commas
        self.name_index = name_index
        self.line = line
        # token-stream index of each argument's first token
        self.arg_index_of = arg_index_of


def find_calls(tokens):
    """All call expressions in @p tokens, in source order."""
    calls = []
    n = len(tokens)
    for i in range(n - 1):
        if tokens[i].kind != "ident" or tokens[i + 1].text != "(":
            continue
        if tokens[i].text in ("if", "while", "for", "switch", "return",
                              "sizeof", "alignof", "catch", "new",
                              "static_cast", "const_cast",
                              "dynamic_cast", "reinterpret_cast",
                              "decltype", "noexcept", "assert"):
            continue
        # A declaration like `TraceSpan span(x)` is Type Name ( —
        # identifier directly preceding another identifier means the
        # earlier one is a type, the later the declared name, so this
        # "(": constructor args, not a call of `span`.
        if i >= 1 and tokens[i - 1].kind == "ident" and \
                tokens[i - 1].text not in ("return", "co_return"):
            continue
        close = _match_paren(tokens, i + 1, n)
        args, arg_starts = _split_call_args(tokens, i + 2, close)
        receiver, qualifier = _receiver_of(tokens, i)
        calls.append(Call(tokens[i].text, receiver, qualifier, args,
                          i, tokens[i].line, arg_starts))
    return calls


def _receiver_of(tokens, name_index):
    """The receiver chain ("a.b", "this") of a member call whose name
    sits at @p name_index, or (None, qualifier) for free calls."""
    i = name_index - 1
    if i < 0:
        return None, ""
    if tokens[i].text == "::":
        # Namespace/static qualification: collect `a::b::`.
        parts = []
        j = i
        while j - 1 >= 0 and tokens[j].text == "::" and \
                tokens[j - 1].kind == "ident":
            parts.insert(0, tokens[j - 1].text)
            j -= 2
        return None, "::".join(parts) + "::" if parts else ""
    if tokens[i].text not in (".", "->"):
        return None, ""
    parts = []
    while i >= 0 and tokens[i].text in (".", "->"):
        j = i - 1
        if j >= 0 and tokens[j].text == ")":
            # A call or parenthesized expr as receiver: keep the
            # called member as the chain head, e.g. `x.columns().f()`
            # -> receiver "x.columns()".
            depth = 0
            while j >= 0:
                if tokens[j].text == ")":
                    depth += 1
                elif tokens[j].text == "(":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            j -= 1
            if j >= 0 and tokens[j].kind == "ident":
                parts.insert(0, tokens[j].text + "()")
                i = j - 1
                continue
            break
        if j >= 0 and tokens[j].text == "]":
            depth = 0
            while j >= 0:
                if tokens[j].text == "]":
                    depth += 1
                elif tokens[j].text == "[":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            j -= 1
            if j >= 0 and tokens[j].kind == "ident":
                parts.insert(0, tokens[j].text + "[]")
                i = j - 1
                continue
            break
        if j >= 0 and tokens[j].kind == "ident":
            parts.insert(0, tokens[j].text)
            i = j - 1
            continue
        break
    if not parts:
        return None, ""
    return ".".join(parts), ""


def _split_call_args(tokens, i, close):
    args = []
    starts = []
    current = []
    current_start = None
    depth = 0
    j = i
    while j < close:
        text = tokens[j].text
        if text in "([{":
            depth += 1
        elif text in ")]}":
            depth -= 1
        if text == "," and depth == 0:
            args.append(current)
            starts.append(current_start)
            current = []
            current_start = None
        else:
            if current_start is None:
                current_start = j
            current.append(tokens[j])
        j += 1
    if current:
        args.append(current)
        starts.append(current_start)
    return args, starts


def _match_paren(tokens, i, n):
    depth = 0
    j = i
    while j < n:
        if tokens[j].text == "(":
            depth += 1
        elif tokens[j].text == ")":
            depth -= 1
            if depth == 0:
                return j
        j += 1
    return n - 1


def local_decl(tokens, type_names):
    """If the statement declares a local whose type's last name is in
    @p type_names, return (type_name, var_name, init_tokens or None,
    name_index); else None. Handles `const T x`, `T x = ...`,
    `auto x = ...` (auto is never matched — callers resolve the
    initializer), `T x(...)`, `T &x = ...`."""
    i = 0
    n = len(tokens)
    while i < n and tokens[i].text in ("const", "static", "constexpr"):
        i += 1
    if i >= n or tokens[i].kind != "ident":
        return None
    if tokens[i].text not in type_names:
        return None
    type_name = tokens[i].text
    i += 1
    while i < n and tokens[i].text in ("&", "*", "const"):
        i += 1
    if i >= n or tokens[i].kind != "ident":
        return None
    name = tokens[i].text
    name_index = i
    i += 1
    if i >= n:
        return (type_name, name, None, name_index)
    if tokens[i].text == "=":
        return (type_name, name, tokens[i + 1:], name_index)
    if tokens[i].text == "(":
        close = _match_paren(tokens, i, n)
        return (type_name, name, tokens[i + 1:close], name_index)
    return None


def top_level_assignment(tokens):
    """If the statement is `<lhs> = <rhs>` at depth 0 (not ==, not a
    declaration), return (lhs_tokens, rhs_tokens); else None."""
    depth = 0
    for idx, tok in enumerate(tokens):
        if tok.text in "([{":
            depth += 1
        elif tok.text in ")]}":
            depth -= 1
        elif tok.text == "=" and depth == 0 and idx > 0:
            lhs = tokens[:idx]
            # A declaration has two adjacent identifiers in the LHS
            # (type then name); a plain assignment never does.
            for k in range(len(lhs) - 1):
                if lhs[k].kind == "ident" and \
                        lhs[k + 1].kind == "ident":
                    return None
            return lhs, tokens[idx + 1:]
    return None


def chain_text(tokens):
    """Joined text of a member-access chain, no spaces."""
    return "".join(t.text for t in tokens)
