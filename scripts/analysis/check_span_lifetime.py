"""span-lifetime: TraceSpan/TraceColumns invalidation and escape.

The TraceSource contract (src/trace/source.hpp): a span delivered by
nextBlock()/nextColumns() borrows storage owned by the source and is
invalidated by the next successful nextBlock()/nextColumns()/next()
call or reset() on that source. A streaming source recycles its block
buffer on every delivery, so reading a stale span is a use-after-free
that happens to "work" on vector-backed sources — exactly the silent
class of bug that corrupts figures instead of crashing.

This checker abstractly interprets each function body:

  - a local TraceSpan/TraceColumns variable passed as the out-argument
    of `recv.nextBlock(var, ...)` is *bound* to `recv` at that source's
    current generation;
  - every nextBlock()/nextColumns()/next()/reset() on `recv` bumps the
    generation;
  - reading a variable whose bound generation is stale is a finding;
  - returning a bound span, or storing one into a class member,
    escapes the source's scope and is a finding.

Loop bodies are interpreted twice so a binding made in iteration N is
checked against iteration N+1's refill; if/else and switch branches
are interpreted from a common snapshot and merged pessimistically.
"""

from .model import Block, Stmt
from .cppsem import find_calls, local_decl, top_level_assignment, \
    chain_text

ID = "span-lifetime"

SPAN_TYPES = {"TraceSpan", "TraceColumns"}
FILL_METHODS = {"nextBlock", "nextColumns"}
INVALIDATING_METHODS = {"nextBlock", "nextColumns", "next", "reset"}


class _State:
    def __init__(self):
        self.gens = {}      # source key -> generation counter
        self.bindings = {}  # var -> (source, gen, fill_line) | None

    def snapshot(self):
        s = _State()
        s.gens = dict(self.gens)
        s.bindings = dict(self.bindings)
        return s

    def merge(self, other):
        for src, gen in other.gens.items():
            self.gens[src] = max(self.gens.get(src, 0), gen)
        for var, binding in other.bindings.items():
            if var not in self.bindings:
                self.bindings[var] = binding
                continue
            mine = self.bindings[var]
            if mine is None:
                self.bindings[var] = binding
            elif binding is not None and binding[1] < mine[1]:
                # Keep the stalest binding: if either path leaves the
                # span behind its source, a later use must be flagged.
                self.bindings[var] = binding


def run(model, report):
    for sm in model.files.values():
        members = _member_names(model)
        for fn in sm.functions:
            if fn.body is None:
                continue
            _Checker(sm, fn, members, report).check()


def _member_names(model):
    names = set()
    for sm in model.files.values():
        for var in sm.member_vars:
            if var.class_name:
                names.add(var.name)
    return names


class _Checker:
    def __init__(self, sm, fn, member_names, report):
        self.sm = sm
        self.fn = fn
        self.member_names = member_names
        self.report = report
        self.state = _State()
        self.span_vars = set()   # declared span-typed locals
        self.reported = set()

    def check(self):
        # Span-typed parameters participate too (they can be bound by
        # a fill inside this function), but untracked until filled.
        for type_text, name in self.fn.params:
            if type_text.split() and \
                    type_text.split()[-1].lstrip("&*") in SPAN_TYPES or \
                    any(t in SPAN_TYPES for t in type_text.split()):
                self.span_vars.add(name)
        self._walk_items(self.fn.body.items)

    # ---- structure ---------------------------------------------------

    def _walk_items(self, items):
        for item in items:
            if isinstance(item, Stmt):
                self._do_stmt(item)
            elif isinstance(item, Block):
                self._do_block(item)

    def _do_block(self, block):
        kind = block.kind
        if kind in ("while", "for", "dowhile"):
            for _ in range(2):
                if kind != "dowhile":
                    self._do_tokens(block.header, block.line)
                    self._walk_items(block.items)
                else:
                    self._walk_items(block.items)
                    self._do_tokens(block.header, block.line)
            return
        if kind == "if":
            probe = self._negated_probe(block.header)
            if probe is not None:
                # `if (!src.nextBlock(s, ...)) { ... }`: the branch is
                # the FAILURE path, and a failed delivery leaves prior
                # spans valid (source.hpp), so do not bump inside it.
                # The fall-through is the success path: bump there and
                # re-bind the header's out-arg to the fresh
                # generation.
                self._do_tokens(block.header, block.line,
                                suppress_invalidation=True)
                before = self.state.snapshot()
                self._walk_items(block.items)
                taken = self.state
                self.state = before
                recv, var = probe
                self.state.gens[recv] = \
                    self.state.gens.get(recv, 0) + 1
                self.state.merge(taken)
                if var is not None:
                    # Re-bind AFTER the merge: the stalest-binding
                    # merge policy must not clobber the fresh fill
                    # the successful fall-through just made.
                    self.state.bindings[var] = \
                        (recv, self.state.gens[recv], block.line)
                return
            self._do_tokens(block.header, block.line)
            before = self.state.snapshot()
            self._walk_items(block.items)
            taken = self.state
            self.state = before
            self.state.merge(taken)
            return
        if kind == "else":
            before = self.state.snapshot()
            self._walk_items(block.items)
            taken = self.state
            self.state = before
            self.state.merge(taken)
            return
        if kind == "switch":
            self._do_tokens(block.header, block.line)
            before = self.state.snapshot()
            merged = before.snapshot()
            for item in block.items:
                self.state = before.snapshot()
                if isinstance(item, Block):
                    self._walk_items(item.items)
                else:
                    self._do_stmt(item)
                merged.merge(self.state)
            self.state = merged
            return
        # compound / case / lambda: straight-line region.
        self._walk_items(block.items)

    def _do_stmt(self, stmt):
        self._do_tokens(stmt.tokens, stmt.line)
        for sub in stmt.sub_blocks:
            self._do_block(sub)

    # ---- the abstract step ------------------------------------------

    def _negated_probe(self, header):
        """(receiver, out_var|None) when @p header is exactly
        `! recv.nextBlock(...)` / `! recv.next(...)` — the idiom whose
        taken branch runs only when the delivery FAILED."""
        if not header or header[0].text != "!":
            return None
        calls = find_calls(header)
        if len(calls) != 1:
            return None
        call = calls[0]
        if call.name not in INVALIDATING_METHODS or \
                call.name_index > 4:
            return None
        recv = call.receiver if call.receiver is not None else "this"
        var = None
        if call.name in FILL_METHODS and call.args and \
                len(call.args[0]) == 1 and \
                call.args[0][0].kind == "ident" and \
                call.args[0][0].text in self.span_vars:
            var = call.args[0][0].text
        return recv, var

    def _do_tokens(self, tokens, line, suppress_invalidation=False):
        decl = local_decl(tokens, SPAN_TYPES)
        decl_name_index = -1
        if decl is not None:
            _type, name, init, decl_name_index = decl
            self.span_vars.add(name)
            self.state.bindings[name] = None
            if init and len(init) == 1 and init[0].kind == "ident" \
                    and init[0].text in self.span_vars:
                # Copy of another span: inherit its binding.
                self._check_use(init[0])
                self.state.bindings[name] = \
                    self.state.bindings.get(init[0].text)

        calls = find_calls(tokens)
        fill_at = {}        # token index of out-arg -> (recv, var)
        invalidate_at = {}  # token index of call name -> recv
        for call in calls:
            if call.receiver is None and \
                    call.name in INVALIDATING_METHODS:
                recv = "this"
            elif call.receiver is not None and \
                    call.name in INVALIDATING_METHODS:
                recv = call.receiver
            else:
                continue
            invalidate_at[call.name_index] = recv
            if call.name in FILL_METHODS and call.args and \
                    len(call.args[0]) == 1 and \
                    call.args[0][0].kind == "ident" and \
                    call.args[0][0].text in self.span_vars:
                fill_at[call.arg_index_of[0]] = \
                    (recv, call.args[0][0].text)

        assignment = top_level_assignment(tokens)

        for idx, tok in enumerate(tokens):
            if idx in invalidate_at:
                if not suppress_invalidation:
                    recv = invalidate_at[idx]
                    self.state.gens[recv] = \
                        self.state.gens.get(recv, 0) + 1
                continue
            if idx in fill_at:
                recv, var = fill_at[idx]
                self.state.bindings[var] = \
                    (recv, self.state.gens.get(recv, 0), tok.line)
                continue
            if tok.kind == "ident" and tok.text in self.span_vars and \
                    idx != decl_name_index:
                self._check_use(tok)

        self._check_escape(tokens, line, assignment)

    def _check_use(self, tok):
        binding = self.state.bindings.get(tok.text)
        if not binding:
            return
        source, gen, fill_line = binding
        current = self.state.gens.get(source, 0)
        if current > gen:
            key = (tok.line, tok.text, source)
            if key in self.reported:
                return
            self.reported.add(key)
            self.report(
                self.sm.path, tok.line, ID,
                "span '%s' (filled from '%s' at line %d) is read "
                "after a later nextBlock()/next()/reset() on '%s' "
                "invalidated it; copy the records or restructure the "
                "loop (src/trace/source.hpp lifetime rules)"
                % (tok.text, source, fill_line, source))

    def _check_escape(self, tokens, line, assignment):
        # return <bound span>; — only an escape when the function
        # hands out a REFERENCE/POINTER view. Returning a span by
        # value is the documented pass-through idiom (the caller
        # inherits the source-outlives-span obligation, e.g.
        # materializeTrace in src/trace/source.cpp).
        returns_indirect = any(
            t.text in ("&", "*") for t in self.fn.return_tokens)
        if tokens and tokens[0].text == "return" and len(tokens) == 2 \
                and tokens[1].kind == "ident" and returns_indirect:
            binding = self.state.bindings.get(tokens[1].text)
            if binding:
                key = (line, tokens[1].text, "return")
                if key not in self.reported:
                    self.reported.add(key)
                    self.report(
                        self.sm.path, line, ID,
                        "span '%s' borrowed from source '%s' is "
                        "returned: it escapes the scope that "
                        "guarantees the source outlives it"
                        % (tokens[1].text, binding[0]))
            return
        # member_ = <bound span>;  /  this->member = <bound span>;
        if assignment is None:
            return
        lhs, rhs = assignment
        if len(rhs) != 1 or rhs[0].kind != "ident":
            return
        binding = self.state.bindings.get(rhs[0].text)
        if not binding:
            return
        lhs_text = chain_text(lhs)
        target = lhs_text.split(".")[-1].split(">")[-1]
        is_member_store = lhs_text.startswith("this->") or (
            len(lhs) == 1 and lhs[0].text in self.member_names and
            lhs[0].text not in self.span_vars)
        if is_member_store:
            key = (line, rhs[0].text, "store")
            if key not in self.reported:
                self.reported.add(key)
                self.report(
                    self.sm.path, line, ID,
                    "span '%s' borrowed from source '%s' is stored "
                    "into member '%s': it escapes the scope that "
                    "guarantees the source outlives it"
                    % (rhs[0].text, binding[0], target))
