"""Receiver-type resolution shared by the checkers.

Name-only call resolution is what made the first iteration of these
checkers noisy: `out.flush()` on a std::ofstream is not
`FileHandle::flush()`, `jobsRun.load()` on a std::atomic is not
`ResultStore::load()`, and a local `corrupt` lambda is not the trace
subsystem's corrupt(). The cure is cheap nominal typing: know the
declared type of every member variable, parameter, and local, and
only match a member call to a modeled class when the receiver's type
word actually names that class. Anything unresolvable matches
NOTHING — a skipped call can only under-report, a misresolved one
invents findings.
"""

from .cppsem import find_calls
from .model import Block, Stmt

_QUALIFIERS = {"const", "static", "mutable", "constexpr", "inline",
               "volatile", "std", "vpsim", "io", "fleet", "trace",
               "sim"}


def type_word(type_text):
    """The class-ish head of a declared type: last identifier before
    any template argument list, qualifiers stripped. `std::atomic<bool>`
    -> "atomic", `const Mutex &` -> "Mutex"."""
    head = type_text.split("<")[0]
    for junk in ("::", "&", "*", "[", "]"):
        head = head.replace(junk, " ")
    parts = [p for p in head.split() if p not in _QUALIFIERS]
    return parts[-1] if parts else None


class TypeEnv:
    def __init__(self, model):
        self.model = model
        self.member_types = {}  # (class, var) -> type word
        self.global_types = {}  # var -> type word
        self.classes = set()    # classes the model actually defines
        for sm in model.files.values():
            for var in sm.member_vars:
                word = type_word(var.type_text)
                if word is None:
                    continue
                if var.class_name:
                    self.member_types[(var.class_name, var.name)] = \
                        word
                else:
                    self.global_types[var.name] = word
            for fn in sm.functions:
                if fn.class_name:
                    self.classes.add(fn.class_name)
            for var in sm.member_vars:
                if var.class_name:
                    self.classes.add(var.class_name)

    def locals_of(self, fn):
        """{name: type word | "?"} for parameters and body-declared
        locals of @p fn. "?" marks names that exist but whose type is
        unknown (auto, lambdas, structured bindings): they must still
        SHADOW outer names rather than resolve to them."""
        env = {}
        for type_text, name in fn.params:
            if name:
                env[name] = type_word(type_text) or "?"
        if fn.body is not None:
            _scan_locals(fn.body, self.classes, env)
        return env

    def receiver_class(self, fn, receiver, local_env):
        """The modeled class a member call on @p receiver dispatches
        to, or None when unresolvable (std types, chains, unknowns)."""
        if receiver is None:
            return None
        if receiver == "this":
            return fn.class_name
        if "." in receiver or "(" in receiver or "[" in receiver:
            return None  # chains: punt rather than guess
        word = local_env.get(receiver)
        if word is None and fn.class_name:
            word = self.member_types.get((fn.class_name, receiver))
        if word is None:
            word = self.global_types.get(receiver)
        if word in self.classes:
            return word
        return None


def _scan_locals(block, classes, env):
    for item in block.items:
        if isinstance(item, Block):
            if item.header:
                _scan_decl_tokens(item.header, classes, env)
            _scan_locals(item, classes, env)
            continue
        _scan_decl_tokens(item.tokens, classes, env)
        for sub in item.sub_blocks:
            _scan_locals(sub, classes, env)


def _scan_decl_tokens(tokens, classes, env):
    """Record `T name ...` and `auto name = ...` declarations. Only
    the Type-Name adjacency matters; initializers are not typed."""
    i = 0
    n = len(tokens)
    while i < n - 1:
        tok = tokens[i]
        if tok.kind != "ident":
            i += 1
            continue
        if tok.text == "auto":
            j = i + 1
            while j < n and tokens[j].text in ("&", "*", "const"):
                j += 1
            if j < n and tokens[j].kind == "ident":
                env[tokens[j].text] = "?"
                i = j + 1
                continue
        if tok.text in classes or tok.text == "const":
            base = tok.text
            j = i + 1
            while j < n and tokens[j].text in ("&", "*", "const"):
                j += 1
            if base != "const" and j < n and \
                    tokens[j].kind == "ident" and j + 1 < n and \
                    tokens[j + 1].text in ("=", "(", "{", ";", ","):
                env[tokens[j].text] = base
                i = j + 1
                continue
        i += 1


def lambda_locals(fn):
    """Names bound to lambdas in @p fn's body (`auto f = [...]...`):
    calls through them must never resolve to a same-named free
    function elsewhere in the model."""
    names = set()
    if fn.body is None:
        return names
    _scan_lambda_names(fn.body, names)
    return names


def _scan_lambda_names(block, names):
    for item in block.items:
        if isinstance(item, Block):
            _scan_lambda_names(item, names)
            continue
        texts = [t.text for t in item.tokens]
        for k in range(len(texts) - 3):
            if texts[k] in ("auto", "const") and k + 2 < len(texts) \
                    and texts[k + 2] == "=" and \
                    item.tokens[k + 1].kind == "ident":
                rest = texts[k + 3:k + 5]
                if rest[:1] == ["["]:
                    names.add(texts[k + 1])
        for sub in item.sub_blocks:
            _scan_lambda_names(sub, names)


# find_calls imported for checkers that pair resolution with call
# extraction; re-exported to keep their import surface small.
__all__ = ["TypeEnv", "type_word", "lambda_locals", "find_calls"]
