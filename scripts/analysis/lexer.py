"""C++ lexer for the internal analysis frontend.

Produces a flat token stream with line numbers. Comments are dropped;
string and character literals (including raw strings, which the
token-level linter's stripper famously mishandles) become single
placeholder tokens so statement structure survives but nothing inside
a literal can ever match an identifier pattern.

Preprocessor directives are dropped wholesale: the internal frontend
analyzes one configuration (the one the tree builds), and conditional
blocks it cannot evaluate would only desynchronize the brace
structure. `#include` / `#define` lines carry no statement-level
semantics the checkers consume.
"""

from collections import namedtuple

Token = namedtuple("Token", ["kind", "text", "line"])

# Kinds: "ident" (identifiers & keywords), "num", "str", "char",
# "punct".

# Multi-character operators the parser cares about, longest first.
_PUNCT3 = ("<<=", ">>=", "...", "->*")
_PUNCT2 = ("::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
           "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--")

_IDENT_START = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_IDENT_CONT = _IDENT_START | set("0123456789")


def _scan_raw_string(text, i, n):
    """i points at the opening quote of R"delim( ... )delim"."""
    j = i + 1
    while j < n and text[j] != "(":
        j += 1
    delim = text[i + 1:j]
    close = ")" + delim + '"'
    end = text.find(close, j + 1)
    if end < 0:
        return n
    return end + len(close)


def tokenize(text):
    """The token stream of @p text; see the module docstring."""
    tokens = []
    i = 0
    n = len(text)
    line = 1
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        nxt = text[i + 1] if i + 1 < n else ""
        # Comments.
        if ch == "/" and nxt == "/":
            j = text.find("\n", i)
            i = n if j < 0 else j
            continue
        if ch == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            if j < 0:
                break
            line += text.count("\n", i, j + 2)
            i = j + 2
            continue
        # Preprocessor directive: drop through the (continued) line.
        if ch == "#" and (not tokens or tokens[-1].line != line):
            while i < n:
                j = text.find("\n", i)
                if j < 0:
                    i = n
                    break
                if text[j - 1] == "\\" and j >= 1:
                    line += 1
                    i = j + 1
                    continue
                i = j  # leave the newline for the main loop
                break
            continue
        # Raw strings: R"( ... )" with optional delimiter, and the
        # encoding-prefixed forms (u8R, LR, ...).
        if ch in "RuUL" and tokens is not None:
            m = _match_string_prefix(text, i, n)
            if m is not None:
                start, is_raw = m
                if is_raw:
                    end = _scan_raw_string(text, start, n)
                else:
                    end = _scan_quoted(text, start, n, text[start])
                line += text.count("\n", i, end)
                tokens.append(Token("str", '""', line))
                i = end
                continue
        if ch == '"':
            end = _scan_quoted(text, i, n, '"')
            line += text.count("\n", i, end)
            tokens.append(Token("str", '""', line))
            i = end
            continue
        if ch == "'":
            # Digit separators (1'000'000) only occur mid-number and
            # numbers are consumed greedily below, so a bare ' here
            # starts a character literal.
            end = _scan_quoted(text, i, n, "'")
            tokens.append(Token("char", "''", line))
            i = end
            continue
        if ch in _IDENT_START:
            j = i + 1
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            tokens.append(Token("ident", text[i:j], line))
            i = j
            continue
        if ch.isdigit() or (ch == "." and nxt.isdigit()):
            j = i + 1
            while j < n and (text[j] in _IDENT_CONT or text[j] in ".'"
                             or (text[j] in "+-" and
                                 text[j - 1] in "eEpP")):
                j += 1
            tokens.append(Token("num", text[i:j], line))
            i = j
            continue
        three = text[i:i + 3]
        if three in _PUNCT3:
            tokens.append(Token("punct", three, line))
            i += 3
            continue
        two = text[i:i + 2]
        if two in _PUNCT2:
            tokens.append(Token("punct", two, line))
            i += 2
            continue
        tokens.append(Token("punct", ch, line))
        i += 1
    return tokens


def _match_string_prefix(text, i, n):
    """If a string literal (with encoding/raw prefix) starts at @p i,
    return (index of its opening quote, is_raw); else None."""
    j = i
    if text[j] == "u" and j + 1 < n and text[j + 1] == "8":
        j += 2
    elif text[j] in "uUL":
        j += 1
    is_raw = j < n and text[j] == "R"
    if is_raw:
        j += 1
    if j == i and not is_raw:
        return None
    if j < n and text[j] == '"':
        return (j, is_raw)
    return None


def _scan_quoted(text, i, n, quote):
    """i points at the opening quote; returns index past the close."""
    j = i + 1
    while j < n:
        ch = text[j]
        if ch == "\\":
            j += 2
            continue
        if ch == quote:
            return j + 1
        if ch == "\n" and quote == "'":
            return j  # unterminated char literal; resynchronize
        j += 1
    return n
