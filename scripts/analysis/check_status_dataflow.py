"""status-dataflow: Status values must be consulted and wrapped.

Three contracts from src/common/status.hpp:

  1. A Status produced by a call must be consulted (isOk()/code()/
     message()/returned/passed on) before it dies — a dropped Status is
     a swallowed failure. `[[nodiscard]]` catches the bare-call case at
     compile time; this checker also catches the store-then-ignore
     case the compiler cannot see:  `Status s = load(...);` with no
     later read of `s`.
  2. A stored Status must not be overwritten before it was read:
     `s = stepA(); s = stepB();` silently forgets stepA's failure.
  3. A Status that crosses a subsystem boundary (the callee's home
     subsystem differs from this file's) should be re-raised with
     Status::wrap(...) so the receiving layer adds its own context;
     returning it verbatim loses the call-site provenance the cause
     chain exists to preserve. Statuses minted by src/common are
     exempt (common is the vocabulary, not an origin).

The checker is deliberately optimistic at joins (a read on either
branch counts as a read) so it under-reports rather than nags.
"""

from .model import Block, Stmt
from .cppsem import find_calls, local_decl, top_level_assignment, \
    _match_paren
from .typeenv import TypeEnv, lambda_locals

ID = "status-dataflow"

_FACTORIES = {"ok", "error", "wrap"}
_CONTROL = {"if", "while", "for", "switch", "return", "case",
            "sizeof", "catch", "new", "delete", "do", "else"}


class _Var:
    __slots__ = ("state", "line", "origin", "wrapped")

    def __init__(self, state, line, origin=None):
        self.state = state        # "unread" | "read" | "benign"
        self.line = line
        self.origin = origin      # producing subsystem, or None
        self.wrapped = False

    def copy(self):
        v = _Var(self.state, self.line, self.origin)
        v.wrapped = self.wrapped
        return v


def run(model, report):
    strict = _strict_status_names(model)
    origin_of = _origin_map(model, strict)
    env = TypeEnv(model)
    members = model.status_members_by_class()
    member_origin = _member_origin_map(model)
    for sm in model.files.values():
        subsystem = model.subsystem_of(sm.path)
        for fn in sm.functions:
            if fn.body is None:
                continue
            _Checker(sm, fn, subsystem, strict, origin_of, env,
                     members, member_origin, report).check()


def _strict_status_names(model):
    """Names where EVERY function of that name in the model returns
    Status by value — a call to such a name definitely yields a
    Status, so flagging it can't misfire on an unrelated overload."""
    status, other = set(), set()
    for fn in model.all_functions():
        if fn.returns_status_by_value():
            status.add(fn.name)
        else:
            other.add(fn.name)
    return status - other - _FACTORIES


def _origin_map(model, strict):
    """name -> home subsystem, for strict Status producers defined (or
    declared) in exactly one subsystem."""
    homes = {}
    for fn in model.all_functions():
        if fn.name in strict:
            homes.setdefault(fn.name, set()).add(
                model.subsystem_of(fn.file))
    return {name: subs.pop() for name, subs in homes.items()
            if len(subs) == 1}


def _member_origin_map(model):
    """(class, member) -> home subsystem for Status-returning member
    functions."""
    out = {}
    for fn in model.all_functions():
        if fn.class_name and fn.returns_status_by_value():
            out[(fn.class_name, fn.name)] = \
                model.subsystem_of(fn.file)
    return out


class _Checker:
    def __init__(self, sm, fn, subsystem, strict, origin_of, env,
                 members, member_origin, report):
        self.sm = sm
        self.fn = fn
        self.subsystem = subsystem
        self.strict = strict
        self.origin_of = origin_of
        self.env = env
        self.members = members
        self.member_origin = member_origin
        self.report = report
        self.local_env = env.locals_of(fn)
        self.shadowed = lambda_locals(fn) | set(self.local_env)
        self.vars = {}
        self.reported = set()
        self.returns_status = fn.returns_status_by_value()

    def _status_call_origin(self, call):
        """(is_status_call, origin_subsystem|None). Receiver-typed:
        a member call only counts when the receiver resolves to a
        modeled class that declares a Status-returning member of that
        name; a free call only when the name is unambiguous model-wide
        AND not shadowed by a local or lambda in this function."""
        if call.qualifier.endswith("Status::") and \
                call.name in _FACTORIES:
            return False, None
        if call.receiver is None:
            if not call.qualifier and call.name in self.shadowed:
                return False, None
            if call.name in self.strict:
                return True, self.origin_of.get(call.name)
            # Unqualified same-class member call.
            if self.fn.class_name and call.name in self.members.get(
                    self.fn.class_name, ()):
                return True, self.member_origin.get(
                    (self.fn.class_name, call.name))
            return False, None
        cls = self.env.receiver_class(self.fn, call.receiver,
                                      self.local_env)
        if cls is not None and call.name in self.members.get(cls, ()):
            return True, self.member_origin.get((cls, call.name))
        return False, None

    def check(self):
        self._walk_items(self.fn.body.items)
        for name, var in sorted(self.vars.items()):
            if var.state == "unread":
                self._emit(
                    var.line, "discard",
                    "Status stored in '%s' at line %d is never "
                    "consulted: the failure it may carry is silently "
                    "dropped (check isOk()/code() or propagate it)"
                    % (name, var.line))

    # ---- structure ---------------------------------------------------

    def _walk_items(self, items):
        for item in items:
            if isinstance(item, Stmt):
                self._do_stmt(item)
            elif isinstance(item, Block):
                self._do_block(item)

    def _do_block(self, block):
        kind = block.kind
        if kind in ("while", "for", "dowhile"):
            for _ in range(2):
                self._do_tokens(block.header, block.line)
                self._walk_items(block.items)
            return
        if kind in ("if", "else", "case", "lambda"):
            if block.header:
                self._do_tokens(block.header, block.line)
            before = {k: v.copy() for k, v in self.vars.items()}
            self._walk_items(block.items)
            self._merge(before)
            return
        if kind == "switch":
            self._do_tokens(block.header, block.line)
            before = {k: v.copy() for k, v in self.vars.items()}
            for item in block.items:
                saved = self.vars
                self.vars = {k: v.copy() for k, v in before.items()}
                if isinstance(item, Block):
                    self._walk_items(item.items)
                else:
                    self._do_stmt(item)
                branch = self.vars
                self.vars = saved
                self._merge_from(branch)
            return
        self._walk_items(block.items)

    def _merge(self, before):
        # Optimistic join: self.vars already reflects the branch
        # applied on top of `before`, and a read or wrap on the taken
        # branch is allowed to stand for the untaken one — that
        # under-reports instead of flagging guarded handling.
        del before

    def _merge_from(self, branch):
        for name, var in branch.items():
            cur = self.vars.get(name)
            if cur is None:
                self.vars[name] = var
            elif var.state == "read" and cur.state == "unread":
                cur.state = "read"
            elif var.wrapped:
                cur.wrapped = True

    def _do_stmt(self, stmt):
        self._do_tokens(stmt.tokens, stmt.line)
        for sub in stmt.sub_blocks:
            self._do_block(sub)

    # ---- the abstract step ------------------------------------------

    def _do_tokens(self, tokens, line):
        if not tokens:
            return
        texts = [t.text for t in tokens]

        decl = self._declaration(tokens, texts, line)
        assignment = None if decl else top_level_assignment(tokens)
        skip = set()
        if decl:
            skip.add(decl)          # the declared name's index
        lhs_index = -1
        if assignment:
            lhs, _rhs = assignment
            if len(lhs) == 1 and lhs[0].kind == "ident":
                lhs_index = texts.index("=") - 1
                if lhs[0].text in self.vars:
                    self._assign(lhs[0].text, tokens, texts,
                                 texts.index("=") + 1, line)
                    skip.add(lhs_index)

        wrap_args = self._wrap_arg_names(tokens, texts)

        for idx, tok in enumerate(tokens):
            if idx in skip or tok.kind != "ident":
                continue
            var = self.vars.get(tok.text)
            if var is None:
                continue
            if var.state == "unread":
                var.state = "read"
            if tok.text in wrap_args:
                var.wrapped = True

        self._check_bare_discard(tokens, texts, line)
        self._check_return(tokens, texts, line)

    def _declaration(self, tokens, texts, line):
        """Track `Status s = ...` / `auto s = statusCall(...)`; returns
        the declared name's token index or None."""
        decl = local_decl(tokens, {"Status"})
        if decl is not None:
            _type, name, init, name_index = decl
            self._track(name, init or [], line)
            return name_index
        if len(texts) > 3 and texts[0] == "auto" and \
                tokens[1].kind == "ident" and texts[2] == "=":
            rhs = tokens[3:]
            if any(self._status_call_origin(c)[0] or
                   (c.qualifier.endswith("Status::") and
                    c.name in _FACTORIES)
                   for c in find_calls(rhs)):
                self._track(tokens[1].text, rhs, line)
                return 1
        return None

    def _track(self, name, init, line):
        origin = None
        producing = False
        for call in find_calls(init):
            is_status, call_origin = self._status_call_origin(call)
            if is_status:
                producing = True
                if call_origin is not None:
                    origin = call_origin
        if producing:
            self.vars[name] = _Var("unread", line, origin)
        else:
            self.vars[name] = _Var("benign", line)

    def _assign(self, name, tokens, texts, rhs_start, line):
        var = self.vars[name]
        if var.state == "unread":
            self._emit(
                line, "overwrite",
                "Status in '%s' is overwritten before the value "
                "assigned at line %d was read: that failure is "
                "silently forgotten" % (name, var.line))
        rhs = tokens[rhs_start:]
        self._track(name, rhs, line)

    def _wrap_arg_names(self, tokens, texts):
        """Identifiers passed as the cause argument of
        Status::wrap(code, msg, cause)."""
        names = set()
        for call in find_calls(tokens):
            if call.name == "wrap" and \
                    call.qualifier.endswith("Status::") and call.args:
                for tok in call.args[-1]:
                    if tok.kind == "ident":
                        names.add(tok.text)
        return names

    def _check_bare_discard(self, tokens, texts, line):
        """`statusCall(...);` as a whole expression statement."""
        if texts[0] in _CONTROL or "=" in texts:
            return
        if texts[-1] != ")":
            return
        for call in find_calls(tokens):
            if not self._status_call_origin(call)[0]:
                continue
            close = _match_paren(tokens, call.name_index + 1,
                                 len(tokens))
            if close == len(tokens) - 1 and call.name_index <= 4 and \
                    "void" not in texts[:call.name_index]:
                self._emit(
                    line, "bare-discard",
                    "result of Status-returning call '%s(...)' is "
                    "discarded; handle it or document the discard "
                    "with (void) and a justification" % call.name)
            return

    def _check_return(self, tokens, texts, line):
        if texts[0] != "return" or not self.returns_status:
            return
        # return s;  — s produced by a foreign subsystem, unwrapped.
        if len(tokens) == 2 and tokens[1].kind == "ident":
            var = self.vars.get(tokens[1].text)
            if var and var.origin and not var.wrapped and \
                    var.origin not in (self.subsystem, "common"):
                self._emit(
                    line, "unwrapped",
                    "Status '%s' originating in subsystem '%s' is "
                    "returned verbatim from subsystem '%s'; wrap it "
                    "(Status::wrap) so this layer's context joins "
                    "the cause chain" % (tokens[1].text, var.origin,
                                         self.subsystem))
            return
        # return foreignCall(...);  — direct unwrapped propagation.
        calls = find_calls(tokens)
        if len(calls) == 1 and calls[0].name_index <= 3 and \
                texts[-1] == ")":
            is_status, origin = self._status_call_origin(calls[0])
            if is_status and origin and \
                    origin not in (self.subsystem, "common"):
                self._emit(
                    line, "unwrapped",
                    "Status from '%s' (subsystem '%s') is returned "
                    "verbatim from subsystem '%s'; wrap it "
                    "(Status::wrap) so this layer's context joins "
                    "the cause chain" % (calls[0].name, origin,
                                         self.subsystem))

    def _emit(self, line, kind, message):
        key = (line, kind)
        if key in self.reported:
            return
        self.reported.add(key)
        self.report(self.sm.path, line, ID, message)
