"""taxonomy: exit-code constants, StatusCode, and the classification
switches must agree.

The fleet protocol has three artifacts that must stay in lockstep:

  - the StatusCode enum (src/common/status.hpp);
  - the WorkerExitCode constants the worker process exits with
    (src/fleet/worker_handle.hpp);
  - the supervisor's classification switch classifyExit() and the
    worker-side encoder exitCodeForStatus().

A drift between them is invisible to the compiler (both directions
are plain ints at the process boundary) and shows up as a sweep that
"retries" corrupt cells forever or quarantines transient I/O. The
checks:

  1. every non-zero WorkerExitCode value lies in [40, 125] — below 40
     collides with shell/errno conventions, above 125 with the
     128+signal and 126/127 shell encodings; values must be unique;
  2. round-trip: classifyExit(exitCodeForStatus(c)) == c for every
     StatusCode c, except codes deliberately folded into the
     kInternal sink;
  3. every value exitCodeForStatus can return is a declared
     WorkerExitCode enumerator (no magic exit integers), and every
     case label in classifyExit is a declared enumerator value;
  4. every WorkerExitCode enumerator is classified by an explicit
     classifyExit case (default-sink is for unknown codes, not for
     forgetting a declared one);
  5. exit()/_exit() calls in fleet code must pass a declared
     enumerator, not an integer literal (the 128+signal convention is
     recognized and exempt).

The checker keys off the names StatusCode / WorkerExitCode /
classifyExit / exitCodeForStatus; a model containing none of them
(most single files) produces no findings.
"""

from .model import Block, Stmt

ID = "taxonomy"

EXIT_RANGE = (40, 125)
SINK = "kInternal"


def run(model, report):
    status_enum = _find_enum(model, "StatusCode")
    exit_enum = _find_enum(model, "WorkerExitCode")
    if exit_enum is None:
        return  # no taxonomy in this model

    exit_values = exit_enum.values()       # name -> int
    _check_ranges(exit_enum, exit_values, report)

    classify = _find_fn(model, "classifyExit")
    encode = _find_fn(model, "exitCodeForStatus")

    classify_map = classify_default = None
    if classify is not None:
        classify_map, classify_default = _switch_map(
            classify.fn, exit_values,
            status_enum.values() if status_enum else {})
    encode_map = encode_default = None
    if encode is not None:
        encode_map, encode_default = _switch_map(
            encode.fn, status_enum.values() if status_enum else {},
            exit_values)

    if status_enum is not None and classify is not None and \
            encode is not None:
        _check_round_trip(status_enum, exit_values,
                          classify, classify_map, classify_default,
                          encode, encode_map, encode_default, report)
    if classify is not None:
        _check_classify_covers(exit_enum, exit_values, classify,
                               classify_map, report)
    _check_exit_literals(model, exit_values, report)


class _Found:
    __slots__ = ("fn", "file")

    def __init__(self, fn, file):
        self.fn = fn
        self.file = file


def _find_enum(model, name):
    for en in model.all_enums():
        if en.name == name:
            return en
    return None


def _find_fn(model, name):
    for sm in model.files.values():
        for fn in sm.functions:
            if fn.name == name and fn.body is not None:
                return _Found(fn, sm.path)
    return None


def _check_ranges(exit_enum, exit_values, report):
    lo, hi = EXIT_RANGE
    seen = {}
    for name, value, line in _resolved(exit_enum):
        if value != 0 and not lo <= value <= hi:
            report(exit_enum.file, line, ID,
                   "exit code %s = %d is outside the reserved fleet "
                   "range [%d, %d] (0 is success; below %d collides "
                   "with errno-style codes, above %d with shell/"
                   "signal encodings)" % (name, value, lo, hi, lo, hi))
        if value in seen:
            report(exit_enum.file, line, ID,
                   "exit code %s = %d duplicates %s: the supervisor "
                   "cannot distinguish the two failure classes"
                   % (name, value, seen[value]))
        else:
            seen[value] = name
    return seen


def _resolved(enum):
    out = []
    nxt = 0
    for name, value, line in enum.enumerators:
        if value is None:
            value = nxt
        out.append((name, value, line))
        nxt = value + 1
    return out


def _switch_map(fn, label_values, result_values):
    """(label -> (result, line), default_result) from the first switch
    in @p fn's body. Labels and results are canonicalized to ints via
    the given enum value maps when possible, else kept as the
    enumerator name."""
    switch = _first_switch(fn.body)
    if switch is None:
        return {}, None
    mapping = {}
    default = None
    pending = []
    for item in switch.items:
        if not isinstance(item, Block) or item.kind != "case":
            continue
        header = [t.text for t in item.header]
        if header and header[0] == "default":
            label = "default"
        else:
            label = _canon(header[1:], label_values)
        pending.append((label, item.line))
        result = _case_result(item, result_values)
        if result is None:
            continue  # fallthrough: next case's result applies
        for lab, line in pending:
            if lab == "default":
                default = result
            elif lab is not None:
                mapping[lab] = (result, line)
        pending = []
    return mapping, default


def _first_switch(block):
    for item in block.items:
        if isinstance(item, Block):
            if item.kind == "switch":
                return item
            found = _first_switch(item)
            if found is not None:
                return found
        elif isinstance(item, Stmt):
            for sub in item.sub_blocks:
                found = _first_switch(sub)
                if found is not None:
                    return found
    return None


def _case_result(case_block, result_values):
    for item in case_block.items:
        if isinstance(item, Stmt):
            texts = [t.text for t in item.tokens]
            if texts[:1] == ["return"]:
                return _canon(texts[1:], result_values)
    return None


def _canon(texts, values):
    """Value of a case label / return expression: an enum-resolved
    int, a literal int, or the raw identifier when unresolvable."""
    texts = [t for t in texts
             if t not in ("(", ")", "::", "static_cast", "<", ">",
                          "int")]
    if not texts:
        return None
    last = texts[-1]
    if last in values:
        return values[last]
    try:
        return int(last, 0)
    except ValueError:
        return last  # unresolved identifier, e.g. a macro


def _check_round_trip(status_enum, exit_values,
                      classify, classify_map, classify_default,
                      encode, encode_map, encode_default, report):
    status_values = status_enum.values()
    sink = status_values.get(SINK)
    known_exit = set(exit_values.values())
    for name, value, _line in _resolved(status_enum):
        enc = encode_map.get(value)
        if enc is None:
            if encode_default is None:
                report(encode.file, encode.fn.line, ID,
                       "exitCodeForStatus() has no case (and no "
                       "default) for StatusCode::%s: workers failing "
                       "with it exit with garbage" % name)
                continue
            code, enc_line = encode_default, encode.fn.line
        else:
            code, enc_line = enc
        if isinstance(code, int) and code not in known_exit:
            report(encode.file, enc_line, ID,
                   "exitCodeForStatus() returns %d for "
                   "StatusCode::%s, which is not a declared "
                   "WorkerExitCode enumerator" % (code, name))
            continue
        if not isinstance(code, int):
            continue  # unresolved (macro) — cannot follow further
        back = classify_map.get(code)
        if back is None:
            back_value = classify_default
            back_line = classify.fn.line
        else:
            back_value, back_line = back
        if back_value is None:
            report(classify.file, classify.fn.line, ID,
                   "classifyExit() cannot classify exit code %d "
                   "produced for StatusCode::%s (no case, no "
                   "default)" % (code, name))
            continue
        if back_value not in (value, sink):
            got = _status_name(status_values, back_value)
            report(encode.file, enc_line, ID,
                   "round-trip broken: StatusCode::%s encodes to "
                   "exit code %d but classifyExit(%d) yields %s — "
                   "the supervisor will mis-triage this failure "
                   "class" % (name, code, code, got))


def _status_name(status_values, value):
    for name, v in status_values.items():
        if v == value:
            return "StatusCode::" + name
    return repr(value)


def _check_classify_covers(exit_enum, exit_values, classify,
                           classify_map, report):
    for name, value, line in _resolved(exit_enum):
        if value not in classify_map:
            report(classify.file, classify.fn.line, ID,
                   "classifyExit() has no explicit case for declared "
                   "exit code %s (= %d): it falls into the "
                   "unknown-code default and loses its failure class"
                   % (name, value))
    for label in classify_map:
        if isinstance(label, int) and \
                label not in set(exit_values.values()):
            result, line = classify_map[label]
            report(classify.file, line, ID,
                   "classifyExit() handles exit code %d, which no "
                   "WorkerExitCode enumerator declares: magic "
                   "constant drift" % label)


def _check_exit_literals(model, exit_values, report):
    known = set(exit_values.values()) | {0}
    for sm in model.files.values():
        if "/fleet/" not in "/" + sm.path:
            continue
        for fn in sm.functions:
            if fn.body is None:
                continue
            _scan_exit_calls(sm, fn.body, known, report)


def _scan_exit_calls(sm, block, known, report):
    from .cppsem import find_calls
    for item in block.items:
        if isinstance(item, Block):
            _scan_exit_calls(sm, item, known, report)
            continue
        for sub in item.sub_blocks:
            _scan_exit_calls(sm, sub, known, report)
        for call in find_calls(item.tokens):
            if call.name not in ("exit", "_exit", "quick_exit"):
                continue
            if len(call.args) != 1 or len(call.args[0]) != 1:
                continue  # 128 + sig convention and expressions
            tok = call.args[0][0]
            if tok.kind != "num":
                continue
            try:
                value = int(tok.text, 0)
            except ValueError:
                continue
            if value not in known:
                report(sm.path, tok.line, ID,
                       "%s(%d) in fleet code: exit codes must be "
                       "declared WorkerExitCode enumerators, not "
                       "magic integers" % (call.name, value))
