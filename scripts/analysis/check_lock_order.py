"""lock-order: global acquisition-order graph and EXCLUDES violations.

Builds one directed graph over canonical lock identities from two
evidence sources:

  - observed nesting: a `MutexLock lock(B);` executed while A is held
    (same function, RAII scope tracking) adds edge A -> B;
  - call propagation: calling f() while holding A adds A -> B for
    every lock B that f (or anything f transitively calls) acquires.
    Callees are resolved nominally — a member call binds only when
    the receiver's declared type names the candidate's class, so
    `allDone.wait(...)` on a condition variable never aliases
    `ThreadPool::wait()`. ACQUIRE() annotations count as direct
    acquisitions.

Findings:

  - a cycle in the graph (Tarjan SCC of size > 1, or a self-edge):
    two threads taking the locks in opposite orders can deadlock;
  - acquiring a lock already held on the same path: self-deadlock,
    vpsim::Mutex is non-recursive;
  - calling a function annotated EXCLUDES(M) while M is held: the
    annotation is the author's statement that the callee takes M (or
    sleeps on it) — honoring it only when clang's -Wthread-safety
    happens to be on would make g++ builds silently weaker.

Lock identity: `Class::member` when the expression resolves to a
Mutex member (via the enclosing class, else a unique owning class),
`file::name` for file-scope mutexes, else the normalized expression
text. Unresolvable or ambiguous expressions stay textual — distinct
nodes can only split a real cycle into silence, never invent one.
"""

from .model import Block, Stmt, normalize_lock_expr
from .cppsem import find_calls, local_decl, chain_text
from .typeenv import TypeEnv, lambda_locals

ID = "lock-order"


def run(model, report):
    ctx = _Context(model)
    summaries = []
    for sm in model.files.values():
        for fn in sm.functions:
            if fn.body is None:
                continue
            summaries.append(_scan_function(ctx, sm, fn))

    _propagate(ctx, summaries)
    _emit_site_findings(ctx, summaries, report)
    _emit_cycles(ctx, summaries, report)


class _Context:
    def __init__(self, model):
        self.model = model
        self.env = TypeEnv(model)
        # member name -> set of classes declaring a Mutex of that name
        self.mutex_owners = {}
        # name -> file, for file-scope/global mutexes
        self.global_mutexes = {}
        for sm in model.files.values():
            for var in sm.member_vars:
                if not _is_mutex_type(var.type_text):
                    continue
                if var.class_name:
                    self.mutex_owners.setdefault(
                        var.name, set()).add(var.class_name)
                else:
                    self.global_mutexes[var.name] = var.file
        # Definitions only (propagation bodies)...
        self.defs_by_name = model.functions_by_name()
        # ...and everything including bodyless declarations, which is
        # where EXCLUDES/REQUIRES annotations live.
        self.all_by_name = {}
        for fn in model.all_functions():
            self.all_by_name.setdefault(fn.name, []).append(fn)

    def lock_key(self, expr, fn):
        expr = normalize_lock_expr(expr)
        if not expr:
            return None
        last = expr
        for sep in ("->", ".", "::"):
            if sep in last:
                last = last.rsplit(sep, 1)[1]
        simple = expr == last
        owners = self.mutex_owners.get(last, set())
        if simple and fn.class_name and fn.class_name in owners:
            return "%s::%s" % (fn.class_name, last)
        if len(owners) == 1:
            return "%s::%s" % (next(iter(owners)), last)
        if simple and last in self.global_mutexes:
            return "%s::%s" % (self.global_mutexes[last], last)
        if simple:
            # Unknown bare name: qualify by class/file so unrelated
            # `mutex` spellings never alias.
            scope = fn.class_name or fn.file
            return "%s::%s" % (scope, expr)
        return expr

    def resolve_def(self, summary, call):
        """The unique function DEFINITION a call dispatches to, under
        nominal receiver typing; None when ambiguous/unresolvable."""
        candidates = self.defs_by_name.get(call.name, [])
        return self._filter(summary, call, candidates)

    def resolve_annotated(self, summary, call):
        """All declarations/definitions the call can dispatch to —
        used for annotation lookup (annotations sit on header
        declarations, which have no body)."""
        candidates = self.all_by_name.get(call.name, [])
        fn = summary.fn
        if call.receiver is None:
            if call.name in summary.shadowed:
                return []
            return [c for c in candidates
                    if c.class_name is None or
                    c.class_name == fn.class_name]
        cls = self.env.receiver_class(fn, call.receiver,
                                      summary.local_env)
        if cls is None:
            return []
        return [c for c in candidates if c.class_name == cls]

    def _filter(self, summary, call, candidates):
        fn = summary.fn
        if call.receiver is None:
            if call.name in summary.shadowed:
                return None
            cands = [c for c in candidates
                     if c.class_name is None or
                     c.class_name == fn.class_name]
        else:
            cls = self.env.receiver_class(fn, call.receiver,
                                          summary.local_env)
            if cls is None:
                return None
            cands = [c for c in candidates if c.class_name == cls]
        return cands[0] if len(cands) == 1 else None


class _Summary:
    __slots__ = ("fn", "local_env", "shadowed", "direct", "effective",
                 "edges", "call_sites", "violations")

    def __init__(self, ctx, fn):
        self.fn = fn
        self.local_env = ctx.env.locals_of(fn)
        self.shadowed = lambda_locals(fn)
        self.direct = set()     # lock keys acquired in the body
        self.effective = set()  # direct + transitive (fixpoint)
        self.edges = []         # (held_key, acquired_key, file, line)
        self.call_sites = []    # (Call, frozenset(held), file, line)
        self.violations = []    # (file, line, message)


def _is_mutex_type(type_text):
    words = type_text.replace("::", " ").split()
    return "Mutex" in words


def _scan_function(ctx, sm, fn):
    summary = _Summary(ctx, fn)
    for expr in fn.annotations.get("acquire", []):
        key = ctx.lock_key(expr, fn)
        if key:
            summary.direct.add(key)
    held0 = set()
    for expr in fn.annotations.get("requires", []):
        key = ctx.lock_key(expr, fn)
        if key:
            held0.add(key)
    _walk(ctx, sm, fn, fn.body.items, set(held0), summary)
    return summary


def _walk(ctx, sm, fn, items, held, summary):
    """Interpret @p items with RAII scoping: locks taken here are held
    for the remainder of THIS item list; nested blocks get a copy."""
    for item in items:
        if isinstance(item, Stmt):
            _do_tokens(ctx, sm, fn, item.tokens, item.line, held,
                       summary)
            for sub in item.sub_blocks:
                # Lambda bodies run later, usually on another thread:
                # they do not inherit this scope's held locks.
                inherited = set() if sub.kind == "lambda" \
                    else set(held)
                _walk(ctx, sm, fn, sub.items, inherited, summary)
        elif isinstance(item, Block):
            if item.header:
                _do_tokens(ctx, sm, fn, item.header, item.line, held,
                           summary)
            _walk(ctx, sm, fn, item.items, set(held), summary)


def _do_tokens(ctx, sm, fn, tokens, line, held, summary):
    decl = local_decl(tokens, {"MutexLock"})
    if decl is not None:
        _type, _name, init, _idx = decl
        expr = chain_text(init or [])
        key = ctx.lock_key(expr, fn)
        if key:
            if key in held:
                summary.violations.append(
                    (sm.path, line,
                     "lock '%s' acquired while already held on this "
                     "path: vpsim::Mutex is non-recursive, this "
                     "self-deadlocks" % key))
            else:
                for prior in sorted(held):
                    summary.edges.append((prior, key, sm.path, line))
                summary.direct.add(key)
                held.add(key)
        return

    for call in find_calls(tokens):
        if call.name == "MutexLock":
            continue
        summary.call_sites.append(
            (call, frozenset(held), sm.path, line))


def _propagate(ctx, summaries):
    """effective = direct ∪ (callees' effective), to fixpoint."""
    by_fn = {id(s.fn): s for s in summaries}
    for s in summaries:
        s.effective = set(s.direct)
    changed = True
    while changed:
        changed = False
        for s in summaries:
            for call, _held, _file, _line in s.call_sites:
                callee = ctx.resolve_def(s, call)
                if callee is None:
                    continue
                cs = by_fn.get(id(callee))
                if cs and not cs.effective <= s.effective:
                    s.effective |= cs.effective
                    changed = True


def _emit_site_findings(ctx, summaries, report):
    by_fn = {id(s.fn): s for s in summaries}
    for s in summaries:
        for file, line, message in s.violations:
            report(file, line, ID, message)
        for call, held, file, line in s.call_sites:
            if not held:
                continue
            for callee in ctx.resolve_annotated(s, call):
                for expr in callee.annotations.get("excludes", []):
                    key = ctx.lock_key(expr, callee)
                    if key in held:
                        report(
                            file, line, ID,
                            "'%s()' is annotated EXCLUDES(%s) but is "
                            "called while '%s' is held: the callee "
                            "(re)acquires that mutex" %
                            (call.name, expr, key))
            callee = ctx.resolve_def(s, call)
            if callee is not None:
                cs = by_fn.get(id(callee))
                if cs is None:
                    continue
                required = {ctx.lock_key(e, callee) for e in
                            callee.annotations.get("requires", [])}
                for key in sorted(cs.effective & held):
                    if key in required:
                        continue  # callee expects it held, no re-take
                    report(
                        file, line, ID,
                        "calling '%s()' while holding '%s', which it "
                        "acquires (possibly transitively): "
                        "self-deadlock on a non-recursive Mutex" %
                        (call.name, key))


def _collect_edges(ctx, summaries):
    edges = {}
    for s in summaries:
        for a, b, file, line in s.edges:
            edges.setdefault((a, b), (file, line))
    by_fn = {id(s.fn): s for s in summaries}
    for s in summaries:
        for call, held, file, line in s.call_sites:
            if not held:
                continue
            callee = ctx.resolve_def(s, call)
            if callee is None:
                continue
            cs = by_fn.get(id(callee))
            if cs is None:
                continue
            for b in cs.effective:
                for a in held:
                    if a != b:
                        edges.setdefault((a, b), (file, line))
    return edges


def _emit_cycles(ctx, summaries, report):
    edges = _collect_edges(ctx, summaries)
    graph = {}
    for (a, b), _site in edges.items():
        graph.setdefault(a, set()).add(b)
        graph.setdefault(b, set())

    for scc in _tarjan(graph):
        nodes = sorted(scc)
        cyclic = len(nodes) > 1 or (
            nodes and nodes[0] in graph.get(nodes[0], ()))
        if not cyclic:
            continue
        # Anchor the finding at the lexically first participating edge.
        sites = sorted(
            site for (a, b), site in edges.items()
            if a in scc and b in scc)
        file, line = sites[0]
        detail = "; ".join(
            "%s -> %s (%s:%d)" % (a, b, sf, sl)
            for (a, b), (sf, sl) in sorted(edges.items())
            if a in scc and b in scc)
        report(file, line, ID,
               "lock-order cycle among {%s}: opposite acquisition "
               "orders can deadlock [%s]" % (", ".join(nodes), detail))


def _tarjan(graph):
    index = {}
    lowlink = {}
    on_stack = set()
    stack = []
    sccs = []
    counter = [0]

    def strongconnect(v):
        # Iterative Tarjan: (node, iterator) frames.
        work = [(v, iter(sorted(graph.get(v, ()))))]
        index[v] = lowlink[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = lowlink[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph.get(w, ())))))
                    advanced = True
                    break
                elif w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    scc.add(w)
                    if w == node:
                        break
                sccs.append(scc)

    for v in sorted(graph):
        if v not in index:
            strongconnect(v)
    return sccs
