#!/usr/bin/env bash
# Fault-injection soak: drive one figure bench through the deterministic
# fault injector and require that no injected fault ever changes stdout.
#
#   1. golden:     clean serial run, no cache — the reference bytes.
#   2. faulted:    torn cache write + transient read EIO, --jobs 4.
#   3. poisoned:   re-run against the cache the torn write corrupted;
#                  the checksum footer must quarantine + recapture.
#   4. interrupt:  injected SIGINT mid-sweep with --checkpoint; the run
#                  must exit 130 and leave a checkpoint file.
#   5. resume:     --resume completes the sweep from that checkpoint.
#
# Every completed run's stdout must be byte-identical to the golden run
# (faults and recovery live on stderr only). Wired into ctest as
# `fault_soak`.
#
# Usage: scripts/fault_soak.sh [build-dir]
set -euo pipefail

build="${1:-build}"
bench="$build/bench/fig3_1_fetch_rate"
[ -x "$bench" ] || { echo "no bench binary at '$bench'" >&2; exit 1; }

work="$(mktemp -d "${TMPDIR:-/tmp}/vpsim-soak.XXXXXX")"
trap 'rm -rf "$work"' EXIT
cache="$work/trace-cache"
ckpt="$work/grid.ckpt"

args=(--insts 2000 --benchmarks go,compress)
failed=0

check_golden() {
    local label="$1" out="$2"
    if ! cmp -s "$work/golden" "$out"; then
        echo "FAIL: $label stdout differs from the golden run" >&2
        diff "$work/golden" "$out" | head -20 >&2
        failed=1
    else
        echo "ok: $label stdout is byte-identical"
    fi
}

echo "== golden (clean, serial, uncached)"
"$bench" "${args[@]}" --jobs 1 > "$work/golden" 2> /dev/null

echo "== faulted (torn write + ENOSPC + transient read EIO, --jobs 4)"
"$bench" "${args[@]}" --jobs 4 --trace-cache-dir "$cache" \
    --fault-inject "write:3:torn,write:9:enospc,read:2:eio,seed:42" \
    > "$work/faulted" 2> "$work/faulted.err" ||
    { echo "FAIL: faulted run crashed" >&2; cat "$work/faulted.err" >&2;
      exit 1; }
check_golden "faulted" "$work/faulted"

echo "== poisoned cache (quarantine + recapture)"
"$bench" "${args[@]}" --jobs 1 --trace-cache-dir "$cache" \
    > "$work/poisoned" 2> "$work/poisoned.err" ||
    { echo "FAIL: poisoned-cache run crashed" >&2;
      cat "$work/poisoned.err" >&2; exit 1; }
check_golden "poisoned cache" "$work/poisoned"
if ls "$cache"/.corrupt-* > /dev/null 2>&1; then
    echo "ok: corrupt entry quarantined"
fi

echo "== interrupted (injected SIGINT mid-sweep, --checkpoint)"
status=0
"$bench" "${args[@]}" --jobs 1 --checkpoint "$ckpt" \
    --fault-inject "job:4:sigint" \
    > /dev/null 2> "$work/interrupt.err" || status=$?
if [ "$status" -ne 130 ]; then
    echo "FAIL: interrupted run exited $status, want 130" >&2
    cat "$work/interrupt.err" >&2
    failed=1
fi
if [ ! -f "$ckpt" ]; then
    echo "FAIL: interrupted run left no checkpoint at $ckpt" >&2
    failed=1
else
    echo "ok: interrupted run exited 130 and checkpointed"
fi

echo "== resume (finish the interrupted sweep)"
"$bench" "${args[@]}" --jobs 1 --checkpoint "$ckpt" --resume 1 \
    > "$work/resumed" 2> "$work/resumed.err" ||
    { echo "FAIL: resumed run crashed" >&2; cat "$work/resumed.err" >&2;
      exit 1; }
check_golden "resumed" "$work/resumed"
if ! grep -q "resumed" "$work/resumed.err"; then
    echo "FAIL: resumed run did not reload any checkpointed cells" >&2
    cat "$work/resumed.err" >&2
    failed=1
fi

if [ "$failed" -ne 0 ]; then
    echo "fault soak FAILED" >&2
    exit 1
fi
echo "fault soak OK (faults never changed stdout; interrupt + resume works)"
