#!/usr/bin/env bash
# Fault-injection soak: drive one figure bench through the deterministic
# fault injector and require that no injected fault ever changes stdout.
#
#   1. golden:     clean serial run, no cache — the reference bytes.
#   2. faulted:    torn cache write + transient read EIO, --jobs 4.
#   3. poisoned:   re-run against the cache the torn write corrupted;
#                  the checksum footer must quarantine + recapture.
#   4. interrupt:  injected SIGINT mid-sweep with --checkpoint; the run
#                  must exit 130 and leave a checkpoint file.
#   5. resume:     --resume completes the sweep from that checkpoint.
#   6. v3 cache:   populate a block-framed v3 cache, then force a block
#                  CRC mismatch (`block:N:block-crc`); strict mode must
#                  quarantine the entry and recapture.
#   7. mmap fail:  `mmap:N:mmap-fail` degrades the v3 reader from mmap
#                  to buffered reads without changing a byte of output.
#   8. capture ENOSPC: `capture:N:enospc-capture` fails one capture
#                  append; the tmp-then-rename store retries and never
#                  publishes a torn entry.
#   9. capture SIGINT: `capture:N:sigint` kills the run mid-capture
#                  (exit 130); the rerun recaptures from the unpoisoned
#                  cache and completes.
#  10. salvage:    trailing garbage appended to every v3 entry; with
#                  --salvage-blocks the entries still load (zero records
#                  lost — the damage is beyond the trailer).
#
# Every completed run's stdout must be byte-identical to the golden run
# (faults and recovery live on stderr only). Wired into ctest as
# `fault_soak`.
#
# Usage: scripts/fault_soak.sh [build-dir]
set -euo pipefail

build="${1:-build}"
bench="$build/bench/fig3_1_fetch_rate"
[ -x "$bench" ] || { echo "no bench binary at '$bench'" >&2; exit 1; }

work="$(mktemp -d "${TMPDIR:-/tmp}/vpsim-soak.XXXXXX")"
trap 'rm -rf "$work"' EXIT
cache="$work/trace-cache"
ckpt="$work/grid.ckpt"

args=(--insts 2000 --benchmarks go,compress)
failed=0

check_golden() {
    local label="$1" out="$2"
    if ! cmp -s "$work/golden" "$out"; then
        echo "FAIL: $label stdout differs from the golden run" >&2
        diff "$work/golden" "$out" | head -20 >&2
        failed=1
    else
        echo "ok: $label stdout is byte-identical"
    fi
}

echo "== golden (clean, serial, uncached)"
"$bench" "${args[@]}" --jobs 1 > "$work/golden" 2> /dev/null

echo "== faulted (torn write + ENOSPC + transient read EIO, --jobs 4)"
"$bench" "${args[@]}" --jobs 4 --trace-cache-dir "$cache" \
    --fault-inject "write:3:torn,write:9:enospc,read:2:eio,seed:42" \
    > "$work/faulted" 2> "$work/faulted.err" ||
    { echo "FAIL: faulted run crashed" >&2; cat "$work/faulted.err" >&2;
      exit 1; }
check_golden "faulted" "$work/faulted"

echo "== poisoned cache (quarantine + recapture)"
"$bench" "${args[@]}" --jobs 1 --trace-cache-dir "$cache" \
    > "$work/poisoned" 2> "$work/poisoned.err" ||
    { echo "FAIL: poisoned-cache run crashed" >&2;
      cat "$work/poisoned.err" >&2; exit 1; }
check_golden "poisoned cache" "$work/poisoned"
if ls "$cache"/.corrupt-* > /dev/null 2>&1; then
    echo "ok: corrupt entry quarantined"
fi

echo "== interrupted (injected SIGINT mid-sweep, --checkpoint)"
status=0
"$bench" "${args[@]}" --jobs 1 --checkpoint "$ckpt" \
    --fault-inject "job:4:sigint" \
    > /dev/null 2> "$work/interrupt.err" || status=$?
if [ "$status" -ne 130 ]; then
    echo "FAIL: interrupted run exited $status, want 130" >&2
    cat "$work/interrupt.err" >&2
    failed=1
fi
if [ ! -f "$ckpt" ]; then
    echo "FAIL: interrupted run left no checkpoint at $ckpt" >&2
    failed=1
else
    echo "ok: interrupted run exited 130 and checkpointed"
fi

echo "== resume (finish the interrupted sweep)"
"$bench" "${args[@]}" --jobs 1 --checkpoint "$ckpt" --resume 1 \
    > "$work/resumed" 2> "$work/resumed.err" ||
    { echo "FAIL: resumed run crashed" >&2; cat "$work/resumed.err" >&2;
      exit 1; }
check_golden "resumed" "$work/resumed"
if ! grep -q "resumed" "$work/resumed.err"; then
    echo "FAIL: resumed run did not reload any checkpointed cells" >&2
    cat "$work/resumed.err" >&2
    failed=1
fi

cache_v3="$work/trace-cache-v3"
echo "== v3 cache populate (clean, block-framed entries)"
"$bench" "${args[@]}" --jobs 1 --trace-cache-dir "$cache_v3" \
    > "$work/v3pop" 2> "$work/v3pop.err" ||
    { echo "FAIL: v3 populate run crashed" >&2;
      cat "$work/v3pop.err" >&2; exit 1; }
check_golden "v3 populate" "$work/v3pop"
if ! ls "$cache_v3"/*-v3.vptrace > /dev/null 2>&1; then
    echo "FAIL: cache holds no v3 entries (default --trace-format)" >&2
    failed=1
fi

echo "== v3 block CRC fault (strict quarantine + recapture)"
"$bench" "${args[@]}" --jobs 1 --trace-cache-dir "$cache_v3" \
    --fault-inject "block:2:block-crc" \
    > "$work/blockcrc" 2> "$work/blockcrc.err" ||
    { echo "FAIL: block-crc run crashed" >&2;
      cat "$work/blockcrc.err" >&2; exit 1; }
check_golden "block CRC fault" "$work/blockcrc"
if ls "$cache_v3"/.corrupt-* > /dev/null 2>&1; then
    echo "ok: block-CRC-damaged v3 entry quarantined"
else
    echo "FAIL: block-crc fault left no quarantined entry" >&2
    failed=1
fi

echo "== mmap failure (v3 reader degrades to buffered reads)"
"$bench" "${args[@]}" --jobs 1 --trace-cache-dir "$cache_v3" \
    --fault-inject "mmap:1:mmap-fail" \
    > "$work/mmapfail" 2> "$work/mmapfail.err" ||
    { echo "FAIL: mmap-fail run crashed" >&2;
      cat "$work/mmapfail.err" >&2; exit 1; }
check_golden "mmap failure" "$work/mmapfail"

cache_cap="$work/trace-cache-capture"
echo "== capture ENOSPC (tmp-then-rename store retries, never torn)"
"$bench" "${args[@]}" --jobs 1 --trace-cache-dir "$cache_cap" \
    --fault-inject "capture:2:enospc-capture" \
    > "$work/capnospc" 2> "$work/capnospc.err" ||
    { echo "FAIL: capture-ENOSPC run crashed" >&2;
      cat "$work/capnospc.err" >&2; exit 1; }
check_golden "capture ENOSPC" "$work/capnospc"
if ls "$cache_cap"/*.tmp.* > /dev/null 2>&1; then
    echo "FAIL: capture-ENOSPC run left temporary files behind" >&2
    failed=1
fi

cache_int="$work/trace-cache-interrupt"
ckpt_int="$work/capture.ckpt"
echo "== capture SIGINT (killed mid-capture, then recapture)"
status=0
"$bench" "${args[@]}" --jobs 1 --trace-cache-dir "$cache_int" \
    --checkpoint "$ckpt_int" --fault-inject "capture:1:sigint" \
    > /dev/null 2> "$work/capint.err" || status=$?
if [ "$status" -ne 130 ]; then
    echo "FAIL: capture-SIGINT run exited $status, want 130" >&2
    cat "$work/capint.err" >&2
    failed=1
else
    echo "ok: capture-SIGINT run exited 130"
fi
"$bench" "${args[@]}" --jobs 1 --trace-cache-dir "$cache_int" \
    --checkpoint "$ckpt_int" --resume 1 \
    > "$work/capresume" 2> "$work/capresume.err" ||
    { echo "FAIL: post-SIGINT recapture run crashed" >&2;
      cat "$work/capresume.err" >&2; exit 1; }
check_golden "post-SIGINT recapture" "$work/capresume"

echo "== salvage (trailing garbage on every v3 entry, --salvage-blocks)"
for entry in "$cache_v3"/*-v3.vptrace; do
    printf 'GARBAGE-BEYOND-THE-TRAILER-0123456789' >> "$entry"
done
"$bench" "${args[@]}" --jobs 1 --trace-cache-dir "$cache_v3" \
    --salvage-blocks 1 \
    > "$work/salvaged" 2> "$work/salvaged.err" ||
    { echo "FAIL: salvage run crashed" >&2;
      cat "$work/salvaged.err" >&2; exit 1; }
check_golden "salvage" "$work/salvaged"

if [ "$failed" -ne 0 ]; then
    echo "fault soak FAILED" >&2
    exit 1
fi
echo "fault soak OK (faults never changed stdout; interrupt + resume works)"
