#!/usr/bin/env bash
# Smoke-test every bench binary: run each with a tiny instruction count
# serially, then again with --jobs 4 against a shared trace cache, and
# require the two stdouts to be byte-identical (the SimRunner
# determinism contract). Wired into ctest as `bench_smoke`.
#
# Usage: scripts/smoke_bench.sh [build-dir]
set -euo pipefail

build="${1:-build}"
[ -d "$build/bench" ] || { echo "no bench dir under '$build'" >&2; exit 1; }

work="$(mktemp -d "${TMPDIR:-/tmp}/vpsim-smoke.XXXXXX")"
trap 'rm -rf "$work"' EXIT
cache="$work/trace-cache"

args=(--insts 2000 --benchmarks go,compress,m88ksim)
failed=0

for bench in "$build"/bench/*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    name="$(basename "$bench")"
    case "$name" in
        *.cmake|CMakeFiles|Makefile) continue ;;
        microbench_components)
            # google-benchmark binary: just prove it starts and lists.
            echo "== $name (--benchmark_list_tests)"
            "$bench" --benchmark_list_tests=true > /dev/null ||
                { echo "FAIL: $name" >&2; failed=1; }
            continue ;;
        perf_harness)
            # Timing output can't be byte-identical across runs;
            # validate the JSON schema instead (docs/PERF.md).
            echo "== $name (JSON schema)"
            "$bench" --insts 2000 --benchmarks go,compress --repeats 1 \
                --trace-cache-dir "$cache" > "$work/$name.json" \
                2> /dev/null ||
                { echo "FAIL: $name" >&2; failed=1; continue; }
            python3 "$(dirname "$0")/perf_report.py" --validate \
                "$work/$name.json" ||
                { echo "FAIL: $name (schema)" >&2; failed=1; }
            continue ;;
        streaming_soak)
            # Synthetic-stream soak with its own minimal CLI (no
            # --benchmarks/--jobs); timing goes to stderr, so just
            # prove a small bounded-memory round trip passes.
            echo "== $name (small round trip)"
            "$bench" --insts 100000 --mem-budget 64 > /dev/null \
                2> /dev/null ||
                { echo "FAIL: $name" >&2; failed=1; }
            continue ;;
        fleet_sweep|fleet_soak)
            # Fleet drivers: the determinism axis is worker count, not
            # --jobs. A small grid in-process (--fleet-workers 0) must
            # match the same grid sharded across two worker processes
            # byte for byte (fleet_soak's soak-sized default axes are
            # overridden down to smoke scale).
            echo "== $name (in-process vs 2 workers)"
            fargs=(--insts 2000 --benchmarks go,compress
                   --predictors stride --table-sizes 0,1024
                   --window-sizes 40 --fetch-rates 4,8
                   --vp-penalties 1 --fleet-shard-cells 4
                   --trace-cache-dir "$cache")
            "$bench" "${fargs[@]}" --fleet-workers 0 \
                > "$work/$name.serial" 2> /dev/null ||
                { echo "FAIL: $name (in-process)" >&2; failed=1; continue; }
            "$bench" "${fargs[@]}" --fleet-workers 2 \
                > "$work/$name.parallel" 2> /dev/null ||
                { echo "FAIL: $name (--fleet-workers 2)" >&2; failed=1; continue; }
            ;;
        table3_2_pipeline_example)
            # Fixed 8-instruction worked example: no --insts/--benchmarks.
            echo "== $name"
            "$bench" --jobs 1 > "$work/$name.serial" 2> /dev/null ||
                { echo "FAIL: $name (serial)" >&2; failed=1; continue; }
            "$bench" --jobs 4 > "$work/$name.parallel" 2> /dev/null ||
                { echo "FAIL: $name (--jobs 4)" >&2; failed=1; continue; }
            ;;
        *)
            echo "== $name"
            "$bench" "${args[@]}" --jobs 1 --trace-cache-dir "$cache" \
                > "$work/$name.serial" 2> /dev/null ||
                { echo "FAIL: $name (serial)" >&2; failed=1; continue; }
            "$bench" "${args[@]}" --jobs 4 --trace-cache-dir "$cache" \
                > "$work/$name.parallel" 2> /dev/null ||
                { echo "FAIL: $name (--jobs 4)" >&2; failed=1; continue; }
            ;;
    esac
    if ! cmp -s "$work/$name.serial" "$work/$name.parallel"; then
        echo "FAIL: $name stdout differs between --jobs 1 and --jobs 4" >&2
        diff "$work/$name.serial" "$work/$name.parallel" | head -20 >&2
        failed=1
    fi
done

if [ "$failed" -ne 0 ]; then
    echo "bench smoke test FAILED" >&2
    exit 1
fi
echo "bench smoke test OK (all benches deterministic across job counts)"
