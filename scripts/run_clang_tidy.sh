#!/usr/bin/env bash
# Run the curated .clang-tidy check set over the simulator sources and
# diff the findings against a checked-in baseline, so pre-existing
# noise never blocks a change while anything NEW fails the gate.
#
# Usage:
#   scripts/run_clang_tidy.sh                  # gate against baseline
#   scripts/run_clang_tidy.sh --update-baseline
#   scripts/run_clang_tidy.sh --build-dir build-tidy
#
# The gate fails on ANY drift from the baseline: new findings mean a
# regression, stale entries mean the baseline lies about the tree —
# ratchet it down with --update-baseline in the same change that fixed
# the finding.
#
# Exit codes: 0 clean (or tool unavailable — the clang CI job is the
# enforcement point), 1 baseline drift (new or stale findings), 2
# usage/setup error.
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BASELINE="$ROOT/scripts/clang_tidy_baseline.txt"
BUILD_DIR="$ROOT/build-tidy"
UPDATE=0

while [ $# -gt 0 ]; do
    case "$1" in
        --update-baseline) UPDATE=1 ;;
        --build-dir) shift; BUILD_DIR="${1:?--build-dir needs a path}" ;;
        -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
        *) echo "run_clang_tidy.sh: unknown option '$1'" >&2; exit 2 ;;
    esac
    shift
done

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
    echo "run_clang_tidy.sh: '$TIDY' not found; skipping (the clang" \
         "CI job enforces this gate)." >&2
    exit 0
fi

# clang-tidy needs a compilation database; configure a dedicated tree
# so the default build's flags (e.g. sanitizers) don't leak in.
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    cmake -B "$BUILD_DIR" -S "$ROOT" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null || exit 2
fi

mapfile -t SOURCES < <(cd "$ROOT" && ls src/*/*.cpp | sort)
if [ "${#SOURCES[@]}" -eq 0 ]; then
    echo "run_clang_tidy.sh: no sources found under src/" >&2
    exit 2
fi

RAW="$(mktemp)"
FINDINGS="$(mktemp)"
trap 'rm -f "$RAW" "$FINDINGS"' EXIT

(cd "$ROOT" && "$TIDY" -p "$BUILD_DIR" --quiet "${SOURCES[@]}" \
    >"$RAW" 2>/dev/null)

# Normalize to "<repo-relative-file>: [check] message" — dropping
# line/column keeps the baseline stable across unrelated edits while
# still identifying a finding precisely enough to gate on.
sed -n 's/^.*[\/]\?\(src\/[^:]*\):[0-9]*:[0-9]*: \(warning\|error\): \(.*\)$/\1: \3/p' \
    "$RAW" | sort -u >"$FINDINGS"

if [ "$UPDATE" -eq 1 ]; then
    {
        echo "# clang-tidy baseline — accepted pre-existing findings."
        echo "# Regenerate with scripts/run_clang_tidy.sh --update-baseline"
        cat "$FINDINGS"
    } >"$BASELINE"
    echo "run_clang_tidy.sh: baseline updated" \
         "($(wc -l <"$FINDINGS") findings)."
    exit 0
fi

if [ ! -f "$BASELINE" ]; then
    echo "run_clang_tidy.sh: missing $BASELINE; run with" \
         "--update-baseline first." >&2
    exit 2
fi

NEW="$(grep -v '^#' "$BASELINE" | sort -u |
       comm -13 - "$FINDINGS" || true)"
FIXED="$(grep -v '^#' "$BASELINE" | sort -u |
         comm -23 - "$FINDINGS" || true)"

DRIFT=0
if [ -n "$FIXED" ]; then
    echo "run_clang_tidy.sh: STALE baseline entries (fixed in the" \
         "tree; rerun with --update-baseline to ratchet down):" >&2
    echo "$FIXED" | sed 's/^/  /' >&2
    DRIFT=1
fi
if [ -n "$NEW" ]; then
    echo "run_clang_tidy.sh: NEW findings not in baseline:" >&2
    echo "$NEW" | sed 's/^/  /' >&2
    DRIFT=1
fi
if [ "$DRIFT" -eq 1 ]; then
    exit 1
fi
echo "run_clang_tidy.sh: clean against baseline."
exit 0
