#!/usr/bin/env bash
# Diff-only formatting gate: run clang-format over the C++ files a
# change touches and fail if it would rewrite any of the changed
# lines. Scoping to the diff means the tree never needs a big-bang
# reformat — the style ratchets in one change at a time.
#
# Usage:
#   scripts/check_format.sh              # diff against origin/main (or HEAD~1)
#   scripts/check_format.sh --base REF   # explicit base
#   scripts/check_format.sh --fix        # apply instead of check
#
# Exit codes: 0 clean (or tools unavailable — the clang CI job is the
# enforcement point), 1 formatting diffs found, 2 setup error.
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BASE=""
MODE="check"

while [ $# -gt 0 ]; do
    case "$1" in
        --base) shift; BASE="${1:?--base needs a ref}" ;;
        --fix) MODE="fix" ;;
        -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
        *) echo "check_format.sh: unknown option '$1'" >&2; exit 2 ;;
    esac
    shift
done

FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FORMAT" >/dev/null 2>&1; then
    echo "check_format.sh: '$FORMAT' not found; skipping (the clang" \
         "CI job enforces this gate)." >&2
    exit 0
fi

cd "$ROOT" || exit 2
if [ -z "$BASE" ]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
        BASE="origin/main"
    else
        BASE="HEAD~1"
    fi
fi

# Changed C++ files, staged or not, relative to the base ref.
mapfile -t FILES < <( { git diff --name-only "$BASE" -- \
                            'src/*.[ch]pp' 'tests/*.[ch]pp' \
                            'bench/*.[ch]pp' 'examples/*.[ch]pp';
                        git diff --name-only --cached -- \
                            'src/*.[ch]pp' 'tests/*.[ch]pp' \
                            'bench/*.[ch]pp' 'examples/*.[ch]pp'; } \
                      | sort -u)
EXISTING=()
for f in "${FILES[@]}"; do
    [ -f "$f" ] && EXISTING+=("$f")
done
if [ "${#EXISTING[@]}" -eq 0 ]; then
    echo "check_format.sh: no changed C++ files vs $BASE."
    exit 0
fi

if [ "$MODE" = "fix" ]; then
    "$FORMAT" -i --style=file "${EXISTING[@]}"
    echo "check_format.sh: formatted ${#EXISTING[@]} file(s)."
    exit 0
fi

FAIL=0
for f in "${EXISTING[@]}"; do
    if ! "$FORMAT" --style=file --dry-run -Werror "$f" \
            >/dev/null 2>&1; then
        echo "check_format.sh: $f needs formatting" >&2
        FAIL=1
    fi
done
if [ "$FAIL" -ne 0 ]; then
    echo "check_format.sh: run scripts/check_format.sh --fix" >&2
    exit 1
fi
echo "check_format.sh: ${#EXISTING[@]} changed file(s) clean."
exit 0
