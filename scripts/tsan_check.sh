#!/usr/bin/env bash
# Build the concurrency-sensitive test binaries with ThreadSanitizer
# and run their suites. TSan is the dynamic half of the concurrency
# story: the clang thread-safety annotations prove lock discipline at
# compile time, TSan catches the races annotations cannot see (atomics
# misuse, unlocked signal paths) at run time.
#
# Usage:
#   scripts/tsan_check.sh                 # build + run default suites
#   scripts/tsan_check.sh --build-dir DIR # reuse/choose the TSan tree
#
# Exit codes: 0 clean, 1 build/test failure (including any reported
# race — halt_on_error is set), 2 setup error.
set -u -o pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="$ROOT/build-tsan"
# The suites that exercise the multithreaded runtime: the work-stealing
# pool, SimRunner's watchdog/checkpoint/failure paths, and the
# validation harness that drives them end to end.
SUITES=(test_thread_pool test_sim test_validation)

while [ $# -gt 0 ]; do
    case "$1" in
        --build-dir) shift; BUILD_DIR="${1:?--build-dir needs a path}" ;;
        -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
        *) echo "tsan_check.sh: unknown option '$1'" >&2; exit 2 ;;
    esac
    shift
done

cmake -B "$BUILD_DIR" -S "$ROOT" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVPSIM_SANITIZE=thread >/dev/null || exit 2
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${SUITES[@]}" \
    || exit 1

# halt_on_error: a single data race fails the run loudly instead of
# scrolling past; second_deadlock_stack helps lock-order reports.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 ${TSAN_OPTIONS:-}"

FAIL=0
for suite in "${SUITES[@]}"; do
    echo "tsan_check.sh: running $suite"
    if ! "$BUILD_DIR/tests/$suite"; then
        echo "tsan_check.sh: $suite FAILED under TSan" >&2
        FAIL=1
    fi
done
if [ "$FAIL" -ne 0 ]; then
    exit 1
fi
echo "tsan_check.sh: all ${#SUITES[@]} suites race-clean."
exit 0
