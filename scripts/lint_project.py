#!/usr/bin/env python3
"""Project-specific lint rules generic tools cannot express.

Token-aware (comments and string literals are stripped before
matching) but deliberately AST-free: the rules below are simple
textual contracts, and a checker with no compiler dependency can run
everywhere ctest runs.

Rules
-----
status-discard
    Every call to a Status-returning function (collected by scanning
    the headers under src/ for by-value `Status f(...)` declarations)
    must be consumed. A bare statement-position call drops the error;
    intentional discards must be written `(void)call();` with a
    justifying comment.

sim-determinism
    Simulation code must be a pure function of its inputs (the PR 1
    determinism contract: identical results for any --jobs value, and
    reproducible runs across machines). rand()/srand(),
    std::random_device, std::time()/time(NULL), gettimeofday() and
    std::chrono::system_clock are banned; seeded vpsim::Rng
    (src/common/rng.hpp) and steady_clock are the sanctioned
    alternatives.

unordered-iter
    Iterating a std::unordered_* container visits elements in an
    unspecified, implementation-dependent order; feeding that order
    into CSV/manifest/table output makes published numbers differ
    between stdlibs. Range-fors over unordered containers declared in
    the same file are flagged; order-independent uses carry a
    `lint:allow unordered-iter` suppression with a justification.

raw-mutex
    All locking goes through the CAPABILITY-annotated vpsim::Mutex /
    MutexLock wrappers (src/common/thread_annotations.hpp) so clang's
    thread-safety analysis sees every acquire/release. Raw std::mutex
    and friends are allowed only inside the wrapper header itself.

trace-per-record
    TraceSource::next() is the deprecated one-record compat shim kept
    for the batched-delivery migration (docs/PERF.md); a per-record
    loop over it pays a virtual call per instruction and defeats the
    span API's block-at-a-time hoisting. New code iterates
    nextBlock() spans. Flagged on receivers declared in the same file
    with a *TraceSource type; the shim's own definition and measured
    legacy baselines carry suppressions. Unlike the style rules this
    one also covers tests/ (the fixture directory excepted), so a new
    shim caller fails the lint gate anywhere in the tree: the shim's
    own self-tests carry justified suppressions, everything else must
    use spans.

trace-materialize
    materializeTrace() and VectorTraceSource::records() buffer the
    entire trace in memory — fine for unit-test inputs, fatal for the
    bounded-memory streaming pipeline (docs/TRACE_FORMAT.md), where a
    1B-instruction trace must never fully materialize. Production code
    iterates nextBlock()/nextColumns() spans; the legacy TraceSource
    convenience overloads that still materialize carry justified
    suppressions. Tests are not linted for this rule.

Suppression: append `// lint:allow <rule>` (plus a justification) to
the offending line.

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Directories scanned by default, relative to the repo root. tests/ is
# exempt: test code may use raw primitives and controlled randomness.
DEFAULT_ROOTS = ["src", "bench", "examples"]

# Roots where only the batched-delivery contract (trace-per-record) is
# enforced: test code legitimately pokes at internals the style rules
# forbid, but a per-record simulation loop is a perf bug wherever it
# lives. The seeded-violation fixture is excluded — it exists to be
# flagged and is linted only by --self-test.
TEST_ROOTS = ["tests"]
TEST_EXCLUDE_PREFIX = "tests/lint_fixtures/"

SOURCE_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}

# Per-rule path exemptions (relative, forward slashes).
EXEMPT = {
    "raw-mutex": {"src/common/thread_annotations.hpp"},
    "sim-determinism": {"src/common/rng.hpp"},
    "trace-per-record": {"src/trace/source.hpp"},
    # The declaration/definition of materializeTrace and the records()
    # accessor live here; the rule targets their callers.
    "trace-materialize": {"src/trace/source.hpp",
                          "src/trace/source.cpp"},
}

ALLOW_RE = re.compile(r"lint:allow\s+([\w-]+)")

RULES = ["status-discard", "sim-determinism", "unordered-iter",
         "raw-mutex", "trace-per-record", "trace-materialize"]


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure so reported line numbers match the file. The original
    text of comment lines is consulted separately for suppressions."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        ch = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if ch == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
            elif ch == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
            elif ch == '"' and re.search(r"(?:u8|[uUL])?R\Z",
                                         text[max(0, i - 3):i]):
                # Raw string literal R"delim(...)delim": no escape
                # processing, and embedded quotes must not pop the
                # string state early (they used to leak literal text
                # into the scanned code, a false-positive source for
                # every text-matching rule).
                open_paren = text.find("(", i + 1)
                delim = text[i + 1:open_paren] if open_paren != -1 \
                    else ""
                closing = ")" + delim + '"'
                end = text.find(closing, open_paren + 1) \
                    if open_paren != -1 else -1
                stop = n if end == -1 else end + len(closing)
                for j in range(i, stop):
                    out.append("\n" if text[j] == "\n" else " ")
                i = stop
            elif ch == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif ch == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(ch)
                i += 1
        elif state == "line-comment":
            if ch == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block-comment":
            if ch == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if ch == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if ch == "\\":
                out.append("  ")
                i += 2
            elif ch == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if ch == "\n" else " ")
                i += 1
    return "".join(out)


def collect_status_functions(root):
    """Names of by-value Status-returning functions from src headers.

    `Status f(...)` matches; `Status &f(...)` / `const Status &f()`
    accessors do not (returning a reference hands the caller something
    it already owns — nothing is being dropped).
    """
    names = set()
    decl_re = re.compile(r"\bStatus\s+(\w+)\s*\(")
    for header in sorted((root / "src").rglob("*.hpp")):
        stripped = strip_comments_and_strings(
            header.read_text(encoding="utf-8"))
        for match in decl_re.finditer(stripped):
            name = match.group(1)
            if name not in ("operator",):
                names.add(name)
    return names


def line_allows(raw_line, rule):
    match = ALLOW_RE.search(raw_line)
    return bool(match) and match.group(1) == rule


def neighborhood_allows(raw_lines, lineno, rule):
    """Suppression on the flagged line, or anywhere in the block of
    comment lines immediately above it (justifications often need a
    continuation line, which would otherwise push the lint:allow tag
    out of a one-line lookback window)."""
    if 0 <= lineno - 1 < len(raw_lines) and \
            line_allows(raw_lines[lineno - 1], rule):
        return True
    candidate = lineno - 2
    while 0 <= candidate < len(raw_lines):
        stripped = raw_lines[candidate].lstrip()
        if not stripped.startswith("//"):
            break
        if line_allows(raw_lines[candidate], rule):
            return True
        candidate -= 1
    return False


RECEIVER_CHARS = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    "0123456789_:.>[]-")

# Member names our API shares with std types (std::atomic::store,
# std::ostream::flush, ...). A member call to one of these is only
# flagged when the receiver variable is declared in the same file with
# one of the classes that actually return Status from that member —
# otherwise `done[idx].store(true, ...)` would drown the report in
# atomic false positives. Free-function calls are never ambiguous.
AMBIGUOUS_MEMBERS = {"store", "load", "flush", "open", "close",
                     "reset", "clear", "swap", "exchange", "wait",
                     "count", "get"}

# The classes whose members return Status (kept in sync with the
# headers scanned by collect_status_functions; the self-test fixture
# guards the wiring end to end).
STATUS_CLASS_RE = (r"(?:io::)?(?:File|TraceCacheStore)")
STATUS_VAR_DECL_RES = [
    re.compile(r"\b" + STATUS_CLASS_RE + r"\s*[&*]?\s+(\w+)\s*[;,)({=]"),
    re.compile(r"_ptr<\s*(?:const\s+)?" + STATUS_CLASS_RE +
               r"\s*>\s+(\w+)"),
]


def status_receiver_vars(text):
    names = set()
    for decl_re in STATUS_VAR_DECL_RES:
        names.update(m.group(1) for m in decl_re.finditer(text))
    return names


def check_status_discard(path, text, raw_lines, status_functions,
                         report):
    call_re = re.compile(
        r"\b(" + "|".join(re.escape(n)
                          for n in sorted(status_functions)) +
        r")\s*\(")
    receiver_vars = status_receiver_vars(text)
    for match in call_re.finditer(text):
        # Walk back over the receiver expression (io::, file.,
        # cache->) to the start of the statement's first token.
        start = match.start(1)
        i = start - 1
        while i >= 0 and text[i] in RECEIVER_CHARS:
            i -= 1
        expr_start = i + 1
        # The previous significant character decides whether this call
        # is a full statement (dropped result) or feeds an expression.
        j = expr_start - 1
        while j >= 0 and text[j] in " \t\n":
            j -= 1
        at_statement = j < 0 or text[j] in ";{}"
        if not at_statement:
            continue
        name = match.group(1)
        receiver = text[expr_start:start]
        if receiver and name in AMBIGUOUS_MEMBERS:
            base = re.split(r"\.|->|::|\[", receiver.rstrip(".->"))[0]
            if base not in receiver_vars:
                continue
        lineno = text.count("\n", 0, start) + 1
        if neighborhood_allows(raw_lines, lineno, "status-discard"):
            continue
        report(path, lineno, "status-discard",
               "result of Status-returning '%s' is dropped; consume "
               "it, or write (void)%s(...) with a justification"
               % (name, name))


DETERMINISM_BANNED = [
    (re.compile(r"\b(?:std::)?s?rand\s*\("),
     "rand()/srand() — use the seeded vpsim::Rng"),
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device is a nondeterministic seed source"),
    (re.compile(r"\b(?:std::)?time\s*\(\s*(?:nullptr|NULL|0)?\s*\)"),
     "wall-clock time() in simulation state"),
    (re.compile(r"\bgettimeofday\s*\("),
     "wall-clock gettimeofday() in simulation state"),
    (re.compile(r"\bsystem_clock\b"),
     "std::chrono::system_clock is wall-clock; use steady_clock for "
     "durations and keep timestamps out of simulated state"),
]


def check_determinism(path, text, raw_lines, report):
    for banned_re, why in DETERMINISM_BANNED:
        for match in banned_re.finditer(text):
            lineno = text.count("\n", 0, match.start()) + 1
            if neighborhood_allows(raw_lines, lineno,
                                   "sim-determinism"):
                continue
            report(path, lineno, "sim-determinism", why)


def unordered_container_vars(text):
    """Identifiers declared in this file with a std::unordered_* type
    (handles nested template arguments by bracket matching)."""
    names = set()
    for match in re.finditer(r"std::unordered_\w+\s*<", text):
        depth = 1
        i = match.end()
        while i < len(text) and depth > 0:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
            i += 1
        # `;` / `=` / `{` follow VARIABLE names; a `(` follows a
        # FUNCTION name (`std::unordered_map<K, V> buildMap(...)`),
        # which must not register — a same-named ordered variable
        # iterated elsewhere would be flagged. Direct-init variables
        # (`map m(16);`) are rare enough in this tree to trade away.
        ident = re.match(r"\s*&?\s*(\w+)\s*[;={]", text[i:])
        if ident:
            names.add(ident.group(1))
    return names


def check_unordered_iter(path, text, raw_lines, report):
    container_vars = unordered_container_vars(text)
    if not container_vars:
        return
    range_for_re = re.compile(
        r"\bfor\s*\([^;()]*?:\s*([\w.\->]+)\s*\)")
    for match in range_for_re.finditer(text):
        target = re.split(r"\.|->", match.group(1))[-1]
        if target not in container_vars:
            continue
        lineno = text.count("\n", 0, match.start()) + 1
        if neighborhood_allows(raw_lines, lineno, "unordered-iter"):
            continue
        report(path, lineno, "unordered-iter",
               "range-for over unordered container '%s': iteration "
               "order is unspecified and must not reach CSV/manifest/"
               "table output (sort first, or suppress with a "
               "justification if order cannot escape)" % target)


RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
    r"lock_guard|unique_lock|scoped_lock)\b")


def check_raw_mutex(path, text, raw_lines, report):
    for match in RAW_MUTEX_RE.finditer(text):
        lineno = text.count("\n", 0, match.start()) + 1
        if neighborhood_allows(raw_lines, lineno, "raw-mutex"):
            continue
        report(path, lineno, "raw-mutex",
               "raw '%s' outside thread_annotations.hpp: use "
               "vpsim::Mutex / MutexLock so the thread-safety "
               "analysis sees the acquire/release" % match.group(0))


# Any concrete or abstract trace source (TraceSource,
# VectorTraceSource, BorrowedTraceSource, future subclasses). Declared
# by value, reference, pointer or smart pointer in the same file.
TRACE_SOURCE_CLASS_RE = r"\w*TraceSource"
TRACE_SOURCE_VAR_DECL_RES = [
    re.compile(r"\b" + TRACE_SOURCE_CLASS_RE +
               r"\b(?:\s|&|\*)+(\w+)\s*[;,)({=]"),
    re.compile(r"_ptr<\s*(?:const\s+)?" + TRACE_SOURCE_CLASS_RE +
               r"\s*>\s+(\w+)"),
]


def trace_source_vars(text):
    names = set()
    for decl_re in TRACE_SOURCE_VAR_DECL_RES:
        names.update(m.group(1) for m in decl_re.finditer(text))
    return names


def check_trace_per_record(path, text, raw_lines, report):
    receiver_vars = trace_source_vars(text)
    if not receiver_vars:
        return
    # Only member calls on a known trace-source receiver: bare next(
    # (std::next, iterator helpers) is never ambiguous here.
    call_re = re.compile(r"\b(\w+)\s*(?:\.|->)\s*next\s*\(")
    for match in call_re.finditer(text):
        if match.group(1) not in receiver_vars:
            continue
        lineno = text.count("\n", 0, match.start()) + 1
        if neighborhood_allows(raw_lines, lineno, "trace-per-record"):
            continue
        report(path, lineno, "trace-per-record",
               "per-record next() on trace source '%s' is the "
               "deprecated compat shim: iterate nextBlock() spans "
               "instead (docs/PERF.md), or suppress with a "
               "justification for a measured legacy baseline"
               % match.group(1))


# Whole-trace materialization: the free function plus the
# records() accessor (a member call — bare `records(` would hit
# locals named `records`, which the core machines use for spans).
MATERIALIZE_RE = re.compile(
    r"\bmaterializeTrace\s*\(|(?:\.|->)\s*records\s*\(")


def check_trace_materialize(path, text, raw_lines, report):
    for match in MATERIALIZE_RE.finditer(text):
        lineno = text.count("\n", 0, match.start()) + 1
        if neighborhood_allows(raw_lines, lineno, "trace-materialize"):
            continue
        what = ("materializeTrace()"
                if "materializeTrace" in match.group(0)
                else "records()")
        report(path, lineno, "trace-materialize",
               "whole-trace materialization via %s holds every record "
               "in memory and defeats the bounded-window streaming "
               "path (docs/TRACE_FORMAT.md): iterate nextBlock() "
               "spans, or suppress with a justification for a "
               "known-small input" % what)


def lint_file(path, rel, status_functions, report):
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.splitlines()
    text = strip_comments_and_strings(raw)

    def gate(rule):
        return rel not in EXEMPT.get(rule, set())

    if rel.startswith("tests/") and \
            not rel.startswith(TEST_EXCLUDE_PREFIX):
        if gate("trace-per-record"):
            check_trace_per_record(path, text, raw_lines, report)
        return

    if gate("status-discard") and path.suffix != ".hpp":
        # Headers hold inline definitions whose callers are elsewhere;
        # discard checking there is the compiler's job ([[nodiscard]]).
        check_status_discard(path, text, raw_lines, status_functions,
                             report)
    if gate("sim-determinism"):
        check_determinism(path, text, raw_lines, report)
    if gate("unordered-iter"):
        check_unordered_iter(path, text, raw_lines, report)
    if gate("raw-mutex"):
        check_raw_mutex(path, text, raw_lines, report)
    if gate("trace-per-record"):
        check_trace_per_record(path, text, raw_lines, report)
    if gate("trace-materialize"):
        check_trace_materialize(path, text, raw_lines, report)


def run_lint(paths, root):
    status_functions = collect_status_functions(root)
    if not status_functions:
        print("lint_project: found no Status-returning declarations; "
              "is --root correct?", file=sys.stderr)
        return 2
    violations = []

    def report(path, lineno, rule, message):
        violations.append((path, lineno, rule, message))

    for path in paths:
        rel = path.resolve().relative_to(root).as_posix()
        lint_file(path, rel, status_functions, report)

    for path, lineno, rule, message in violations:
        print("%s:%d: [%s] %s"
              % (path.resolve().relative_to(root), lineno, rule,
                 message))
    if violations:
        print("lint_project: %d violation(s)" % len(violations),
              file=sys.stderr)
        return 1
    return 0


def gather(root, arguments):
    if arguments:
        paths = []
        for argument in arguments:
            p = Path(argument)
            if p.is_dir():
                paths.extend(sorted(
                    f for f in p.rglob("*")
                    if f.suffix in SOURCE_SUFFIXES))
            else:
                paths.append(p)
        return paths
    paths = []
    for sub in DEFAULT_ROOTS:
        paths.extend(sorted(
            f for f in (root / sub).rglob("*")
            if f.suffix in SOURCE_SUFFIXES))
    for sub in TEST_ROOTS:
        paths.extend(sorted(
            f for f in (root / sub).rglob("*")
            if f.suffix in SOURCE_SUFFIXES and
            not f.resolve().relative_to(root).as_posix()
                .startswith(TEST_EXCLUDE_PREFIX)))
    return paths


def self_test(root):
    """The linter must catch every seeded violation in the fixture —
    run as ctest `lint_project_selftest` so a refactor that quietly
    blinds a rule fails CI."""
    fixture = root / "tests" / "lint_fixtures" / \
        "seeded_violations.cpp"
    status_functions = collect_status_functions(root)
    hits = set()

    def report(path, lineno, rule, message):
        hits.add((rule, lineno))

    raw = fixture.read_text(encoding="utf-8")
    lint_file(fixture, "tests/lint_fixtures/seeded_violations.cpp",
              status_functions, report)

    # The fixture marks every line that must be flagged with
    # `lint:expect <rule>`; everything else (consumed results, (void)
    # casts, lint:allow blocks, std members that shadow our API) must
    # stay quiet. Exact-set equality catches both blind spots and
    # regressions toward false positives.
    expect_re = re.compile(r"lint:expect\s+([\w-]+)")
    expected = set()
    for idx, line in enumerate(raw.splitlines(), start=1):
        for m in expect_re.finditer(line):
            expected.add((m.group(1), idx))
    unknown = {rule for rule, _ in expected} - set(RULES)
    if unknown:
        print("lint_project --self-test: fixture expects unknown "
              "rule(s): %s" % ", ".join(sorted(unknown)),
              file=sys.stderr)
        return 1
    missing = expected - hits
    spurious = hits - expected
    if missing or spurious:
        for rule, lineno in sorted(missing):
            print("lint_project --self-test: seeded %s violation at "
                  "fixture line %d NOT caught" % (rule, lineno),
                  file=sys.stderr)
        for rule, lineno in sorted(spurious):
            print("lint_project --self-test: FALSE POSITIVE %s at "
                  "fixture line %d" % (rule, lineno), file=sys.stderr)
        return 1
    if {rule for rule, _ in expected} != set(RULES):
        print("lint_project --self-test: fixture no longer seeds "
              "every rule", file=sys.stderr)
        return 1
    # The suppressed block must stay quiet — lint:allow is part of the
    # contract too.
    if "lint:allow" not in raw:
        print("lint_project --self-test: fixture lost its "
              "suppression coverage", file=sys.stderr)
        return 1
    print("lint_project --self-test: %d seeded violations across all "
          "%d rules caught, no false positives, suppressions honored"
          % (len(expected), len(RULES)))
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="vpsim project lint (see docs/STATIC_ANALYSIS.md)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: %s)"
                        % ", ".join(DEFAULT_ROOTS))
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="repository root (default: inferred)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the rules catch the seeded-"
                             "violation fixture")
    parser.add_argument("--list-rules", action="store_true")
    arguments = parser.parse_args()

    if arguments.list_rules:
        print("\n".join(RULES))
        return 0
    root = arguments.root.resolve()
    if arguments.self_test:
        return self_test(root)
    return run_lint(gather(root, arguments.paths), root)


if __name__ == "__main__":
    sys.exit(main())
