#!/usr/bin/env python3
"""Verify vpsim run and fleet manifests (sidecar files next to a CSV).

Every bench that writes `--csv FILE` also writes `FILE.manifest.json`
(see src/sim/run_manifest.hpp and docs/VALIDATION.md), and the fleet
driver writes `FILE.fleet-manifest.json` instead (see
src/fleet/fleet_manifest.hpp and docs/FLEET.md). This checker
re-derives, for each manifest given on the command line (or found under
a directory):

  1. the CRC-32 of the CSV the manifest describes (the file next to the
     manifest, i.e. the manifest path minus its manifest suffix) and
     its byte count, compared against csvCrc32 / csvBytes;
  2. the manifest's own signature: CRC-32 over the canonical signing
     string rebuilt byte-for-byte from the parsed JSON fields, compared
     against the stored "crc32:XXXXXXXX" signature;
  3. for fleet manifests, the structural invariants of the signed
     lineage: every `id:first:last:attempts:outcome` shard line parses,
     outcomes are from the known set, quarantined cells are strictly
     ascending, in range, and consistent with the quarantined shard
     lines.

Exit status 0 when every manifest passes, 1 otherwise. Only the Python
standard library is used.
"""

import argparse
import json
import os
import sys
import zlib

REQUIRED_FIELDS = [
    "schema", "gitDescribe", "traceFormatVersion", "checkInvariants",
    "crossCheck", "jobTimeout", "salvageBlocks", "salvagedFiles",
    "salvagedBlocks", "salvagedRecordsLost", "fingerprint", "csvFile",
    "csvBytes", "csvCrc32", "signature",
]

SCHEMA = "vpsim-run-manifest 2"
MANIFEST_SUFFIX = ".manifest.json"

FLEET_REQUIRED_FIELDS = [
    "schema", "gitDescribe", "fleetHash", "rows", "cols", "cells",
    "retries", "bisections", "reusedCells", "quarantinedCells",
    "shards", "salvagedFiles", "salvagedBlocks", "salvagedRecordsLost",
    "fingerprint", "csvFile", "csvBytes", "csvCrc32", "signature",
]

FLEET_SCHEMA = "vpsim-fleet-manifest 1"
FLEET_MANIFEST_SUFFIX = ".fleet-manifest.json"
FLEET_SHARD_OUTCOMES = {"ok", "bisected", "quarantined"}


def signing_string(manifest):
    """The canonical signing string (see run_manifest.cpp)."""
    return (
        "vpsim-manifest-signing-v2\n"
        f"schema={manifest['schema']}\n"
        f"gitDescribe={manifest['gitDescribe']}\n"
        f"traceFormatVersion={manifest['traceFormatVersion']}\n"
        f"checkInvariants={manifest['checkInvariants']}\n"
        f"crossCheck={manifest['crossCheck']}\n"
        f"jobTimeout={manifest['jobTimeout']}\n"
        f"salvageBlocks={manifest['salvageBlocks']}\n"
        f"salvagedFiles={manifest['salvagedFiles']}\n"
        f"salvagedBlocks={manifest['salvagedBlocks']}\n"
        f"salvagedRecordsLost={manifest['salvagedRecordsLost']}\n"
        f"fingerprint={manifest['fingerprint']}\n"
        f"csvFile={manifest['csvFile']}\n"
        f"csvBytes={manifest['csvBytes']}\n"
        f"csvCrc32={manifest['csvCrc32']}\n"
    )


def fleet_signing_string(manifest):
    """The canonical fleet signing string (see fleet_manifest.cpp)."""
    lines = [
        "vpsim-fleet-signing-v1",
        f"schema={manifest['schema']}",
        f"gitDescribe={manifest['gitDescribe']}",
        f"fleetHash={manifest['fleetHash']}",
        f"rows={manifest['rows']}",
        f"cols={manifest['cols']}",
        f"cells={manifest['cells']}",
        f"retries={manifest['retries']}",
        f"bisections={manifest['bisections']}",
        f"reusedCells={manifest['reusedCells']}",
        "quarantinedCells="
        + ",".join(str(cell) for cell in manifest["quarantinedCells"]),
    ]
    lines.extend(f"shard={shard}" for shard in manifest["shards"])
    lines.extend([
        f"salvagedFiles={manifest['salvagedFiles']}",
        f"salvagedBlocks={manifest['salvagedBlocks']}",
        f"salvagedRecordsLost={manifest['salvagedRecordsLost']}",
        f"fingerprint={manifest['fingerprint']}",
        f"csvFile={manifest['csvFile']}",
        f"csvBytes={manifest['csvBytes']}",
        f"csvCrc32={manifest['csvCrc32']}",
    ])
    return "\n".join(lines) + "\n"


def check_fleet_lineage(manifest):
    """Structural checks on the signed shard lineage; returns problems."""
    problems = []
    cells = manifest["cells"]
    covered = set()
    quarantined_shard_cells = set()
    for line in manifest["shards"]:
        parts = line.split(":")
        if len(parts) != 5:
            problems.append(
                f"shard line '{line}' is not id:first:last:attempts:"
                "outcome")
            continue
        try:
            first, last, attempts = (
                int(parts[1]), int(parts[2]), int(parts[3]))
        except ValueError:
            problems.append(f"shard line '{line}' has non-numeric fields")
            continue
        outcome = parts[4]
        if outcome not in FLEET_SHARD_OUTCOMES:
            problems.append(
                f"shard line '{line}' has unknown outcome '{outcome}'")
        if not 0 <= first <= last < cells:
            problems.append(
                f"shard line '{line}' spans cells outside [0, {cells})")
        if attempts < 1:
            problems.append(
                f"shard line '{line}' claims {attempts} attempt(s)")
        covered.update(range(first, last + 1))
        if outcome == "quarantined":
            quarantined_shard_cells.update(range(first, last + 1))
    reused = manifest["reusedCells"]
    if len(covered) + reused < cells:
        problems.append(
            f"shard lineage covers {len(covered)} cell(s) plus "
            f"{reused} reused, grid has {cells}")
    quarantined = manifest["quarantinedCells"]
    if quarantined != sorted(set(quarantined)):
        problems.append("quarantinedCells is not strictly ascending")
    for cell in quarantined:
        if not 0 <= cell < cells:
            problems.append(
                f"quarantined cell {cell} outside [0, {cells})")
    if set(quarantined) != quarantined_shard_cells:
        problems.append(
            "quarantinedCells disagrees with the quarantined shard "
            "lines")
    return problems


def check_csv(manifest, manifest_path, suffix, problems):
    """CSV checks shared by both schemas: the data file next to the
    manifest must match the checksum taken when it was written. The
    stored csvFile is the path the bench was invoked with (possibly
    relative to a different cwd), so locate the CSV from the manifest's
    own name instead."""
    csv_path = manifest_path[: -len(suffix)]
    if os.path.basename(manifest["csvFile"]) != os.path.basename(csv_path):
        problems.append(
            f"csvFile '{manifest['csvFile']}' does not name '"
            f"{os.path.basename(csv_path)}'")
    try:
        with open(csv_path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        problems.append(f"unreadable CSV: {error}")
        return
    if len(data) != manifest["csvBytes"]:
        problems.append(
            f"CSV is {len(data)} bytes, manifest says "
            f"{manifest['csvBytes']}")
    crc = f"{zlib.crc32(data) & 0xFFFFFFFF:08x}"
    if crc != manifest["csvCrc32"]:
        problems.append(
            f"CSV CRC-32 is {crc}, manifest says "
            f"{manifest['csvCrc32']}")


def verify(manifest_path):
    """Check one manifest; returns a list of problems (empty = pass)."""
    problems = []
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"unreadable manifest: {error}"]

    is_fleet = manifest_path.endswith(FLEET_MANIFEST_SUFFIX)
    required = FLEET_REQUIRED_FIELDS if is_fleet else REQUIRED_FIELDS
    missing = [f for f in required if f not in manifest]
    if missing:
        return [f"missing fields: {', '.join(missing)}"]
    schema = FLEET_SCHEMA if is_fleet else SCHEMA
    if manifest["schema"] != schema:
        return [f"unknown schema '{manifest['schema']}'"]

    # Signature: the manifest body must not have been edited.
    build = fleet_signing_string if is_fleet else signing_string
    body = build(manifest).encode("utf-8")
    expected = f"crc32:{zlib.crc32(body) & 0xFFFFFFFF:08x}"
    if manifest["signature"] != expected:
        problems.append(
            f"signature mismatch: manifest says {manifest['signature']},"
            f" body hashes to {expected}")

    if is_fleet:
        problems.extend(check_fleet_lineage(manifest))

    suffix = FLEET_MANIFEST_SUFFIX if is_fleet else MANIFEST_SUFFIX
    if not manifest_path.endswith(suffix):
        problems.append(f"manifest name should end with {suffix}")
        return problems
    check_csv(manifest, manifest_path, suffix, problems)
    return problems


def collect(paths):
    """Expand directories into the manifests they contain."""
    manifests = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in sorted(os.walk(path)):
                manifests.extend(
                    os.path.join(root, name)
                    for name in sorted(files)
                    if name.endswith(MANIFEST_SUFFIX)
                    or name.endswith(FLEET_MANIFEST_SUFFIX))
        else:
            manifests.append(path)
    return manifests


def main():
    parser = argparse.ArgumentParser(
        description="Verify vpsim run manifests")
    parser.add_argument(
        "paths", nargs="+",
        help="manifest files or directories to scan for *.manifest.json")
    args = parser.parse_args()

    manifests = collect(args.paths)
    if not manifests:
        print("verify_manifest: no manifests found", file=sys.stderr)
        return 1

    failed = 0
    for path in manifests:
        problems = verify(path)
        if problems:
            failed += 1
            print(f"FAIL {path}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"PASS {path}")
    print(f"verify_manifest: {len(manifests) - failed} of "
          f"{len(manifests)} manifest(s) valid")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
