#!/usr/bin/env python3
"""Verify vpsim run manifests (sidecar `<csv>.manifest.json` files).

Every bench that writes `--csv FILE` also writes `FILE.manifest.json`
(see src/sim/run_manifest.hpp and docs/VALIDATION.md). This checker
re-derives, for each manifest given on the command line (or found under
a directory):

  1. the CRC-32 of the CSV the manifest describes (the file next to the
     manifest, i.e. the manifest path minus ".manifest.json") and its
     byte count, compared against csvCrc32 / csvBytes;
  2. the manifest's own signature: CRC-32 over the canonical signing
     string rebuilt byte-for-byte from the parsed JSON fields, compared
     against the stored "crc32:XXXXXXXX" signature.

Exit status 0 when every manifest passes, 1 otherwise. Only the Python
standard library is used.
"""

import argparse
import json
import os
import sys
import zlib

REQUIRED_FIELDS = [
    "schema", "gitDescribe", "traceFormatVersion", "checkInvariants",
    "crossCheck", "jobTimeout", "salvageBlocks", "salvagedFiles",
    "salvagedBlocks", "salvagedRecordsLost", "fingerprint", "csvFile",
    "csvBytes", "csvCrc32", "signature",
]

SCHEMA = "vpsim-run-manifest 2"
MANIFEST_SUFFIX = ".manifest.json"


def signing_string(manifest):
    """The canonical signing string (see run_manifest.cpp)."""
    return (
        "vpsim-manifest-signing-v2\n"
        f"schema={manifest['schema']}\n"
        f"gitDescribe={manifest['gitDescribe']}\n"
        f"traceFormatVersion={manifest['traceFormatVersion']}\n"
        f"checkInvariants={manifest['checkInvariants']}\n"
        f"crossCheck={manifest['crossCheck']}\n"
        f"jobTimeout={manifest['jobTimeout']}\n"
        f"salvageBlocks={manifest['salvageBlocks']}\n"
        f"salvagedFiles={manifest['salvagedFiles']}\n"
        f"salvagedBlocks={manifest['salvagedBlocks']}\n"
        f"salvagedRecordsLost={manifest['salvagedRecordsLost']}\n"
        f"fingerprint={manifest['fingerprint']}\n"
        f"csvFile={manifest['csvFile']}\n"
        f"csvBytes={manifest['csvBytes']}\n"
        f"csvCrc32={manifest['csvCrc32']}\n"
    )


def verify(manifest_path):
    """Check one manifest; returns a list of problems (empty = pass)."""
    problems = []
    try:
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return [f"unreadable manifest: {error}"]

    missing = [f for f in REQUIRED_FIELDS if f not in manifest]
    if missing:
        return [f"missing fields: {', '.join(missing)}"]
    if manifest["schema"] != SCHEMA:
        return [f"unknown schema '{manifest['schema']}'"]

    # Signature: the manifest body must not have been edited.
    body = signing_string(manifest).encode("utf-8")
    expected = f"crc32:{zlib.crc32(body) & 0xFFFFFFFF:08x}"
    if manifest["signature"] != expected:
        problems.append(
            f"signature mismatch: manifest says {manifest['signature']},"
            f" body hashes to {expected}")

    # CSV: the data file next to the manifest must match the checksum
    # taken when it was written. The stored csvFile is the path the
    # bench was invoked with (possibly relative to a different cwd), so
    # locate the CSV from the manifest's own name instead.
    if not manifest_path.endswith(MANIFEST_SUFFIX):
        problems.append(
            f"manifest name should end with {MANIFEST_SUFFIX}")
        return problems
    csv_path = manifest_path[: -len(MANIFEST_SUFFIX)]
    if os.path.basename(manifest["csvFile"]) != os.path.basename(csv_path):
        problems.append(
            f"csvFile '{manifest['csvFile']}' does not name '"
            f"{os.path.basename(csv_path)}'")
    try:
        with open(csv_path, "rb") as handle:
            data = handle.read()
    except OSError as error:
        problems.append(f"unreadable CSV: {error}")
        return problems
    if len(data) != manifest["csvBytes"]:
        problems.append(
            f"CSV is {len(data)} bytes, manifest says "
            f"{manifest['csvBytes']}")
    crc = f"{zlib.crc32(data) & 0xFFFFFFFF:08x}"
    if crc != manifest["csvCrc32"]:
        problems.append(
            f"CSV CRC-32 is {crc}, manifest says "
            f"{manifest['csvCrc32']}")
    return problems


def collect(paths):
    """Expand directories into the manifests they contain."""
    manifests = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in sorted(os.walk(path)):
                manifests.extend(
                    os.path.join(root, name)
                    for name in sorted(files)
                    if name.endswith(MANIFEST_SUFFIX))
        else:
            manifests.append(path)
    return manifests


def main():
    parser = argparse.ArgumentParser(
        description="Verify vpsim run manifests")
    parser.add_argument(
        "paths", nargs="+",
        help="manifest files or directories to scan for *.manifest.json")
    args = parser.parse_args()

    manifests = collect(args.paths)
    if not manifests:
        print("verify_manifest: no manifests found", file=sys.stderr)
        return 1

    failed = 0
    for path in manifests:
        problems = verify(path)
        if problems:
            failed += 1
            print(f"FAIL {path}")
            for problem in problems:
                print(f"  - {problem}")
        else:
            print(f"PASS {path}")
    print(f"verify_manifest: {len(manifests) - failed} of "
          f"{len(manifests)} manifest(s) valid")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
