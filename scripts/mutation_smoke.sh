#!/usr/bin/env bash
# Mutation smoke test: prove the self-checking machinery actually
# detects a model bug, not just that it stays quiet on correct code.
#
# Builds a separate tree with -DVPSIM_MUTATION=classifier-drop-correct,
# which deletes the classifier's correct-prediction increment (see
# src/predictor/classifier.cpp). The vp.hit_miss_balance invariant
# (predictions made == correct + wrong) must then fire: under
# --keep-going the affected cells become NaN and the failure list shows
# a [internal] invariant violation. If the mutant runs cleanly, the
# self-checks are dead and this script fails.
#
# Usage: scripts/mutation_smoke.sh [mutant-build-dir]
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$root/build-mutation-smoke}"

echo "mutation-smoke: building mutant (classifier-drop-correct)"
cmake -B "$build" -S "$root" -DCMAKE_BUILD_TYPE=Release \
    -DVPSIM_MUTATION=classifier-drop-correct >/dev/null
cmake --build "$build" -j"$(nproc)" --target fig3_1_fetch_rate >/dev/null

echo "mutation-smoke: running the mutant with --check-invariants cheap"
out="$("$build/bench/fig3_1_fetch_rate" --insts 2000 \
    --benchmarks compress --check-invariants cheap \
    --keep-going 1 2>&1 || true)"

if grep -q "vp.hit_miss_balance" <<<"$out" &&
    grep -q "\[internal\]" <<<"$out"; then
    echo "mutation-smoke: PASS (invariant engine caught the mutant:" \
         "kInternal NaN cells)"
else
    echo "mutation-smoke: FAIL - the mutant ran without tripping" \
         "vp.hit_miss_balance; self-checks are not protecting the" \
         "predictor bookkeeping"
    echo "---- mutant output ----"
    echo "$out"
    exit 1
fi

echo "mutation-smoke: checking --check-invariants off lets the mutant through"
out_off="$("$build/bench/fig3_1_fetch_rate" --insts 2000 \
    --benchmarks compress --check-invariants off \
    --keep-going 1 2>&1 || true)"
if grep -q "vp.hit_miss_balance" <<<"$out_off"; then
    echo "mutation-smoke: FAIL - invariants fired despite" \
         "--check-invariants off"
    exit 1
fi
echo "mutation-smoke: PASS (gate respected: off level is silent)"
