#!/usr/bin/env bash
# Rebuild the project, run the full test suite, and regenerate every
# paper figure and ablation into an output directory.
#
# Usage: scripts/reproduce_all.sh [output-dir] [extra bench args...]
#   e.g. scripts/reproduce_all.sh results --insts 1000000 --scale 2
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-reproduction-$(date +%Y%m%d-%H%M%S)}"
if [ $# -gt 0 ]; then shift; fi
mkdir -p "$out"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure | tee "$out/tests.txt"

# Shared trace cache: the workload captures happen once, not once per
# bench binary (see docs/RUNNING.md).
cache="$out/trace-cache"
mkdir -p "$cache"

for bench in build/bench/*; do
    [ -f "$bench" ] && [ -x "$bench" ] || continue
    name="$(basename "$bench")"
    echo "== $name"
    if [ "$name" = "microbench_components" ]; then
        "$bench" > "$out/$name.txt" 2>&1
    else
        # Some binaries (the worked-example tables) take no options.
        "$bench" --csv "$out/figures.csv" --trace-cache-dir "$cache" \
                "$@" > "$out/$name.txt" 2>&1 ||
            "$bench" > "$out/$name.txt" 2>&1
    fi
done

echo "reproduction artifacts written to $out/"
