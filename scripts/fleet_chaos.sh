#!/usr/bin/env bash
# Fleet chaos harness: drive the multi-process sweep supervisor through
# worker crashes, hangs, ENOSPC, a poisoned cell, a kill -9'd
# supervisor, and tampered artifacts, and require that recovery never
# changes a byte of the merged output.
#
#   1. golden:     single-process (--fleet-workers 0) run — the
#                  reference stdout + CSV + signed fleet manifest.
#   2. clean fleet: 3 workers, no faults; stdout, CSV and manifest must
#                  all be byte-identical to the golden run (worker
#                  counts are deliberately outside the signed region).
#   3. kill9:      `worker:2:kill9` SIGKILLs one worker after its first
#                  cell; the supervisor retries and output is unchanged.
#   4. hang:       `worker:1:hang` stops one worker's heartbeat; the
#                  watchdog kill -9s it after --fleet-worker-timeout
#                  and the retry completes the shard.
#   5. enospc:     `worker:2:enospc` makes one worker exit with the IO
#                  exit code before publishing; retried, unchanged.
#   6. poison:     --poison-cell N crashes any worker evaluating cell N;
#                  bisection must quarantine exactly that one cell as
#                  NaN — in both modes, with byte-identical CSVs and
#                  (because the signed lineage is deterministic)
#                  byte-identical manifests too.
#   7. supervisor kill -9: the supervisor is SIGKILLed mid-run; a rerun
#                  with --fleet-resume 1 reuses every published shard
#                  and produces the golden bytes.
#   8. store corruption: a published shard result is bit-flipped; the
#                  resume run must quarantine it (.corrupt-*),
#                  recompute, and still produce the golden bytes.
#   9. tamper:     editing the merged CSV must make
#                  scripts/verify_manifest.py fail.
#  10. salvage parity: a damaged v3 trace cache under --salvage-blocks
#                  must report identical salvage totals from the fleet
#                  (per-worker totals merged by the supervisor) and the
#                  single process.
#
# Wired into ctest as `fleet_chaos`.
#
# Usage: scripts/fleet_chaos.sh [build-dir]
set -euo pipefail

build="${1:-build}"
bench="$build/bench/fleet_sweep"
[ -x "$bench" ] || { echo "no fleet binary at '$bench'" >&2; exit 1; }
scripts="$(cd "$(dirname "$0")" && pwd)"
bench="$(cd "$(dirname "$bench")" && pwd)/$(basename "$bench")"

work="$(mktemp -d "${TMPDIR:-/tmp}/vpsim-fleet-chaos.XXXXXX")"
trap 'rm -rf "$work"' EXIT

# Every stage runs in its own subdirectory with the same relative
# --csv out.csv so the signed csvFile field matches across runs.
args=(--insts 2000 --benchmarks go,compress --fetch-rates 4,8
      --fleet-shard-cells 4 --fleet-retry-base-ms 20)
failed=0

run_stage() { # run_stage <dir> <fleet args...>
    local dir="$work/$1"; shift
    mkdir -p "$dir"
    (cd "$dir" && "$bench" "${args[@]}" "$@" --csv out.csv \
        > stdout.txt 2> stderr.txt)
}

check_identical() { # check_identical <label> <dir> [with-manifest]
    local label="$1" dir="$work/$2" manifest="${3:-yes}"
    if ! cmp -s "$work/golden/stdout.txt" "$dir/stdout.txt"; then
        echo "FAIL: $label stdout differs from golden" >&2
        diff "$work/golden/stdout.txt" "$dir/stdout.txt" | head -10 >&2
        failed=1
        return
    fi
    if ! cmp -s "$work/golden/out.csv" "$dir/out.csv"; then
        echo "FAIL: $label CSV differs from golden" >&2
        failed=1
        return
    fi
    if [ "$manifest" = yes ] &&
       ! cmp -s "$work/golden/out.csv.fleet-manifest.json" \
                "$dir/out.csv.fleet-manifest.json"; then
        echo "FAIL: $label fleet manifest differs from golden" >&2
        diff "$work/golden/out.csv.fleet-manifest.json" \
             "$dir/out.csv.fleet-manifest.json" | head -10 >&2
        failed=1
        return
    fi
    echo "ok: $label output is byte-identical"
}

echo "== golden (single process, --fleet-workers 0)"
run_stage golden --fleet-workers 0

echo "== clean fleet (3 workers, no faults)"
run_stage clean --fleet-workers 3
check_identical "clean fleet" clean

echo "== worker kill -9 (worker:2:kill9)"
run_stage kill9 --fleet-workers 3 --fault-inject worker:2:kill9
check_identical "kill9" kill9
grep -q "1 transient retry" "$work/kill9/stderr.txt" ||
    { echo "FAIL: kill9 run retried nothing" >&2; failed=1; }

echo "== worker hang (worker:1:hang, 5s watchdog)"
run_stage hang --fleet-workers 3 --fault-inject worker:1:hang \
    --fleet-worker-timeout 5
check_identical "hang" hang

echo "== worker ENOSPC (worker:2:enospc)"
run_stage enospc --fleet-workers 3 --fault-inject worker:2:enospc
check_identical "enospc" enospc

echo "== poisoned cell (--poison-cell 5, both modes)"
run_stage poison0 --fleet-workers 0 --poison-cell 5
run_stage poison1 --fleet-workers 3 --poison-cell 5
for mode in poison0 poison1; do
    nan_rows="$(grep -c nan "$work/$mode/out.csv" || true)"
    if [ "$nan_rows" -ne 1 ]; then
        echo "FAIL: $mode has $nan_rows NaN rows, want exactly 1" >&2
        failed=1
    fi
done
if ! cmp -s "$work/poison0/out.csv" "$work/poison1/out.csv"; then
    echo "FAIL: poisoned CSVs differ between modes" >&2
    failed=1
else
    echo "ok: poisoned cell is exactly one NaN, identical across modes"
fi
# The signed lineage is deterministic (attempts at a terminal loss are
# the policy budget, bisection ids derive from the parent), so even
# the poisoned manifests must match byte-for-byte across modes.
if ! cmp -s "$work/poison0/out.csv.fleet-manifest.json" \
            "$work/poison1/out.csv.fleet-manifest.json"; then
    echo "FAIL: poisoned manifests differ between modes" >&2
    diff "$work/poison0/out.csv.fleet-manifest.json" \
         "$work/poison1/out.csv.fleet-manifest.json" | head -10 >&2
    failed=1
fi
python3 "$scripts/verify_manifest.py" \
    "$work/poison0/out.csv.fleet-manifest.json" \
    "$work/poison1/out.csv.fleet-manifest.json" > /dev/null ||
    { echo "FAIL: poisoned manifests do not verify" >&2; failed=1; }

echo "== supervisor kill -9 mid-run, then --fleet-resume 1"
mkdir -p "$work/resume"
store="$work/resume/store"
# exec setsid: $! becomes the supervisor itself, alone (with its
# workers) in a fresh process group we can SIGKILL wholesale without
# touching this script.
(cd "$work/resume" && exec setsid "$bench" "${args[@]}" \
    --fleet-workers 1 --fleet-shard-cells 2 --result-store store \
    --csv pre.csv > pre.stdout 2> pre.stderr) &
runner=$!
disown "$runner" # no async "Killed" job notice from the shell
# Wait for at least one published shard, then SIGKILL the supervisor's
# whole process group (supervisor + any worker it has running).
for _ in $(seq 1 500); do
    if ls "$store"/shard-*.vpshard > /dev/null 2>&1; then break; fi
    sleep 0.02
done
kill -9 "-$runner" 2> /dev/null || true
while kill -0 "$runner" 2> /dev/null; do sleep 0.02; done
published="$(ls "$store"/shard-*.vpshard 2> /dev/null | wc -l)"
if [ "$published" -lt 1 ]; then
    echo "FAIL: no shard results were published before the kill" >&2
    failed=1
fi
(cd "$work/resume" && "$bench" "${args[@]}" --fleet-workers 3 \
    --fleet-shard-cells 2 --result-store store --fleet-resume 1 \
    --csv out.csv > stdout.txt 2> stderr.txt)
check_identical "supervisor kill -9 + resume" resume no
if ! grep -q "[1-9][0-9]* reused cell" "$work/resume/stderr.txt"; then
    echo "FAIL: resume run reused no published shards" >&2
    cat "$work/resume/stderr.txt" >&2
    failed=1
else
    echo "ok: resume reused $published published shard(s) without" \
         "recomputing"
fi

echo "== store corruption (bit-flipped shard result, then resume)"
mkdir -p "$work/corrupt"
(cd "$work/corrupt" && "$bench" "${args[@]}" --fleet-workers 2 \
    --result-store store --csv pre.csv > /dev/null 2> /dev/null)
victim="$(ls "$work/corrupt/store"/shard-*.vpshard | head -1)"
printf 'X' | dd of="$victim" bs=1 seek=60 conv=notrunc 2> /dev/null
(cd "$work/corrupt" && "$bench" "${args[@]}" --fleet-workers 2 \
    --result-store store --fleet-resume 1 --csv out.csv \
    > stdout.txt 2> stderr.txt)
check_identical "store corruption" corrupt no
if ls "$work/corrupt/store"/.corrupt-* > /dev/null 2>&1; then
    echo "ok: corrupt shard result quarantined and recomputed"
else
    echo "FAIL: corrupt shard result was not quarantined" >&2
    failed=1
fi

echo "== tampered CSV (verify_manifest.py must fail)"
sed 's/^fleet,go/fleet,GO/' "$work/clean/out.csv" > "$work/clean/tampered"
mv "$work/clean/tampered" "$work/clean/out.csv"
if python3 "$scripts/verify_manifest.py" \
    "$work/clean/out.csv.fleet-manifest.json" > /dev/null 2>&1; then
    echo "FAIL: verify_manifest.py accepted a tampered CSV" >&2
    failed=1
else
    echo "ok: tampered CSV rejected by verify_manifest.py"
fi

echo "== salvage parity (damaged v3 cache, per-worker totals merged)"
cache="$work/salvage-cache"
mkdir -p "$work/sal0"
(cd "$work/sal0" && "$bench" "${args[@]}" --fleet-workers 0 \
    --trace-cache-dir "$cache" --csv pre.csv > /dev/null 2> /dev/null)
# Bit-flip the middle of every cached v3 trace: --salvage-blocks must
# quarantine the damaged block(s) identically in both modes. (The
# salvaged results legitimately differ from golden — records were
# lost — so this stage compares the two modes against each other.)
for entry in "$cache"/*-v3.vptrace; do
    size="$(stat -c %s "$entry")"
    printf 'X' | dd of="$entry" bs=1 seek=$((size / 2)) \
        conv=notrunc 2> /dev/null
done
# --fleet-shard-cells 8 = one workload row per shard in BOTH modes:
# traces load (and salvage) once per shard, so matching shard sizes is
# what makes the totals comparable.
run_stage sal_single --fleet-workers 0 --fleet-shard-cells 8 \
    --trace-cache-dir "$cache" --salvage-blocks 1
run_stage sal_fleet --fleet-workers 2 --fleet-shard-cells 8 \
    --trace-cache-dir "$cache" --salvage-blocks 1
single_line="$(grep "sim: salvage" "$work/sal_single/stderr.txt" || true)"
fleet_line="$(grep "sim: salvage" "$work/sal_fleet/stderr.txt" || true)"
if [ -z "$single_line" ]; then
    echo "FAIL: single-process salvage run reported no salvage" >&2
    failed=1
elif [ "$single_line" != "$fleet_line" ]; then
    echo "FAIL: salvage totals differ:" >&2
    echo "  single: $single_line" >&2
    echo "  fleet:  $fleet_line" >&2
    failed=1
else
    echo "ok: fleet salvage totals match the single process"
fi
if ! cmp -s "$work/sal_single/out.csv" "$work/sal_fleet/out.csv"; then
    echo "FAIL: salvage-mode CSVs differ between modes" >&2
    failed=1
fi

if [ "$failed" -ne 0 ]; then
    echo "fleet chaos FAILED" >&2
    exit 1
fi
echo "fleet chaos OK (crashes, hangs, ENOSPC, poison, kill -9 and" \
     "tampering all contained)"
