/**
 * @file
 * Section 4.2 ablation — predictor choice and the hybrid's effect on the
 * value distributor.
 *
 * The paper argues for a hybrid predictor (large last-value table +
 * small stride table, after [9]) because merged requests served by the
 * last-value component need no distributor arithmetic. This bench
 * compares last-value / stride / 2-delta / hybrid predictors on the
 * ideal machine (accuracy and speedup at BW=16) and counts the
 * distributor additions each would require behind the banked table.
 */

#include <cstdio>

#include "core/ideal_machine.hpp"
#include "core/pipeline_machine.hpp"
#include "core/speedup.hpp"
#include "common/table_printer.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    options.parse(argc, argv,
                  "Section 4.2 ablation: predictor kind comparison");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();

    const std::vector<std::pair<PredictorKind, std::string>> kinds = {
        {PredictorKind::LastValue, "last-value"},
        {PredictorKind::Stride, "stride"},
        {PredictorKind::TwoDeltaStride, "2-delta"},
        {PredictorKind::Hybrid, "hybrid"},
        {PredictorKind::Fcm, "fcm (order 2)"},
    };

    // One job per (predictor kind, benchmark); each owns the gain,
    // accuracy and distributor-adds cells for that pair.
    std::vector<std::vector<double>> gain(
        kinds.size(), std::vector<double>(bench.size()));
    std::vector<std::vector<double>> acc(
        kinds.size(), std::vector<double>(bench.size()));
    std::vector<std::vector<double>> adds(
        kinds.size(), std::vector<double>(bench.size()));
    std::vector<SimJob> batch;
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        for (std::size_t i = 0; i < bench.size(); ++i) {
            batch.push_back(
                {kinds[k].second + ":" + bench.names[i], [&, k, i] {
                     const PredictorKind kind = kinds[k].first;
                     IdealMachineConfig config;
                     config.fetchRate = 16;
                     config.predictorKind = kind;
                     gain[k][i] =
                         idealVpSpeedup(bench.trace(i), config) - 1.0;

                     IdealMachineConfig probe = config;
                     probe.useValuePrediction = true;
                     const IdealMachineResult run =
                         runIdealMachine(bench.trace(i), probe);
                     if (run.predictionsMade > 0) {
                         acc[k][i] =
                             static_cast<double>(
                                 run.predictionsCorrect) /
                             static_cast<double>(run.predictionsMade);
                     }

                     // Distributor arithmetic behind the banked table.
                     PipelineConfig pipe;
                     pipe.frontEnd = FrontEndKind::TraceCache;
                     pipe.perfectBranchPredictor = true;
                     pipe.useValuePrediction = true;
                     pipe.useInterleavedVpTable = true;
                     pipe.predictorKind = kind;
                     const PipelineResult pres =
                         runPipelineMachine(bench.trace(i), pipe);
                     adds[k][i] =
                         1000.0 *
                         static_cast<double>(
                             pres.vptDistributorAdditions) /
                         static_cast<double>(pres.instructions);
                 }});
        }
    }
    runner.run(std::move(batch));

    TablePrinter table(
        "Section 4.2 ablation - predictor kinds "
        "(ideal machine BW=16 + banked-table distributor load)",
        {"predictor", "VP speedup", "accuracy",
         "distributor adds/1k insts"});
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        table.addRow(
            {kinds[k].second,
             TablePrinter::percentCell(arithmeticMean(gain[k])),
             TablePrinter::percentCell(arithmeticMean(acc[k])),
             TablePrinter::numberCell(arithmeticMean(adds[k]), 1)});
    }

    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: the hybrid keeps most of the stride "
              "predictor's speedup while cutting the distributor "
              "additions (last-value hits distribute one value with no "
              "arithmetic), as argued in Section 4.2");
    runner.reportStats();
    return 0;
}
