/**
 * @file
 * Section 4.2 ablation — predictor choice and the hybrid's effect on the
 * value distributor.
 *
 * The paper argues for a hybrid predictor (large last-value table +
 * small stride table, after [9]) because merged requests served by the
 * last-value component need no distributor arithmetic. This bench
 * compares last-value / stride / 2-delta / hybrid predictors on the
 * ideal machine (accuracy and speedup at BW=16) and counts the
 * distributor additions each would require behind the banked table.
 */

#include <cstdio>

#include "core/ideal_machine.hpp"
#include "core/pipeline_machine.hpp"
#include "common/table_printer.hpp"
#include "sim/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    options.parse(argc, argv,
                  "Section 4.2 ablation: predictor kind comparison");
    const BenchmarkTraces bench = captureBenchmarks(options);

    const std::vector<std::pair<PredictorKind, std::string>> kinds = {
        {PredictorKind::LastValue, "last-value"},
        {PredictorKind::Stride, "stride"},
        {PredictorKind::TwoDeltaStride, "2-delta"},
        {PredictorKind::Hybrid, "hybrid"},
        {PredictorKind::Fcm, "fcm (order 2)"},
    };

    TablePrinter table(
        "Section 4.2 ablation - predictor kinds "
        "(ideal machine BW=16 + banked-table distributor load)",
        {"predictor", "VP speedup", "accuracy",
         "distributor adds/1k insts"});

    for (const auto &[kind, label] : kinds) {
        double gain_sum = 0.0;
        double acc_sum = 0.0;
        double adds_sum = 0.0;
        for (std::size_t i = 0; i < bench.size(); ++i) {
            IdealMachineConfig config;
            config.fetchRate = 16;
            config.predictorKind = kind;
            gain_sum += idealVpSpeedup(bench.traces[i], config) - 1.0;

            IdealMachineConfig probe = config;
            probe.useValuePrediction = true;
            const IdealMachineResult run =
                runIdealMachine(bench.traces[i], probe);
            if (run.predictionsMade > 0) {
                acc_sum +=
                    static_cast<double>(run.predictionsCorrect) /
                    static_cast<double>(run.predictionsMade);
            }

            // Distributor arithmetic behind the banked table.
            PipelineConfig pipe;
            pipe.frontEnd = FrontEndKind::TraceCache;
            pipe.perfectBranchPredictor = true;
            pipe.useValuePrediction = true;
            pipe.useInterleavedVpTable = true;
            pipe.predictorKind = kind;
            const PipelineResult pres =
                runPipelineMachine(bench.traces[i], pipe);
            adds_sum +=
                1000.0 *
                static_cast<double>(pres.vptDistributorAdditions) /
                static_cast<double>(pres.instructions);
        }
        const double n = static_cast<double>(bench.size());
        table.addRow({label, TablePrinter::percentCell(gain_sum / n),
                      TablePrinter::percentCell(acc_sum / n),
                      TablePrinter::numberCell(adds_sum / n, 1)});
    }

    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: the hybrid keeps most of the stride "
              "predictor's speedup while cutting the distributor "
              "additions (last-value hits distribute one value with no "
              "arithmetic), as argued in Section 4.2");
    return 0;
}
