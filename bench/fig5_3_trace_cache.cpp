/**
 * @file
 * Figure 5.3 — "Value prediction speedup when using a trace cache."
 *
 * The Section 5 machine fed by a trace cache (64 entries, direct mapped,
 * lines of up to 32 instructions / 6 basic blocks, as in Rotenberg et
 * al.), once with an ideal branch predictor and once with the 2-level
 * PAp BTB. Speedup is VP on vs VP off on the same machine.
 *
 * Paper reference: >10% average VP speedup with the 2-level BTB and just
 * under 40% average with the ideal BTB; the gap shows the BTB's accuracy
 * throttles how much of the trace cache's bandwidth VP can exploit.
 */

#include <cstdio>

#include "core/pipeline_machine.hpp"
#include "sim/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    options.parse(argc, argv,
                  "Figure 5.3: VP speedup with a trace cache");
    const BenchmarkTraces bench = captureBenchmarks(options);

    const std::vector<std::string> columns = {"TC+2levelBTB",
                                              "TC+idealBTB"};
    std::vector<std::vector<double>> gains(bench.size());
    std::vector<std::vector<double>> hit_rates(bench.size());
    for (std::size_t i = 0; i < bench.size(); ++i) {
        for (const bool ideal : {false, true}) {
            PipelineConfig config;
            config.frontEnd = FrontEndKind::TraceCache;
            config.perfectBranchPredictor = ideal;
            const double speedup =
                pipelineVpSpeedup(bench.traces[i], config);
            gains[i].push_back(speedup - 1.0);

            PipelineConfig probe = config;
            probe.useValuePrediction = true;
            hit_rates[i].push_back(
                runPipelineMachine(bench.traces[i], probe).tcHitRate);
        }
    }

    std::fputs(renderPercentTable(
                   "Figure 5.3 - VP speedup with a trace cache "
                   "(64 entries, direct mapped, <=32 insts / <=6 BBs "
                   "per line)",
                   bench.names, columns, gains)
                   .c_str(),
               stdout);
    std::fputs(renderPercentTable("\ntrace cache hit rate", bench.names,
                                  columns, hit_rates)
                   .c_str(),
               stdout);
    std::puts("\npaper reference (avg): >10% with the 2-level BTB, "
              "<40% with an ideal BTB");
    return 0;
}
