/**
 * @file
 * Figure 5.3 — "Value prediction speedup when using a trace cache."
 *
 * The Section 5 machine fed by a trace cache (64 entries, direct mapped,
 * lines of up to 32 instructions / 6 basic blocks, as in Rotenberg et
 * al.), once with an ideal branch predictor and once with the 2-level
 * PAp BTB. Speedup is VP on vs VP off on the same machine.
 *
 * Paper reference: >10% average VP speedup with the 2-level BTB and just
 * under 40% average with the ideal BTB; the gap shows the BTB's accuracy
 * throttles how much of the trace cache's bandwidth VP can exploit.
 */

#include <cstdio>

#include "core/pipeline_machine.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    options.parse(argc, argv,
                  "Figure 5.3: VP speedup with a trace cache");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();

    const std::vector<std::string> columns = {"TC+2levelBTB",
                                              "TC+idealBTB"};
    // Each (benchmark, BTB) job owns one gains and one hit-rate cell.
    std::vector<std::vector<double>> gains(bench.size(),
                                           std::vector<double>(2));
    std::vector<std::vector<double>> hit_rates(bench.size(),
                                               std::vector<double>(2));
    std::vector<SimJob> batch;
    for (std::size_t i = 0; i < bench.size(); ++i) {
        for (std::size_t col = 0; col < 2; ++col) {
            batch.push_back(
                {bench.names[i] + ":" + columns[col], [&, i, col] {
                     PipelineConfig config;
                     config.frontEnd = FrontEndKind::TraceCache;
                     config.perfectBranchPredictor = col == 1;
                     gains[i][col] =
                         pipelineVpSpeedup(bench.trace(i), config) - 1.0;

                     PipelineConfig probe = config;
                     probe.useValuePrediction = true;
                     hit_rates[i][col] =
                         runPipelineMachine(bench.trace(i), probe)
                             .tcHitRate;
                 }});
        }
    }
    runner.run(std::move(batch));

    std::fputs(renderPercentTable(
                   "Figure 5.3 - VP speedup with a trace cache "
                   "(64 entries, direct mapped, <=32 insts / <=6 BBs "
                   "per line)",
                   bench.names, columns, gains)
                   .c_str(),
               stdout);
    std::fputs(renderPercentTable("\ntrace cache hit rate", bench.names,
                                  columns, hit_rates)
                   .c_str(),
               stdout);
    std::puts("\npaper reference (avg): >10% with the 2-level BTB, "
              "<40% with an ideal BTB");
    maybeWriteCsv(options, "fig5.3", bench.names, columns, gains);
    maybeWriteCsv(options, "fig5.3.tc_hit_rate", bench.names, columns,
                  hit_rates);
    runner.reportStats();
    return 0;
}
