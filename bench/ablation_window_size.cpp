/**
 * @file
 * Ablation — sensitivity of Figure 3.1 to the instruction window size.
 *
 * The paper fixes the window at 40 entries (§3.1). This bench re-runs
 * the BW=40 point of Figure 3.1 with windows of 16..256 entries. With
 * tiny windows the machine cannot keep enough iterations in flight for
 * value prediction to matter; at larger windows the picture is
 * two-sided, because the baseline machine also mines more ILP from the
 * window and every wrong speculation shows up on the now-tighter
 * critical path.
 */

#include <cstdio>

#include "core/ideal_machine.hpp"
#include "sim/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    options.parse(argc, argv,
                  "ablation: Figure 3.1 vs instruction window size");
    const BenchmarkTraces bench = captureBenchmarks(options);

    const std::vector<unsigned> windows = {16, 40, 64, 128, 256};
    std::vector<std::string> columns;
    for (const unsigned window : windows)
        columns.push_back("W=" + std::to_string(window));

    std::vector<std::vector<double>> gains(bench.size());
    for (std::size_t i = 0; i < bench.size(); ++i) {
        for (const unsigned window : windows) {
            IdealMachineConfig config;
            config.fetchRate = 40;
            config.windowSize = window;
            gains[i].push_back(
                idealVpSpeedup(bench.traces[i], config) - 1.0);
        }
    }

    std::fputs(renderPercentTable(
                   "Window-size ablation - VP speedup on the ideal "
                   "machine at BW=40",
                   bench.names, columns, gains)
                   .c_str(),
               stdout);
    std::puts("\ntakeaway: window scaling is NON-monotone per "
              "benchmark: a larger window also speeds the no-VP "
              "baseline and exposes more wrong speculations to the "
              "1-cycle penalty; only the 16 -> 256 average trend is "
              "robustly upward");
    return 0;
}
