/**
 * @file
 * Ablation — sensitivity of Figure 3.1 to the instruction window size.
 *
 * The paper fixes the window at 40 entries (§3.1). This bench re-runs
 * the BW=40 point of Figure 3.1 with windows of 16..256 entries. With
 * tiny windows the machine cannot keep enough iterations in flight for
 * value prediction to matter; at larger windows the picture is
 * two-sided, because the baseline machine also mines more ILP from the
 * window and every wrong speculation shows up on the now-tighter
 * critical path.
 */

#include <cstdio>

#include "core/ideal_machine.hpp"
#include "core/reference_machine.hpp"
#include "predictor/factory.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    declarePredictorOption(options);
    options.parse(argc, argv,
                  "ablation: Figure 3.1 vs instruction window size");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();
    const PredictorKind predictor =
        predictorKindFromString(options.getString("predictor"));

    const std::vector<unsigned> windows = {16, 40, 64, 128, 256};
    std::vector<std::string> columns;
    for (const unsigned window : windows)
        columns.push_back("W=" + std::to_string(window));

    const auto pointConfig = [&](std::size_t col) {
        IdealMachineConfig config;
        config.fetchRate = 40;
        config.windowSize = windows[col];
        config.predictorKind = predictor;
        return config;
    };
    const auto gains = runner.runGrid(
        bench.size(), windows.size(),
        [&](std::size_t row, std::size_t col) {
            return idealVpSpeedup(bench.trace(row), pointConfig(col)) -
                   1.0;
        },
        [&](std::size_t row, std::size_t col) {
            return referenceIdealVpSpeedup(bench.trace(row),
                                           pointConfig(col)) -
                   1.0;
        });

    std::fputs(renderPercentTable(
                   "Window-size ablation - VP speedup on the ideal "
                   "machine at BW=40",
                   bench.names, columns, gains)
                   .c_str(),
               stdout);
    std::puts("\ntakeaway: window scaling is NON-monotone per "
              "benchmark: a larger window also speeds the no-VP "
              "baseline and exposes more wrong speculations to the "
              "1-cycle penalty; only the 16 -> 256 average trend is "
              "robustly upward");
    runner.reportStats();
    return 0;
}
