/**
 * @file
 * Figure 5.1 — "Value prediction speedup when using an ideal BTB."
 *
 * The Section 5 machine (window 40, 40 FUs, issue width 40, branch
 * mispredict penalty 3, value mispredict penalty 1, stride predictor
 * with 2-bit classification) with a PERFECT branch predictor and a fetch
 * engine that can cross up to n taken branches per cycle,
 * n in {1, 2, 3, 4, unlimited}. Speedup is VP on vs VP off on the same
 * machine.
 *
 * Paper reference (averages): n=1 ~3%, rising to ~50% at n=4.
 */

#include <cstdio>

#include "core/pipeline_machine.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    options.parse(argc, argv,
                  "Figure 5.1: VP speedup vs taken branches/cycle, "
                  "perfect branch prediction");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();

    const std::vector<unsigned> taken_limits = {1, 2, 3, 4, 0};
    std::vector<std::string> columns = {"n=1", "n=2", "n=3", "n=4",
                                        "unlimited"};

    const auto gains = runner.runGrid(
        bench.size(), taken_limits.size(),
        [&](std::size_t row, std::size_t col) {
            PipelineConfig config;
            config.frontEnd = FrontEndKind::Sequential;
            config.maxTakenBranches = taken_limits[col];
            config.perfectBranchPredictor = true;
            return pipelineVpSpeedup(bench.trace(row), config) - 1.0;
        });

    std::fputs(renderPercentTable(
                   "Figure 5.1 - VP speedup vs max taken branches per "
                   "cycle (ideal BTB)",
                   bench.names, columns, gains)
                   .c_str(),
               stdout);
    std::puts("\npaper reference (avg): ~3% at n=1, ~50% at n=4");
    maybeWriteCsv(options, "fig5.1", bench.names, columns, gains);
    runner.reportStats();
    return 0;
}
