/**
 * @file
 * Ablation — value-misprediction penalty sensitivity.
 *
 * The paper fixes the penalty at 1 cycle (citing [14]/[9]: only the
 * dependent instructions are invalidated and rescheduled). Selective
 * reissue is expensive hardware; a cheaper design squashes more and
 * pays more cycles. This sweep shows how the Figure 3.1 BW=16 point
 * degrades as the penalty grows — i.e. how much of the paper's headline
 * depends on cheap recovery.
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "core/ideal_machine.hpp"
#include "core/reference_machine.hpp"
#include "predictor/factory.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    declarePredictorOption(options);
    options.parse(argc, argv,
                  "ablation: value-misprediction penalty sweep");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();
    const PredictorKind predictor =
        predictorKindFromString(options.getString("predictor"));

    const std::vector<unsigned> penalties = {0, 1, 2, 4, 8};
    std::vector<std::string> columns;
    for (const unsigned p : penalties)
        columns.push_back("penalty=" + std::to_string(p));

    const auto pointConfig = [&](std::size_t col) {
        IdealMachineConfig config;
        config.fetchRate = 16;
        config.vpPenalty = penalties[col];
        config.predictorKind = predictor;
        return config;
    };
    const auto gains = runner.runGrid(
        bench.size(), penalties.size(),
        [&](std::size_t row, std::size_t col) {
            return idealVpSpeedup(bench.trace(row), pointConfig(col)) -
                   1.0;
        },
        [&](std::size_t row, std::size_t col) {
            return referenceIdealVpSpeedup(bench.trace(row),
                                           pointConfig(col)) -
                   1.0;
        });

    std::fputs(renderPercentTable(
                   "VP-penalty ablation - ideal machine at BW=16",
                   bench.names, columns, gains)
                   .c_str(),
               stdout);
    maybeWriteCsv(options, "ablation.vp_penalty", bench.names, columns,
                  gains);
    std::puts("\ntakeaway: the cost of the paper's 1-cycle assumption "
              "is modest (vs penalty 0), but the speedup falls off "
              "steeply beyond ~4 cycles - squash-style recovery would "
              "forfeit most of the headline gain, so selective reissue "
              "IS load-bearing for aggressive value prediction");
    runner.reportStats();
    return 0;
}
