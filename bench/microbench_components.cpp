/**
 * @file
 * Component micro-benchmarks (google-benchmark): raw throughput of the
 * predictors, the branch predictor, the trace interpreter, the DID
 * collector, both machine models, and the experiment runtime (thread
 * pool scheduling overhead, trace-cache round trips). These guard
 * against performance regressions that would make the figure sweeps
 * impractically slow.
 */

#include <benchmark/benchmark.h>

#include <atomic>
#include <filesystem>

#include "analysis/did.hpp"
#include "bpred/two_level.hpp"
#include "common/thread_pool.hpp"
#include "core/ideal_machine.hpp"
#include "core/pipeline_machine.hpp"
#include "predictor/factory.hpp"
#include "trace/trace_cache_store.hpp"
#include "workloads/workload.hpp"

namespace
{

using namespace vpsim;

const std::vector<TraceRecord> &
sharedTrace()
{
    static const std::vector<TraceRecord> trace =
        captureWorkloadTrace("m88ksim", 100000);
    return trace;
}

void
benchPredictor(benchmark::State &state, PredictorKind kind)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        auto predictor = makeClassifiedPredictor(kind);
        for (const TraceRecord &rec : trace) {
            if (!rec.producesValue())
                continue;
            const ClassifiedPrediction p = predictor->predict(rec.pc);
            predictor->update(rec.pc, p, rec.result);
        }
        benchmark::DoNotOptimize(predictor->predictionsCorrect());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void
benchPredictorFused(benchmark::State &state, PredictorKind kind)
{
    // Same work as benchPredictor through the fused immediate-verify
    // entry point the ideal machine uses (one table probe per half).
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        auto predictor = makeClassifiedPredictor(kind);
        for (const TraceRecord &rec : trace) {
            if (!rec.producesValue())
                continue;
            const ClassifiedPrediction p =
                predictor->predictAndTrain(rec.pc, rec.result);
            benchmark::DoNotOptimize(p.predicted);
        }
        benchmark::DoNotOptimize(predictor->predictionsCorrect());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void BM_LastValuePredictor(benchmark::State &state)
{ benchPredictor(state, PredictorKind::LastValue); }
void BM_StridePredictor(benchmark::State &state)
{ benchPredictor(state, PredictorKind::Stride); }
void BM_StridePredictorFused(benchmark::State &state)
{ benchPredictorFused(state, PredictorKind::Stride); }
void BM_HybridPredictor(benchmark::State &state)
{ benchPredictor(state, PredictorKind::Hybrid); }

void
BM_TwoLevelBtb(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        TwoLevelPApPredictor bpred;
        for (const TraceRecord &rec : trace) {
            if (!rec.isControlFlow())
                continue;
            const BranchPrediction p = bpred.predict(rec);
            bpred.update(rec, p);
        }
        benchmark::DoNotOptimize(bpred.correctPredictions());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void
BM_TraceCapture(benchmark::State &state)
{
    for (auto _ : state) {
        const auto trace = captureWorkloadTrace("compress", 50000);
        benchmark::DoNotOptimize(trace.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 50000);
}

void
BM_DidCollector(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        const DidAnalysis did = analyzeDid(trace);
        benchmark::DoNotOptimize(did.averageDid);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void
BM_IdealMachine(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    IdealMachineConfig config;
    config.fetchRate = static_cast<unsigned>(state.range(0));
    config.useValuePrediction = true;
    for (auto _ : state) {
        const IdealMachineResult run = runIdealMachine(trace, config);
        benchmark::DoNotOptimize(run.cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void
BM_PipelineMachine(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    PipelineConfig config;
    config.useValuePrediction = true;
    config.maxTakenBranches = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const PipelineResult run = runPipelineMachine(trace, config);
        benchmark::DoNotOptimize(run.cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void
BM_PipelineTraceCache(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    PipelineConfig config;
    config.useValuePrediction = true;
    config.frontEnd = FrontEndKind::TraceCache;
    for (auto _ : state) {
        const PipelineResult run = runPipelineMachine(trace, config);
        benchmark::DoNotOptimize(run.cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void
BM_ThreadPoolSubmitWait(benchmark::State &state)
{
    // Scheduling overhead per (trivial) task: dominated by queue and
    // wakeup costs, the fixed tax every SimJob pays.
    ThreadPool pool(static_cast<unsigned>(state.range(0)));
    constexpr int tasksPerBatch = 256;
    for (auto _ : state) {
        std::atomic<int> done{0};
        for (int i = 0; i < tasksPerBatch; ++i) {
            pool.submit([&done] {
                done.fetch_add(1, std::memory_order_relaxed);
            });
        }
        pool.wait();
        benchmark::DoNotOptimize(done.load());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * tasksPerBatch);
}

void
BM_TraceCacheRoundTrip(benchmark::State &state)
{
    const auto dir = std::filesystem::temp_directory_path() /
        "vpsim-microbench-cache";
    std::filesystem::remove_all(dir);
    TraceCacheStore cache(dir.string());
    TraceCacheKey key;
    key.workload = "m88ksim";
    key.insts = 100000;
    const Status stored = cache.store(key, sharedTrace());
    if (!stored.isOk())
        state.SkipWithError(stored.message().c_str());
    for (auto _ : state) {
        std::vector<TraceRecord> loaded;
        Status error = Status::ok();
        const bool hit = cache.tryLoad(key, &loaded, &error);
        benchmark::DoNotOptimize(hit);
        benchmark::DoNotOptimize(loaded.size());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * sharedTrace().size()));
    std::filesystem::remove_all(dir);
}

BENCHMARK(BM_ThreadPoolSubmitWait)->Arg(1)->Arg(4);
BENCHMARK(BM_TraceCacheRoundTrip);
BENCHMARK(BM_LastValuePredictor);
BENCHMARK(BM_StridePredictor);
BENCHMARK(BM_StridePredictorFused);
BENCHMARK(BM_HybridPredictor);
BENCHMARK(BM_TwoLevelBtb);
BENCHMARK(BM_TraceCapture);
BENCHMARK(BM_DidCollector);
BENCHMARK(BM_IdealMachine)->Arg(4)->Arg(40);
BENCHMARK(BM_PipelineMachine)->Arg(1)->Arg(4);
BENCHMARK(BM_PipelineTraceCache);

} // namespace
