/**
 * @file
 * Component micro-benchmarks (google-benchmark): raw throughput of the
 * predictors, the branch predictor, the trace interpreter, the DID
 * collector, and both machine models. These guard against performance
 * regressions that would make the figure sweeps impractically slow.
 */

#include <benchmark/benchmark.h>

#include "analysis/did.hpp"
#include "bpred/two_level.hpp"
#include "core/ideal_machine.hpp"
#include "core/pipeline_machine.hpp"
#include "predictor/factory.hpp"
#include "workloads/workload.hpp"

namespace
{

using namespace vpsim;

const std::vector<TraceRecord> &
sharedTrace()
{
    static const std::vector<TraceRecord> trace =
        captureWorkloadTrace("m88ksim", 100000);
    return trace;
}

void
benchPredictor(benchmark::State &state, PredictorKind kind)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        auto predictor = makeClassifiedPredictor(kind);
        for (const TraceRecord &rec : trace) {
            if (!rec.producesValue())
                continue;
            const ClassifiedPrediction p = predictor->predict(rec.pc);
            predictor->update(rec.pc, p, rec.result);
        }
        benchmark::DoNotOptimize(predictor->predictionsCorrect());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void BM_LastValuePredictor(benchmark::State &state)
{ benchPredictor(state, PredictorKind::LastValue); }
void BM_StridePredictor(benchmark::State &state)
{ benchPredictor(state, PredictorKind::Stride); }
void BM_HybridPredictor(benchmark::State &state)
{ benchPredictor(state, PredictorKind::Hybrid); }

void
BM_TwoLevelBtb(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        TwoLevelPApPredictor bpred;
        for (const TraceRecord &rec : trace) {
            if (!rec.isControlFlow())
                continue;
            const BranchPrediction p = bpred.predict(rec);
            bpred.update(rec, p);
        }
        benchmark::DoNotOptimize(bpred.correctPredictions());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void
BM_TraceCapture(benchmark::State &state)
{
    for (auto _ : state) {
        const auto trace = captureWorkloadTrace("compress", 50000);
        benchmark::DoNotOptimize(trace.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 50000);
}

void
BM_DidCollector(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    for (auto _ : state) {
        const DidAnalysis did = analyzeDid(trace);
        benchmark::DoNotOptimize(did.averageDid);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void
BM_IdealMachine(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    IdealMachineConfig config;
    config.fetchRate = static_cast<unsigned>(state.range(0));
    config.useValuePrediction = true;
    for (auto _ : state) {
        const IdealMachineResult run = runIdealMachine(trace, config);
        benchmark::DoNotOptimize(run.cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void
BM_PipelineMachine(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    PipelineConfig config;
    config.useValuePrediction = true;
    config.maxTakenBranches = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        const PipelineResult run = runPipelineMachine(trace, config);
        benchmark::DoNotOptimize(run.cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}

void
BM_PipelineTraceCache(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    PipelineConfig config;
    config.useValuePrediction = true;
    config.frontEnd = FrontEndKind::TraceCache;
    for (auto _ : state) {
        const PipelineResult run = runPipelineMachine(trace, config);
        benchmark::DoNotOptimize(run.cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * trace.size()));
}

BENCHMARK(BM_LastValuePredictor);
BENCHMARK(BM_StridePredictor);
BENCHMARK(BM_HybridPredictor);
BENCHMARK(BM_TwoLevelBtb);
BENCHMARK(BM_TraceCapture);
BENCHMARK(BM_DidCollector);
BENCHMARK(BM_IdealMachine)->Arg(4)->Arg(40);
BENCHMARK(BM_PipelineMachine)->Arg(1)->Arg(4);
BENCHMARK(BM_PipelineTraceCache);

} // namespace
