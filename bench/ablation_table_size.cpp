/**
 * @file
 * Ablation — finite prediction-table capacity.
 *
 * The paper's Section 3 assumes infinite prediction tables and
 * classification counters ("both the prediction table and the set of
 * saturated counters are assumed to be infinite"). Real tables are
 * direct mapped and finite. This sweep shows how much of the BW=16
 * speedup survives at 256..8192 entries — and that the mini benchmarks'
 * small static footprints make even small tables sufficient, which is
 * also true of 1998-era SPEC hot loops.
 */

#include <cstdio>

#include "core/ideal_machine.hpp"
#include "sim/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    options.parse(argc, argv,
                  "ablation: finite prediction-table capacity");
    const BenchmarkTraces bench = captureBenchmarks(options);

    const std::vector<std::size_t> capacities = {256, 1024, 4096, 0};
    std::vector<std::string> columns;
    for (const std::size_t cap : capacities)
        columns.push_back(cap == 0 ? "infinite" : std::to_string(cap));

    std::vector<std::vector<double>> gains(bench.size());
    for (std::size_t i = 0; i < bench.size(); ++i) {
        for (const std::size_t cap : capacities) {
            IdealMachineConfig config;
            config.fetchRate = 16;
            config.tableCapacity = cap;
            gains[i].push_back(
                idealVpSpeedup(bench.traces[i], config) - 1.0);
        }
    }

    std::fputs(renderPercentTable(
                   "Table-capacity ablation - stride predictor entries, "
                   "ideal machine BW=16",
                   bench.names, columns, gains)
                   .c_str(),
               stdout);
    maybeWriteCsv(options, "ablation.table_size", bench.names, columns,
                  gains);
    std::puts("\ntakeaway: the paper's infinite-table assumption is "
              "benign for loop-dominated codes; a few thousand "
              "direct-mapped entries capture the hot producers");
    return 0;
}
