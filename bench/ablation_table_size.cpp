/**
 * @file
 * Ablation — finite prediction-table capacity.
 *
 * The paper's Section 3 assumes infinite prediction tables and
 * classification counters ("both the prediction table and the set of
 * saturated counters are assumed to be infinite"). Real tables are
 * direct mapped and finite. This sweep shows how much of the BW=16
 * speedup survives at 256..8192 entries — and that the mini benchmarks'
 * small static footprints make even small tables sufficient, which is
 * also true of 1998-era SPEC hot loops.
 */

#include <cstdio>

#include "core/ideal_machine.hpp"
#include "core/reference_machine.hpp"
#include "predictor/factory.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    declarePredictorOption(options);
    options.parse(argc, argv,
                  "ablation: finite prediction-table capacity");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();
    const PredictorKind predictor =
        predictorKindFromString(options.getString("predictor"));

    const std::vector<std::size_t> capacities = {256, 1024, 4096, 0};
    std::vector<std::string> columns;
    for (const std::size_t cap : capacities)
        columns.push_back(cap == 0 ? "infinite" : std::to_string(cap));

    const auto pointConfig = [&](std::size_t col) {
        IdealMachineConfig config;
        config.fetchRate = 16;
        config.tableCapacity = capacities[col];
        config.predictorKind = predictor;
        return config;
    };
    const auto gains = runner.runGrid(
        bench.size(), capacities.size(),
        [&](std::size_t row, std::size_t col) {
            return idealVpSpeedup(bench.trace(row), pointConfig(col)) -
                   1.0;
        },
        [&](std::size_t row, std::size_t col) {
            return referenceIdealVpSpeedup(bench.trace(row),
                                           pointConfig(col)) -
                   1.0;
        });

    std::fputs(renderPercentTable(
                   "Table-capacity ablation - stride predictor entries, "
                   "ideal machine BW=16",
                   bench.names, columns, gains)
                   .c_str(),
               stdout);
    maybeWriteCsv(options, "ablation.table_size", bench.names, columns,
                  gains);
    std::puts("\ntakeaway: the paper's infinite-table assumption is "
              "benign for loop-dominated codes; a few thousand "
              "direct-mapped entries capture the hot producers");
    runner.reportStats();
    return 0;
}
