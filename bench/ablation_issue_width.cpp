/**
 * @file
 * Ablation — decode/issue width vs taken-branch limit.
 *
 * The paper fixes the decode/issue width at 40 and varies only the
 * taken-branch limit. This sweep crosses both: VP speedup for issue
 * widths 8/16/40 at 1 and 4 taken branches per cycle (perfect branch
 * prediction). It shows the two bandwidth knobs are complementary: a
 * narrow machine cannot exploit multi-branch fetch, and a wide machine
 * is wasted on single-branch fetch.
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "core/pipeline_machine.hpp"
#include "sim/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 120000);
    options.parse(argc, argv,
                  "ablation: issue width x taken-branch limit");
    const BenchmarkTraces bench = captureBenchmarks(options);

    TablePrinter table(
        "Issue-width x taken-branch ablation (average VP speedup, "
        "perfect branch prediction)",
        {"issue width", "n=1 taken", "n=4 taken"});
    for (const unsigned width : {8u, 16u, 40u}) {
        std::vector<std::string> row = {std::to_string(width)};
        for (const unsigned taken : {1u, 4u}) {
            double gain_sum = 0.0;
            for (std::size_t i = 0; i < bench.size(); ++i) {
                PipelineConfig config;
                config.issueWidth = width;
                config.commitWidth = width;
                config.maxTakenBranches = taken;
                gain_sum +=
                    pipelineVpSpeedup(bench.traces[i], config) - 1.0;
            }
            row.push_back(TablePrinter::percentCell(
                gain_sum / static_cast<double>(bench.size())));
        }
        table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: fetch bandwidth (taken branches) and machine "
              "width move together; the paper's width-40 machine is "
              "what lets the n=4 fetch rate matter");
    return 0;
}
