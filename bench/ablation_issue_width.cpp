/**
 * @file
 * Ablation — decode/issue width vs taken-branch limit.
 *
 * The paper fixes the decode/issue width at 40 and varies only the
 * taken-branch limit. This sweep crosses both: VP speedup for issue
 * widths 8/16/40 at 1 and 4 taken branches per cycle (perfect branch
 * prediction). It shows the two bandwidth knobs are complementary: a
 * narrow machine cannot exploit multi-branch fetch, and a wide machine
 * is wasted on single-branch fetch.
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "core/pipeline_machine.hpp"
#include "core/speedup.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 120000);
    options.parse(argc, argv,
                  "ablation: issue width x taken-branch limit");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();

    const std::vector<unsigned> widths = {8, 16, 40};
    const std::vector<unsigned> takens = {1, 4};

    // Grid rows = (width, taken) pairs, columns = benchmarks; the
    // per-configuration averages below reduce each row.
    const auto gains = runner.runGrid(
        widths.size() * takens.size(), bench.size(),
        [&](std::size_t row, std::size_t col) {
            PipelineConfig config;
            config.issueWidth = widths[row / takens.size()];
            config.commitWidth = widths[row / takens.size()];
            config.maxTakenBranches = takens[row % takens.size()];
            return pipelineVpSpeedup(bench.trace(col), config) - 1.0;
        });

    TablePrinter table(
        "Issue-width x taken-branch ablation (average VP speedup, "
        "perfect branch prediction)",
        {"issue width", "n=1 taken", "n=4 taken"});
    for (std::size_t w = 0; w < widths.size(); ++w) {
        std::vector<std::string> row = {std::to_string(widths[w])};
        for (std::size_t t = 0; t < takens.size(); ++t) {
            row.push_back(TablePrinter::percentCell(
                arithmeticMean(gains[w * takens.size() + t])));
        }
        table.addRow(row);
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: fetch bandwidth (taken branches) and machine "
              "width move together; the paper's width-40 machine is "
              "what lets the n=4 fetch rate matter");
    runner.reportStats();
    return 0;
}
