/**
 * @file
 * Table 3.2 — "An example of instructions progressing in a pipeline."
 *
 * Reconstructs the paper's worked example: the 8-instruction dataflow
 * graph of Figure 3.2 executed on a 4-wide, 4-stage machine (Fetch,
 * Decode/Issue, Execute, Commit) with a perfect value predictor. The
 * paper's schedule: instructions 1-4 execute in cycle 3 and 5-8 in cycle
 * 4; with value prediction off, the dependents 2, 4, 6 and 8 slip.
 */

#include <cstdio>
#include <vector>

#include "core/ideal_machine.hpp"
#include "common/table_printer.hpp"
#include "sim/sim_runner.hpp"

namespace
{

/** Build the Figure 3.2 DFG as a synthetic trace. */
std::vector<vpsim::TraceRecord>
figure32Trace()
{
    using namespace vpsim;
    struct Spec
    {
        RegIndex rd;
        RegIndex rs1;
    };
    // Arcs: 1->2 (DID 1), 2->4 (DID 2), 1->5 (DID 4), 5->6 (DID 1),
    //       3->7 (DID 4), 7->8 (DID 1). Instructions 1 and 3 are roots.
    const std::vector<Spec> specs = {
        {1, invalidReg}, {2, 1}, {3, invalidReg}, {4, 2},
        {5, 1},          {6, 5}, {7, 3},          {8, 7},
    };
    std::vector<TraceRecord> trace;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        TraceRecord rec;
        rec.seq = i;
        rec.pc = 0x1000 + i * instBytes;
        rec.nextPc = rec.pc + instBytes;
        rec.op = specs[i].rs1 == invalidReg ? OpCode::Addi : OpCode::Add;
        rec.rd = specs[i].rd;
        rec.rs1 = specs[i].rs1 == invalidReg ? 0 : specs[i].rs1;
        rec.rs2 = specs[i].rs1 == invalidReg
            ? invalidReg
            : static_cast<RegIndex>(0);
        rec.result = 100 + i;
        trace.push_back(rec);
    }
    return trace;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareRunnerOptions(options);
    options.parse(argc, argv,
                  "Table 3.2: the Figure 3.2 worked example on a "
                  "4-wide machine");
    SimRunner runner(options);

    const auto trace = figure32Trace();

    // The two machine runs (perfect VP on / off) are the worked
    // example's only simulation points; run them as a 2-job batch.
    IdealMachineResult with_vp, without_vp;
    runner.run(
        {{"perfect-vp", [&trace, &with_vp] {
              IdealMachineConfig config;
              config.fetchRate = 4;
              config.useValuePrediction = true;
              config.perfectValuePrediction = true;
              with_vp = runIdealMachine(trace, config, true);
          }},
         {"no-vp", [&trace, &without_vp] {
              IdealMachineConfig config;
              config.fetchRate = 4;
              config.useValuePrediction = false;
              without_vp = runIdealMachine(trace, config, true);
          }}});

    TablePrinter table(
        "Table 3.2 - Figure 3.2's DFG on a 4-wide machine "
        "(per-instruction cycle of each stage)",
        {"inst", "fetch", "decode/issue", "exec (perfect VP)",
         "exec (no VP)", "commit (VP)"});
    for (std::size_t i = 0; i < trace.size(); ++i) {
        const Cycle fetch = i / 4 + 1;
        table.addRow({std::to_string(i + 1), std::to_string(fetch),
                      std::to_string(fetch + 1),
                      std::to_string(with_vp.execCycle[i]),
                      std::to_string(without_vp.execCycle[i]),
                      std::to_string(with_vp.execCycle[i] + 1)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::printf("\ntotal cycles: %llu with perfect VP, %llu without "
                "(paper: 1-4 execute in cycle 3, 5-8 in cycle 4)\n",
                static_cast<unsigned long long>(with_vp.cycles),
                static_cast<unsigned long long>(without_vp.cycles));
    runner.reportStats();
    return 0;
}
