/**
 * @file
 * Ablation — classification strength (paper §3.1/§5 use a 2-bit
 * saturating counter; this sweeps counter width and miss policy).
 *
 * A weak classifier issues wrong predictions that cost the 1-cycle
 * reissue penalty on the critical path; a paranoid one wastes correct
 * predictions. The sweep reports, per configuration and averaged over
 * the benchmarks: VP speedup on the ideal machine at BW=16, prediction
 * accuracy, and the fraction of raw-correct outcomes the classifier
 * declined (missed opportunity).
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "core/ideal_machine.hpp"
#include "core/speedup.hpp"
#include "predictor/factory.hpp"
#include "sim/sim_runner.hpp"

namespace
{

using namespace vpsim;

struct ClassifierConfig
{
    unsigned bits;
    MissPolicy policy;
};

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    declareStandardOptions(options, 200000);
    options.parse(argc, argv,
                  "ablation: classifier counter width and miss policy");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();

    std::vector<ClassifierConfig> configs;
    for (const MissPolicy policy :
         {MissPolicy::Decrement, MissPolicy::Reset}) {
        for (const unsigned bits : {1u, 2u, 3u, 4u})
            configs.push_back({bits, policy});
    }

    // One job per (configuration, benchmark); each owns the three
    // metric cells for that pair, averaged per configuration below.
    const std::size_t n_configs = configs.size();
    std::vector<std::vector<double>> gain(
        n_configs, std::vector<double>(bench.size()));
    std::vector<std::vector<double>> acc(
        n_configs, std::vector<double>(bench.size()));
    std::vector<std::vector<double>> missed(
        n_configs, std::vector<double>(bench.size()));
    std::vector<SimJob> batch;
    for (std::size_t c = 0; c < n_configs; ++c) {
        for (std::size_t i = 0; i < bench.size(); ++i) {
            batch.push_back(
                {std::to_string(configs[c].bits) + "-bit:" +
                     bench.names[i],
                 [&, c, i] {
                     IdealMachineConfig config;
                     config.fetchRate = 16;
                     config.counterBits = configs[c].bits;
                     config.missPolicy = configs[c].policy;
                     gain[c][i] =
                         idealVpSpeedup(bench.trace(i), config) - 1.0;

                     // Accuracy probe via a stand-alone classifier
                     // replay.
                     auto classifier = makeClassifiedPredictor(
                         PredictorKind::Stride, 0, configs[c].bits,
                         configs[c].policy);
                     std::uint64_t raw_correct_total = 0;
                     for (const TraceRecord &record : bench.trace(i)) {
                         if (!record.producesValue())
                             continue;
                         const ClassifiedPrediction p =
                             classifier->predict(record.pc);
                         if (p.rawAvailable &&
                             p.rawValue == record.result) {
                             ++raw_correct_total;
                         }
                         classifier->update(record.pc, p, record.result);
                     }
                     acc[c][i] = classifier->accuracy();
                     missed[c][i] = raw_correct_total == 0
                         ? 0.0
                         : static_cast<double>(
                               classifier->missedOpportunities()) /
                             static_cast<double>(raw_correct_total);
                 }});
        }
    }
    runner.run(std::move(batch));

    TablePrinter table(
        "Classifier ablation - stride predictor on the ideal machine "
        "at BW=16 (averages)",
        {"counter", "miss policy", "VP speedup", "accuracy",
         "missed correct"});
    for (std::size_t c = 0; c < n_configs; ++c) {
        table.addRow(
            {std::to_string(configs[c].bits) + "-bit",
             configs[c].policy == MissPolicy::Reset ? "reset"
                                                    : "decrement",
             TablePrinter::percentCell(arithmeticMean(gain[c])),
             TablePrinter::percentCell(arithmeticMean(acc[c])),
             TablePrinter::percentCell(arithmeticMean(missed[c]))});
        if ((c + 1) % 4 == 0)
            table.addSeparator();
    }

    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: the paper's 2-bit counter is near the sweet "
              "spot; reset-on-miss trades a few missed opportunities "
              "for far fewer penalty-costing wrong predictions");
    runner.reportStats();
    return 0;
}
