/**
 * @file
 * Ablation — classification strength (paper §3.1/§5 use a 2-bit
 * saturating counter; this sweeps counter width and miss policy).
 *
 * A weak classifier issues wrong predictions that cost the 1-cycle
 * reissue penalty on the critical path; a paranoid one wastes correct
 * predictions. The sweep reports, per configuration and averaged over
 * the benchmarks: VP speedup on the ideal machine at BW=16, prediction
 * accuracy, and the fraction of raw-correct outcomes the classifier
 * declined (missed opportunity).
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "core/ideal_machine.hpp"
#include "predictor/factory.hpp"
#include "sim/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    options.parse(argc, argv,
                  "ablation: classifier counter width and miss policy");
    const BenchmarkTraces bench = captureBenchmarks(options);

    TablePrinter table(
        "Classifier ablation - stride predictor on the ideal machine "
        "at BW=16 (averages)",
        {"counter", "miss policy", "VP speedup", "accuracy",
         "missed correct"});

    for (const MissPolicy policy :
         {MissPolicy::Decrement, MissPolicy::Reset}) {
        for (const unsigned bits : {1u, 2u, 3u, 4u}) {
            double gain_sum = 0.0;
            double acc_sum = 0.0;
            double missed_sum = 0.0;
            for (std::size_t i = 0; i < bench.size(); ++i) {
                IdealMachineConfig config;
                config.fetchRate = 16;
                config.counterBits = bits;
                config.missPolicy = policy;
                gain_sum +=
                    idealVpSpeedup(bench.traces[i], config) - 1.0;

                // Accuracy probe via a stand-alone classifier replay.
                auto classifier = makeClassifiedPredictor(
                    PredictorKind::Stride, 0, bits, policy);
                std::uint64_t raw_correct_total = 0;
                for (const TraceRecord &record : bench.traces[i]) {
                    if (!record.producesValue())
                        continue;
                    const ClassifiedPrediction p =
                        classifier->predict(record.pc);
                    if (p.rawAvailable &&
                        p.rawValue == record.result) {
                        ++raw_correct_total;
                    }
                    classifier->update(record.pc, p, record.result);
                }
                acc_sum += classifier->accuracy();
                missed_sum += raw_correct_total == 0
                    ? 0.0
                    : static_cast<double>(
                          classifier->missedOpportunities()) /
                          static_cast<double>(raw_correct_total);
            }
            const double n = static_cast<double>(bench.size());
            table.addRow(
                {std::to_string(bits) + "-bit",
                 policy == MissPolicy::Reset ? "reset" : "decrement",
                 TablePrinter::percentCell(gain_sum / n),
                 TablePrinter::percentCell(acc_sum / n),
                 TablePrinter::percentCell(missed_sum / n)});
        }
        table.addSeparator();
    }

    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: the paper's 2-bit counter is near the sweet "
              "spot; reset-on-miss trades a few missed opportunities "
              "for far fewer penalty-costing wrong predictions");
    return 0;
}
