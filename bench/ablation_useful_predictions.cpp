/**
 * @file
 * Ablation — the fraction of CORRECT predictions that are USEFUL.
 *
 * The paper's Section 3 mechanism, measured head-on: "there are a
 * significant number of cases where the dependent instructions are
 * fetched too late ... even though the predictor yields a correct
 * prediction, the prediction becomes useless." For each benchmark and
 * fetch rate this prints useful/correct — the fraction of correct
 * predictions that actually removed a stall. At 4-wide fetch most
 * correct predictions die useless; wide fetch is what turns prediction
 * accuracy into speedup.
 */

#include <cstdio>

#include "core/ideal_machine.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    options.parse(argc, argv,
                  "ablation: useful fraction of correct predictions");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();

    // Stalling uses per 1000 instructions on the NO-VP machine: the
    // dependences a value predictor could possibly remove. This is the
    // paper's Section 3 mechanism measured directly, and it grows with
    // fetch bandwidth: at 4-wide most operands are computed before the
    // consumer could issue anyway.
    const std::vector<unsigned> rates = {4, 8, 16, 40};
    std::vector<std::string> columns;
    for (const unsigned rate : rates)
        columns.push_back("BW=" + std::to_string(rate));

    const auto per_k = runner.runGrid(
        bench.size(), rates.size(),
        [&](std::size_t row, std::size_t col) {
            IdealMachineConfig config;
            config.fetchRate = rates[col];
            config.useValuePrediction = false;
            const IdealMachineResult run =
                runIdealMachine(bench.trace(row), config);
            return 1000.0 * static_cast<double>(run.stallingUses) /
                static_cast<double>(run.instructions);
        });

    std::fputs(renderFigureTable(
                   "Stalling operand uses per 1000 instructions "
                   "(no-VP ideal machine) - the predictor's addressable "
                   "market",
                   bench.names, columns, per_k,
                   [](double v) {
                       return TablePrinter::numberCell(v, 1);
                   })
                   .c_str(),
               stdout);
    maybeWriteCsv(options, "ablation.useful", bench.names, columns,
                  per_k);
    std::puts("\npaper section 3: a prediction only helps when the "
              "dependent would otherwise wait; the number of such "
              "stalling dependences - the predictor's addressable "
              "market - is what wide fetch creates");
    runner.reportStats();
    return 0;
}
