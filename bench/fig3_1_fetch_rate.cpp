/**
 * @file
 * Figure 3.1 — "The effect of instruction-fetch rate in an ideal
 * execution environment."
 *
 * For each benchmark and each fetch/issue rate in {4, 8, 16, 32, 40},
 * run the ideal machine (window 40, infinite stride predictor with 2-bit
 * classification, speculative update) with and without value prediction
 * and report the speedup contributed by value prediction alone.
 *
 * Paper reference (averages): BW=4 ~0%, BW=8 ~8%, BW=16 ~33%,
 * BW=32 ~70%, BW=40 ~80%; m88ksim moves 4% -> 112% and vortex
 * 1.5% -> 83% between BW=4 and BW=16.
 */

#include <cstdio>

#include "core/ideal_machine.hpp"
#include "core/reference_machine.hpp"
#include "predictor/factory.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 400000);
    declarePredictorOption(options);
    options.parse(argc, argv,
                  "Figure 3.1: VP speedup vs fetch rate, ideal machine");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();
    const PredictorKind predictor =
        predictorKindFromString(options.getString("predictor"));

    const std::vector<unsigned> rates = {4, 8, 16, 32, 40};
    std::vector<std::string> columns;
    for (const unsigned rate : rates)
        columns.push_back("BW=" + std::to_string(rate));

    const auto pointConfig = [&](std::size_t col) {
        IdealMachineConfig config;
        config.fetchRate = rates[col];
        config.predictorKind = predictor;
        return config;
    };
    const auto gains = runner.runGrid(
        bench.size(), rates.size(),
        [&](std::size_t row, std::size_t col) {
            return idealVpSpeedup(bench.trace(row), pointConfig(col)) -
                   1.0;
        },
        [&](std::size_t row, std::size_t col) {
            return referenceIdealVpSpeedup(bench.trace(row),
                                           pointConfig(col)) -
                   1.0;
        });

    std::fputs(renderPercentTable(
                   "Figure 3.1 - value prediction speedup on the ideal "
                   "machine (window=40, stride predictor)",
                   bench.names, columns, gains)
                   .c_str(),
               stdout);
    std::puts("\npaper reference (avg): BW=4 ~0%, BW=8 8%, BW=16 33%, "
              "BW=32 70%, BW=40 80%");
    maybeWriteCsv(options, "fig3.1", bench.names, columns, gains);
    runner.reportStats();
    return 0;
}
