/**
 * @file
 * Ablation — value-predictor update timing (a methodology finding of
 * this reproduction, not an experiment in the paper).
 *
 * The paper's trace-driven simulator consults the predictor with
 * coherent sequential state (update at dispatch, in program order). A
 * real pipeline trains at retire: lookups then read state that lags by
 * the in-flight window, which floods short-period value patterns with
 * confident mispredictions. This bench quantifies the gap on the
 * Section 5 machine and shows it widens with fetch bandwidth — at
 * higher bandwidth more copies are in flight, so the stale-state
 * problem the paper's Section 4 hardware ultimately has to solve (via
 * speculative update and in-flight repair) gets worse.
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "core/pipeline_machine.hpp"
#include "core/speedup.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 150000);
    options.parse(argc, argv,
                  "ablation: dispatch-time vs retire-time predictor "
                  "update");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();

    const std::vector<unsigned> taken_limits = {1, 4, 0};

    // One job per (limit, benchmark, timing); each owns one cell in
    // the matching dispatch/retire matrix.
    std::vector<std::vector<double>> dispatch(
        taken_limits.size(), std::vector<double>(bench.size()));
    std::vector<std::vector<double>> retire(
        taken_limits.size(), std::vector<double>(bench.size()));
    std::vector<SimJob> batch;
    for (std::size_t l = 0; l < taken_limits.size(); ++l) {
        for (std::size_t i = 0; i < bench.size(); ++i) {
            for (const bool at_retire : {false, true}) {
                batch.push_back(
                    {"n=" + std::to_string(taken_limits[l]) + ":" +
                         bench.names[i] +
                         (at_retire ? ":retire" : ":dispatch"),
                     [&, l, i, at_retire] {
                         PipelineConfig config;
                         config.perfectBranchPredictor = true;
                         config.maxTakenBranches = taken_limits[l];
                         config.vpUpdateTiming = at_retire
                             ? VpUpdateTiming::Retire
                             : VpUpdateTiming::Dispatch;
                         (at_retire ? retire : dispatch)[l][i] =
                             pipelineVpSpeedup(bench.trace(i), config) -
                             1.0;
                     }});
            }
        }
    }
    runner.run(std::move(batch));

    TablePrinter table(
        "Predictor update timing (VP speedup, averages over the "
        "benchmarks; perfect branch prediction)",
        {"max taken/cycle", "update at dispatch", "update at retire",
         "gap"});
    for (std::size_t l = 0; l < taken_limits.size(); ++l) {
        const double dispatch_avg = arithmeticMean(dispatch[l]);
        const double retire_avg = arithmeticMean(retire[l]);
        table.addRow({taken_limits[l] == 0
                          ? "unlimited"
                          : std::to_string(taken_limits[l]),
                      TablePrinter::percentCell(dispatch_avg),
                      TablePrinter::percentCell(retire_avg),
                      TablePrinter::percentCell(dispatch_avg -
                                                retire_avg)});
    }

    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: realistic (retire-time) update costs a large "
              "share of the headline speedup, and the loss grows with "
              "fetch bandwidth - exactly the regime the paper targets - "
              "so the speculative-update machinery of Sections 3.1/4 is "
              "load-bearing, not an implementation detail");
    runner.reportStats();
    return 0;
}
