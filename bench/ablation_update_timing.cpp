/**
 * @file
 * Ablation — value-predictor update timing (a methodology finding of
 * this reproduction, not an experiment in the paper).
 *
 * The paper's trace-driven simulator consults the predictor with
 * coherent sequential state (update at dispatch, in program order). A
 * real pipeline trains at retire: lookups then read state that lags by
 * the in-flight window, which floods short-period value patterns with
 * confident mispredictions. This bench quantifies the gap on the
 * Section 5 machine and shows it widens with fetch bandwidth — at
 * higher bandwidth more copies are in flight, so the stale-state
 * problem the paper's Section 4 hardware ultimately has to solve (via
 * speculative update and in-flight repair) gets worse.
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "core/pipeline_machine.hpp"
#include "sim/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 150000);
    options.parse(argc, argv,
                  "ablation: dispatch-time vs retire-time predictor "
                  "update");
    const BenchmarkTraces bench = captureBenchmarks(options);

    const std::vector<unsigned> taken_limits = {1, 4, 0};
    TablePrinter table(
        "Predictor update timing (VP speedup, averages over the "
        "benchmarks; perfect branch prediction)",
        {"max taken/cycle", "update at dispatch", "update at retire",
         "gap"});

    for (const unsigned limit : taken_limits) {
        double dispatch_sum = 0.0;
        double retire_sum = 0.0;
        for (std::size_t i = 0; i < bench.size(); ++i) {
            PipelineConfig config;
            config.perfectBranchPredictor = true;
            config.maxTakenBranches = limit;
            config.vpUpdateTiming = VpUpdateTiming::Dispatch;
            dispatch_sum +=
                pipelineVpSpeedup(bench.traces[i], config) - 1.0;
            config.vpUpdateTiming = VpUpdateTiming::Retire;
            retire_sum +=
                pipelineVpSpeedup(bench.traces[i], config) - 1.0;
        }
        const double n = static_cast<double>(bench.size());
        const double dispatch_avg = dispatch_sum / n;
        const double retire_avg = retire_sum / n;
        table.addRow({limit == 0 ? "unlimited" : std::to_string(limit),
                      TablePrinter::percentCell(dispatch_avg),
                      TablePrinter::percentCell(retire_avg),
                      TablePrinter::percentCell(dispatch_avg -
                                                retire_avg)});
    }

    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: realistic (retire-time) update costs a large "
              "share of the headline speedup, and the loss grows with "
              "fetch bandwidth - exactly the regime the paper targets - "
              "so the speculative-update machinery of Sections 3.1/4 is "
              "load-bearing, not an implementation detail");
    return 0;
}
