/**
 * @file
 * Section 4 ablation — bank-conflict behaviour of the interleaved value
 * prediction table behind a trace-cache front end.
 *
 * The paper proposes the trace-addresses-buffer / address-router /
 * value-distributor organization but leaves its sizing open ("the
 * evaluation of the hardware complexity ... is beyond the scope"). This
 * bench quantifies the design space: for bank counts 1..32 (one port per
 * bank) it reports how many prediction requests are denied by port
 * conflicts, how many are absorbed by request merging, and what remains
 * of the VP speedup relative to an unconstrained table.
 */

#include <cstdio>

#include "core/pipeline_machine.hpp"
#include "core/speedup.hpp"
#include "common/table_printer.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 150000);
    options.parse(argc, argv,
                  "Section 4 ablation: interleaved VP table banks");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();

    const std::vector<unsigned> bank_counts = {1, 2, 4, 8, 16, 32};

    // Jobs: one per (bank count, benchmark) plus one unconstrained
    // reference job per benchmark; each owns its cells in the four
    // metric matrices below.
    std::vector<std::vector<double>> gain(
        bank_counts.size(), std::vector<double>(bench.size()));
    std::vector<std::vector<double>> denied(
        bank_counts.size(), std::vector<double>(bench.size()));
    std::vector<std::vector<double>> merged(
        bank_counts.size(), std::vector<double>(bench.size()));
    std::vector<std::vector<double>> adds(
        bank_counts.size(), std::vector<double>(bench.size()));
    std::vector<double> unconstrained(bench.size());
    std::vector<SimJob> batch;
    for (std::size_t i = 0; i < bench.size(); ++i) {
        batch.push_back({"no-limit:" + bench.names[i], [&, i] {
            PipelineConfig config;
            config.frontEnd = FrontEndKind::TraceCache;
            config.perfectBranchPredictor = true;
            unconstrained[i] =
                pipelineVpSpeedup(bench.trace(i), config) - 1.0;
        }});
    }
    for (std::size_t b = 0; b < bank_counts.size(); ++b) {
        for (std::size_t i = 0; i < bench.size(); ++i) {
            batch.push_back(
                {std::to_string(bank_counts[b]) + "-banks:" +
                     bench.names[i],
                 [&, b, i] {
                     PipelineConfig config;
                     config.frontEnd = FrontEndKind::TraceCache;
                     config.perfectBranchPredictor = true;
                     config.useInterleavedVpTable = true;
                     config.vpTableConfig.banks = bank_counts[b];
                     config.vpTableConfig.portsPerBank = 1;
                     gain[b][i] =
                         pipelineVpSpeedup(bench.trace(i), config) - 1.0;

                     PipelineConfig probe = config;
                     probe.useValuePrediction = true;
                     const PipelineResult run =
                         runPipelineMachine(bench.trace(i), probe);
                     if (run.vptRequests > 0) {
                         denied[b][i] =
                             static_cast<double>(run.vptDeniedRequests) /
                             static_cast<double>(run.vptRequests);
                         merged[b][i] =
                             static_cast<double>(run.vptMergedRequests) /
                             static_cast<double>(run.vptRequests);
                     }
                     adds[b][i] =
                         1000.0 *
                         static_cast<double>(
                             run.vptDistributorAdditions) /
                         static_cast<double>(run.instructions);
                 }});
        }
    }
    runner.run(std::move(batch));

    TablePrinter table(
        "Section 4 ablation - interleaved VP table behind a trace "
        "cache (1 port/bank)",
        {"banks", "VP speedup", "denied reqs", "merged reqs",
         "distributor adds/1k insts"});
    for (std::size_t b = 0; b < bank_counts.size(); ++b) {
        table.addRow(
            {std::to_string(bank_counts[b]),
             TablePrinter::percentCell(arithmeticMean(gain[b])),
             TablePrinter::percentCell(arithmeticMean(denied[b])),
             TablePrinter::percentCell(arithmeticMean(merged[b])),
             TablePrinter::numberCell(arithmeticMean(adds[b]), 1)});
    }
    table.addSeparator();
    table.addRow({"no table limit",
                  TablePrinter::percentCell(
                      arithmeticMean(unconstrained)),
                  "0.0%", "-", "-"});

    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: with ~8 banks the router+distributor recovers "
              "nearly the unconstrained speedup, supporting the paper's "
              "claim that its scheme makes VP practical at trace-cache "
              "fetch rates");
    runner.reportStats();
    return 0;
}
