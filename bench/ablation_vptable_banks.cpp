/**
 * @file
 * Section 4 ablation — bank-conflict behaviour of the interleaved value
 * prediction table behind a trace-cache front end.
 *
 * The paper proposes the trace-addresses-buffer / address-router /
 * value-distributor organization but leaves its sizing open ("the
 * evaluation of the hardware complexity ... is beyond the scope"). This
 * bench quantifies the design space: for bank counts 1..32 (one port per
 * bank) it reports how many prediction requests are denied by port
 * conflicts, how many are absorbed by request merging, and what remains
 * of the VP speedup relative to an unconstrained table.
 */

#include <cstdio>

#include "core/pipeline_machine.hpp"
#include "common/table_printer.hpp"
#include "sim/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 150000);
    options.parse(argc, argv,
                  "Section 4 ablation: interleaved VP table banks");
    const BenchmarkTraces bench = captureBenchmarks(options);

    const std::vector<unsigned> bank_counts = {1, 2, 4, 8, 16, 32};

    TablePrinter table(
        "Section 4 ablation - interleaved VP table behind a trace "
        "cache (1 port/bank)",
        {"banks", "VP speedup", "denied reqs", "merged reqs",
         "distributor adds/1k insts"});

    // Reference: unconstrained predictor (no banked table).
    std::vector<double> unconstrained(bench.size());
    for (std::size_t i = 0; i < bench.size(); ++i) {
        PipelineConfig config;
        config.frontEnd = FrontEndKind::TraceCache;
        config.perfectBranchPredictor = true;
        unconstrained[i] = pipelineVpSpeedup(bench.traces[i], config);
    }

    for (const unsigned banks : bank_counts) {
        double gain_sum = 0.0;
        double denied_sum = 0.0;
        double merged_sum = 0.0;
        double adds_sum = 0.0;
        for (std::size_t i = 0; i < bench.size(); ++i) {
            PipelineConfig config;
            config.frontEnd = FrontEndKind::TraceCache;
            config.perfectBranchPredictor = true;
            config.useInterleavedVpTable = true;
            config.vpTableConfig.banks = banks;
            config.vpTableConfig.portsPerBank = 1;
            const double speedup =
                pipelineVpSpeedup(bench.traces[i], config);
            gain_sum += speedup - 1.0;

            PipelineConfig probe = config;
            probe.useValuePrediction = true;
            const PipelineResult run =
                runPipelineMachine(bench.traces[i], probe);
            if (run.vptRequests > 0) {
                denied_sum += static_cast<double>(run.vptDeniedRequests) /
                              static_cast<double>(run.vptRequests);
                merged_sum += static_cast<double>(run.vptMergedRequests) /
                              static_cast<double>(run.vptRequests);
            }
            adds_sum +=
                1000.0 *
                static_cast<double>(run.vptDistributorAdditions) /
                static_cast<double>(run.instructions);
        }
        const double n = static_cast<double>(bench.size());
        table.addRow({std::to_string(banks),
                      TablePrinter::percentCell(gain_sum / n),
                      TablePrinter::percentCell(denied_sum / n),
                      TablePrinter::percentCell(merged_sum / n),
                      TablePrinter::numberCell(adds_sum / n, 1)});
    }
    table.addSeparator();
    double unconstrained_gain = 0.0;
    for (const double s : unconstrained)
        unconstrained_gain += s - 1.0;
    table.addRow({"no table limit",
                  TablePrinter::percentCell(
                      unconstrained_gain /
                      static_cast<double>(bench.size())),
                  "0.0%", "-", "-"});

    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: with ~8 banks the router+distributor recovers "
              "nearly the unconstrained speedup, supporting the paper's "
              "claim that its scheme makes VP practical at trace-cache "
              "fetch rates");
    return 0;
}
