/**
 * @file
 * Ablation — prediction scope: all instructions vs loads only.
 *
 * The paper's predecessors split on this: Lipasti et al.'s original LVP
 * [13] predicted load values only; the paper (following [7]/[14])
 * predicts every value-producing instruction. This bench measures how
 * much of the bandwidth-sensitivity story survives when only loads are
 * predicted, across the Figure 3.1 fetch-rate sweep.
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "core/ideal_machine.hpp"
#include "sim/experiment.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    options.parse(argc, argv,
                  "ablation: all-instruction vs loads-only prediction");
    const BenchmarkTraces bench = captureBenchmarks(options);

    const std::vector<unsigned> rates = {4, 16, 40};
    TablePrinter table(
        "Prediction-scope ablation - ideal machine VP speedup "
        "(averages over the benchmarks)",
        {"fetch rate", "all instructions", "loads only"});

    for (const unsigned rate : rates) {
        double all_sum = 0.0;
        double loads_sum = 0.0;
        for (std::size_t i = 0; i < bench.size(); ++i) {
            IdealMachineConfig config;
            config.fetchRate = rate;
            config.vpScope = VpScope::AllInstructions;
            all_sum += idealVpSpeedup(bench.traces[i], config) - 1.0;
            config.vpScope = VpScope::LoadsOnly;
            loads_sum += idealVpSpeedup(bench.traces[i], config) - 1.0;
        }
        const double n = static_cast<double>(bench.size());
        table.addRow({"BW=" + std::to_string(rate),
                      TablePrinter::percentCell(all_sum / n),
                      TablePrinter::percentCell(loads_sum / n)});
    }

    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: loads-only prediction captures a fraction of "
              "the full-scope speedup but shows the same fetch-"
              "bandwidth sensitivity - the paper's effect is about WHERE "
              "dependents sit relative to fetch, not about which "
              "instruction class is predicted");
    return 0;
}
