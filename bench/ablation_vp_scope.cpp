/**
 * @file
 * Ablation — prediction scope: all instructions vs loads only.
 *
 * The paper's predecessors split on this: Lipasti et al.'s original LVP
 * [13] predicted load values only; the paper (following [7]/[14])
 * predicts every value-producing instruction. This bench measures how
 * much of the bandwidth-sensitivity story survives when only loads are
 * predicted, across the Figure 3.1 fetch-rate sweep.
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "core/ideal_machine.hpp"
#include "core/speedup.hpp"
#include "predictor/factory.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    declarePredictorOption(options);
    options.parse(argc, argv,
                  "ablation: all-instruction vs loads-only prediction");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();
    const PredictorKind predictor =
        predictorKindFromString(options.getString("predictor"));

    const std::vector<unsigned> rates = {4, 16, 40};

    // One job per (rate, benchmark, scope); each owns one cell of the
    // matching all-instructions/loads-only matrix.
    std::vector<std::vector<double>> all_gain(
        rates.size(), std::vector<double>(bench.size()));
    std::vector<std::vector<double>> loads_gain(
        rates.size(), std::vector<double>(bench.size()));
    std::vector<SimJob> batch;
    for (std::size_t r = 0; r < rates.size(); ++r) {
        for (std::size_t i = 0; i < bench.size(); ++i) {
            for (const bool loads_only : {false, true}) {
                batch.push_back(
                    {"BW=" + std::to_string(rates[r]) + ":" +
                         bench.names[i] +
                         (loads_only ? ":loads" : ":all"),
                     [&, r, i, loads_only] {
                         IdealMachineConfig config;
                         config.fetchRate = rates[r];
                         config.predictorKind = predictor;
                         config.vpScope = loads_only
                             ? VpScope::LoadsOnly
                             : VpScope::AllInstructions;
                         (loads_only ? loads_gain : all_gain)[r][i] =
                             idealVpSpeedup(bench.trace(i), config) -
                             1.0;
                     }});
            }
        }
    }
    runner.run(std::move(batch));

    TablePrinter table(
        "Prediction-scope ablation - ideal machine VP speedup "
        "(averages over the benchmarks)",
        {"fetch rate", "all instructions", "loads only"});
    for (std::size_t r = 0; r < rates.size(); ++r) {
        table.addRow(
            {"BW=" + std::to_string(rates[r]),
             TablePrinter::percentCell(arithmeticMean(all_gain[r])),
             TablePrinter::percentCell(arithmeticMean(loads_gain[r]))});
    }

    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: loads-only prediction captures a fraction of "
              "the full-scope speedup but shows the same fetch-"
              "bandwidth sensitivity - the paper's effect is about WHERE "
              "dependents sit relative to fetch, not about which "
              "instruction class is predicted");
    runner.reportStats();
    return 0;
}
