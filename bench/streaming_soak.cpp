/**
 * @file
 * Bounded-memory streaming soak: generate a large synthetic trace
 * straight to the v3 block-framed format, stream it back through
 * StreamingTraceSource, and prove the whole round trip ran in bounded
 * memory.
 *
 * Neither direction ever materializes the trace: generation appends
 * fixed-size spans to a TraceV3Writer, and the read-back consumes
 * spans from the sliding block window. Both sides fold every record
 * field into an FNV-1a digest; the digests must match exactly, the
 * record count must match --insts, and the phase peak RSS (RssSampler)
 * must stay at or below --mem-budget. A 100M-instruction run (the CI
 * release job) is ~1.3 GB on disk yet must hold well under 256 MB
 * resident — the property the streaming pipeline exists to provide.
 *
 * Exit status 0 only when all three assertions hold.
 */

#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.hpp"
#include "common/options.hpp"
#include "common/resource_usage.hpp"
#include "isa/opcodes.hpp"
#include "trace/record.hpp"
#include "trace/streaming_source.hpp"
#include "trace/trace_v3.hpp"

namespace vpsim
{
namespace
{

/** xorshift64*: fast, deterministic, and seed-stable across platforms. */
struct SoakRng
{
    std::uint64_t state;

    std::uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 2685821657736338717ull;
    }
};

/**
 * Synthesize record @p seq: a loopy instruction stream with realistic
 * small PC deltas, loads/stores touching a strided heap, occasional
 * taken branches, and pseudo-random result values (the hard case for
 * the varint encoder).
 */
TraceRecord
synthesize(std::uint64_t seq, SoakRng &rng)
{
    const std::uint64_t roll = rng.next();
    TraceRecord r;
    r.seq = seq;
    r.pc = 0x400000 + (seq % 997) * instBytes;
    r.op = OpCode::Add;
    r.rd = static_cast<RegIndex>(1 + roll % 31);
    r.rs1 = static_cast<RegIndex>(1 + (roll >> 8) % 31);
    r.rs2 = static_cast<RegIndex>(1 + (roll >> 16) % 31);
    r.result = roll;
    r.nextPc = r.fallThrough();
    switch (roll % 8) {
      case 0:
        r.op = OpCode::Ld;
        r.memAddr = 0x10000000 + (roll % 4096) * 8;
        break;
      case 1:
        r.op = OpCode::St;
        r.memAddr = 0x10000000 + (roll % 4096) * 8;
        r.rd = invalidReg;
        break;
      case 2:
        r.op = OpCode::Beq;
        r.rd = invalidReg;
        r.taken = (roll & 0x100) != 0;
        if (r.taken)
            r.nextPc = r.pc - 64 * instBytes;
        break;
      default:
        break;
    }
    return r;
}

/** Fold one record into the running FNV-1a digest. */
std::uint64_t
digestRecord(std::uint64_t hash, const TraceRecord &r)
{
    const auto mix = [&hash](std::uint64_t value) {
        hash ^= value;
        hash *= 1099511628211ull;
    };
    mix(r.seq);
    mix(r.pc);
    mix(r.nextPc);
    mix(r.memAddr);
    mix(r.result);
    mix(static_cast<std::uint64_t>(r.op));
    mix(r.rd);
    mix(r.rs1);
    mix(r.rs2);
    mix(r.taken ? 1 : 0);
    return hash;
}

constexpr std::uint64_t fnvBasis = 14695981039346656037ull;

} // namespace
} // namespace vpsim

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    options.declare("insts", "10000000",
                    "synthetic instructions to stream through the "
                    "round trip");
    options.declare("mem-budget", "256",
                    "peak-RSS ceiling in MB asserted on both phases "
                    "(0 = measure only, assert nothing)");
    options.declare("block-records", "65536",
                    "records per v3 block in the generated file");
    options.declare("salvage-blocks", "0",
                    "stream back in salvage mode (exercises the "
                    "containment path on a clean file)");
    options.declare("trace-file", "",
                    "write the synthetic trace here and keep it "
                    "(default: temporary, removed on exit)");
    options.declare("seed", "42", "synthetic-stream seed");
    options.parse(argc, argv,
                  "Streaming soak: bounded-memory v3 round trip with a "
                  "peak-RSS assertion (docs/TRACE_FORMAT.md)");

    const auto insts =
        static_cast<std::uint64_t>(options.getInt("insts"));
    fatalIf(insts == 0, "--insts must be positive");
    const std::uint64_t budget_bytes =
        static_cast<std::uint64_t>(options.getInt("mem-budget")) << 20;
    const auto block_records =
        static_cast<std::uint32_t>(options.getInt("block-records"));

    std::string path = options.getString("trace-file");
    const bool keep_file = !path.empty();
    if (path.empty()) {
        const char *tmp = std::getenv("TMPDIR");
        path = std::string(tmp ? tmp : "/tmp") + "/vpsim-stream-soak-" +
               std::to_string(::getpid()) + ".vptrace";
    }

    RssSampler sampler;
    std::fprintf(stderr,
                 "streaming soak: %" PRIu64 " insts, %u records/block, "
                 "budget %" PRIu64 " MB\n",
                 insts, block_records, budget_bytes >> 20);

    // Phase 1: generate straight to disk, one span at a time.
    sampler.beginPhase();
    Stopwatch write_watch;
    std::uint64_t write_digest = fnvBasis;
    {
        SoakRng rng{options.getInt("seed") == 0
                    ? 0x9e3779b97f4a7c15ull
                    : static_cast<std::uint64_t>(
                          options.getInt("seed"))};
        TraceV3Writer writer;
        fatalIf(!writer.open(path, block_records).isOk(),
                "cannot open " + path + " for the synthetic trace");
        std::vector<TraceRecord> span;
        constexpr std::size_t spanRecords = 8192;
        span.reserve(spanRecords);
        for (std::uint64_t seq = 0; seq < insts;) {
            span.clear();
            for (; span.size() < spanRecords && seq < insts; ++seq) {
                span.push_back(synthesize(seq, rng));
                write_digest = digestRecord(write_digest, span.back());
            }
            fatalIf(!writer
                         .append(TraceSpan(span.data(), span.size()))
                         .isOk(),
                    "append failed writing " + path);
        }
        fatalIf(!writer.finish().isOk(), "finish failed on " + path);
    }
    const double write_seconds = write_watch.seconds();
    const std::size_t write_peak = sampler.peakBytes();

    // Phase 2: stream it back through the bounded window and redo the
    // digest from the delivered spans.
    sampler.beginPhase();
    Stopwatch read_watch;
    StreamingTraceSource source;
    StreamingOptions streaming;
    streaming.salvage = options.getBool("salvage-blocks");
    streaming.memBudgetBytes = budget_bytes;
    fatalIf(!source.open(path, streaming).isOk(),
            "cannot stream back " + path);
    std::uint64_t read_digest = fnvBasis;
    std::uint64_t read_records = 0;
    TraceSpan block;
    while (source.nextBlock(block, TraceSpan::noLimit)) {
        for (const TraceRecord &r : block)
            read_digest = digestRecord(read_digest, r);
        read_records += block.size();
    }
    fatalIf(!source.status().isOk(),
            "stream ended with error: " + source.status().message());
    const double read_seconds = read_watch.seconds();
    const std::size_t read_peak = sampler.peakBytes();

    std::fprintf(stderr,
                 "  write: %7.2f s (%6.1f MiB peak)   read: %7.2f s "
                 "(%6.1f MiB peak)\n",
                 write_seconds,
                 static_cast<double>(write_peak) / (1024.0 * 1024.0),
                 read_seconds,
                 static_cast<double>(read_peak) / (1024.0 * 1024.0));

    if (!keep_file)
        std::remove(path.c_str());

    fatalIf(read_records != insts,
            "streamed " + std::to_string(read_records) + " of " +
                std::to_string(insts) + " records");
    fatalIf(read_digest != write_digest,
            "record digest diverged across the v3 round trip");
    if (budget_bytes != 0) {
        fatalIf(write_peak > budget_bytes,
                "write phase peak RSS " + std::to_string(write_peak) +
                    " exceeds the " +
                    std::to_string(budget_bytes >> 20) +
                    " MB budget");
        fatalIf(read_peak > budget_bytes,
                "streaming phase peak RSS " + std::to_string(read_peak) +
                    " exceeds the " +
                    std::to_string(budget_bytes >> 20) +
                    " MB budget");
    }
    std::fprintf(stderr,
                 "  OK: %" PRIu64 " records round-tripped, digests "
                 "match, RSS under budget\n",
                 read_records);
    return 0;
}
