/**
 * @file
 * Ablation — the §2.2 front-end menagerie under value prediction.
 *
 * The paper surveys four high-bandwidth fetch mechanisms (branch address
 * cache, tree-like subgraph prediction, collapsing buffer, trace cache)
 * and evaluates only the trace cache. This bench lines up the ones this
 * library implements — sequential fetch with 1/2/4/unlimited taken
 * branches, the branch address cache with an interleaved icache, and the
 * trace cache — and reports baseline IPC, IPC with value prediction, and
 * the VP speedup, all with a perfect branch predictor so only the fetch
 * mechanism differs.
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "core/pipeline_machine.hpp"
#include "core/speedup.hpp"
#include "sim/sim_runner.hpp"

namespace
{

using namespace vpsim;

struct FrontEnd
{
    std::string label;
    PipelineConfig config;
};

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    declareStandardOptions(options, 150000);
    options.parse(argc, argv,
                  "ablation: fetch mechanisms under value prediction");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();

    std::vector<FrontEnd> front_ends;
    for (const unsigned taken : {1u, 2u, 4u, 0u}) {
        FrontEnd fe;
        fe.label = taken == 0
            ? "sequential, unlimited taken"
            : "sequential, " + std::to_string(taken) + " taken/cycle";
        fe.config.frontEnd = FrontEndKind::Sequential;
        fe.config.maxTakenBranches = taken;
        front_ends.push_back(fe);
    }
    {
        FrontEnd fe;
        fe.label = "collapsing buffer (2 lines)";
        fe.config.frontEnd = FrontEndKind::CollapsingBuffer;
        front_ends.push_back(fe);
    }
    {
        FrontEnd fe;
        fe.label = "branch address cache (3 blocks)";
        fe.config.frontEnd = FrontEndKind::BranchAddressCache;
        front_ends.push_back(fe);
    }
    {
        FrontEnd fe;
        fe.label = "trace cache (64 x 32i/6BB)";
        fe.config.frontEnd = FrontEndKind::TraceCache;
        front_ends.push_back(fe);
    }
    for (FrontEnd &fe : front_ends)
        fe.config.perfectBranchPredictor = true;

    // One job per (front end, benchmark); each owns the base-IPC,
    // VP-IPC and gain cells for that pair.
    const std::size_t n_fes = front_ends.size();
    std::vector<std::vector<double>> base(
        n_fes, std::vector<double>(bench.size()));
    std::vector<std::vector<double>> vp(
        n_fes, std::vector<double>(bench.size()));
    std::vector<std::vector<double>> gain(
        n_fes, std::vector<double>(bench.size()));
    std::vector<SimJob> batch;
    for (std::size_t f = 0; f < n_fes; ++f) {
        for (std::size_t i = 0; i < bench.size(); ++i) {
            batch.push_back(
                {front_ends[f].label + ":" + bench.names[i],
                 [&, f, i] {
                     PipelineConfig off = front_ends[f].config;
                     off.useValuePrediction = false;
                     PipelineConfig on = front_ends[f].config;
                     on.useValuePrediction = true;
                     const PipelineResult r_off =
                         runPipelineMachine(bench.trace(i), off);
                     const PipelineResult r_on =
                         runPipelineMachine(bench.trace(i), on);
                     base[f][i] = r_off.ipc;
                     vp[f][i] = r_on.ipc;
                     gain[f][i] = static_cast<double>(r_off.cycles) /
                             static_cast<double>(r_on.cycles) -
                         1.0;
                 }});
        }
    }
    runner.run(std::move(batch));

    TablePrinter table(
        "Front-end ablation (perfect branch prediction, averages over "
        "the 8 benchmarks)",
        {"front end", "IPC base", "IPC +VP", "VP speedup"});
    for (std::size_t f = 0; f < n_fes; ++f) {
        table.addRow({front_ends[f].label,
                      TablePrinter::numberCell(arithmeticMean(base[f])),
                      TablePrinter::numberCell(arithmeticMean(vp[f])),
                      TablePrinter::percentCell(
                          arithmeticMean(gain[f]))});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: each step of front-end bandwidth (1 taken -> "
              "multi-block BAC -> trace cache / unlimited) unlocks more "
              "of the value predictor's latent speedup, the paper's "
              "central claim");
    runner.reportStats();
    return 0;
}
