/**
 * Fleet soak: a >= 10^4-cell grid driven through the supervisor with
 * worker deaths injected, asserting full completion.
 *
 * The default axes (5 predictors × 5 tables × 3 windows × 5 rates × 4
 * penalties × 8 workloads = 12000 cells) exist to prove the
 * supervisor's bookkeeping scales: every retry, backoff and merge path
 * runs thousands of times, and at the end every cell must be present
 * and finite — injected kill9/hang faults may cost wall clock, never
 * results. Wired into ctest as `fleet_soak`
 * (--fault-inject 'worker:3:kill9,worker:9:hang,worker:15:kill9').
 *
 * The binary accepts every vpsim_fleet option, so the smoke harness
 * can shrink the grid; only the *defaults* are soak-sized.
 */

#include <cmath>
#include <cstdio>

#include "common/logging.hpp"
#include "common/options.hpp"
#include "fleet/grid.hpp"
#include "fleet/supervisor.hpp"
#include "fleet/worker.hpp"

using namespace vpsim;

int
main(int argc, char **argv)
{
    Options options;
    fleet::declareFleetOptions(
        options,
        {{"insts", "2000"},
         {"predictors", "last-value,stride,2-delta,hybrid,fcm"},
         {"table-sizes", "0,256,1024,4096,16384"},
         {"window-sizes", "16,40,64"},
         {"fetch-rates", "4,8,16,32,40"},
         {"vp-penalties", "0,1,2,4"},
         {"fleet-shard-cells", "250"}});
    options.parse(argc, argv,
                  "Fleet soak: a >= 10^4-cell sweep with injected "
                  "worker deaths; asserts every cell completes.");

    if (options.getBool("fleet-worker"))
        return fleet::runFleetWorker(options);

    fleet::FleetGrid grid(options);
    const fleet::FleetReport report = fleet::runFleet(options, grid);
    fleet::reportFleetStats(options, report);

    // Soak assertions: injected faults cost retries, never cells. A
    // quarantined (NaN) cell here means recovery failed somewhere.
    fatalIf(!report.quarantinedCells.empty(),
            "fleet_soak: " +
                std::to_string(report.quarantinedCells.size()) +
                " cell(s) quarantined as NaN");
    for (std::size_t row = 0; row < grid.rows(); ++row) {
        for (std::size_t col = 0; col < grid.cols(); ++col) {
            fatalIf(std::isnan(report.cells[row][col]),
                    "fleet_soak: cell (" + std::to_string(row) + ", " +
                        std::to_string(col) + ") is NaN");
        }
    }
    // Launch counts stay on stderr (reportFleetStats): stdout must be
    // byte-identical between --fleet-workers 0 and N for the smoke
    // harness, and only retries/bisections/shard lineage are part of
    // that deterministic contract.
    std::printf("fleet_soak OK: %u cells across %zu shard(s), "
                "%llu retr%s, %llu bisection(s)\n",
                grid.cells(), report.shards.size(),
                static_cast<unsigned long long>(report.retries),
                report.retries == 1 ? "y" : "ies",
                static_cast<unsigned long long>(report.bisections));
    return 0;
}
