/**
 * @file
 * Figure 5.2 — "Value prediction speedup when using a 2-level BTB."
 *
 * Same sweep as Figure 5.1 but with the realistic branch predictor: a
 * 2-level PAp BTB (2K entries, 2-way set associative, 4-bit per-branch
 * history, multiple predictions per cycle), misprediction penalty 3.
 *
 * Paper reference (averages): ~3% at n=1 rising to ~20% at n=4 — about
 * 30% lower than the ideal-BTB speedup at n=4, showing how branch
 * prediction accuracy throttles value prediction. Their BTB averaged
 * 86% accuracy; the bench prints ours for comparison.
 */

#include <cstdio>

#include "core/pipeline_machine.hpp"
#include "core/speedup.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    options.parse(argc, argv,
                  "Figure 5.2: VP speedup vs taken branches/cycle, "
                  "2-level PAp BTB");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();

    const std::vector<unsigned> taken_limits = {1, 2, 3, 4, 0};
    std::vector<std::string> columns = {"n=1", "n=2", "n=3", "n=4",
                                        "unlimited"};

    // Each (benchmark, limit) job owns one gains cell; the n=4 jobs
    // additionally own that benchmark's BTB-accuracy slot.
    std::vector<std::vector<double>> gains(
        bench.size(), std::vector<double>(taken_limits.size()));
    std::vector<double> accuracies(bench.size());
    std::vector<SimJob> batch;
    for (std::size_t i = 0; i < bench.size(); ++i) {
        for (std::size_t col = 0; col < taken_limits.size(); ++col) {
            const unsigned limit = taken_limits[col];
            batch.push_back(
                {bench.names[i] + ":n=" + std::to_string(limit),
                 [&, i, col, limit] {
                     PipelineConfig config;
                     config.frontEnd = FrontEndKind::Sequential;
                     config.maxTakenBranches = limit;
                     config.perfectBranchPredictor = false;
                     gains[i][col] =
                         pipelineVpSpeedup(bench.trace(i), config) - 1.0;
                     if (limit == 4) {
                         PipelineConfig probe = config;
                         probe.useValuePrediction = true;
                         accuracies[i] =
                             runPipelineMachine(bench.trace(i), probe)
                                 .branchAccuracy;
                     }
                 }});
        }
    }
    runner.run(std::move(batch));

    std::fputs(renderPercentTable(
                   "Figure 5.2 - VP speedup vs max taken branches per "
                   "cycle (2-level PAp BTB, 2K entries, 2-way, 4-bit "
                   "history)",
                   bench.names, columns, gains)
                   .c_str(),
               stdout);
    std::printf("\nBTB control-flow accuracy (avg over benchmarks): "
                "%.1f%% (paper: ~86%%)\n",
                arithmeticMean(accuracies) * 100.0);
    std::puts("paper reference (avg): ~3% at n=1, ~20% at n=4 "
              "(~30% below the ideal-BTB speedup)");
    maybeWriteCsv(options, "fig5.2", bench.names, columns, gains);
    runner.reportStats();
    return 0;
}
