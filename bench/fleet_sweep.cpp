/**
 * fleet_sweep: the multi-process sweep driver.
 *
 * Partitions the full experiment grid (workload × predictor × table ×
 * window × fetch rate × penalty) into shards and runs each in an
 * isolated worker process under a fault-tolerant supervisor
 * (src/fleet/supervisor.hpp). `--fleet-workers 0` runs the identical
 * sweep in-process — the reference the chaos harness holds fleet
 * output against, byte for byte.
 *
 *   fleet_sweep --insts 20000 --fleet-workers 8 \
 *       --result-store /tmp/fleet --csv out.csv
 */

#include "fleet/fleet_main.hpp"

int
main(int argc, char **argv)
{
    return vpsim::fleet::fleetMain(
        argc, argv,
        "Fault-isolated sharded sweep over the full experiment grid; "
        "see docs/FLEET.md.");
}
