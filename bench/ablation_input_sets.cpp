/**
 * @file
 * Ablation — robustness of the headline result across input sets.
 *
 * The paper's conclusions should not be an artifact of one input. This
 * bench re-measures the Figure 3.1 BW=16 point across workload input
 * scales (SPEC-style test/train/ref sizing) and data seeds, reporting
 * the average VP speedup per input set. Stable numbers across the grid
 * mean the phenomenon is a property of the programs, not of the data.
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "core/ideal_machine.hpp"
#include "core/speedup.hpp"
#include "sim/sim_runner.hpp"
#include "workloads/workload.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 150000);
    options.parse(argc, argv,
                  "ablation: input-set robustness of Figure 3.1");
    SimRunner runner(options);
    const auto insts =
        static_cast<std::uint64_t>(options.getInt("insts"));
    std::vector<std::string> names = options.getList("benchmarks");
    if (names.empty())
        names = workloadNames();
    validateBenchmarkNames(names);

    struct InputSet
    {
        unsigned scale;
        std::uint64_t seed;
    };
    std::vector<InputSet> sets;
    for (const unsigned scale : {1u, 2u, 4u}) {
        for (const std::uint64_t seed : {0ull, 99ull})
            sets.push_back({scale, seed});
    }

    // One job per (input set, benchmark). Each job captures its own
    // scaled/reseeded trace through the runner (and hence through the
    // trace cache, if one is configured) and owns one gain cell.
    std::vector<std::vector<double>> gain(
        sets.size(), std::vector<double>(names.size()));
    std::vector<SimJob> batch;
    for (std::size_t s = 0; s < sets.size(); ++s) {
        for (std::size_t i = 0; i < names.size(); ++i) {
            batch.push_back(
                {"scale" + std::to_string(sets[s].scale) + "-seed" +
                     std::to_string(sets[s].seed) + ":" + names[i],
                 [&, s, i] {
                     WorkloadParams params;
                     params.scale = sets[s].scale;
                     params.seed = sets[s].seed;
                     const TraceHandle trace =
                         runner.captureTrace(names[i], insts, 0, params);
                     IdealMachineConfig config;
                     config.fetchRate = 16;
                     gain[s][i] = idealVpSpeedup(*trace, config) - 1.0;
                 }});
        }
    }
    runner.run(std::move(batch));

    TablePrinter table(
        "Input-set robustness - Figure 3.1 BW=16 average VP speedup",
        {"input set", "avg speedup"});
    for (std::size_t s = 0; s < sets.size(); ++s) {
        table.addRow({"scale " + std::to_string(sets[s].scale) +
                          ", seed " + std::to_string(sets[s].seed),
                      TablePrinter::percentCell(
                          arithmeticMean(gain[s]))});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: the bandwidth-dependence of value prediction "
              "survives input scaling and reseeding - it is a property "
              "of the programs' dependence structure");
    runner.reportStats();
    return 0;
}
