/**
 * @file
 * Ablation — robustness of the headline result across input sets.
 *
 * The paper's conclusions should not be an artifact of one input. This
 * bench re-measures the Figure 3.1 BW=16 point across workload input
 * scales (SPEC-style test/train/ref sizing) and data seeds, reporting
 * the average VP speedup per input set. Stable numbers across the grid
 * mean the phenomenon is a property of the programs, not of the data.
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "core/ideal_machine.hpp"
#include "sim/experiment.hpp"
#include "workloads/workload.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 150000);
    options.parse(argc, argv,
                  "ablation: input-set robustness of Figure 3.1");
    const auto insts =
        static_cast<std::uint64_t>(options.getInt("insts"));
    std::vector<std::string> names = options.getList("benchmarks");
    if (names.empty())
        names = workloadNames();

    TablePrinter table(
        "Input-set robustness - Figure 3.1 BW=16 average VP speedup",
        {"input set", "avg speedup"});
    for (const unsigned scale : {1u, 2u, 4u}) {
        for (const std::uint64_t seed : {0ull, 99ull}) {
            WorkloadParams params;
            params.scale = scale;
            params.seed = seed;
            double gain_sum = 0.0;
            for (const std::string &name : names) {
                const auto trace =
                    captureWorkloadTrace(name, insts, params);
                IdealMachineConfig config;
                config.fetchRate = 16;
                gain_sum += idealVpSpeedup(trace, config) - 1.0;
            }
            table.addRow(
                {"scale " + std::to_string(scale) + ", seed " +
                     std::to_string(seed),
                 TablePrinter::percentCell(
                     gain_sum / static_cast<double>(names.size()))});
        }
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: the bandwidth-dependence of value prediction "
              "survives input scaling and reseeding - it is a property "
              "of the programs' dependence structure");
    return 0;
}
