/**
 * @file
 * Ablation — wrong-path fetch (a fidelity knob beyond the paper).
 *
 * The paper's (and this repo's default) trace-driven front end stalls on
 * a branch misprediction; a real machine keeps fetching down the
 * predicted path, filling the window with doomed instructions and
 * polluting the value predictor's speculative state until the branch
 * resolves. This bench re-runs the Figure 5.2 configuration (2-level
 * PAp BTB) with wrong-path modelling on and off, and reports how much
 * of the VP speedup the pollution costs — closing part of the gap
 * between our Figure 5.2 and the paper's (see EXPERIMENTS.md).
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "core/pipeline_machine.hpp"
#include "core/speedup.hpp"
#include "sim/sim_runner.hpp"
#include "workloads/workload.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 120000);
    options.parse(argc, argv,
                  "ablation: wrong-path fetch vs stall-on-mispredict");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();
    const auto insts =
        static_cast<std::uint64_t>(options.getInt("insts"));

    // One job per benchmark; each rebuilds its workload (for the
    // wrong-path program image) and owns the three cells of its row.
    std::vector<double> stall(bench.size());
    std::vector<double> wrong_path(bench.size());
    std::vector<double> wp_per_k(bench.size());
    std::vector<SimJob> batch;
    for (std::size_t i = 0; i < bench.size(); ++i) {
        batch.push_back({"wrong-path:" + bench.names[i], [&, i] {
            Workload workload = buildWorkload(bench.names[i]);
            PipelineConfig config;
            config.perfectBranchPredictor = false;
            config.maxTakenBranches = 4;
            stall[i] = pipelineVpSpeedup(bench.trace(i), config) - 1.0;

            config.modelWrongPath = true;
            config.program = &workload.program;
            wrong_path[i] =
                pipelineVpSpeedup(bench.trace(i), config) - 1.0;

            PipelineConfig probe = config;
            probe.useValuePrediction = true;
            const PipelineResult run =
                runPipelineMachine(bench.trace(i), probe);
            wp_per_k[i] = 1000.0 *
                static_cast<double>(run.wrongPathFetched) /
                static_cast<double>(insts);
        }});
    }
    runner.run(std::move(batch));

    TablePrinter table(
        "Wrong-path ablation - VP speedup with the 2-level BTB, "
        "4 taken branches/cycle",
        {"benchmark", "stall (default)", "wrong-path modelled",
         "wrong-path insts/1k"});
    for (std::size_t i = 0; i < bench.size(); ++i) {
        table.addRow({bench.names[i],
                      TablePrinter::percentCell(stall[i]),
                      TablePrinter::percentCell(wrong_path[i]),
                      TablePrinter::numberCell(wp_per_k[i], 1)});
    }
    table.addSeparator();
    table.addRow({"avg", TablePrinter::percentCell(arithmeticMean(stall)),
                  TablePrinter::percentCell(arithmeticMean(wrong_path)),
                  "-"});

    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: wrong-path bubbles shave the realistic-BTB "
              "VP speedup further below the ideal-BTB numbers, in the "
              "direction of the paper's ~30% gap");
    runner.reportStats();
    return 0;
}
