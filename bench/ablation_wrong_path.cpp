/**
 * @file
 * Ablation — wrong-path fetch (a fidelity knob beyond the paper).
 *
 * The paper's (and this repo's default) trace-driven front end stalls on
 * a branch misprediction; a real machine keeps fetching down the
 * predicted path, filling the window with doomed instructions and
 * polluting the value predictor's speculative state until the branch
 * resolves. This bench re-runs the Figure 5.2 configuration (2-level
 * PAp BTB) with wrong-path modelling on and off, and reports how much
 * of the VP speedup the pollution costs — closing part of the gap
 * between our Figure 5.2 and the paper's (see EXPERIMENTS.md).
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "core/pipeline_machine.hpp"
#include "sim/experiment.hpp"
#include "workloads/workload.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 120000);
    options.parse(argc, argv,
                  "ablation: wrong-path fetch vs stall-on-mispredict");
    const BenchmarkTraces bench = captureBenchmarks(options);
    const auto insts =
        static_cast<std::uint64_t>(options.getInt("insts"));

    TablePrinter table(
        "Wrong-path ablation - VP speedup with the 2-level BTB, "
        "4 taken branches/cycle",
        {"benchmark", "stall (default)", "wrong-path modelled",
         "wrong-path insts/1k"});

    double stall_sum = 0.0;
    double wp_sum = 0.0;
    for (std::size_t i = 0; i < bench.size(); ++i) {
        Workload workload = buildWorkload(bench.names[i]);
        PipelineConfig config;
        config.perfectBranchPredictor = false;
        config.maxTakenBranches = 4;
        const double stall =
            pipelineVpSpeedup(bench.traces[i], config) - 1.0;

        config.modelWrongPath = true;
        config.program = &workload.program;
        const double wrong_path =
            pipelineVpSpeedup(bench.traces[i], config) - 1.0;

        PipelineConfig probe = config;
        probe.useValuePrediction = true;
        const PipelineResult run =
            runPipelineMachine(bench.traces[i], probe);
        const double wp_per_k =
            1000.0 * static_cast<double>(run.wrongPathFetched) /
            static_cast<double>(insts);

        stall_sum += stall;
        wp_sum += wrong_path;
        table.addRow({bench.names[i], TablePrinter::percentCell(stall),
                      TablePrinter::percentCell(wrong_path),
                      TablePrinter::numberCell(wp_per_k, 1)});
    }
    table.addSeparator();
    const double n = static_cast<double>(bench.size());
    table.addRow({"avg", TablePrinter::percentCell(stall_sum / n),
                  TablePrinter::percentCell(wp_sum / n), "-"});

    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: wrong-path bubbles shave the realistic-BTB "
              "VP speedup further below the ideal-BTB numbers, in the "
              "direction of the paper's ~30% gap");
    return 0;
}
