/**
 * @file
 * Simulation-throughput harness: wall-clock, MIPS and peak RSS for
 * every machine model, emitted as JSON (schema in docs/PERF.md).
 *
 * Two jobs:
 *  - track the simulator's own speed across commits (the committed
 *    BENCH_<n>.json snapshots; compare with scripts/perf_report.py);
 *  - demonstrate the batched trace-delivery API against the deprecated
 *    per-record shim: `ideal_per_record` is a faithful replica of the
 *    pre-span ideal-machine loop driven one TraceRecord::next() at a
 *    time, and the harness refuses to report a speedup unless both
 *    paths produced bit-identical simulation results on every
 *    benchmark.
 *
 * Measurement method: each model runs --repeats times over all
 * captured benchmark traces back to back; the reported wall time is
 * the median repeat, MIPS = simulated instructions / median seconds,
 * and peak RSS is sampled per model phase (RssSampler) plus the
 * process-lifetime ru_maxrss upper bound. Each model also reports
 * mips_min (from the fastest repeat): on a shared machine the median
 * still absorbs interference, so trajectory comparisons between
 * BENCH_*.json snapshots should prefer the min (see perf_report.py).
 */

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cancellation.hpp"
#include "common/invariant.hpp"
#include "common/logging.hpp"
#include "common/resource_usage.hpp"
#include "core/ideal_machine.hpp"
#include "core/pipeline_machine.hpp"
#include "core/reference_machine.hpp"
#include "isa/instruction.hpp"
#include "sim/experiment.hpp"
#include "trace/source.hpp"
#include "trace/streaming_source.hpp"
#include "trace/trace_v3.hpp"

namespace vpsim
{
namespace
{

/**
 * The pre-span ideal machine, verbatim from the per-record era except
 * that records arrive through the deprecated TraceSource::next() shim
 * — one virtual dispatch and one record copy per instruction, plus
 * the per-record divide/modulo and polling the batched loop hoisted.
 * Kept as the harness's measured baseline; its results must match
 * runIdealMachine() exactly.
 */
IdealMachineResult
runIdealMachinePerRecord(TraceSource &source,
                         const IdealMachineConfig &config)
{
    fatalIf(config.fetchRate == 0, "fetch rate must be positive");
    fatalIf(config.windowSize == 0, "window size must be positive");

    IdealMachineResult result;

    std::unique_ptr<ClassifiedPredictor> predictor;
    if (config.useValuePrediction && !config.perfectValuePrediction) {
        predictor = makeClassifiedPredictor(
            config.predictorKind, config.tableCapacity,
            config.counterBits, config.missPolicy);
    }

    struct Writer
    {
        Cycle execCycle = 0;
        bool exists = false;
        bool predicted = false;
        bool correct = false;
    };
    std::vector<Writer> lastWriter(numArchRegs);
    std::vector<Cycle> windowExec(config.windowSize, 0);

    Cycle max_exec = 0;
    source.reset();
    TraceRecord record;
    std::uint64_t i = 0;
    // lint:allow trace-per-record -- this driver exists to measure the
    // deprecated shim against the batched API.
    for (; source.next(record); ++i) {
        if ((i & 0xfff) == 0)
            simHeartbeat(i);
        const Cycle fetch_cycle = i / config.fetchRate + 1;
        Cycle earliest = fetch_cycle + config.frontendLatency;

        if (i >= config.windowSize) {
            earliest = std::max(earliest,
                                windowExec[i % config.windowSize] + 1);
        }

        struct OperandUse
        {
            Cycle readyNoVp = 0;
            int kind = 0;
        };
        OperandUse uses[2];
        unsigned num_uses = 0;

        const auto consume = [&](RegIndex reg) {
            if (reg == invalidReg || reg == 0)
                return;
            const Writer &writer = lastWriter[reg];
            if (!writer.exists)
                return;
            OperandUse use;
            use.readyNoVp = writer.execCycle + 1;
            if (config.useValuePrediction && writer.predicted)
                use.kind = writer.correct ? 1 : 2;
            uses[num_uses++] = use;
        };
        consume(record.rs1);
        consume(record.rs2);

        for (unsigned u = 0; u < num_uses; ++u) {
            if (uses[u].readyNoVp > earliest)
                ++result.stallingUses;
        }

        Cycle issue = earliest;
        for (unsigned u = 0; u < num_uses; ++u) {
            if (uses[u].kind == 0)
                issue = std::max(issue, uses[u].readyNoVp);
        }
        Cycle exec = issue;
        if (num_uses == 2 && uses[0].kind == 2 && uses[1].kind == 2 &&
            uses[0].readyNoVp > uses[1].readyNoVp) {
            std::swap(uses[0], uses[1]);
        }
        for (unsigned u = 0; u < num_uses; ++u) {
            if (uses[u].kind != 2)
                continue;
            if (uses[u].readyNoVp <= exec) {
                exec = std::max(exec, uses[u].readyNoVp);
            } else {
                exec = uses[u].readyNoVp + config.vpPenalty;
            }
        }
        for (unsigned u = 0; u < num_uses; ++u) {
            if (uses[u].kind != 1)
                continue;
            ++result.correctlyPredictedUses;
            if (uses[u].readyNoVp > exec)
                ++result.usefulPredictions;
        }
        if (i >= config.windowSize) {
            checkInvariant(
                InvariantLevel::Full,
                exec >= windowExec[i % config.windowSize] + 1,
                "ideal.window_slot_reuse", [&] {
                    return "inst " + std::to_string(i) +
                           " executes in " + std::to_string(exec) +
                           " but its window slot frees in " +
                           std::to_string(
                               windowExec[i % config.windowSize]);
                });
        }
        checkInvariant(InvariantLevel::Full,
                       exec >= fetch_cycle + config.frontendLatency,
                       "ideal.frontend_latency", [&] {
                           return "inst " + std::to_string(i) +
                                  " executes in " + std::to_string(exec) +
                                  " before fetch " +
                                  std::to_string(fetch_cycle) +
                                  " + frontend latency";
                       });
        windowExec[i % config.windowSize] = exec;
        max_exec = std::max(max_exec, exec);

        if (record.producesValue()) {
            Writer writer;
            writer.exists = true;
            writer.execCycle = exec;
            const bool in_scope =
                config.vpScope == VpScope::AllInstructions ||
                record.instClass() == InstClass::Load;
            if (config.useValuePrediction && in_scope) {
                if (config.perfectValuePrediction) {
                    writer.predicted = true;
                    writer.correct = true;
                    ++result.predictionsMade;
                    ++result.predictionsCorrect;
                } else {
                    const ClassifiedPrediction prediction =
                        predictor->predict(record.pc);
                    writer.predicted = prediction.predicted;
                    writer.correct = prediction.predicted &&
                                     prediction.value == record.result;
                    predictor->update(record.pc, prediction,
                                      record.result);
                }
            }
            lastWriter[record.rd] = writer;
        }
    }

    result.instructions = i;
    if (i == 0)
        return result;

    if (predictor) {
        result.predictionsMade = predictor->predictionsMade();
        result.predictionsCorrect = predictor->predictionsCorrect();
        result.predictionsWrong = predictor->predictionsWrong();
    }

    result.cycles = max_exec;
    result.ipc = static_cast<double>(result.instructions) /
                 static_cast<double>(result.cycles);
    return result;
}

/** Everything the JSON needs about one model's measurement. */
struct ModelMeasurement
{
    std::string name;
    std::vector<double> wallSeconds; //!< one entry per repeat
    double medianSeconds = 0.0;
    double minSeconds = 0.0;
    double mips = 0.0;
    /**
     * MIPS from the fastest repeat. The median absorbs one-sided
     * scheduling noise but still wanders when half the repeats land on
     * a busy machine; the minimum is the run closest to the code's
     * true cost and is what trajectory comparisons should use (the
     * only error on a min is that the machine was never quiet).
     */
    double mipsMin = 0.0;
    std::size_t peakRssBytes = 0;
    /** Sum of cycle counts across benchmarks: a cheap result digest. */
    std::uint64_t cyclesDigest = 0;
};

double
medianOf(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    const std::size_t n = samples.size();
    if (n == 0)
        return 0.0;
    if (n % 2 == 1)
        return samples[n / 2];
    return (samples[n / 2 - 1] + samples[n / 2]) / 2.0;
}

/**
 * Measure @p body, which must simulate all benchmarks once and return
 * the summed cycle digest, @p repeats times.
 */
template <typename Body>
ModelMeasurement
measureModel(const std::string &name, std::uint64_t total_insts,
             unsigned repeats, RssSampler &sampler, const Body &body)
{
    ModelMeasurement m;
    m.name = name;
    sampler.beginPhase();
    for (unsigned r = 0; r < repeats; ++r) {
        Stopwatch watch;
        const std::uint64_t digest = body();
        m.wallSeconds.push_back(watch.seconds());
        if (r == 0) {
            m.cyclesDigest = digest;
        } else {
            fatalIf(digest != m.cyclesDigest,
                    "model " + name + " was not run-to-run deterministic");
        }
    }
    m.medianSeconds = medianOf(m.wallSeconds);
    m.minSeconds = m.wallSeconds.empty()
        ? 0.0
        : *std::min_element(m.wallSeconds.begin(), m.wallSeconds.end());
    m.peakRssBytes = sampler.peakBytes();
    m.mips = m.medianSeconds <= 0.0
        ? 0.0
        : static_cast<double>(total_insts) / m.medianSeconds / 1e6;
    m.mipsMin = m.minSeconds <= 0.0
        ? 0.0
        : static_cast<double>(total_insts) / m.minSeconds / 1e6;
    std::fprintf(stderr,
                 "  %-18s %8.3f s  %8.2f MIPS (min %8.2f)  %6.1f MiB\n",
                 name.c_str(), m.medianSeconds, m.mips, m.mipsMin,
                 static_cast<double>(m.peakRssBytes) / (1024.0 * 1024.0));
    return m;
}

void
writeJson(std::FILE *out, const Options &options,
          const BenchmarkTraces &bench, std::uint64_t total_insts,
          unsigned repeats, const std::vector<ModelMeasurement> &models,
          double span_speedup, double span_speedup_vp)
{
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"schema\": \"vpsim-perf-1\",\n");
    std::fprintf(out, "  \"insts_per_benchmark\": %llu,\n",
                 static_cast<unsigned long long>(
                     options.getInt("insts")));
    std::fprintf(out, "  \"repeats\": %u,\n", repeats);
    std::fprintf(out, "  \"benchmarks\": [");
    for (std::size_t i = 0; i < bench.names.size(); ++i) {
        std::fprintf(out, "%s\"%s\"", i == 0 ? "" : ", ",
                     bench.names[i].c_str());
    }
    std::fprintf(out, "],\n");
    std::fprintf(out, "  \"total_instructions\": %llu,\n",
                 static_cast<unsigned long long>(total_insts));
    std::fprintf(out, "  \"process_peak_rss_bytes\": %llu,\n",
                 static_cast<unsigned long long>(
                     RssSampler::processPeakRssBytes()));
    std::fprintf(out, "  \"models\": [\n");
    for (std::size_t i = 0; i < models.size(); ++i) {
        const ModelMeasurement &m = models[i];
        std::fprintf(out, "    {\n");
        std::fprintf(out, "      \"name\": \"%s\",\n", m.name.c_str());
        std::fprintf(out, "      \"wall_seconds\": %.6f,\n",
                     m.medianSeconds);
        std::fprintf(out, "      \"wall_seconds_all\": [");
        for (std::size_t r = 0; r < m.wallSeconds.size(); ++r) {
            std::fprintf(out, "%s%.6f", r == 0 ? "" : ", ",
                         m.wallSeconds[r]);
        }
        std::fprintf(out, "],\n");
        std::fprintf(out, "      \"wall_seconds_min\": %.6f,\n",
                     m.minSeconds);
        std::fprintf(out, "      \"mips\": %.3f,\n", m.mips);
        std::fprintf(out, "      \"mips_min\": %.3f,\n", m.mipsMin);
        std::fprintf(out, "      \"peak_rss_bytes\": %llu,\n",
                     static_cast<unsigned long long>(m.peakRssBytes));
        std::fprintf(out, "      \"cycles_digest\": %llu\n",
                     static_cast<unsigned long long>(m.cyclesDigest));
        std::fprintf(out, "    }%s\n",
                     i + 1 == models.size() ? "" : ",");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"derived\": {\n");
    std::fprintf(out,
                 "    \"span_vs_per_record_speedup\": %.3f,\n",
                 span_speedup);
    std::fprintf(out,
                 "    \"span_vs_per_record_speedup_vp\": %.3f\n",
                 span_speedup_vp);
    std::fprintf(out, "  }\n");
    std::fprintf(out, "}\n");
}

} // namespace
} // namespace vpsim

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 400000);
    options.declare("repeats", "3",
                    "timing repeats per model (median is reported)");
    options.declare("out", "",
                    "write the JSON report to this file (default: "
                    "stdout only)");
    options.parse(argc, argv,
                  "Perf harness: wall-clock / MIPS / peak RSS per "
                  "machine model, JSON out (docs/PERF.md)");

    const BenchmarkTraces bench = captureBenchmarks(options);
    const unsigned repeats =
        static_cast<unsigned>(options.getInt("repeats"));
    fatalIf(repeats == 0, "--repeats must be at least 1");

    std::uint64_t total_insts = 0;
    for (std::size_t b = 0; b < bench.size(); ++b)
        total_insts += bench.trace(b).size();

    // One SoA transpose per benchmark, done once at capture time (a
    // storage-layout decision, like the capture itself): the span
    // models then stream columns zero-copy on every repeat.
    std::vector<TraceSoa> soa(bench.size());
    for (std::size_t b = 0; b < bench.size(); ++b)
        soa[b].assign(TraceSpan(bench.trace(b)));

    IdealMachineConfig ideal_config;
    ideal_config.useValuePrediction = true;
    // The pure scheduling loop: no predictor tables, so delivery and
    // bookkeeping costs are the whole per-instruction path. This is
    // the pair that isolates the batched API against the shim.
    IdealMachineConfig novp_config;
    novp_config.useValuePrediction = false;

    RssSampler sampler;
    std::vector<ModelMeasurement> models;
    std::fprintf(stderr,
                 "perf harness: %zu benchmarks, %llu insts total, "
                 "%u repeats\n",
                 bench.size(),
                 static_cast<unsigned long long>(total_insts), repeats);

    // The tentpole comparison: batched span delivery vs the deprecated
    // per-record shim, same machine, same records. Measured both on
    // the bare scheduling loop (no VP: delivery cost is the whole
    // story) and with the stride predictor on (delivery amortized
    // against table lookups).
    models.push_back(measureModel(
        "ideal_novp_span", total_insts, repeats, sampler, [&] {
            std::uint64_t digest = 0;
            for (std::size_t b = 0; b < bench.size(); ++b) {
                BorrowedTraceSource source{TraceSpan(bench.trace(b)),
                                           soa[b].columns()};
                digest += runIdealMachine(source, novp_config).cycles;
            }
            return digest;
        }));
    models.push_back(measureModel(
        "ideal_novp_per_record", total_insts, repeats, sampler, [&] {
            std::uint64_t digest = 0;
            for (std::size_t b = 0; b < bench.size(); ++b) {
                BorrowedTraceSource source{TraceSpan(bench.trace(b))};
                digest +=
                    runIdealMachinePerRecord(source, novp_config)
                        .cycles;
            }
            return digest;
        }));
    models.push_back(measureModel(
        "ideal_span", total_insts, repeats, sampler, [&] {
            std::uint64_t digest = 0;
            for (std::size_t b = 0; b < bench.size(); ++b) {
                BorrowedTraceSource source{TraceSpan(bench.trace(b)),
                                           soa[b].columns()};
                digest +=
                    runIdealMachine(source, ideal_config).cycles;
            }
            return digest;
        }));
    models.push_back(measureModel(
        "ideal_per_record", total_insts, repeats, sampler, [&] {
            std::uint64_t digest = 0;
            for (std::size_t b = 0; b < bench.size(); ++b) {
                BorrowedTraceSource source{TraceSpan(bench.trace(b))};
                digest +=
                    runIdealMachinePerRecord(source, ideal_config)
                        .cycles;
            }
            return digest;
        }));

    // The two paths must agree result-for-result, not just on the
    // digest: re-run once per benchmark and compare every statistic.
    for (std::size_t b = 0; b < bench.size(); ++b) {
        for (const IdealMachineConfig *config :
             {&novp_config, &ideal_config}) {
        BorrowedTraceSource span_source{TraceSpan(bench.trace(b)),
                                        soa[b].columns()};
        BorrowedTraceSource shim_source{TraceSpan(bench.trace(b))};
        const IdealMachineResult via_span =
            runIdealMachine(span_source, *config);
        const IdealMachineResult via_shim =
            runIdealMachinePerRecord(shim_source, *config);
        fatalIf(via_span.cycles != via_shim.cycles ||
                    via_span.instructions != via_shim.instructions ||
                    via_span.predictionsMade !=
                        via_shim.predictionsMade ||
                    via_span.predictionsCorrect !=
                        via_shim.predictionsCorrect ||
                    via_span.predictionsWrong !=
                        via_shim.predictionsWrong ||
                    via_span.correctlyPredictedUses !=
                        via_shim.correctlyPredictedUses ||
                    via_span.stallingUses != via_shim.stallingUses ||
                    via_span.usefulPredictions !=
                        via_shim.usefulPredictions,
                "span and per-record ideal machines diverged on " +
                    bench.names[b]);
        }
    }
    std::fprintf(stderr,
                 "  span/per-record results verified identical on %zu "
                 "benchmarks\n",
                 bench.size());

    // Streaming phase: the same ideal-machine sweep, but fed from v3
    // files through the bounded-memory StreamingTraceSource instead of
    // the materialized spans — the cost of block decode + the sliding
    // window, measured against ideal_span above. The digest must match
    // the in-memory path exactly, and with --mem-budget set the phase's
    // peak RSS must stay under it (note the budget must also cover the
    // materialized captures the harness itself holds).
    {
        const char *tmp = std::getenv("TMPDIR");
        const std::string v3_stem =
            std::string(tmp ? tmp : "/tmp") + "/vpsim-perf-v3-" +
            std::to_string(::getpid()) + "-";
        std::vector<std::string> v3_paths;
        for (std::size_t b = 0; b < bench.size(); ++b) {
            v3_paths.push_back(v3_stem + bench.names[b] + ".vptrace");
            fatalIf(!writeTraceV3(v3_paths[b], bench.trace(b)).isOk(),
                    "cannot write v3 copy of " + bench.names[b]);
        }
        StreamingOptions streaming;
        streaming.memBudgetBytes =
            static_cast<std::uint64_t>(options.getInt("mem-budget"))
            << 20;
        models.push_back(measureModel(
            "ideal_span_streaming_v3", total_insts, repeats, sampler,
            [&] {
                std::uint64_t digest = 0;
                for (std::size_t b = 0; b < bench.size(); ++b) {
                    StreamingTraceSource source;
                    fatalIf(!source.open(v3_paths[b], streaming).isOk(),
                            "cannot stream " + v3_paths[b]);
                    digest +=
                        runIdealMachine(source, ideal_config).cycles;
                    fatalIf(!source.status().isOk(),
                            "streaming " + bench.names[b] +
                                " failed: " +
                                source.status().message());
                }
                return digest;
            }));
        for (const std::string &v3_path : v3_paths)
            std::remove(v3_path.c_str());
        const ModelMeasurement &streamed = models.back();
        fatalIf(streamed.cyclesDigest != models[2].cyclesDigest ||
                    models[2].name != "ideal_span",
                "streaming v3 path diverged from the in-memory span "
                "path");
        fatalIf(streaming.memBudgetBytes != 0 &&
                    streamed.peakRssBytes > streaming.memBudgetBytes,
                "streaming phase peak RSS exceeds --mem-budget");
    }

    models.push_back(measureModel(
        "reference_ideal", total_insts, repeats, sampler, [&] {
            std::uint64_t digest = 0;
            for (std::size_t b = 0; b < bench.size(); ++b) {
                digest += runReferenceIdealMachine(bench.trace(b),
                                                   ideal_config)
                              .cycles;
            }
            return digest;
        }));

    PipelineConfig pipe_seq;
    pipe_seq.useValuePrediction = true;
    models.push_back(measureModel(
        "pipeline_sequential", total_insts, repeats, sampler, [&] {
            std::uint64_t digest = 0;
            for (std::size_t b = 0; b < bench.size(); ++b) {
                digest +=
                    runPipelineMachine(bench.trace(b), pipe_seq).cycles;
            }
            return digest;
        }));

    PipelineConfig pipe_tc = pipe_seq;
    pipe_tc.frontEnd = FrontEndKind::TraceCache;
    models.push_back(measureModel(
        "pipeline_trace_cache", total_insts, repeats, sampler, [&] {
            std::uint64_t digest = 0;
            for (std::size_t b = 0; b < bench.size(); ++b) {
                digest +=
                    runPipelineMachine(bench.trace(b), pipe_tc).cycles;
            }
            return digest;
        }));

    const auto mipsOf = [&](const std::string &name) {
        for (const ModelMeasurement &m : models) {
            if (m.name == name)
                return m.mips;
        }
        return 0.0;
    };
    const double novp_per_record = mipsOf("ideal_novp_per_record");
    const double span_speedup = novp_per_record <= 0.0
        ? 0.0
        : mipsOf("ideal_novp_span") / novp_per_record;
    const double vp_per_record = mipsOf("ideal_per_record");
    const double span_speedup_vp = vp_per_record <= 0.0
        ? 0.0
        : mipsOf("ideal_span") / vp_per_record;
    std::fprintf(stderr,
                 "  batched span API vs per-record shim: %.2fx MIPS "
                 "(hot path), %.2fx with VP tables\n",
                 span_speedup, span_speedup_vp);

    writeJson(stdout, options, bench, total_insts, repeats, models,
              span_speedup, span_speedup_vp);
    const std::string out_path = options.getString("out");
    if (!out_path.empty()) {
        std::FILE *out = std::fopen(out_path.c_str(), "w");
        fatalIf(out == nullptr,
                "cannot open --out file " + out_path);
        writeJson(out, options, bench, total_insts, repeats, models,
                  span_speedup, span_speedup_vp);
        std::fclose(out);
    }
    return 0;
}
