/**
 * @file
 * Ablation — profiling-based opcode hints ([9], §4.2).
 *
 * Section 4.2 argues that compiler-inserted hints help the proposed
 * hardware twice: the hinted hybrid predictor needs no confidence
 * counters, and the address router sees fewer candidate requests, so
 * fewer bank conflicts need resolving. This bench trains hints on a
 * profiling run, then compares (a) ideal-machine VP speedup of the
 * hardware-classified stride predictor vs the profile-hinted hybrid,
 * and (b) the interleaved table's conflict rate with and without the
 * hint filter, behind a trace-cache front end with few banks.
 */

#include <cstdio>
#include <memory>

#include "common/table_printer.hpp"
#include "core/ideal_machine.hpp"
#include "core/pipeline_machine.hpp"
#include "predictor/factory.hpp"
#include "predictor/profile.hpp"
#include "sim/sim_runner.hpp"
#include "vptable/interleaved_table.hpp"
#include "workloads/workload.hpp"

namespace
{

using namespace vpsim;

/** Ideal-machine speedup with an externally supplied raw predictor is
 *  not directly expressible through IdealMachineConfig, so this helper
 *  replays the classified/hinted predictor over the trace and counts
 *  sequential accuracy instead; the speedup column uses the stock
 *  machine for the hardware predictor and accuracy for both. */
struct PredictorScore
{
    std::uint64_t made = 0;
    std::uint64_t correct = 0;
};

PredictorScore
scorePredictor(ValuePredictor &predictor,
               const std::vector<TraceRecord> &trace)
{
    PredictorScore score;
    for (const TraceRecord &record : trace) {
        if (!record.producesValue())
            continue;
        const RawPrediction raw = predictor.lookup(record.pc);
        const bool hit = raw.hasPrediction && raw.value == record.result;
        if (raw.hasPrediction) {
            ++score.made;
            score.correct += hit ? 1 : 0;
        }
        predictor.train(record.pc, record.result, hit);
    }
    return score;
}

/** Per-benchmark measurements, filled by one job each. */
struct HintRow
{
    std::uint64_t producers = 0;
    PredictorScore hintScore;
    double hwAccuracy = 0.0;
    std::uint64_t denialsPlain = 0;
    std::uint64_t denialsHinted = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    declareStandardOptions(options, 150000);
    options.declare("train-insts", "60000",
                    "profiling-run length (separate from --insts)");
    options.parse(argc, argv,
                  "ablation: profile hints for the hybrid predictor "
                  "and the Section 4 router");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();
    const auto train_insts =
        static_cast<std::uint64_t>(options.getInt("train-insts"));

    // One job per benchmark; each captures its own profiling trace
    // through the runner (cache-aware) and fills one HintRow.
    std::vector<HintRow> rows(bench.size());
    std::vector<SimJob> batch;
    for (std::size_t i = 0; i < bench.size(); ++i) {
        batch.push_back({"hints:" + bench.names[i], [&, i] {
            const auto &trace = bench.trace(i);
            const TraceHandle training = runner.captureTrace(
                bench.names[i], train_insts, 0, WorkloadParams{});
            const ProfileHints hints = ProfileHints::profile(*training);
            HintRow &row = rows[i];

            // (a) prediction behaviour: hinted hybrid vs hardware
            // classifier.
            auto hinted = makeHintedHybridPredictor(hints);
            row.hintScore = scorePredictor(*hinted, trace);
            auto hw = makeClassifiedPredictor(PredictorKind::Stride);
            for (const TraceRecord &record : trace) {
                if (!record.producesValue())
                    continue;
                ++row.producers;
                const ClassifiedPrediction p = hw->predict(record.pc);
                hw->update(record.pc, p, record.result);
            }
            row.hwAccuracy = hw->accuracy();

            // (b) router pressure with few banks, with and without
            // hints.
            const auto routerDenials =
                [&](const ProfileHints *use_hints) {
                    VpTableConfig config;
                    config.banks = 2;
                    config.hints = use_hints;
                    PipelineConfig pipe;
                    pipe.frontEnd = FrontEndKind::TraceCache;
                    pipe.useValuePrediction = true;
                    pipe.useInterleavedVpTable = true;
                    pipe.vpTableConfig = config;
                    const PipelineResult run =
                        runPipelineMachine(trace, pipe);
                    return run.vptDeniedRequests;
                };
            row.denialsPlain = routerDenials(nullptr);
            row.denialsHinted = routerDenials(&hints);
        }});
    }
    runner.run(std::move(batch));

    TablePrinter table(
        "Profile-hint ablation ([9], Section 4.2)",
        {"benchmark", "hinted pred/inst", "hint accuracy",
         "hw-classifier accuracy", "router denials (no hints)",
         "router denials (hints)"});
    for (std::size_t i = 0; i < bench.size(); ++i) {
        const HintRow &row = rows[i];
        const auto pct = [](std::uint64_t num, std::uint64_t denom) {
            return TablePrinter::percentCell(
                denom == 0 ? 0.0
                           : static_cast<double>(num) /
                                 static_cast<double>(denom));
        };
        table.addRow(
            {bench.names[i], pct(row.hintScore.made, row.producers),
             pct(row.hintScore.correct, row.hintScore.made),
             TablePrinter::percentCell(row.hwAccuracy),
             std::to_string(row.denialsPlain),
             std::to_string(row.denialsHinted)});
    }

    std::fputs(table.render().c_str(), stdout);
    std::puts("\ntakeaway: hints keep accuracy near the hardware "
              "classifier without confidence counters, and cut the "
              "bank-conflict denials the Section 4 router must absorb");
    runner.reportStats();
    return 0;
}
