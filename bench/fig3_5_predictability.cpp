/**
 * @file
 * Figure 3.5 — "The distribution of data dependencies according to their
 * value predictability and DID."
 *
 * Every dependence arc is classified by whether an infinite stride
 * predictor got the producer's value right at that dynamic instance;
 * predictable arcs are split by DID (1 / 2 / 3 / >=4).
 *
 * Paper reference: ~23% of dependencies (avg) are predictable with
 * DID < 4 (exploitable by a 4-wide machine); the predictable DID >= 4
 * fraction is ~40% for m88ksim and >55% for vortex versus ~20-25% for
 * the rest, which is why those two gain most from wider fetch.
 */

#include <cstdio>

#include "analysis/predictability.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 1000000);
    options.parse(argc, argv,
                  "Figure 3.5: predictability x DID distribution");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();

    const std::vector<std::string> columns = {
        "unpredictable", "pred DID=1", "pred DID=2", "pred DID=3",
        "pred DID>=4",
    };
    // One job per benchmark: a single analysis pass fills the row.
    std::vector<std::vector<double>> cells(bench.size());
    std::vector<SimJob> batch;
    for (std::size_t i = 0; i < bench.size(); ++i) {
        batch.push_back(
            {"predictability:" + bench.names[i], [&cells, &bench, i] {
                 const PredictabilityAnalysis pa =
                     analyzePredictability(bench.trace(i));
                 cells[i] = {pa.fracUnpredictable,
                             pa.fracPredictableDid1,
                             pa.fracPredictableDid2,
                             pa.fracPredictableDid3,
                             pa.fracPredictableDid4Plus};
             }});
    }
    runner.run(std::move(batch));

    std::fputs(renderPercentTable(
                   "Figure 3.5 - dependencies by value predictability "
                   "and DID (infinite stride table)",
                   bench.names, columns, cells)
                   .c_str(),
               stdout);
    std::puts("\npaper reference: ~23% (avg) predictable with DID < 4; "
              "m88ksim ~40% and vortex >55% predictable with DID >= 4");
    maybeWriteCsv(options, "fig3.5", bench.names, columns, cells);
    runner.reportStats();
    return 0;
}
