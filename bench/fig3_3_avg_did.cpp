/**
 * @file
 * Figure 3.3 — "Average DID measurements."
 *
 * Builds the trace-wide dataflow graph of every benchmark (register
 * true-data dependencies across basic-block boundaries, Equation 3.1)
 * and reports the arithmetic mean dynamic instruction distance.
 *
 * Paper reference: every benchmark's average DID exceeds the 4-wide
 * fetch bandwidth of then-current processors.
 */

#include <cstdio>

#include "analysis/did.hpp"
#include "common/table_printer.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 1000000);
    options.parse(argc, argv, "Figure 3.3: average DID per benchmark");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();

    // One job per benchmark; each owns its DidAnalysis slot.
    std::vector<DidAnalysis> dids(bench.size());
    std::vector<SimJob> batch;
    for (std::size_t i = 0; i < bench.size(); ++i) {
        batch.push_back({"did:" + bench.names[i], [&dids, &bench, i] {
                             dids[i] = analyzeDid(bench.trace(i));
                         }});
    }
    runner.run(std::move(batch));

    TablePrinter table(
        "Figure 3.3 - average dynamic instruction distance (DID)",
        {"benchmark", "avg DID", "avg DID (<=256)", "arcs", "DID>=4"});
    std::vector<double> averages;
    for (std::size_t i = 0; i < bench.size(); ++i) {
        const DidAnalysis &did = dids[i];
        averages.push_back(did.averageDidTrimmed);
        table.addRow({bench.names[i],
                      TablePrinter::numberCell(did.averageDid, 1),
                      TablePrinter::numberCell(did.averageDidTrimmed, 1),
                      std::to_string(did.totalArcs),
                      TablePrinter::percentCell(did.fracDidAtLeast4)});
    }
    table.addSeparator();
    double sum = 0.0;
    for (const double avg : averages)
        sum += avg;
    table.addRow({"avg", "-",
                  TablePrinter::numberCell(
                      sum / static_cast<double>(averages.size()), 1),
                  "-", "-"});
    std::fputs(table.render().c_str(), stdout);
    std::puts("\npaper reference: all benchmarks have average DID > 4 "
              "(the fetch width of 1998-era processors)");
    runner.reportStats();
    return 0;
}
