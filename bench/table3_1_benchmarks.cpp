/**
 * @file
 * Table 3.1 — "Spec95 integer benchmarks."
 *
 * The paper's Table 3.1 lists the eight SPECint95 programs its traces
 * come from. This bench prints the equivalent inventory for the bundled
 * mini benchmarks together with their measured trace characteristics
 * (instruction mix, basic-block size, taken-transfer density), which is
 * the evidence that each stand-in behaves like its namesake.
 */

#include <cstdio>

#include "common/table_printer.hpp"
#include "sim/sim_runner.hpp"
#include "trace/trace_stats.hpp"
#include "workloads/workload.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 200000);
    options.parse(argc, argv,
                  "Table 3.1: the benchmark suite and its trace "
                  "characteristics");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();

    std::vector<TraceStats> all_stats(bench.size());
    std::vector<SimJob> batch;
    for (std::size_t i = 0; i < bench.size(); ++i) {
        batch.push_back(
            {"stats:" + bench.names[i], [&all_stats, &bench, i] {
                 all_stats[i] = computeTraceStats(bench.trace(i));
             }});
    }
    runner.run(std::move(batch));

    TablePrinter table(
        "Table 3.1 - benchmark suite (mini stand-ins for SPECint95)",
        {"benchmark", "static pcs", "avg BB", "branches", "loads+stores",
         "taken/inst"});
    for (std::size_t i = 0; i < bench.size(); ++i) {
        const TraceStats &stats = all_stats[i];
        const double denom = static_cast<double>(stats.totalInsts);
        table.addRow(
            {bench.names[i], std::to_string(stats.distinctPcs),
             TablePrinter::numberCell(stats.avgBasicBlock, 1),
             TablePrinter::percentCell(
                 static_cast<double>(stats.condBranches + stats.jumps) /
                 denom),
             TablePrinter::percentCell(
                 static_cast<double>(stats.loads + stats.stores) /
                 denom),
             TablePrinter::numberCell(stats.takenTransferRate, 3)});
    }
    std::fputs(table.render().c_str(), stdout);
    std::puts("");
    for (const auto &name : bench.names) {
        std::printf("  %-9s %s\n", name.c_str(),
                    workloadDescription(name).c_str());
    }
    runner.reportStats();
    return 0;
}
