/**
 * @file
 * Figure 3.4 — "The distribution of dependencies in a program according
 * to their DID."
 *
 * Histograms every dependence arc of the trace-wide DFG by its dynamic
 * instruction distance.
 *
 * Paper reference: ~60% of true-data dependencies (average) span a
 * distance of 4 or more instructions, which is why a 4-wide machine can
 * exploit so few correct value predictions.
 */

#include <cstdio>

#include "analysis/did.hpp"
#include "sim/sim_runner.hpp"

int
main(int argc, char **argv)
{
    using namespace vpsim;

    Options options;
    declareStandardOptions(options, 1000000);
    options.parse(argc, argv, "Figure 3.4: DID distribution histograms");
    SimRunner runner(options);
    const BenchmarkTraces bench = runner.captureBenchmarks();

    // Column labels come from the histogram's own bucket bounds.
    const Histogram prototype{didHistogramBounds()};
    std::vector<std::string> columns;
    for (std::size_t bucket = 0; bucket < prototype.numBuckets(); ++bucket)
        columns.push_back("DID " + prototype.bucketLabel(bucket));

    // One job per benchmark: a single DFG walk fills the whole row.
    std::vector<std::vector<double>> cells(bench.size());
    std::vector<SimJob> batch;
    for (std::size_t i = 0; i < bench.size(); ++i) {
        batch.push_back({"did:" + bench.names[i], [&cells, &bench, i] {
                             const DidAnalysis did =
                                 analyzeDid(bench.trace(i));
                             for (std::size_t bucket = 0;
                                  bucket < did.distribution.numBuckets();
                                  ++bucket) {
                                 cells[i].push_back(
                                     did.distribution.bucketFraction(
                                         bucket));
                             }
                         }});
    }
    runner.run(std::move(batch));

    std::fputs(renderPercentTable(
                   "Figure 3.4 - distribution of dependencies by DID",
                   bench.names, columns, cells)
                   .c_str(),
               stdout);
    std::puts("\npaper reference: ~60% of dependencies (avg) have "
              "DID >= 4");
    maybeWriteCsv(options, "fig3.4", bench.names, columns, cells);
    runner.reportStats();
    return 0;
}
