#include "core/reference_machine.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "isa/instruction.hpp"

namespace vpsim
{

namespace
{

/** Phase-1 output: per-record prediction outcome of the producer. */
struct PredictionReplay
{
    std::vector<unsigned char> predicted;
    std::vector<unsigned char> correct;
    std::uint64_t made = 0;
    std::uint64_t correctCount = 0;
    std::uint64_t wrong = 0;
};

bool
inVpScope(const IdealMachineConfig &config, const TraceRecord &record)
{
    return config.vpScope == VpScope::AllInstructions ||
           record.instClass() == InstClass::Load;
}

/**
 * Replay the classified predictor over the whole trace, in program
 * order, recording each producer's outcome. Identical call sequence to
 * the primary model (predict + update per in-scope producer), but kept
 * separate from the scheduling pass.
 */
PredictionReplay
replayPredictions(TraceSpan records, const IdealMachineConfig &config)
{
    PredictionReplay replay;
    replay.predicted.assign(records.size(), 0);
    replay.correct.assign(records.size(), 0);
    if (!config.useValuePrediction)
        return replay;

    std::unique_ptr<ClassifiedPredictor> predictor;
    if (!config.perfectValuePrediction) {
        predictor = makeClassifiedPredictor(
            config.predictorKind, config.tableCapacity,
            config.counterBits, config.missPolicy);
    }

    for (std::size_t i = 0; i < records.size(); ++i) {
        const TraceRecord &record = records[i];
        if (!record.producesValue() || !inVpScope(config, record))
            continue;
        if (config.perfectValuePrediction) {
            replay.predicted[i] = 1;
            replay.correct[i] = 1;
            ++replay.made;
            ++replay.correctCount;
            continue;
        }
        const ClassifiedPrediction prediction =
            predictor->predict(record.pc);
        replay.predicted[i] = prediction.predicted ? 1 : 0;
        replay.correct[i] = prediction.predicted &&
                                    prediction.value == record.result
                                ? 1
                                : 0;
        predictor->update(record.pc, prediction, record.result);
    }

    if (predictor) {
        replay.made = predictor->predictionsMade();
        replay.correctCount = predictor->predictionsCorrect();
        replay.wrong = predictor->predictionsWrong();
    }
    return replay;
}

} // namespace

IdealMachineResult
runReferenceIdealMachine(TraceSpan records,
                         const IdealMachineConfig &config)
{
    fatalIf(config.fetchRate == 0, "fetch rate must be positive");
    fatalIf(config.windowSize == 0, "window size must be positive");

    IdealMachineResult result;
    result.instructions = records.size();
    if (records.empty())
        return result;

    const PredictionReplay replay = replayPredictions(records, config);
    result.predictionsMade = replay.made;
    result.predictionsCorrect = replay.correctCount;
    result.predictionsWrong = replay.wrong;

    // Phase 2: schedule from plain arrays. exec[i] is instruction i's
    // execute cycle; writerOf[reg] the index of the register's last
    // value-producing writer so far (or npos).
    constexpr std::size_t npos = ~std::size_t{0};
    std::vector<Cycle> exec(records.size(), 0);
    std::vector<std::size_t> writerOf(numArchRegs, npos);

    for (std::size_t i = 0; i < records.size(); ++i) {
        const TraceRecord &record = records[i];
        const Cycle fetch_cycle =
            static_cast<Cycle>(i / config.fetchRate) + 1;
        Cycle earliest = fetch_cycle + config.frontendLatency;
        if (i >= config.windowSize)
            earliest = std::max(earliest, exec[i - config.windowSize] + 1);

        // Gather source uses: ready time of the real value plus the
        // producer's prediction outcome.
        Cycle ready[2];
        int kind[2]; // 0 = not predicted, 1 = correct, 2 = wrong
        unsigned num_uses = 0;
        for (const RegIndex reg : {record.rs1, record.rs2}) {
            if (reg == invalidReg || reg == 0)
                continue;
            const std::size_t producer = writerOf[reg];
            if (producer == npos)
                continue;
            ready[num_uses] = exec[producer] + 1;
            kind[num_uses] = 0;
            if (config.useValuePrediction && replay.predicted[producer])
                kind[num_uses] = replay.correct[producer] ? 1 : 2;
            ++num_uses;
        }

        for (unsigned u = 0; u < num_uses; ++u) {
            if (ready[u] > earliest)
                ++result.stallingUses;
        }

        // Issue waits for non-predicted operands only.
        Cycle issue = earliest;
        for (unsigned u = 0; u < num_uses; ++u) {
            if (kind[u] == 0)
                issue = std::max(issue, ready[u]);
        }

        // Wrong speculations reissue in ascending ready order; a wrong
        // operand whose real value is already available by the current
        // completion time costs nothing.
        Cycle done = issue;
        if (num_uses == 2 && kind[0] == 2 && kind[1] == 2 &&
            ready[0] > ready[1]) {
            std::swap(ready[0], ready[1]);
        }
        for (unsigned u = 0; u < num_uses; ++u) {
            if (kind[u] == 2 && ready[u] > done)
                done = ready[u] + config.vpPenalty;
        }

        for (unsigned u = 0; u < num_uses; ++u) {
            if (kind[u] != 1)
                continue;
            ++result.correctlyPredictedUses;
            if (ready[u] > done)
                ++result.usefulPredictions;
        }

        exec[i] = done;
        if (record.producesValue())
            writerOf[record.rd] = i;
    }

    result.cycles = *std::max_element(exec.begin(), exec.end());
    result.ipc = static_cast<double>(result.instructions) /
                 static_cast<double>(result.cycles);
    return result;
}

double
referenceIdealVpSpeedup(TraceSpan records,
                        const IdealMachineConfig &config)
{
    IdealMachineConfig base = config;
    base.useValuePrediction = false;
    IdealMachineConfig vp = config;
    vp.useValuePrediction = true;

    const IdealMachineResult base_result =
        runReferenceIdealMachine(records, base);
    const IdealMachineResult vp_result =
        runReferenceIdealMachine(records, vp);
    if (vp_result.cycles == 0)
        return 1.0;
    return static_cast<double>(base_result.cycles) /
           static_cast<double>(vp_result.cycles);
}

} // namespace vpsim
