#include "core/pipeline_machine.hpp"

#include <algorithm>
#include <bit>
#include <sstream>
#include <limits>
#include <memory>

#include "common/cancellation.hpp"
#include "common/invariant.hpp"
#include "common/logging.hpp"
#include "fetch/sequential_fetch.hpp"
#include "isa/instruction.hpp"

namespace vpsim
{

namespace
{

/** One reorder-buffer entry. */
struct RobEntry
{
    SeqNum seq = 0;
    /** Window slot id: monotone per dispatch, reused after a squash. */
    std::uint64_t robSlot = 0;
    /** Wrong-path bubble: occupies resources, never commits. */
    bool wrongPath = false;
    Cycle fetchCycle = 0;
    bool executed = false;
    Cycle execCycle = 0;

    bool isControl = false;
    bool mispredictedBranch = false;

    bool producesValue = false;
    Addr pc = 0;
    Value result = 0;

    /** Prediction made for this instruction's own output. */
    bool vpPredicted = false;
    bool vpCorrect = false;
    bool vpTracked = false; //!< update() owed to the classifier
    ClassifiedPrediction vpPrediction;

    /** Issued (possibly speculatively); awaiting final completion. */
    bool issued = false;
    Cycle issueCycle = 0;

    /** Source operand constraint. */
    struct Operand
    {
        /** Still waiting on an in-flight producer. */
        bool pending = false;
        std::uint64_t producerSlot = 0;
        /** Producer's value was (wrongly) predicted: the consumer may
         *  issue speculatively but must reissue after the real value. */
        bool wrongSpeculation = false;
        /** Cycle the real value becomes usable (when !pending). */
        Cycle readyAt = 0;
    };
    Operand operands[2];
    unsigned numOperands = 0;
};

/** Last architectural writer of each register. */
struct WriterInfo
{
    /** Window slot of the writer, or invalid when none dispatched. */
    std::uint64_t slot = ~std::uint64_t{0};
};

/**
 * Which value-prediction flavour this run uses. The scheduling loop is
 * instantiated once per flavour so every per-instruction "which
 * predictor / is it perfect / is prediction even on" test is resolved
 * at compile time instead of being re-asked for each dispatched
 * instruction (the same de-virtualization the ideal machine's
 * processBlock<> applies; see docs/PERF.md).
 */
enum class VpPath
{
    None,    //!< value prediction off
    Perfect, //!< oracle predictions, no tables
    Plain,   //!< ClassifiedPredictor, unconstrained ports
    Table,   //!< §4 interleaved banked table in front of the predictor
};

/**
 * The cycle loop of the Section 5 machine, specialized per VpPath.
 *
 * The reorder buffer is a power-of-two ring indexed directly by window
 * slot id (slot & mask): entries never move, commit advances the head,
 * dispatch advances the tail, and a wrong-path squash rolls the tail
 * back. This replaced a std::deque whose segmented operator[] was the
 * hottest address computation in the simulator — the wakeup scan
 * re-derives an entry address per in-flight instruction per cycle, and
 * a producer lookup does it again per pending operand.
 *
 * Fills @p result's cycle count and (for the Perfect path) the oracle
 * prediction counters; the caller owns every other statistic.
 */
template <VpPath Vp>
void
runPipelineLoop(TraceSpan records, const PipelineConfig &config,
                TraceFetchBase &engine, InterleavedVpTable *vpTable,
                ClassifiedPredictor *plainPredictor,
                PipelineResult &result)
{
    const unsigned windowSize = config.windowSize;
    const unsigned issueWidth = config.issueWidth;
    const unsigned frontendLatency = config.frontendLatency;
    const unsigned vpPenalty = config.vpPenalty;
    const bool freeAtExecute =
        config.windowFreePolicy == WindowFreePolicy::AtExecute;
    const bool scopeAll = config.vpScope == VpScope::AllInstructions;
    const bool dispatchTiming =
        config.vpUpdateTiming == VpUpdateTiming::Dispatch;

    std::vector<WriterInfo> lastWriter(numArchRegs);

    // Retired entries must outlive any dispatched consumer's wakeup, so
    // the ring also buffers executed entries until they reach the head;
    // this bounds its growth when the head stalls on a long chain.
    const std::size_t robCapacity = freeAtExecute
        ? static_cast<std::size_t>(windowSize) * 8
        : windowSize;
    const std::size_t robRingSize = std::bit_ceil(robCapacity);
    const std::uint64_t robMask = robRingSize - 1;
    std::vector<RobEntry> rob(robRingSize);
    // Live slots are [robHead, robTail): monotone as entries dispatch,
    // advanced at the head as they commit, and rolled back at the tail
    // when a wrong path squashes. Squashed slots are reused by later
    // correct-path entries; nothing can still reference them
    // (wrong-path producers never enter the rename map).
    std::uint64_t robHead = 0;
    std::uint64_t robTail = 0;
    const auto inRob = [&robHead, &robTail](std::uint64_t slot) {
        return slot >= robHead && slot < robTail;
    };

    std::vector<FetchedInst> bundle;
    std::vector<VpGrant> grants;
    std::vector<Addr> bundlePcs;
    std::vector<std::size_t> bundleValueIdx;

    Cycle now = 0;
    Cycle lastCommit = 0;
    std::uint64_t committed = 0;
    Cycle idleCycles = 0;
    // Dispatched-but-not-executed slots, ascending (= dispatch order).
    // This is the scheduling window's load AND the wakeup scan's work
    // list: executed entries need no wakeup (they resolved all their
    // operands to execute) and cannot issue again, so the per-cycle
    // scan visits only these slots instead of every live ring entry —
    // when the commit head stalls on a long dependency chain the ring
    // buffers up to 8x windowSize executed entries that the old
    // deque-walk re-skipped every cycle. Dispatch appends (slots are
    // monotone), execution compacts, and a wrong-path squash truncates
    // the tail, so the list stays sorted.
    std::vector<std::uint64_t> unexec;
    unexec.reserve(robRingSize);

    while (committed < records.size()) {
        ++now;
        bool progress = false;
        if ((now & 0x3ff) == 0)
            simHeartbeat(now); // --job-timeout watchdog progress

        // Deep audit: the occupancy and unexecuted bookkeeping that the
        // fetch gate below relies on. A drifted counter here admits
        // more in-flight instructions than the window allows and
        // silently inflates every IPC the machine reports.
        if (invariantsActive(InvariantLevel::Full)) {
            unsigned not_executed = 0;
            for (std::uint64_t slot = robHead; slot != robTail; ++slot)
                not_executed += rob[slot & robMask].executed ? 0 : 1;
            checkInvariant(InvariantLevel::Full,
                           not_executed == unexec.size(),
                           "pipeline.unexecuted_bookkeeping", [&] {
                               return "cycle " + std::to_string(now) +
                                      ": work list says " +
                                      std::to_string(unexec.size()) +
                                      ", recount finds " +
                                      std::to_string(not_executed);
                           });
            const unsigned occupancy = freeAtExecute
                ? not_executed
                : static_cast<unsigned>(robTail - robHead);
            checkInvariant(InvariantLevel::Full,
                           occupancy <= windowSize,
                           "pipeline.window_occupancy", [&] {
                               return "cycle " + std::to_string(now) +
                                      ": " + std::to_string(occupancy) +
                                      " in flight exceeds window " +
                                      std::to_string(windowSize);
                           });
        }

        // --- Commit: in order, executed in a previous cycle. With the
        // scheduling-window policy the retire width is unconstrained
        // (slots were recycled at execute); with the ROB policy it is
        // the commit width. ---
        unsigned commits_left = freeAtExecute
            ? std::numeric_limits<unsigned>::max()
            : config.commitWidth;
        unsigned committed_this_cycle = 0;
        while (robTail != robHead && commits_left > 0) {
            const RobEntry &head = rob[robHead & robMask];
            if (!head.executed || head.execCycle >= now)
                break;
            // Train the value predictor in program order at retire; the
            // speculative lookup-time update covered in-flight copies
            // (paper §3.1: the correct value is stored in the table "as
            // soon as it is known", and retire order keeps the stride
            // state consistent).
            if constexpr (Vp == VpPath::Table) {
                if (head.vpTracked)
                    vpTable->update(head.pc, head.vpPrediction,
                                    head.result);
            } else if constexpr (Vp == VpPath::Plain) {
                if (head.vpTracked)
                    plainPredictor->update(head.pc, head.vpPrediction,
                                           head.result);
            }
            panicIf(head.wrongPath,
                    "a wrong-path entry survived to commit");
            lastCommit = now;
            ++committed;
            ++committed_this_cycle;
            --commits_left;
            ++robHead;
            progress = true;
        }
        if (!freeAtExecute) {
            checkInvariant(InvariantLevel::Full,
                           committed_this_cycle <= config.commitWidth,
                           "pipeline.retire_le_commit_width", [&] {
                               return "cycle " + std::to_string(now) +
                                      ": retired " +
                                      std::to_string(
                                          committed_this_cycle) +
                                      " > commit width " +
                                      std::to_string(config.commitWidth);
                           });
        }

        // --- Execute: dataflow issue, oldest first. Operand wakeup runs
        // for every entry each cycle (a consumer must capture its
        // producer's ready time before the producer can commit); actual
        // issue is bounded by the issue width. ---
        unsigned issues_left = issueWidth;
        std::size_t survivors = 0;
        for (std::size_t k = 0; k < unexec.size(); ++k) {
            const std::uint64_t slot = unexec[k];
            RobEntry &entry = rob[slot & robMask];

            // Operand wakeup: capture producers' ready times. A consumer
            // must do this before its producer can commit, so wakeup is
            // not gated by the issue width.
            bool plain_ready = true;
            for (unsigned op = 0; op < entry.numOperands; ++op) {
                RobEntry::Operand &operand = entry.operands[op];
                if (operand.pending) {
                    panicIf(!inRob(operand.producerSlot),
                            "pending operand lost its producer");
                    const RobEntry &producer =
                        rob[operand.producerSlot & robMask];
                    if (producer.executed) {
                        operand.pending = false;
                        operand.readyAt = producer.execCycle + 1;
                    }
                }
                if (operand.wrongSpeculation)
                    continue; // does not gate issue: we speculate
                if (operand.pending || operand.readyAt > now)
                    plain_ready = false;
            }

            // Issue: non-predicted operands ready, front end done.
            if (!entry.issued) {
                if (!plain_ready || issues_left == 0 ||
                    now < entry.fetchCycle + frontendLatency) {
                    unexec[survivors++] = slot;
                    continue;
                }
                entry.issued = true;
                entry.issueCycle = now;
                --issues_left;
                progress = true;
            }

            // Completion: wrong speculations reissue one penalty after
            // the real value arrives, unless the real value was already
            // available when the consumer issued (then it simply used
            // it and the prediction was merely useless).
            bool complete = true;
            for (unsigned op = 0; op < entry.numOperands; ++op) {
                const RobEntry::Operand &operand = entry.operands[op];
                if (!operand.wrongSpeculation)
                    continue;
                if (operand.pending) {
                    complete = false;
                    continue;
                }
                const Cycle needed =
                    operand.readyAt <= entry.issueCycle
                        ? operand.readyAt
                        : operand.readyAt + vpPenalty;
                if (needed > now)
                    complete = false;
            }
            if (!complete) {
                unexec[survivors++] = slot;
                continue;
            }

            entry.executed = true;
            entry.execCycle = now;
            progress = true;

            // A mispredicted branch redirects fetch as it resolves,
            // and every younger entry (all wrong-path bubbles, since
            // correct-path fetch was stalled) squashes. Every later
            // slot in the work list is younger than the branch, so the
            // unscanned remainder is exactly the squashed set: stop
            // here and let the resize below drop it.
            if (entry.isControl && entry.mispredictedBranch) {
                engine.branchResolved(entry.seq, now);
                while (robTail > slot + 1) {
                    RobEntry &victim = rob[(robTail - 1) & robMask];
                    panicIf(!victim.wrongPath,
                            "squashed a correct-path entry");
                    --robTail;
                }
                break;
            }
        }
        unexec.resize(survivors);

        // --- Fetch/dispatch. ---
        const unsigned window_load = freeAtExecute
            ? static_cast<unsigned>(unexec.size())
            : static_cast<unsigned>(robTail - robHead);
        if (!engine.done() && window_load < windowSize &&
            robTail - robHead < robCapacity) {
            const unsigned budget = std::min<std::size_t>(
                std::min<std::size_t>(issueWidth,
                                      windowSize - window_load),
                robCapacity - (robTail - robHead));
            bundle.clear();
            engine.fetch(now, budget, bundle);
            checkInvariant(InvariantLevel::Cheap,
                           bundle.size() <= budget,
                           "fetch.bundle_le_budget", [&] {
                               return "cycle " + std::to_string(now) +
                                      ": front end '" + engine.name() +
                                      "' delivered " +
                                      std::to_string(bundle.size()) +
                                      " insts against a budget of " +
                                      std::to_string(budget);
                           });

            // Interleaved-table arbitration happens once per bundle.
            if constexpr (Vp == VpPath::Table) {
                bundlePcs.clear();
                bundleValueIdx.clear();
                for (std::size_t i = 0; i < bundle.size(); ++i) {
                    const TraceRecord &rec = bundle[i].record;
                    const bool in_scope =
                        scopeAll || rec.instClass() == InstClass::Load;
                    if (rec.producesValue() && in_scope) {
                        bundlePcs.push_back(rec.pc);
                        bundleValueIdx.push_back(i);
                    }
                }
                grants = vpTable->processBundle(bundlePcs);
            }

            std::size_t grant_cursor = 0;
            for (const FetchedInst &fetched : bundle) {
                const TraceRecord &record = fetched.record;
                // Build the entry directly in its ring slot (the slot
                // is reused, so reset it first). Producers looked up
                // below live in [robHead, robTail) and can never alias
                // slot robTail: the live span is capped below the ring
                // size by the fetch gate's budget.
                RobEntry &entry = rob[robTail & robMask];
                entry = RobEntry{};
                entry.seq = record.seq;
                entry.wrongPath = fetched.wrongPath;
                entry.pc = record.pc;
                entry.fetchCycle = now;
                entry.isControl = record.isControlFlow();
                entry.mispredictedBranch = fetched.mispredicted;
                entry.producesValue = record.producesValue();
                entry.result = record.result;

                // Wrong-path bubbles: poll (and pollute) the value
                // predictor, then release the lookup immediately; no
                // operands, no rename-map update, never committed.
                if (entry.wrongPath) {
                    if constexpr (Vp == VpPath::Table ||
                                  Vp == VpPath::Plain) {
                        const bool wp_in_scope =
                            scopeAll ||
                            record.instClass() == InstClass::Load;
                        if (entry.producesValue && wp_in_scope) {
                            if constexpr (Vp == VpPath::Table) {
                                const VpGrant &grant =
                                    grants[grant_cursor++];
                                if (grant.granted)
                                    vpTable->abandon(record.pc);
                            } else {
                                plainPredictor->predict(record.pc);
                                plainPredictor->abandon(record.pc);
                            }
                        }
                    }
                    entry.robSlot = robTail;
                    unexec.push_back(robTail);
                    ++robTail;
                    progress = true;
                    continue;
                }

                // Value prediction for this instruction's own output.
                if constexpr (Vp != VpPath::None) {
                    const bool vp_in_scope =
                        scopeAll ||
                        record.instClass() == InstClass::Load;
                    if (entry.producesValue && vp_in_scope) {
                        if constexpr (Vp == VpPath::Perfect) {
                            entry.vpPredicted = true;
                            entry.vpCorrect = true;
                            ++result.vpPredictionsMade;
                            ++result.vpPredictionsCorrect;
                        } else if constexpr (Vp == VpPath::Table) {
                            const VpGrant &grant =
                                grants[grant_cursor++];
                            if (grant.granted) {
                                entry.vpPrediction = grant.prediction;
                                entry.vpPredicted =
                                    grant.prediction.predicted;
                                entry.vpCorrect =
                                    entry.vpPredicted &&
                                    grant.prediction.value ==
                                        record.result;
                                if (dispatchTiming) {
                                    vpTable->update(record.pc,
                                                    entry.vpPrediction,
                                                    record.result);
                                } else {
                                    entry.vpTracked = true;
                                }
                            }
                        } else if (dispatchTiming) {
                            // predict() immediately followed by
                            // update() collapses into the classifier's
                            // fused single-probe path (identical state
                            // machine; see ClassifiedPredictor).
                            entry.vpPrediction =
                                plainPredictor->predictAndTrain(
                                    record.pc, record.result);
                            entry.vpPredicted =
                                entry.vpPrediction.predicted;
                            entry.vpCorrect =
                                entry.vpPredicted &&
                                entry.vpPrediction.value ==
                                    record.result;
                        } else {
                            entry.vpPrediction =
                                plainPredictor->predict(record.pc);
                            entry.vpPredicted =
                                entry.vpPrediction.predicted;
                            entry.vpCorrect =
                                entry.vpPredicted &&
                                entry.vpPrediction.value ==
                                    record.result;
                            entry.vpTracked = true;
                        }
                    }
                }

                // Resolve source operands against in-flight producers.
                const auto addOperand = [&](RegIndex reg) {
                    if (reg == invalidReg || reg == 0)
                        return;
                    const WriterInfo &writer = lastWriter[reg];
                    if (!inRob(writer.slot))
                        return; // architecturally ready
                    const RobEntry &producer =
                        rob[writer.slot & robMask];
                    if constexpr (Vp != VpPath::None) {
                        if (producer.vpPredicted && producer.vpCorrect)
                            return; // speculate on the predicted value
                    }
                    RobEntry::Operand operand;
                    if constexpr (Vp != VpPath::None) {
                        operand.wrongSpeculation =
                            producer.vpPredicted && !producer.vpCorrect;
                    }
                    if (producer.executed) {
                        operand.readyAt = producer.execCycle + 1;
                    } else {
                        operand.pending = true;
                        operand.producerSlot = producer.robSlot;
                    }
                    entry.operands[entry.numOperands++] = operand;
                };
                addOperand(record.rs1);
                addOperand(record.rs2);

                entry.robSlot = robTail;
                unexec.push_back(robTail);
                ++robTail;
                if (entry.producesValue)
                    lastWriter[record.rd].slot = entry.robSlot;
                progress = true;
            }
        }

        if (!progress) {
            ++idleCycles;
            panicIf(idleCycles > 1000000,
                    "pipeline machine deadlocked (no progress)");
        } else {
            idleCycles = 0;
        }
    }

    result.cycles = lastCommit;
}

} // namespace

PipelineResult
runPipelineMachine(TraceSpan records, const PipelineConfig &config)
{
    fatalIf(config.windowSize == 0, "window size must be positive");
    fatalIf(config.issueWidth == 0, "issue width must be positive");

    fatalIf(config.modelWrongPath &&
                (config.frontEnd != FrontEndKind::Sequential ||
                 config.program == nullptr),
            "wrong-path modelling needs the Sequential front end and a "
            "program image");

    PipelineResult result;
    result.instructions = records.size();
    if (records.empty())
        return result;

    // Branch predictor.
    std::unique_ptr<BranchPredictor> bpred;
    TwoLevelPApPredictor *btb = nullptr;
    if (config.perfectBranchPredictor) {
        bpred = std::make_unique<PerfectBranchPredictor>();
    } else {
        auto two_level =
            std::make_unique<TwoLevelPApPredictor>(config.btbConfig);
        btb = two_level.get();
        bpred = std::move(two_level);
    }

    // Front end.
    std::unique_ptr<TraceFetchBase> engine;
    std::unique_ptr<InstructionCache> icache;
    TraceCacheFetch *tc = nullptr;
    BranchAddressCacheFetch *bac = nullptr;
    CollapsingBufferFetch *cb = nullptr;
    SequentialFetch *seq_fetch = nullptr;
    if (config.frontEnd == FrontEndKind::Sequential) {
        if (config.useInstructionCache)
            icache = std::make_unique<InstructionCache>(
                config.icacheConfig);
        auto seq_engine = std::make_unique<SequentialFetch>(
            records, *bpred, config.maxTakenBranches, icache.get(),
            config.modelWrongPath ? config.program : nullptr);
        seq_fetch = seq_engine.get();
        engine = std::move(seq_engine);
    } else if (config.frontEnd == FrontEndKind::TraceCache) {
        auto tc_engine = std::make_unique<TraceCacheFetch>(
            records, *bpred, config.traceCacheConfig);
        tc = tc_engine.get();
        engine = std::move(tc_engine);
    } else if (config.frontEnd == FrontEndKind::BranchAddressCache) {
        auto bac_engine = std::make_unique<BranchAddressCacheFetch>(
            records, *bpred, config.bacConfig);
        bac = bac_engine.get();
        engine = std::move(bac_engine);
    } else {
        auto cb_engine = std::make_unique<CollapsingBufferFetch>(
            records, *bpred, config.collapsingBufferConfig);
        cb = cb_engine.get();
        engine = std::move(cb_engine);
    }

    // Value predictor (plain classified, or behind the §4 banked table).
    std::unique_ptr<ClassifiedPredictor> plainPredictor;
    std::unique_ptr<InterleavedVpTable> vpTable;
    if (config.useValuePrediction && !config.perfectValuePrediction) {
        auto classified = makeClassifiedPredictor(
            config.predictorKind, config.tableCapacity,
            config.counterBits, config.missPolicy);
        if (config.useInterleavedVpTable) {
            vpTable = std::make_unique<InterleavedVpTable>(
                std::move(classified), config.vpTableConfig);
        } else {
            plainPredictor = std::move(classified);
        }
    }

    // One cycle-loop instantiation per value-prediction flavour.
    if (!config.useValuePrediction) {
        runPipelineLoop<VpPath::None>(records, config, *engine, nullptr,
                                      nullptr, result);
    } else if (config.perfectValuePrediction) {
        runPipelineLoop<VpPath::Perfect>(records, config, *engine,
                                         nullptr, nullptr, result);
    } else if (vpTable) {
        runPipelineLoop<VpPath::Table>(records, config, *engine,
                                       vpTable.get(), nullptr, result);
    } else {
        runPipelineLoop<VpPath::Plain>(records, config, *engine,
                                       nullptr, plainPredictor.get(),
                                       result);
    }

    result.ipc = static_cast<double>(result.instructions) /
                 static_cast<double>(result.cycles);
    result.branchMispredicts = engine->mispredicts();
    if (btb)
        result.branchAccuracy = btb->accuracy();
    if (tc) {
        result.tcHitRate = tc->hitRate();
        result.tcLookups = tc->lookups();
        result.tcLineInsts = tc->lineInstsDelivered();
    }
    if (bac) {
        result.bacHitRate = bac->hitRate();
        result.bacBankConflicts = bac->bankConflicts();
    }
    if (cb)
        result.cbCollapsedBranches = cb->collapsedBranches();
    if (icache)
        result.icacheHitRate = icache->hitRate();
    if (seq_fetch)
        result.wrongPathFetched = seq_fetch->wrongPathFetched();
    if (vpTable) {
        ClassifiedPredictor &classified = vpTable->predictor();
        result.vpPredictionsMade = classified.predictionsMade();
        result.vpPredictionsCorrect = classified.predictionsCorrect();
        result.vpPredictionsWrong = classified.predictionsWrong();
        result.vptRequests = vpTable->requests();
        result.vptMergedRequests = vpTable->mergedRequests();
        result.vptDeniedRequests = vpTable->deniedRequests();
        result.vptDistributorAdditions = vpTable->distributorAdditions();
    } else if (plainPredictor) {
        result.vpPredictionsMade = plainPredictor->predictionsMade();
        result.vpPredictionsCorrect =
            plainPredictor->predictionsCorrect();
        result.vpPredictionsWrong = plainPredictor->predictionsWrong();
    }

    // Always-on O(1) audits mirroring the ideal machine's bounds.
    checkInvariant(InvariantLevel::Cheap,
                   result.instructions <=
                       result.cycles * config.issueWidth,
                   "pipeline.ipc_le_issue_width", [&] {
                       return std::to_string(result.instructions) +
                              " insts in " +
                              std::to_string(result.cycles) +
                              " cycles exceeds issue width " +
                              std::to_string(config.issueWidth);
                   });
    checkInvariant(
        InvariantLevel::Cheap,
        result.vpPredictionsMade ==
            result.vpPredictionsCorrect + result.vpPredictionsWrong,
        "vp.hit_miss_balance", [&] {
            return std::to_string(result.vpPredictionsMade) +
                   " made != " +
                   std::to_string(result.vpPredictionsCorrect) +
                   " correct + " +
                   std::to_string(result.vpPredictionsWrong) + " wrong";
        });
    return result;
}

std::string
PipelineResult::report() const
{
    std::ostringstream oss;
    oss << "pipeline machine: " << instructions << " insts in "
        << cycles << " cycles (IPC " << ipc << ")\n";
    oss << "  branches: accuracy " << branchAccuracy * 100.0 << "%, "
        << branchMispredicts << " mispredicts\n";
    if (vpPredictionsMade > 0) {
        oss << "  value predictions: " << vpPredictionsMade << " made, "
            << vpPredictionsCorrect << " correct, " << vpPredictionsWrong
            << " wrong\n";
    }
    if (tcLookups > 0) {
        oss << "  trace cache: hit rate " << tcHitRate * 100.0 << "%, "
            << tcLineInsts << " line insts delivered\n";
    }
    if (vptRequests > 0) {
        oss << "  vp table: " << vptRequests << " requests, "
            << vptMergedRequests << " merged, " << vptDeniedRequests
            << " denied, " << vptDistributorAdditions
            << " distributor adds\n";
    }
    if (wrongPathFetched > 0) {
        oss << "  wrong path: " << wrongPathFetched
            << " instructions fetched and squashed\n";
    }
    return oss.str();
}

double
pipelineVpSpeedup(TraceSpan records, const PipelineConfig &config)
{
    PipelineConfig base = config;
    base.useValuePrediction = false;
    PipelineConfig vp = config;
    vp.useValuePrediction = true;

    const PipelineResult base_result = runPipelineMachine(records, base);
    const PipelineResult vp_result = runPipelineMachine(records, vp);
    if (vp_result.cycles == 0)
        return 1.0;
    return static_cast<double>(base_result.cycles) /
           static_cast<double>(vp_result.cycles);
}

} // namespace vpsim
