#include "core/ideal_machine.hpp"

#include <algorithm>
#include <sstream>

#include "common/cancellation.hpp"
#include "common/invariant.hpp"
#include "common/logging.hpp"
#include "isa/instruction.hpp"

namespace vpsim
{

IdealMachineResult
runIdealMachine(const std::vector<TraceRecord> &records,
                const IdealMachineConfig &config, bool keep_schedule)
{
    fatalIf(config.fetchRate == 0, "fetch rate must be positive");
    fatalIf(config.windowSize == 0, "window size must be positive");

    IdealMachineResult result;
    result.instructions = records.size();
    if (records.empty())
        return result;

    std::unique_ptr<ClassifiedPredictor> predictor;
    if (config.useValuePrediction && !config.perfectValuePrediction) {
        predictor = makeClassifiedPredictor(
            config.predictorKind, config.tableCapacity,
            config.counterBits, config.missPolicy);
    }

    /** What consumers need to know about a register's last writer. */
    struct Writer
    {
        Cycle execCycle = 0;
        bool exists = false;
        bool predicted = false;
        bool correct = false;
    };
    std::vector<Writer> lastWriter(numArchRegs);

    // Ring buffer of the last windowSize execute cycles.
    std::vector<Cycle> windowExec(config.windowSize, 0);

    if (keep_schedule)
        result.execCycle.resize(records.size());

    Cycle max_exec = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
        // Progress heartbeat for the --job-timeout watchdog, amortized
        // so the untimed hot path stays a single thread-local load.
        if ((i & 0xfff) == 0)
            simHeartbeat(i);
        const TraceRecord &record = records[i];
        const Cycle fetch_cycle = i / config.fetchRate + 1;
        Cycle earliest = fetch_cycle + config.frontendLatency;

        // Window constraint: the slot of instruction i - windowSize must
        // have freed (at its execute) before i can execute.
        if (i >= config.windowSize) {
            earliest = std::max(earliest,
                                windowExec[i % config.windowSize] + 1);
        }

        // Operand constraints. A consumer issues as soon as its
        // non-predicted operands are ready (predicted operands impose no
        // issue constraint: the consumer speculates on the predicted
        // value). An operand whose prediction was WRONG only costs the
        // reissue penalty if the consumer actually speculated on it,
        // i.e. if the real value was not yet available at issue time —
        // when the consumer issues late anyway, it reads the real value
        // and the prediction is merely useless, exactly the paper's
        // "the prediction becomes useless" case.
        struct OperandUse
        {
            Cycle readyNoVp = 0;
            /** 0 = not predicted, 1 = predicted correct, 2 = wrong. */
            int kind = 0;
        };
        OperandUse uses[2];
        unsigned num_uses = 0;

        const auto consume = [&](RegIndex reg) {
            if (reg == invalidReg || reg == 0)
                return;
            const Writer &writer = lastWriter[reg];
            if (!writer.exists)
                return;
            OperandUse use;
            use.readyNoVp = writer.execCycle + 1;
            if (config.useValuePrediction && writer.predicted)
                use.kind = writer.correct ? 1 : 2;
            uses[num_uses++] = use;
        };
        consume(record.rs1);
        consume(record.rs2);

        // Capacity statistic: a use stalls when its real value arrives
        // after the machine could otherwise issue the consumer.
        for (unsigned u = 0; u < num_uses; ++u) {
            if (uses[u].readyNoVp > earliest)
                ++result.stallingUses;
        }

        // Issue time: non-predicted operands bind.
        Cycle issue = earliest;
        for (unsigned u = 0; u < num_uses; ++u) {
            if (uses[u].kind == 0)
                issue = std::max(issue, uses[u].readyNoVp);
        }
        // Completion: wrong speculations reissue after the real value,
        // in ascending ready order (a later wrong operand sees the
        // delay already caused by an earlier one).
        Cycle exec = issue;
        if (num_uses == 2 && uses[0].kind == 2 && uses[1].kind == 2 &&
            uses[0].readyNoVp > uses[1].readyNoVp) {
            std::swap(uses[0], uses[1]);
        }
        for (unsigned u = 0; u < num_uses; ++u) {
            if (uses[u].kind != 2)
                continue;
            if (uses[u].readyNoVp <= exec) {
                // Real value available by then: no speculation needed.
                exec = std::max(exec, uses[u].readyNoVp);
            } else {
                exec = uses[u].readyNoVp + config.vpPenalty;
            }
        }
        // A correct prediction was useful when the operand would
        // otherwise have delayed the consumer past its actual execute.
        for (unsigned u = 0; u < num_uses; ++u) {
            if (uses[u].kind != 1)
                continue;
            ++result.correctlyPredictedUses;
            if (uses[u].readyNoVp > exec)
                ++result.usefulPredictions;
        }
        // Deep audit: the slot being recycled must have freed before
        // this execute (re-reads the ring buffer the scheduler used, so
        // a future refactor that drops the window bound is caught).
        if (i >= config.windowSize) {
            checkInvariant(
                InvariantLevel::Full,
                exec >= windowExec[i % config.windowSize] + 1,
                "ideal.window_slot_reuse", [&] {
                    return "inst " + std::to_string(i) + " executes in " +
                           std::to_string(exec) +
                           " but its window slot frees in " +
                           std::to_string(
                               windowExec[i % config.windowSize]);
                });
        }
        checkInvariant(InvariantLevel::Full,
                       exec >= fetch_cycle + config.frontendLatency,
                       "ideal.frontend_latency", [&] {
                           return "inst " + std::to_string(i) +
                                  " executes in " + std::to_string(exec) +
                                  " before fetch " +
                                  std::to_string(fetch_cycle) +
                                  " + frontend latency";
                       });
        windowExec[i % config.windowSize] = exec;
        if (keep_schedule)
            result.execCycle[i] = exec;
        max_exec = std::max(max_exec, exec);

        // Record this instruction as the new last writer of rd, with its
        // own prediction outcome for downstream consumers.
        if (record.producesValue()) {
            Writer writer;
            writer.exists = true;
            writer.execCycle = exec;
            const bool in_scope =
                config.vpScope == VpScope::AllInstructions ||
                record.instClass() == InstClass::Load;
            if (config.useValuePrediction && in_scope) {
                if (config.perfectValuePrediction) {
                    writer.predicted = true;
                    writer.correct = true;
                    ++result.predictionsMade;
                    ++result.predictionsCorrect;
                } else {
                    const ClassifiedPrediction prediction =
                        predictor->predict(record.pc);
                    writer.predicted = prediction.predicted;
                    writer.correct = prediction.predicted &&
                                     prediction.value == record.result;
                    predictor->update(record.pc, prediction,
                                      record.result);
                }
            }
            lastWriter[record.rd] = writer;
        }
    }

    if (predictor) {
        result.predictionsMade = predictor->predictionsMade();
        result.predictionsCorrect = predictor->predictionsCorrect();
        result.predictionsWrong = predictor->predictionsWrong();
    }

    result.cycles = max_exec;
    result.ipc = static_cast<double>(result.instructions) /
                 static_cast<double>(result.cycles);

    // Always-on O(1) audits: the limit-study bound IPC <= fetch rate
    // (Mitrevski/Gusev-style validated-bound methodology) and the
    // predictor's lookup bookkeeping balance.
    checkInvariant(InvariantLevel::Cheap,
                   result.instructions <=
                       result.cycles * config.fetchRate,
                   "ideal.ipc_le_fetch_rate", [&] {
                       return std::to_string(result.instructions) +
                              " insts in " +
                              std::to_string(result.cycles) +
                              " cycles exceeds fetch rate " +
                              std::to_string(config.fetchRate);
                   });
    checkInvariant(InvariantLevel::Cheap,
                   result.predictionsMade ==
                       result.predictionsCorrect +
                           result.predictionsWrong,
                   "vp.hit_miss_balance", [&] {
                       return std::to_string(result.predictionsMade) +
                              " made != " +
                              std::to_string(result.predictionsCorrect) +
                              " correct + " +
                              std::to_string(result.predictionsWrong) +
                              " wrong";
                   });
    checkInvariant(InvariantLevel::Cheap,
                   result.usefulPredictions <=
                       result.correctlyPredictedUses,
                   "ideal.useful_le_correct_uses", [&] {
                       return std::to_string(result.usefulPredictions) +
                              " useful > " +
                              std::to_string(
                                  result.correctlyPredictedUses) +
                              " correctly predicted uses";
                   });
    return result;
}

std::string
IdealMachineResult::report() const
{
    std::ostringstream oss;
    oss << "ideal machine: " << instructions << " insts in " << cycles
        << " cycles (IPC " << ipc << ")\n";
    if (predictionsMade > 0) {
        oss << "  value predictions: " << predictionsMade << " made, "
            << predictionsCorrect << " correct, " << predictionsWrong
            << " wrong, " << usefulPredictions
            << " actually removed a stall\n";
    }
    return oss.str();
}

double
idealVpSpeedup(const std::vector<TraceRecord> &records,
               const IdealMachineConfig &config)
{
    IdealMachineConfig base = config;
    base.useValuePrediction = false;
    IdealMachineConfig vp = config;
    vp.useValuePrediction = true;

    const IdealMachineResult base_result = runIdealMachine(records, base);
    const IdealMachineResult vp_result = runIdealMachine(records, vp);
    if (vp_result.cycles == 0)
        return 1.0;
    return static_cast<double>(base_result.cycles) /
           static_cast<double>(vp_result.cycles);
}

} // namespace vpsim
