#include "core/ideal_machine.hpp"

#include <algorithm>
#include <sstream>

#include "common/cancellation.hpp"
#include "common/invariant.hpp"
#include "common/logging.hpp"
#include "isa/instruction.hpp"

namespace vpsim
{

namespace
{

/**
 * The span-iterating ideal-machine engine.
 *
 * All loop state lives here so the per-block worker can be specialized
 * at compile time: processBlock<UseVp, FullChecks> is instantiated per
 * (value prediction, deep-check) combination and dispatched once per
 * delivered block, so the per-instruction path of a plain baseline run
 * carries no dead prediction branches and no invariant polling at all.
 * Record index, window-ring slot (== i % windowSize) and fetch cycle
 * (== i / fetchRate + 1) are carried incrementally across blocks: the
 * batched loop pays no per-record divide or modulo.
 */
struct IdealEngine
{
    /** What consumers need to know about a register's last writer. */
    struct Writer
    {
        Cycle execCycle = 0;
        bool exists = false;
        bool predicted = false;
        bool correct = false;
    };

    const IdealMachineConfig &config;
    IdealMachineResult &result;
    const bool keepSchedule;
    ClassifiedPredictor *predictor = nullptr;

    std::vector<Writer> lastWriter;
    /** Ring buffer of the last windowSize execute cycles. */
    std::vector<Cycle> windowExec;

    Cycle maxExec = 0;
    std::uint64_t i = 0;
    std::size_t windowSlot = 0;
    Cycle fetchCycle = 1;
    unsigned fetchSlot = 0;

    /**
     * The writer table spans the full RegIndex range so operand lookup
     * can index by raw register byte with no validity pre-check:
     * producesValue() never marks r0 or invalidReg as written, so
     * those entries stay !exists forever and read as "no producer".
     */
    static constexpr std::size_t writerTableSize = 256;

    IdealEngine(const IdealMachineConfig &machine_config,
                IdealMachineResult &machine_result, bool keep_schedule)
        : config(machine_config), result(machine_result),
          keepSchedule(keep_schedule), lastWriter(writerTableSize),
          windowExec(machine_config.windowSize, 0)
    {
    }

    void
    dispatchBlock(TraceSpan block, bool full_checks)
    {
        if (config.useValuePrediction) {
            if (full_checks)
                keepSchedule ? processBlock<true, true, true>(block)
                             : processBlock<true, true, false>(block);
            else
                keepSchedule ? processBlock<true, false, true>(block)
                             : processBlock<true, false, false>(block);
        } else {
            if (full_checks)
                keepSchedule ? processBlock<false, true, true>(block)
                             : processBlock<false, true, false>(block);
            else
                keepSchedule ? processBlock<false, false, true>(block)
                             : processBlock<false, false, false>(block);
        }
    }

    template <bool UseVp, bool FullChecks, bool KeepSchedule> void
    processBlock(TraceSpan block)
    {
        const unsigned window_size = config.windowSize;
        const unsigned fetch_rate = config.fetchRate;
        const Cycle frontend_latency = config.frontendLatency;
        Writer *const writers = lastWriter.data();
        Cycle *const window = windowExec.data();

        // Loop state lives in locals for the duration of the block and
        // is written back once at the end: in the <false, false, false>
        // instantiation the inner loop then makes no opaque calls at
        // all, so everything below stays in registers.
        std::uint64_t i = this->i;
        std::size_t window_slot = this->windowSlot;
        Cycle fetch_cycle = this->fetchCycle;
        unsigned fetch_slot = this->fetchSlot;
        Cycle max_exec = this->maxExec;
        std::uint64_t stalling_uses = 0;
        std::uint64_t correctly_predicted_uses = 0;
        std::uint64_t useful_predictions = 0;
        std::uint64_t perfect_predictions = 0;

        for (const TraceRecord &record : block) {
        Cycle earliest = fetch_cycle + frontend_latency;

        // Window constraint: the slot of instruction i - windowSize
        // must have freed (at its execute) before i can execute.
        if (i >= window_size) {
            earliest = std::max(earliest, window[window_slot] + 1);
        }

        // Operand constraints. A consumer issues as soon as its
        // non-predicted operands are ready (predicted operands impose no
        // issue constraint: the consumer speculates on the predicted
        // value). An operand whose prediction was WRONG only costs the
        // reissue penalty if the consumer actually speculated on it,
        // i.e. if the real value was not yet available at issue time —
        // when the consumer issues late anyway, it reads the real value
        // and the prediction is merely useless, exactly the paper's
        // "the prediction becomes useless" case.
        struct OperandUse
        {
            Cycle readyNoVp = 0;
            /** 0 = not predicted, 1 = predicted correct, 2 = wrong. */
            int kind = 0;
        };
        [[maybe_unused]] OperandUse uses[2];
        [[maybe_unused]] unsigned num_uses = 0;

        // Issue time: non-predicted operands bind, and a use stalls
        // (capacity statistic) when its real value arrives after the
        // machine could otherwise issue the consumer. Without value
        // prediction every operand binds, so the use list is not even
        // materialized.
        Cycle issue = earliest;
        const auto consume = [&](RegIndex reg) {
            const Writer &writer = writers[reg];
            if (!writer.exists)
                return;
            const Cycle ready = writer.execCycle + 1;
            if (ready > earliest)
                ++stalling_uses;
            if constexpr (UseVp) {
                OperandUse use;
                use.readyNoVp = ready;
                if (writer.predicted)
                    use.kind = writer.correct ? 1 : 2;
                uses[num_uses++] = use;
                if (use.kind == 0)
                    issue = std::max(issue, ready);
            } else {
                issue = std::max(issue, ready);
            }
        };
        consume(record.rs1);
        consume(record.rs2);

        // Completion: wrong speculations reissue after the real value,
        // in ascending ready order (a later wrong operand sees the
        // delay already caused by an earlier one). Without value
        // prediction exec == issue and the speculation bookkeeping
        // below compiles away.
        Cycle exec = issue;
        if constexpr (UseVp) {
            if (num_uses == 2 && uses[0].kind == 2 &&
                uses[1].kind == 2 &&
                uses[0].readyNoVp > uses[1].readyNoVp) {
                std::swap(uses[0], uses[1]);
            }
            for (unsigned u = 0; u < num_uses; ++u) {
                if (uses[u].kind != 2)
                    continue;
                if (uses[u].readyNoVp <= exec) {
                    // Real value available by then: no speculation
                    // needed.
                    exec = std::max(exec, uses[u].readyNoVp);
                } else {
                    exec = uses[u].readyNoVp + config.vpPenalty;
                }
            }
            // A correct prediction was useful when the operand would
            // otherwise have delayed the consumer past its actual
            // execute.
            for (unsigned u = 0; u < num_uses; ++u) {
                if (uses[u].kind != 1)
                    continue;
                ++correctly_predicted_uses;
                if (uses[u].readyNoVp > exec)
                    ++useful_predictions;
            }
        }
        if (FullChecks) {
            // Deep audit: the slot being recycled must have freed
            // before this execute (re-reads the ring buffer the
            // scheduler used, so a future refactor that drops the
            // window bound is caught).
            if (i >= window_size) {
                checkInvariant(
                    InvariantLevel::Full,
                    exec >= window[window_slot] + 1,
                    "ideal.window_slot_reuse", [&] {
                        return "inst " + std::to_string(i) +
                               " executes in " + std::to_string(exec) +
                               " but its window slot frees in " +
                               std::to_string(window[window_slot]);
                    });
            }
            checkInvariant(InvariantLevel::Full,
                           exec >= fetch_cycle + frontend_latency,
                           "ideal.frontend_latency", [&] {
                               return "inst " + std::to_string(i) +
                                      " executes in " +
                                      std::to_string(exec) +
                                      " before fetch " +
                                      std::to_string(fetch_cycle) +
                                      " + frontend latency";
                           });
        }
        window[window_slot] = exec;
        if (KeepSchedule)
            result.execCycle.push_back(exec);
        max_exec = std::max(max_exec, exec);

        // Record this instruction as the new last writer of rd, with
        // its own prediction outcome for downstream consumers.
        if (record.producesValue()) {
            Writer writer;
            writer.exists = true;
            writer.execCycle = exec;
            if (UseVp) {
                const bool in_scope =
                    config.vpScope == VpScope::AllInstructions ||
                    record.instClass() == InstClass::Load;
                if (in_scope) {
                    if (config.perfectValuePrediction) {
                        writer.predicted = true;
                        writer.correct = true;
                        ++perfect_predictions;
                    } else {
                        const ClassifiedPrediction prediction =
                            predictor->predict(record.pc);
                        writer.predicted = prediction.predicted;
                        writer.correct =
                            prediction.predicted &&
                            prediction.value == record.result;
                        predictor->update(record.pc, prediction,
                                          record.result);
                    }
                }
            }
            writers[record.rd] = writer;
        }

        ++i;
        if (++window_slot == window_size)
            window_slot = 0;
        if (++fetch_slot == fetch_rate) {
            fetch_slot = 0;
            ++fetch_cycle;
        }
        }

        this->i = i;
        this->windowSlot = window_slot;
        this->fetchCycle = fetch_cycle;
        this->fetchSlot = fetch_slot;
        this->maxExec = max_exec;
        result.stallingUses += stalling_uses;
        result.correctlyPredictedUses += correctly_predicted_uses;
        result.usefulPredictions += useful_predictions;
        result.predictionsMade += perfect_predictions;
        result.predictionsCorrect += perfect_predictions;
    }
};

} // namespace

IdealMachineResult
runIdealMachine(TraceSource &source, const IdealMachineConfig &config,
                bool keep_schedule)
{
    fatalIf(config.fetchRate == 0, "fetch rate must be positive");
    fatalIf(config.windowSize == 0, "window size must be positive");

    IdealMachineResult result;

    std::unique_ptr<ClassifiedPredictor> predictor;
    if (config.useValuePrediction && !config.perfectValuePrediction) {
        predictor = makeClassifiedPredictor(
            config.predictorKind, config.tableCapacity,
            config.counterBits, config.missPolicy);
    }

    IdealEngine engine(config, result, keep_schedule);
    engine.predictor = predictor.get();

    source.reset();
    TraceSpan block;
    while (source.nextBlock(block)) {
        // Progress heartbeat for the --job-timeout watchdog and the
        // self-check level poll, hoisted to block granularity: one
        // thread-local store and one relaxed atomic load per <= 4096
        // records instead of per instruction.
        simHeartbeat(engine.i);
        engine.dispatchBlock(block,
                             invariantsActive(InvariantLevel::Full));
    }

    result.instructions = engine.i;
    if (engine.i == 0)
        return result;

    const Cycle max_exec = engine.maxExec;
    if (predictor) {
        result.predictionsMade = predictor->predictionsMade();
        result.predictionsCorrect = predictor->predictionsCorrect();
        result.predictionsWrong = predictor->predictionsWrong();
    }

    result.cycles = max_exec;
    result.ipc = static_cast<double>(result.instructions) /
                 static_cast<double>(result.cycles);

    // Always-on O(1) audits: the limit-study bound IPC <= fetch rate
    // (Mitrevski/Gusev-style validated-bound methodology) and the
    // predictor's lookup bookkeeping balance.
    checkInvariant(InvariantLevel::Cheap,
                   result.instructions <=
                       result.cycles * config.fetchRate,
                   "ideal.ipc_le_fetch_rate", [&] {
                       return std::to_string(result.instructions) +
                              " insts in " +
                              std::to_string(result.cycles) +
                              " cycles exceeds fetch rate " +
                              std::to_string(config.fetchRate);
                   });
    checkInvariant(InvariantLevel::Cheap,
                   result.predictionsMade ==
                       result.predictionsCorrect +
                           result.predictionsWrong,
                   "vp.hit_miss_balance", [&] {
                       return std::to_string(result.predictionsMade) +
                              " made != " +
                              std::to_string(result.predictionsCorrect) +
                              " correct + " +
                              std::to_string(result.predictionsWrong) +
                              " wrong";
                   });
    checkInvariant(InvariantLevel::Cheap,
                   result.usefulPredictions <=
                       result.correctlyPredictedUses,
                   "ideal.useful_le_correct_uses", [&] {
                       return std::to_string(result.usefulPredictions) +
                              " useful > " +
                              std::to_string(
                                  result.correctlyPredictedUses) +
                              " correctly predicted uses";
                   });
    return result;
}

IdealMachineResult
runIdealMachine(const std::vector<TraceRecord> &records,
                const IdealMachineConfig &config, bool keep_schedule)
{
    BorrowedTraceSource source{TraceSpan(records)};
    return runIdealMachine(source, config, keep_schedule);
}

std::string
IdealMachineResult::report() const
{
    std::ostringstream oss;
    oss << "ideal machine: " << instructions << " insts in " << cycles
        << " cycles (IPC " << ipc << ")\n";
    if (predictionsMade > 0) {
        oss << "  value predictions: " << predictionsMade << " made, "
            << predictionsCorrect << " correct, " << predictionsWrong
            << " wrong, " << usefulPredictions
            << " actually removed a stall\n";
    }
    return oss.str();
}

double
idealVpSpeedup(TraceSource &source, const IdealMachineConfig &config)
{
    IdealMachineConfig base = config;
    base.useValuePrediction = false;
    IdealMachineConfig vp = config;
    vp.useValuePrediction = true;

    const IdealMachineResult base_result = runIdealMachine(source, base);
    const IdealMachineResult vp_result = runIdealMachine(source, vp);
    if (vp_result.cycles == 0)
        return 1.0;
    return static_cast<double>(base_result.cycles) /
           static_cast<double>(vp_result.cycles);
}

double
idealVpSpeedup(const std::vector<TraceRecord> &records,
               const IdealMachineConfig &config)
{
    BorrowedTraceSource source{TraceSpan(records)};
    return idealVpSpeedup(source, config);
}

} // namespace vpsim
