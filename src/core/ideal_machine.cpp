#include "core/ideal_machine.hpp"

#include <algorithm>
#include <sstream>

#include "common/cancellation.hpp"
#include "common/invariant.hpp"
#include "common/logging.hpp"
#include "isa/instruction.hpp"

namespace vpsim
{

namespace
{

/**
 * Field accessors over an AoS block (a TraceSpan). The engine's block
 * worker is templated over this interface so the same loop body
 * compiles once against record gathers and once against columnar
 * array loads.
 */
struct SpanBlockView
{
    const TraceRecord *records;
    std::size_t count;

    std::size_t size() const { return count; }
    Addr pc(std::size_t k) const { return records[k].pc; }
    Value result(std::size_t k) const { return records[k].result; }
    OpCode op(std::size_t k) const { return records[k].op; }
    RegIndex rd(std::size_t k) const { return records[k].rd; }
    RegIndex rs1(std::size_t k) const { return records[k].rs1; }
    RegIndex rs2(std::size_t k) const { return records[k].rs2; }
};

/**
 * Field accessors over a SoA block (TraceColumns): each field is a
 * sequential stream over its own contiguous array, so the block loop
 * touches only the ~20 bytes per instruction it actually uses instead
 * of pulling whole 48-byte records through the cache.
 */
struct ColumnsBlockView
{
    TraceColumns cols;

    std::size_t size() const { return cols.count; }
    Addr pc(std::size_t k) const { return cols.pc[k]; }
    Value result(std::size_t k) const { return cols.result[k]; }
    OpCode op(std::size_t k) const { return cols.op[k]; }
    RegIndex rd(std::size_t k) const { return cols.rd[k]; }
    RegIndex rs1(std::size_t k) const { return cols.rs1[k]; }
    RegIndex rs2(std::size_t k) const { return cols.rs2[k]; }
};

/**
 * The span-iterating ideal-machine engine.
 *
 * All loop state lives here so the per-block worker can be specialized
 * at compile time: processBlock<UseVp, FullChecks> is instantiated per
 * (value prediction, deep-check) combination and dispatched once per
 * delivered block, so the per-instruction path of a plain baseline run
 * carries no dead prediction branches and no invariant polling at all.
 * Record index, window-ring slot (== i % windowSize) and fetch cycle
 * (== i / fetchRate + 1) are carried incrementally across blocks: the
 * batched loop pays no per-record divide or modulo.
 */
struct IdealEngine
{
    /** What consumers need to know about a register's last writer. */
    struct Writer
    {
        Cycle execCycle = 0;
        bool exists = false;
        bool predicted = false;
        bool correct = false;
    };

    const IdealMachineConfig &config;
    IdealMachineResult &result;
    const bool keepSchedule;
    ClassifiedPredictor *predictor = nullptr;

    std::vector<Writer> lastWriter;
    /** Ring buffer of the last windowSize execute cycles. */
    std::vector<Cycle> windowExec;
    /** Scratch for the per-block batched table probe. */
    std::vector<Addr> probePcs;

    Cycle maxExec = 0;
    std::uint64_t i = 0;
    std::size_t windowSlot = 0;
    Cycle fetchCycle = 1;
    unsigned fetchSlot = 0;

    /**
     * The writer table spans the full RegIndex range so operand lookup
     * can index by raw register byte with no validity pre-check:
     * producesValue() never marks r0 or invalidReg as written, so
     * those entries stay !exists forever and read as "no producer".
     */
    static constexpr std::size_t writerTableSize = 256;

    IdealEngine(const IdealMachineConfig &machine_config,
                IdealMachineResult &machine_result, bool keep_schedule)
        : config(machine_config), result(machine_result),
          keepSchedule(keep_schedule), lastWriter(writerTableSize),
          windowExec(machine_config.windowSize, 0)
    {
    }

    template <typename Block> void
    dispatchBlock(const Block &block, bool full_checks)
    {
        if (config.useValuePrediction) {
            if (full_checks)
                keepSchedule ? processBlock<true, true, true>(block)
                             : processBlock<true, true, false>(block);
            else
                keepSchedule ? processBlock<true, false, true>(block)
                             : processBlock<true, false, false>(block);
        } else {
            if (full_checks)
                keepSchedule ? processBlock<false, true, true>(block)
                             : processBlock<false, true, false>(block);
            else
                keepSchedule ? processBlock<false, false, true>(block)
                             : processBlock<false, false, false>(block);
        }
    }

    /**
     * Batched predictor-table probe (one call per delivered block):
     * gathers the in-scope value-producing pcs and lets every table on
     * the predictor's path prefetch its slots before the sequential
     * walk below probes them one by one.
     */
    void
    probeBlockTables(const SpanBlockView &block)
    {
        probePcs.clear();
        const std::size_t n = block.size();
        for (std::size_t k = 0; k < n; ++k) {
            const OpCode op = block.op(k);
            const RegIndex rd = block.rd(k);
            const bool produces_value =
                writesDest(op) && rd != invalidReg && rd != 0;
            if (!produces_value)
                continue;
            if (config.vpScope != VpScope::AllInstructions &&
                instClassOf(op) != InstClass::Load)
                continue;
            probePcs.push_back(block.pc(k));
        }
        if (!probePcs.empty())
            predictor->probeBlock(probePcs.data(), probePcs.size());
    }

    void
    probeBlockTables(const ColumnsBlockView &block)
    {
        // The pc column is already contiguous: hand it to the tables
        // whole instead of paying a gather pass. The few non-value-
        // producing pcs prefetch a line that goes unused; that costs
        // less than filtering them out.
        if (block.cols.count != 0)
            predictor->probeBlock(block.cols.pc, block.cols.count);
    }

    template <bool UseVp, bool FullChecks, bool KeepSchedule,
              typename Block> void
    processBlock(const Block &block)
    {
        const unsigned window_size = config.windowSize;
        const unsigned fetch_rate = config.fetchRate;
        const Cycle frontend_latency = config.frontendLatency;
        const Cycle vp_penalty = config.vpPenalty;
        Writer *const writers = lastWriter.data();
        Cycle *const window = windowExec.data();

        // Loop state lives in locals for the duration of the block and
        // is written back once at the end: in the <false, false, false>
        // instantiation the inner loop then makes no opaque calls at
        // all, so everything below stays in registers.
        std::uint64_t i = this->i;
        std::size_t window_slot = this->windowSlot;
        Cycle fetch_cycle = this->fetchCycle;
        unsigned fetch_slot = this->fetchSlot;
        Cycle max_exec = this->maxExec;
        std::uint64_t stalling_uses = 0;
        std::uint64_t correctly_predicted_uses = 0;
        std::uint64_t useful_predictions = 0;
        std::uint64_t perfect_predictions = 0;

        const std::size_t block_size = block.size();
        for (std::size_t k = 0; k < block_size; ++k) {
        Cycle earliest = fetch_cycle + frontend_latency;

        // Window constraint: the slot of instruction i - windowSize
        // must have freed (at its execute) before i can execute.
        if (i >= window_size) {
            earliest = std::max(earliest, window[window_slot] + 1);
        }

        // Operand constraints. A consumer issues as soon as its
        // non-predicted operands are ready (predicted operands impose no
        // issue constraint: the consumer speculates on the predicted
        // value). An operand whose prediction was WRONG only costs the
        // reissue penalty if the consumer actually speculated on it,
        // i.e. if the real value was not yet available at issue time —
        // when the consumer issues late anyway, it reads the real value
        // and the prediction is merely useless, exactly the paper's
        // "the prediction becomes useless" case.
        //
        // Everything below is straight-line select arithmetic, not
        // branches: whether an operand was predicted / correct flips
        // with the simulated values, so a branchy encoding pays a
        // branch misprediction per dependent instruction. A missing
        // operand (no writer, r0, invalid) reads as ready == 0, which
        // every max/compare treats as "imposes nothing".
        const Writer &wr1 = writers[block.rs1(k)];
        const Writer &wr2 = writers[block.rs2(k)];
        const Cycle ready1 = wr1.exists ? wr1.execCycle + 1 : 0;
        const Cycle ready2 = wr2.exists ? wr2.execCycle + 1 : 0;
        stalling_uses += ready1 > earliest ? 1 : 0;
        stalling_uses += ready2 > earliest ? 1 : 0;

        // Issue: non-predicted operands bind. Completion: wrong
        // speculations reissue after the real value, in ascending
        // ready order (a later wrong operand sees the delay already
        // caused by an earlier one); an operand whose real value
        // arrived by the current execute never speculated, so it
        // imposes nothing.
        Cycle issue = earliest;
        Cycle exec;
        if constexpr (UseVp) {
            // 0 = binds at issue, 1 = predicted correct, 2 = wrong.
            const unsigned kind1 =
                (wr1.exists && wr1.predicted) ? (wr1.correct ? 1u : 2u)
                                              : 0u;
            const unsigned kind2 =
                (wr2.exists && wr2.predicted) ? (wr2.correct ? 1u : 2u)
                                              : 0u;
            issue = std::max(issue, kind1 == 0 ? ready1 : Cycle{0});
            issue = std::max(issue, kind2 == 0 ? ready2 : Cycle{0});
            exec = issue;
            const Cycle wrong1 = kind1 == 2 ? ready1 : Cycle{0};
            const Cycle wrong2 = kind2 == 2 ? ready2 : Cycle{0};
            const Cycle lo = std::min(wrong1, wrong2);
            const Cycle hi = std::max(wrong1, wrong2);
            exec = lo > exec ? lo + vp_penalty : exec;
            exec = hi > exec ? hi + vp_penalty : exec;
            // A correct prediction was useful when the operand would
            // otherwise have delayed the consumer past its actual
            // execute.
            correctly_predicted_uses +=
                (kind1 == 1 ? 1 : 0) + (kind2 == 1 ? 1 : 0);
            useful_predictions += (kind1 == 1 && ready1 > exec) ? 1 : 0;
            useful_predictions += (kind2 == 1 && ready2 > exec) ? 1 : 0;
        } else {
            issue = std::max(issue, ready1);
            issue = std::max(issue, ready2);
            exec = issue;
        }
        if (FullChecks) {
            // Deep audit: the slot being recycled must have freed
            // before this execute (re-reads the ring buffer the
            // scheduler used, so a future refactor that drops the
            // window bound is caught).
            if (i >= window_size) {
                checkInvariant(
                    InvariantLevel::Full,
                    exec >= window[window_slot] + 1,
                    "ideal.window_slot_reuse", [&] {
                        return "inst " + std::to_string(i) +
                               " executes in " + std::to_string(exec) +
                               " but its window slot frees in " +
                               std::to_string(window[window_slot]);
                    });
            }
            checkInvariant(InvariantLevel::Full,
                           exec >= fetch_cycle + frontend_latency,
                           "ideal.frontend_latency", [&] {
                               return "inst " + std::to_string(i) +
                                      " executes in " +
                                      std::to_string(exec) +
                                      " before fetch " +
                                      std::to_string(fetch_cycle) +
                                      " + frontend latency";
                           });
        }
        window[window_slot] = exec;
        if (KeepSchedule)
            result.execCycle.push_back(exec);
        max_exec = std::max(max_exec, exec);

        // Record this instruction as the new last writer of rd, with
        // its own prediction outcome for downstream consumers.
        const OpCode op = block.op(k);
        const RegIndex rd = block.rd(k);
        const bool produces_value =
            writesDest(op) && rd != invalidReg && rd != 0;
        if (produces_value) {
            Writer writer;
            writer.exists = true;
            writer.execCycle = exec;
            if (UseVp) {
                const bool in_scope =
                    config.vpScope == VpScope::AllInstructions ||
                    instClassOf(op) == InstClass::Load;
                if (in_scope) {
                    if (config.perfectValuePrediction) {
                        writer.predicted = true;
                        writer.correct = true;
                        ++perfect_predictions;
                    } else {
                        const Value actual = block.result(k);
                        const ClassifiedPrediction prediction =
                            predictor->predictAndTrain(block.pc(k),
                                                       actual);
                        writer.predicted = prediction.predicted;
                        writer.correct = prediction.predicted &&
                                         prediction.value == actual;
                    }
                }
            }
            writers[rd] = writer;
        }

        ++i;
        if (++window_slot == window_size)
            window_slot = 0;
        if (++fetch_slot == fetch_rate) {
            fetch_slot = 0;
            ++fetch_cycle;
        }
        }

        this->i = i;
        this->windowSlot = window_slot;
        this->fetchCycle = fetch_cycle;
        this->fetchSlot = fetch_slot;
        this->maxExec = max_exec;
        result.stallingUses += stalling_uses;
        result.correctlyPredictedUses += correctly_predicted_uses;
        result.usefulPredictions += useful_predictions;
        result.predictionsMade += perfect_predictions;
        result.predictionsCorrect += perfect_predictions;
    }
};

} // namespace

IdealMachineResult
runIdealMachine(TraceSource &source, const IdealMachineConfig &config,
                bool keep_schedule)
{
    fatalIf(config.fetchRate == 0, "fetch rate must be positive");
    fatalIf(config.windowSize == 0, "window size must be positive");

    IdealMachineResult result;

    std::unique_ptr<ClassifiedPredictor> predictor;
    if (config.useValuePrediction && !config.perfectValuePrediction) {
        predictor = makeClassifiedPredictor(
            config.predictorKind, config.tableCapacity,
            config.counterBits, config.missPolicy);
    }

    IdealEngine engine(config, result, keep_schedule);
    engine.predictor = predictor.get();

    source.reset();
    if (source.supportsColumns()) {
        // Columnar fast path: the block loop streams per-field arrays
        // (SoA) instead of gathering from 48-byte records.
        TraceColumns cols;
        while (source.nextColumns(cols)) {
            simHeartbeat(engine.i);
            const ColumnsBlockView view{cols};
            if (predictor)
                engine.probeBlockTables(view);
            engine.dispatchBlock(view,
                                 invariantsActive(InvariantLevel::Full));
        }
    } else {
        TraceSpan block;
        while (source.nextBlock(block)) {
            // Progress heartbeat for the --job-timeout watchdog and the
            // self-check level poll, hoisted to block granularity: one
            // thread-local store and one relaxed atomic load per <= 4096
            // records instead of per instruction.
            simHeartbeat(engine.i);
            const SpanBlockView view{block.data(), block.size()};
            if (predictor)
                engine.probeBlockTables(view);
            engine.dispatchBlock(view,
                                 invariantsActive(InvariantLevel::Full));
        }
    }

    result.instructions = engine.i;
    if (engine.i == 0)
        return result;

    const Cycle max_exec = engine.maxExec;
    if (predictor) {
        result.predictionsMade = predictor->predictionsMade();
        result.predictionsCorrect = predictor->predictionsCorrect();
        result.predictionsWrong = predictor->predictionsWrong();
    }

    result.cycles = max_exec;
    result.ipc = static_cast<double>(result.instructions) /
                 static_cast<double>(result.cycles);

    // Always-on O(1) audits: the limit-study bound IPC <= fetch rate
    // (Mitrevski/Gusev-style validated-bound methodology) and the
    // predictor's lookup bookkeeping balance.
    checkInvariant(InvariantLevel::Cheap,
                   result.instructions <=
                       result.cycles * config.fetchRate,
                   "ideal.ipc_le_fetch_rate", [&] {
                       return std::to_string(result.instructions) +
                              " insts in " +
                              std::to_string(result.cycles) +
                              " cycles exceeds fetch rate " +
                              std::to_string(config.fetchRate);
                   });
    checkInvariant(InvariantLevel::Cheap,
                   result.predictionsMade ==
                       result.predictionsCorrect +
                           result.predictionsWrong,
                   "vp.hit_miss_balance", [&] {
                       return std::to_string(result.predictionsMade) +
                              " made != " +
                              std::to_string(result.predictionsCorrect) +
                              " correct + " +
                              std::to_string(result.predictionsWrong) +
                              " wrong";
                   });
    checkInvariant(InvariantLevel::Cheap,
                   result.usefulPredictions <=
                       result.correctlyPredictedUses,
                   "ideal.useful_le_correct_uses", [&] {
                       return std::to_string(result.usefulPredictions) +
                              " useful > " +
                              std::to_string(
                                  result.correctlyPredictedUses) +
                              " correctly predicted uses";
                   });
    return result;
}

IdealMachineResult
runIdealMachine(const std::vector<TraceRecord> &records,
                const IdealMachineConfig &config, bool keep_schedule)
{
    BorrowedTraceSource source{TraceSpan(records)};
    return runIdealMachine(source, config, keep_schedule);
}

std::string
IdealMachineResult::report() const
{
    std::ostringstream oss;
    oss << "ideal machine: " << instructions << " insts in " << cycles
        << " cycles (IPC " << ipc << ")\n";
    if (predictionsMade > 0) {
        oss << "  value predictions: " << predictionsMade << " made, "
            << predictionsCorrect << " correct, " << predictionsWrong
            << " wrong, " << usefulPredictions
            << " actually removed a stall\n";
    }
    return oss.str();
}

double
idealVpSpeedup(TraceSource &source, const IdealMachineConfig &config)
{
    IdealMachineConfig base = config;
    base.useValuePrediction = false;
    IdealMachineConfig vp = config;
    vp.useValuePrediction = true;

    const IdealMachineResult base_result = runIdealMachine(source, base);
    const IdealMachineResult vp_result = runIdealMachine(source, vp);
    if (vp_result.cycles == 0)
        return 1.0;
    return static_cast<double>(base_result.cycles) /
           static_cast<double>(vp_result.cycles);
}

double
idealVpSpeedup(const std::vector<TraceRecord> &records,
               const IdealMachineConfig &config)
{
    BorrowedTraceSource source{TraceSpan(records)};
    return idealVpSpeedup(source, config);
}

} // namespace vpsim
