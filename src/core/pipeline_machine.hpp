/**
 * @file
 * The paper's Section 5 execution model: a 40-entry instruction window
 * with 40 execution units and a decode/issue width of 40, register
 * renaming (no name-dependence stalls), branch prediction with a 3-cycle
 * misprediction penalty, and value prediction with a 1-cycle
 * misprediction penalty where only the dependent instructions are
 * invalidated and rescheduled (selective reissue).
 *
 * The model is a cycle-by-cycle structural simulation: fetch (through a
 * pluggable front end: multi-branch sequential fetch or a trace cache),
 * dispatch into a reorder buffer, dataflow issue/execute with unit
 * latency, and in-order commit. Branch mispredictions stall fetch until
 * the cycle after the branch executes, which with the 2-cycle front end
 * realizes the paper's 3-cycle penalty.
 */

#ifndef VPSIM_CORE_PIPELINE_MACHINE_HPP
#define VPSIM_CORE_PIPELINE_MACHINE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "bpred/two_level.hpp"
#include "core/ideal_machine.hpp"
#include "common/types.hpp"
#include "fetch/branch_address_cache.hpp"
#include "fetch/collapsing_buffer.hpp"
#include "fetch/icache.hpp"
#include "fetch/trace_cache.hpp"
#include "vm/program.hpp"
#include "predictor/factory.hpp"
#include "trace/record.hpp"
#include "vptable/interleaved_table.hpp"

namespace vpsim
{

/** Which front end feeds the pipeline. */
enum class FrontEndKind
{
    /** Width-limited fetch with a taken-branch-per-cycle cap (§5.1). */
    Sequential,
    /** Trace cache with conventional-fetch miss path (§5, Fig 5.3). */
    TraceCache,
    /** Branch address cache + interleaved icache ([28], §2.2). */
    BranchAddressCache,
    /** Two-line fetch with intra-line branch collapsing ([1], §2.2). */
    CollapsingBuffer,
};

/** When an instruction's window slot becomes reusable. */
enum class WindowFreePolicy
{
    /**
     * At execute — the window is a scheduling window, matching the
     * paper's Section 3 ideal model which Section 5 builds on ("a
     * finite instruction window of 40 instructions").
     */
    AtExecute,
    /**
     * At in-order commit — the window is a reorder buffer. Little's law
     * then caps IPC near windowSize / pipeline depth regardless of
     * value prediction; kept as an ablation knob.
     */
    AtCommit,
};

/** When the value predictor's tables are trained. */
enum class VpUpdateTiming
{
    /**
     * Immediately at dispatch, in program order — the trace-driven
     * methodology of the paper (the predictor always sees coherent
     * sequential state; in-flight staleness is not modelled).
     */
    Dispatch,
    /**
     * At retire. Models real update latency: predictions read at
     * dispatch use state that lags by the in-flight window, which
     * punishes short-period value patterns (kept as an ablation knob;
     * see the README's "predictor update timing" discussion).
     */
    Retire,
};

/** Configuration of one pipeline-machine run. */
struct PipelineConfig
{
    /** Instruction window entries (paper: 40). */
    unsigned windowSize = 40;
    /** Window slot reuse policy (paper: scheduling window). */
    WindowFreePolicy windowFreePolicy = WindowFreePolicy::AtExecute;
    /** Decode/issue width (paper: 40). */
    unsigned issueWidth = 40;
    /** Commit width. */
    unsigned commitWidth = 40;
    /** Cycles from fetch to earliest execute (fetch + decode/issue). */
    unsigned frontendLatency = 2;
    /** Extra cycles a dependent loses on a value misprediction. */
    unsigned vpPenalty = 1;

    /** @name Value prediction */
    /// @{
    bool useValuePrediction = false;
    bool perfectValuePrediction = false;
    PredictorKind predictorKind = PredictorKind::Stride;
    unsigned counterBits = 2;
    MissPolicy missPolicy = MissPolicy::Reset;
    VpUpdateTiming vpUpdateTiming = VpUpdateTiming::Dispatch;
    std::size_t tableCapacity = 0;
    /** Instruction coverage (paper: all value producers; [13]: loads). */
    VpScope vpScope = VpScope::AllInstructions;
    /** Route lookups through the §4 interleaved table (bank conflicts). */
    bool useInterleavedVpTable = false;
    VpTableConfig vpTableConfig{};
    /// @}

    /** @name Front end */
    /// @{
    FrontEndKind frontEnd = FrontEndKind::Sequential;
    /** Taken transfers fetchable per cycle; 0 = unlimited (§5.1). */
    unsigned maxTakenBranches = 1;
    TraceCacheConfig traceCacheConfig{};
    BacConfig bacConfig{};
    CollapsingBufferConfig collapsingBufferConfig{};
    /** Model instruction-cache misses on the Sequential front end. */
    bool useInstructionCache = false;
    ICacheConfig icacheConfig{};
    /**
     * Fetch down the mispredicted path while a branch resolves
     * (Sequential front end only; requires @c program). Wrong-path
     * instructions occupy window slots, consume fetch/issue bandwidth
     * and pollute the value predictor's speculative state, then squash.
     */
    bool modelWrongPath = false;
    /** Static program image for wrong-path navigation (not owned). */
    const Program *program = nullptr;
    /** Ideal BTB (oracle) vs the 2-level PAp predictor. */
    bool perfectBranchPredictor = true;
    TwoLevelConfig btbConfig{};
    /// @}
};

/** Outcome of one pipeline run. */
struct PipelineResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;

    /** Control-flow prediction accuracy over the run. */
    double branchAccuracy = 1.0;
    std::uint64_t branchMispredicts = 0;

    std::uint64_t vpPredictionsMade = 0;
    std::uint64_t vpPredictionsCorrect = 0;
    std::uint64_t vpPredictionsWrong = 0;

    /** Trace-cache statistics (TraceCache front end only). */
    double tcHitRate = 0.0;
    std::uint64_t tcLookups = 0;
    std::uint64_t tcLineInsts = 0;

    /** Branch-address-cache statistics (BAC front end only). */
    double bacHitRate = 0.0;
    std::uint64_t bacBankConflicts = 0;

    /** Collapsing-buffer statistics (CollapsingBuffer front end). */
    std::uint64_t cbCollapsedBranches = 0;

    /** Instruction cache statistics (when enabled). */
    double icacheHitRate = 1.0;

    /** Wrong-path instructions fetched then squashed (when modelled). */
    std::uint64_t wrongPathFetched = 0;

    /** Interleaved-table statistics (when enabled). */
    std::uint64_t vptRequests = 0;
    std::uint64_t vptMergedRequests = 0;
    std::uint64_t vptDeniedRequests = 0;
    std::uint64_t vptDistributorAdditions = 0;

    /** Multi-line human-readable summary of this run. */
    std::string report() const;
};

/**
 * Run the Section 5 machine over @p records.
 *
 * Takes a span: the cycle-driven model's front ends need random access
 * into the dynamic trace (trace-cache line construction, wrong-path
 * navigation), so block-at-a-time delivery does not fit it. Callers
 * with a TraceSource materialize explicitly (materializeTrace) so the
 * allocation is visible at the call site. A
 * std::vector<TraceRecord> converts implicitly.
 */
PipelineResult runPipelineMachine(TraceSpan records,
                                  const PipelineConfig &config);

/** Speedup of value prediction: cycles(VP off) / cycles(VP on). */
double pipelineVpSpeedup(TraceSpan records,
                         const PipelineConfig &config);

} // namespace vpsim

#endif // VPSIM_CORE_PIPELINE_MACHINE_HPP
