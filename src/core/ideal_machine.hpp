/**
 * @file
 * The paper's Section 3 "ideal execution environment": a machine limited
 * only by true-data dependencies, a finite instruction window, and an
 * artificial fetch/issue rate — free of control dependencies, name
 * dependencies and structural conflicts (§3.1).
 *
 * Timing model (matching Table 3.2's 4-stage pipeline):
 *   - instruction i is fetched in cycle floor(i / fetchRate) + 1;
 *   - it can execute no earlier than fetch + 2 (decode/issue in between);
 *   - a source operand produced by p is ready in cycle exec(p) + 1, or at
 *     issue when the classified value predictor supplied a correct value,
 *     or in exec(p) + 1 + penalty when the prediction was wrong
 *     (selective reissue of the dependent instruction);
 *   - the window admits at most windowSize in-flight instructions:
 *     exec(i) >= exec(i - windowSize) + 1 (a slot frees at execute);
 *   - all execution latencies are one cycle; predictor tables and
 *     classification counters are unbounded.
 */

#ifndef VPSIM_CORE_IDEAL_MACHINE_HPP
#define VPSIM_CORE_IDEAL_MACHINE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "predictor/factory.hpp"
#include "trace/record.hpp"
#include "trace/source.hpp"

namespace vpsim
{

/** Which instructions the value predictor covers. */
enum class VpScope
{
    /** Every value-producing instruction (the paper's configuration). */
    AllInstructions,
    /** Loads only — the original LVP proposal of Lipasti et al. [13]. */
    LoadsOnly,
};

/** Configuration of one ideal-machine run. */
struct IdealMachineConfig
{
    /** Instructions fetched (and issued) per cycle: 4/8/16/32/40. */
    unsigned fetchRate = 4;
    /** Instruction window entries (paper: 40). */
    unsigned windowSize = 40;
    /** Cycles between fetch and earliest execute (fetch + decode). */
    unsigned frontendLatency = 2;
    /** Cycles lost by a dependent on a value misprediction (paper: 1). */
    unsigned vpPenalty = 1;

    /** Use value prediction at all (off = baseline machine). */
    bool useValuePrediction = false;
    /** Pretend every prediction is correct (Table 3.2's perfect VP). */
    bool perfectValuePrediction = false;
    /** Which raw predictor to classify (paper: stride). */
    PredictorKind predictorKind = PredictorKind::Stride;
    /** Classifier counter width (paper: 2). */
    unsigned counterBits = 2;
    /** Classifier reaction to a wrong raw prediction. */
    MissPolicy missPolicy = MissPolicy::Reset;
    /** Table capacity; 0 = infinite (paper's Section 3 assumption). */
    std::size_t tableCapacity = 0;
    /** Instruction coverage (paper: all value producers). */
    VpScope vpScope = VpScope::AllInstructions;
};

/** Outcome of one ideal-machine run. */
struct IdealMachineResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0.0;

    /** Classified predictions issued / correct / wrong. */
    std::uint64_t predictionsMade = 0;
    std::uint64_t predictionsCorrect = 0;
    std::uint64_t predictionsWrong = 0;
    /**
     * Operand uses whose producer's value was correctly predicted
     * (one producer instance can feed several consumers).
     */
    std::uint64_t correctlyPredictedUses = 0;
    /**
     * Operand uses whose real value was not yet available when the
     * consumer could otherwise have issued (fetch + window permitting):
     * the dependences a value predictor could possibly help with. Grows
     * with fetch bandwidth — the paper's Section 3 mechanism.
     */
    std::uint64_t stallingUses = 0;
    /**
     * Correctly predicted uses that actually shortened the consumer's
     * execution — the paper's key observable: at a low fetch rate most
     * correct predictions are useless because the operand is ready
     * anyway.
     */
    std::uint64_t usefulPredictions = 0;

    /** Execute cycle per instruction (filled when requested). */
    std::vector<Cycle> execCycle;

    /** Multi-line human-readable summary of this run. */
    std::string report() const;
};

/**
 * Run the ideal machine over @p source (rewound first).
 *
 * This is the primary entry point: the hot loop iterates borrowed
 * spans from TraceSource::nextBlock(), so per-instruction work is a
 * pointer walk with no virtual dispatch.
 *
 * @param source Trace in program order; reset() is called before use.
 * @param config Machine configuration.
 * @param keep_schedule Also return per-instruction execute cycles (used
 *        by the Table 3.2 reproduction test).
 */
IdealMachineResult runIdealMachine(TraceSource &source,
                                   const IdealMachineConfig &config,
                                   bool keep_schedule = false);

/** Convenience overload over an in-memory trace (borrows @p records). */
IdealMachineResult runIdealMachine(const std::vector<TraceRecord> &records,
                                   const IdealMachineConfig &config,
                                   bool keep_schedule = false);

/**
 * Convenience for the Figure 3.1 experiment: the speedup of value
 * prediction at a given fetch rate, i.e. cycles(no VP) / cycles(VP) on
 * machines with identical fetch rate. Runs @p source twice (rewinding
 * each time).
 */
double idealVpSpeedup(TraceSource &source,
                      const IdealMachineConfig &config);

/** Convenience overload over an in-memory trace (borrows @p records). */
double idealVpSpeedup(const std::vector<TraceRecord> &records,
                      const IdealMachineConfig &config);

} // namespace vpsim

#endif // VPSIM_CORE_IDEAL_MACHINE_HPP
