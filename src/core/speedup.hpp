/**
 * @file
 * Small helpers for reporting speedups the way the paper does.
 *
 * The paper reports per-benchmark speedup of a machine with value
 * prediction relative to the *same* machine without it, plus an "avg"
 * column that is the arithmetic mean of the per-benchmark speedup gains.
 */

#ifndef VPSIM_CORE_SPEEDUP_HPP
#define VPSIM_CORE_SPEEDUP_HPP

#include <vector>

namespace vpsim
{

/** Arithmetic mean of @p values (0 when empty). */
double arithmeticMean(const std::vector<double> &values);

/** Geometric mean of @p values (0 when empty; values must be > 0). */
double geometricMean(const std::vector<double> &values);

/** Convert a speedup ratio (e.g. 1.33) to a gain fraction (0.33). */
double speedupToGain(double speedup_ratio);

} // namespace vpsim

#endif // VPSIM_CORE_SPEEDUP_HPP
