/**
 * @file
 * Golden-reference model for the Section 3 ideal machine.
 *
 * A deliberately naive, single-purpose re-implementation of the ideal
 * execution environment, used by the `--cross-check` differential mode:
 * a deterministic sample of grid cells is re-simulated here and any
 * cycle-count or statistic divergence fails the run. The value of the
 * reference is its *independence from the optimized implementation's
 * structure*, not its speed:
 *
 *  - two phases instead of one interleaved loop: phase 1 replays the
 *    classified predictor over the trace and records each producer's
 *    prediction outcome; phase 2 computes the schedule from plain
 *    per-instruction arrays;
 *  - the window constraint reads a full execute-cycle vector (no ring
 *    buffer);
 *  - operand readiness re-derives the last writer per register inside
 *    the scheduling pass (no cached Writer struct).
 *
 * The classified predictor itself is shared with the primary model
 * (re-implementing FCM/stride tables here would dwarf the machine):
 * cross-checking targets scheduling and bookkeeping bugs; predictor
 * counter bugs are covered by the invariant engine instead
 * (docs/VALIDATION.md).
 */

#ifndef VPSIM_CORE_REFERENCE_MACHINE_HPP
#define VPSIM_CORE_REFERENCE_MACHINE_HPP

#include "core/ideal_machine.hpp"

namespace vpsim
{

/**
 * Naive re-simulation of runIdealMachine() (same result contract).
 * Takes a span: the two-phase algorithm needs random access to the
 * whole trace (exec[producer] lookups), so block-at-a-time delivery
 * does not fit it. Callers with a TraceSource materialize explicitly
 * (materializeTrace) so the allocation is visible at the call site.
 */
IdealMachineResult runReferenceIdealMachine(
    TraceSpan records, const IdealMachineConfig &config);

/** Naive re-computation of idealVpSpeedup(). */
double referenceIdealVpSpeedup(TraceSpan records,
                               const IdealMachineConfig &config);

} // namespace vpsim

#endif // VPSIM_CORE_REFERENCE_MACHINE_HPP
