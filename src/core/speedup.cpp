#include "core/speedup.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace vpsim
{

double
arithmeticMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (const double value : values)
        sum += value;
    return sum / static_cast<double>(values.size());
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double value : values) {
        panicIf(value <= 0.0, "geometric mean needs positive values");
        log_sum += std::log(value);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

double
speedupToGain(double speedup_ratio)
{
    return speedup_ratio - 1.0;
}

} // namespace vpsim
