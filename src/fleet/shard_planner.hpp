/**
 * @file
 * Shard planning: carving a grid's missing cells into worker-sized,
 * bisectable work units.
 *
 * A shard is an inclusive range of *global* cell indices. The planner
 * only ever emits contiguous runs of cells that still need computing —
 * after a resume, the missing set can be fragmented, and every gap
 * simply starts a new shard. Plans depend on the grid and the
 * requested shard size alone (never on worker count), so a fleet and
 * its in-process reference mode produce identical shard lineage, and a
 * resumed fleet under a different --fleet-workers still recognizes its
 * own result files.
 *
 * Bisection is the poisoned-shard recovery step: a shard that keeps
 * dying is split in half and each half retried fresh, recursively,
 * until the failure is isolated to a single cell — which is then
 * quarantined as one NaN cell. One bad cell costs one cell.
 */

#ifndef VPSIM_FLEET_SHARD_PLANNER_HPP
#define VPSIM_FLEET_SHARD_PLANNER_HPP

#include <cstdint>
#include <utility>
#include <vector>

namespace vpsim
{
namespace fleet
{

/** One contiguous, inclusive range of global cell indices. */
struct Shard
{
    /** Stable identity for logs and manifest lineage. */
    std::uint64_t id = 0;
    std::uint32_t firstCell = 0;
    std::uint32_t lastCell = 0;

    std::uint32_t size() const { return lastCell - firstCell + 1; }
};

class ShardPlanner
{
  public:
    /**
     * Plan shards over @p missing_cells (sorted, deduplicated global
     * indices): contiguous runs, split so no shard exceeds
     * @p shard_cells. Ids are assigned 0..n-1 in cell order.
     */
    static std::vector<Shard> plan(
        const std::vector<std::uint32_t> &missing_cells,
        std::uint32_t shard_cells);

    /**
     * Split @p shard into two halves (@p shard must span >= 2 cells).
     * The caller assigns fresh ids to both halves.
     */
    static std::pair<Shard, Shard> bisect(const Shard &shard);
};

} // namespace fleet
} // namespace vpsim

#endif // VPSIM_FLEET_SHARD_PLANNER_HPP
