#include "fleet/fleet_main.hpp"

#include <cstdio>

#include "common/logging.hpp"
#include "common/options.hpp"
#include "fleet/fleet_manifest.hpp"
#include "fleet/grid.hpp"
#include "fleet/supervisor.hpp"
#include "fleet/worker.hpp"
#include "sim/experiment.hpp"

namespace vpsim
{
namespace fleet
{

namespace
{

/**
 * Append the merged grid to --csv in the same tidy long form
 * maybeWriteCsv() uses, but with the *fleet* manifest as the sidecar:
 * the run manifest would sign the full fingerprint, which includes
 * execution knobs like --fleet-workers and would break the
 * "fleet output == in-process output" byte-identity contract.
 */
void
writeFleetCsv(const Options &options, const FleetGrid &grid,
              const FleetReport &report)
{
    const std::string path = options.getString("csv");
    if (path.empty())
        return;
    std::FILE *file = std::fopen(path.c_str(), "a");
    fatalIf(!file, "cannot open CSV file " + path);
    for (std::size_t row = 0; row < grid.rows(); ++row) {
        for (std::size_t col = 0; col < grid.cols(); ++col) {
            std::fprintf(file, "%s,%s,%s,%.9g\n", "fleet",
                         grid.workloads()[row].c_str(),
                         grid.columnLabel(col).c_str(),
                         report.cells[row][col]);
        }
    }
    std::fclose(file);
    std::fprintf(stderr, "appended %zu rows to %s\n",
                 grid.rows() * grid.cols(), path.c_str());
    writeFleetManifest(grid, report, path);
}

} // namespace

int
fleetMain(int argc, const char *const *argv,
          const std::string &description,
          const std::map<std::string, std::string> &defaults)
{
    Options options;
    declareFleetOptions(options, defaults);
    options.parse(argc, argv, description);

    if (options.getBool("fleet-worker"))
        return runFleetWorker(options);

    FleetGrid grid(options);
    const FleetReport report = runFleet(options, grid);

    std::vector<std::string> column_labels;
    column_labels.reserve(grid.cols());
    for (std::size_t col = 0; col < grid.cols(); ++col)
        column_labels.push_back(grid.columnLabel(col));
    std::fputs(renderPercentTable(
                   "Fleet sweep - ideal VP speedup over baseline",
                   grid.workloads(), column_labels, report.cells)
                   .c_str(),
               stdout);

    writeFleetCsv(options, grid, report);
    reportFleetStats(options, report);
    return 0;
}

} // namespace fleet
} // namespace vpsim
