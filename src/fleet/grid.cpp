#include "fleet/grid.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "predictor/factory.hpp"
#include "sim/experiment.hpp"
#include "workloads/workload.hpp"

namespace vpsim
{
namespace fleet
{

namespace
{

std::uint64_t
fnv1a(const std::string &text)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (const char ch : text) {
        hash ^= static_cast<unsigned char>(ch);
        hash *= 1099511628211ull;
    }
    return hash;
}

std::vector<std::uint64_t>
parseAxis(const Options &options, const std::string &name)
{
    std::vector<std::uint64_t> values;
    for (const std::string &item : options.getList(name)) {
        char *end = nullptr;
        const std::uint64_t value =
            std::strtoull(item.c_str(), &end, 0);
        fatalIf(end == item.c_str() || *end != '\0',
                "--" + name + ": bad value '" + item + "'");
        values.push_back(value);
    }
    fatalIf(values.empty(), "--" + name + " must not be empty");
    return values;
}

} // namespace

void
declareFleetOptions(Options &options,
                    const std::map<std::string, std::string> &defaults)
{
    const auto declare = [&](const std::string &name,
                             const std::string &fallback,
                             const std::string &help) {
        const auto it = defaults.find(name);
        options.declare(name,
                        it == defaults.end() ? fallback : it->second,
                        help);
    };

    declareStandardOptions(options, 20000);

    // Grid axes. Defaults sweep the paper's headline axes (predictor ×
    // fetch rate) at two table sizes; the soak bench overrides these to
    // reach >= 10^4 cells.
    declare("predictors", "stride,2-delta",
            "comma-separated predictor kinds forming one grid axis");
    declare("table-sizes", "0,1024",
            "comma-separated predictor table capacities "
            "(0 = infinite) forming one grid axis");
    declare("window-sizes", "40",
            "comma-separated instruction window sizes forming one "
            "grid axis");
    declare("fetch-rates", "4,8,16,32,40",
            "comma-separated fetch/issue rates forming one grid axis");
    declare("vp-penalties", "1",
            "comma-separated value-misprediction penalties forming "
            "one grid axis");

    // Fleet execution knobs (all excluded from the fingerprint).
    declare("fleet-workers", "4",
            "worker processes (isolated fault domains); 0 runs every "
            "cell in-process — the reference mode fleets must match "
            "byte for byte");
    declare("result-store", "",
            "directory of content-addressed shard result files; "
            "required for --fleet-resume (empty = private temporary "
            "store)");
    declare("fleet-resume", "0",
            "reuse finished cells already present in --result-store "
            "instead of starting fresh");
    declare("fleet-shard-cells", "64",
            "cells per shard the planner aims for (smaller shards "
            "lose less work per worker death)");
    declare("fleet-worker-timeout", "300",
            "seconds without a worker heartbeat before the supervisor "
            "declares it hung and kills it");
    declare("fleet-max-attempts", "3",
            "attempts per shard before it is bisected (multi-cell) or "
            "its cell quarantined as NaN (single-cell)");
    declare("fleet-retry-base-ms", "200",
            "base delay of the exponential retry backoff");
    declare("fleet-worker-mem-mb", "128",
            "estimated peak RSS per worker, used by --mem-budget to "
            "shrink the worker count");
    declare("poison-cell", "-1",
            "testing only: the worker evaluating this global cell "
            "index crashes (exercises bisection quarantine); the cell "
            "ends as NaN in every mode");

    // Internal plumbing the supervisor passes to its workers. Declared
    // like any option so parse/fingerprint machinery stays uniform.
    declare("fleet-worker", "0",
            "internal: run as a fleet worker over --fleet-cells");
    declare("fleet-cells", "",
            "internal: inclusive global cell range 'first-last' this "
            "worker evaluates");
    declare("fleet-heartbeat-fd", "-1",
            "internal: pipe fd the worker writes heartbeats to");
    declare("fleet-fault", "",
            "internal: fault the supervisor imposed on this worker "
            "(kill9/hang/enospc)");

    options.addValidator([](const Options &parsed) -> std::string {
        if (parsed.getInt("fleet-workers") < 0)
            return "--fleet-workers must be >= 0 (0 = in-process "
                   "reference mode)";
        if (parsed.getInt("fleet-shard-cells") <= 0)
            return "--fleet-shard-cells must be positive";
        if (parsed.getInt("fleet-max-attempts") <= 0)
            return "--fleet-max-attempts must be positive";
        if (parsed.getDouble("fleet-worker-timeout") <= 0.0)
            return "--fleet-worker-timeout SEC must be positive";
        if (parsed.getInt("fleet-retry-base-ms") <= 0)
            return "--fleet-retry-base-ms must be positive";
        if (parsed.getInt("fleet-worker-mem-mb") <= 0)
            return "--fleet-worker-mem-mb must be positive";
        return "";
    });
    options.addValidator([](const Options &parsed) -> std::string {
        if (parsed.getBool("fleet-resume") &&
            parsed.getString("result-store").empty())
            return "--fleet-resume 1 requires --result-store DIR "
                   "(a private temporary store has nothing to resume "
                   "from)";
        return "";
    });
    options.addValidator([](const Options &parsed) -> std::string {
        if (parsed.getBool("fleet-worker") &&
            parsed.getString("fleet-cells").empty())
            return "--fleet-worker 1 requires --fleet-cells FIRST-LAST";
        return "";
    });
}

const std::vector<std::string> &
fleetFingerprintExclusions()
{
    // The execution-knob exclusion list SimRunner uses for checkpoint
    // keys, extended with the fleet's own execution knobs. --csv is
    // excluded too: the output path does not change any cell, and a
    // resumed fleet may write its merged CSV somewhere new.
    static const std::vector<std::string> exclusions = {
        "jobs", "trace-cache-dir", "stats", "keep-going", "checkpoint",
        "resume", "fault-inject", "check-invariants", "cross-check",
        "job-timeout", "trace-format", "salvage-blocks", "mem-budget",
        "cache-gc-days", "csv", "fleet-workers", "result-store",
        "fleet-resume", "fleet-shard-cells", "fleet-worker-timeout",
        "fleet-max-attempts", "fleet-retry-base-ms",
        "fleet-worker-mem-mb", "fleet-worker", "fleet-cells",
        "fleet-heartbeat-fd", "fleet-fault"};
    return exclusions;
}

FleetGrid::FleetGrid(const Options &options)
{
    workloadNames = options.getList("benchmarks");
    if (workloadNames.empty())
        workloadNames = vpsim::workloadNames();
    validateBenchmarkNames(workloadNames);

    std::vector<PredictorKind> predictors;
    std::vector<std::string> predictor_names =
        options.getList("predictors");
    fatalIf(predictor_names.empty(),
            "--predictors must not be empty");
    for (const std::string &name : predictor_names)
        predictors.push_back(predictorKindFromString(name));

    const std::vector<std::uint64_t> tables =
        parseAxis(options, "table-sizes");
    const std::vector<std::uint64_t> windows =
        parseAxis(options, "window-sizes");
    const std::vector<std::uint64_t> rates =
        parseAxis(options, "fetch-rates");
    const std::vector<std::uint64_t> penalties =
        parseAxis(options, "vp-penalties");
    for (const std::uint64_t window : windows)
        fatalIf(window == 0, "--window-sizes values must be positive");
    for (const std::uint64_t rate : rates)
        fatalIf(rate == 0, "--fetch-rates values must be positive");

    // Column nesting (outer to inner): predictor, table, window,
    // fetch rate, penalty. The order is part of the grid's identity —
    // cell indices, the CSV layout, and the result store all depend
    // on it.
    for (std::size_t p = 0; p < predictors.size(); ++p) {
        for (const std::uint64_t table : tables) {
            for (const std::uint64_t window : windows) {
                for (const std::uint64_t rate : rates) {
                    for (const std::uint64_t penalty : penalties) {
                        Column column;
                        column.config.predictorKind = predictors[p];
                        column.config.tableCapacity =
                            static_cast<std::size_t>(table);
                        column.config.windowSize =
                            static_cast<unsigned>(window);
                        column.config.fetchRate =
                            static_cast<unsigned>(rate);
                        column.config.vpPenalty =
                            static_cast<unsigned>(penalty);
                        column.label =
                            predictor_names[p] + "/t" +
                            std::to_string(table) + "/w" +
                            std::to_string(window) + "/bw" +
                            std::to_string(rate) + "/p" +
                            std::to_string(penalty);
                        columns.push_back(column);
                    }
                }
            }
        }
    }
    fatalIf(columns.empty(), "fleet grid has no columns");

    fleetFingerprint =
        options.fingerprint(fleetFingerprintExclusions());
    fingerprintHash = fnv1a(fleetFingerprint);
}

} // namespace fleet
} // namespace vpsim
