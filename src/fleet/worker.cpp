#include "fleet/worker.hpp"

#include <signal.h>

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <exception>
#include <map>
#include <thread>

#include "common/cancellation.hpp"
#include "common/logging.hpp"
#include "core/ideal_machine.hpp"
#include "fleet/result_store.hpp"
#include "fleet/worker_handle.hpp"
#include "trace/trace_v3.hpp"

namespace vpsim
{
namespace fleet
{

namespace
{

/** Parse the '--fleet-cells first-last' range (inclusive). */
void
parseCellRange(const std::string &text, std::uint32_t *first,
               std::uint32_t *last)
{
    const std::size_t dash = text.find('-');
    fatalIf(dash == std::string::npos || dash == 0 ||
                dash + 1 >= text.size(),
            "--fleet-cells expects FIRST-LAST, got '" + text + "'");
    char *end = nullptr;
    const std::uint64_t lo =
        std::strtoull(text.substr(0, dash).c_str(), &end, 10);
    const std::string hi_text = text.substr(dash + 1);
    const std::uint64_t hi =
        std::strtoull(hi_text.c_str(), &end, 10);
    fatalIf(lo > hi, "--fleet-cells range is inverted: " + text);
    *first = static_cast<std::uint32_t>(lo);
    *last = static_cast<std::uint32_t>(hi);
}

/**
 * Apply the supervisor-imposed worker fault (chaos testing). Called
 * after the first completed cell so every fault strikes mid-shard —
 * the hardest point: work exists but nothing is published yet.
 */
void
applyWorkerFault(const std::string &kind, HeartbeatWriter &heartbeat)
{
    if (kind.empty())
        return;
    if (kind == "kill9") {
        // An unannounced death: no exit code, no stored result.
        (void)std::raise(SIGKILL);
        return;
    }
    if (kind == "hang") {
        // Stop heartbeating but stay alive: only the supervisor's
        // hang detector can clean this up.
        heartbeat.close();
        for (;;)
            std::this_thread::sleep_for(std::chrono::seconds(3600));
    }
    if (kind == "enospc") {
        // Persistent publish failure (disk full): report kIo without
        // storing anything, like a real ENOSPC on the result store.
        std::exit(kWorkerExitIo);
    }
    fatal("unknown --fleet-fault kind '" + kind + "'");
}

} // namespace

std::vector<std::pair<std::uint32_t, double>>
evaluateCells(const FleetGrid &grid, SimRunner &runner,
              const Options &options, std::uint32_t first_cell,
              std::uint32_t last_cell, PoisonAction poison_action,
              const std::function<void(std::uint64_t)> &after_cell)
{
    fatalIf(last_cell >= grid.cells(),
            "cell range end " + std::to_string(last_cell) +
                " outside grid of " + std::to_string(grid.cells()) +
                " cells");
    const std::uint64_t insts =
        static_cast<std::uint64_t>(options.getInt("insts"));
    const auto skip =
        static_cast<std::uint64_t>(options.getInt("skip"));
    WorkloadParams params;
    params.scale = static_cast<unsigned>(options.getInt("scale"));
    params.seed = static_cast<std::uint64_t>(options.getInt("seed"));
    const std::int64_t poison_cell = options.getInt("poison-cell");

    // A shard is a contiguous row-major range, so it touches at most
    // ceil(size/cols)+1 workloads; keep each touched trace alive for
    // the cells that share it.
    std::map<std::size_t, TraceHandle> row_traces;
    std::vector<std::pair<std::uint32_t, double>> cells;
    cells.reserve(last_cell - first_cell + 1);
    std::uint64_t done = 0;
    for (std::uint32_t cell = first_cell; cell <= last_cell; ++cell) {
        const std::size_t row = grid.rowOf(cell);
        auto found = row_traces.find(row);
        if (found == row_traces.end()) {
            TraceHandle trace = runner.captureTrace(
                grid.workloads()[row], insts, skip, params);
            found = row_traces.emplace(row, std::move(trace)).first;
        }
        double value = 0.0;
        if (poison_cell >= 0 &&
            static_cast<std::uint64_t>(poison_cell) == cell) {
            if (poison_action == PoisonAction::kCrash) {
                // Simulated model bug: die the way a real memory
                // corruption would — no status, no explanation.
                std::abort();
            }
            value = std::nan("");
        } else {
            value = idealVpSpeedup(*found->second,
                                   grid.columnConfig(
                                       grid.colOf(cell))) -
                    1.0;
        }
        cells.emplace_back(cell, value);
        ++done;
        if (after_cell)
            after_cell(done);
    }
    return cells;
}

int
runFleetWorker(const Options &options)
{
    // A dead supervisor must not SIGPIPE-kill us mid-shard: heartbeat
    // writes just start failing (EPIPE) and the shard still publishes.
    ::signal(SIGPIPE, SIG_IGN);

    std::uint32_t first_cell = 0;
    std::uint32_t last_cell = 0;
    parseCellRange(options.getString("fleet-cells"), &first_cell,
                   &last_cell);

    HeartbeatWriter heartbeat;
    const std::int64_t heartbeat_fd =
        options.getInt("fleet-heartbeat-fd");
    if (heartbeat_fd >= 0)
        heartbeat.attach(static_cast<int>(heartbeat_fd));
    heartbeat.beat(0);

    const std::string store_dir = options.getString("result-store");
    fatalIf(store_dir.empty(),
            "fleet worker launched without --result-store");
    const std::string fault = options.getString("fleet-fault");

    try {
        FleetGrid grid(options);
        ResultStore store(store_dir, grid.fleetHash());
        if (!store.status().isOk()) {
            warn("fleet worker: " + store.status().message());
            return exitCodeForStatus(store.status().code());
        }

        SimRunner runner(options);
        ShardResult result;
        result.cells = evaluateCells(
            grid, runner, options, first_cell, last_cell,
            PoisonAction::kCrash,
            [&heartbeat, &fault](std::uint64_t done) {
                heartbeat.beat(done);
                if (done == 1)
                    applyWorkerFault(fault, heartbeat);
            });
        result.salvage = salvageRegistry().totals();

        const Status stored =
            store.store(first_cell, last_cell, result);
        if (!stored.isOk()) {
            warn("fleet worker: " + stored.message());
            return exitCodeForStatus(stored.code());
        }
        heartbeat.beat(result.cells.size() + 1);
        return kWorkerExitOk;
    } catch (const JobCanceledError &canceled) {
        warn("fleet worker: " + std::string(canceled.what()));
        return kWorkerExitTimeout;
    } catch (const std::exception &error) {
        warn("fleet worker: " + std::string(error.what()));
        return kWorkerExitInternal;
    }
}

} // namespace fleet
} // namespace vpsim
