/**
 * @file
 * The fleet supervisor: a single-threaded event loop that drives the
 * whole experiment grid to completion across isolated worker processes.
 *
 * Fault model: a worker can exit cleanly with a coded failure class,
 * die on a signal (SIGKILL, SIGSEGV, abort), hang (alive but no
 * heartbeat), or publish a corrupt result file. The supervisor's
 * response is uniform — the shard attempt failed — and recovery is
 * policy-driven: bounded retries with exponential backoff and seeded
 * jitter (retry_policy.hpp), then bisection for multi-cell shards
 * (shard_planner.hpp), then quarantine of the single surviving cell as
 * NaN. A poisoned cell therefore costs exactly one NaN; every other
 * cell is computed.
 *
 * Determinism: the merged grid is keyed by global cell index, so the
 * order workers finish in — and the worker count itself — cannot change
 * the output. `--fleet-workers 0` runs every cell in-process through
 * the same planner and the same evaluateCells(), and must produce
 * byte-identical tables/CSV/manifest; scripts/fleet_chaos.sh holds the
 * two modes against each other.
 *
 * The supervisor never simulates and never spawns threads: all
 * simulation happens in workers (or in the in-process reference mode's
 * SimRunner), so fork() here never duplicates a running thread pool.
 */

#ifndef VPSIM_FLEET_SUPERVISOR_HPP
#define VPSIM_FLEET_SUPERVISOR_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "fleet/grid.hpp"
#include "trace/trace_v3.hpp"

namespace vpsim
{
namespace fleet
{

/**
 * Lineage of one executed shard (manifest + report material).
 *
 * The lineage is the *deterministic* recovery record: it depends only
 * on the grid, the shard plan, the set of poisoned cells and the retry
 * policy — never on worker count, scheduling, or transient faults that
 * were retried away. A shard whose result merged records attempts=1
 * and "ok" even if earlier launches of it were killed; a shard that
 * fails terminally records the policy's full attempt budget and
 * "bisected"/"quarantined". That is what lets a fault-injected fleet
 * sign a manifest byte-identical to a clean single-process run.
 * Bisection children take tree-derived ids (2*id + planCount [+1]),
 * unique across the forest and independent of discovery order.
 */
struct ShardOutcome
{
    std::uint64_t id = 0;
    std::uint32_t firstCell = 0;
    std::uint32_t lastCell = 0;
    /** 1 for a merged result; the policy budget for a terminal loss. */
    int attempts = 0;
    /** "ok", "bisected" or "quarantined". */
    std::string outcome;
};

/** Everything a fleet run produced, ready for rendering. */
struct FleetReport
{
    /** cells[row][col]; quarantined cells are NaN. */
    std::vector<std::vector<double>> cells;
    /** Global indices of cells quarantined as NaN, ascending. */
    std::vector<std::uint32_t> quarantinedCells;
    /** Executed shards, sorted by (firstCell, id). */
    std::vector<ShardOutcome> shards;
    /** Cells served from the result store by --fleet-resume. */
    std::uint64_t reusedCells = 0;
    /** Deterministic (signed) retries: attempts beyond the first that
     *  the lineage records, i.e. sum of (attempts - 1) over terminal
     *  shard losses. Independent of transient faults. */
    std::uint64_t retries = 0;
    /** Observed retries of any kind (crash, hang, ENOSPC, corrupt
     *  result). Execution telemetry: stderr only, never signed. */
    std::uint64_t transientRetries = 0;
    /** Shards split after exhausting their attempts. */
    std::uint64_t bisections = 0;
    /** Worker processes launched (0 in in-process mode). */
    std::uint64_t workersLaunched = 0;
    /** Resolved concurrent-worker budget after --mem-budget. */
    unsigned workerBudget = 0;
    /** Merged salvage totals across every worker (--stats parity). */
    SalvageRegistry::Totals salvage;
};

/**
 * Run the full grid: resume from the result store when asked, plan
 * shards over the missing cells, execute them — in worker processes
 * (--fleet-workers >= 1) or inline (0) — and merge everything into a
 * dense report. Fatal on unusable stores or spawn-level misconfiguration;
 * per-shard failures are absorbed by retry/bisect/quarantine.
 */
FleetReport runFleet(const Options &options, const FleetGrid &grid);

/** Print the supervisor's summary (workers, retries, salvage) to
 *  stderr; with --stats, the in-process runner's registry dump too. */
void reportFleetStats(const Options &options, const FleetReport &report);

} // namespace fleet
} // namespace vpsim

#endif // VPSIM_FLEET_SUPERVISOR_HPP
