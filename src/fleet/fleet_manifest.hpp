/**
 * @file
 * Signed fleet manifests: provenance sidecars for merged sweep CSVs.
 *
 * The run manifest (sim/run_manifest.hpp) describes one bench process;
 * a fleet's output is assembled from many processes, so its manifest
 * additionally records *assembly* provenance inside the signed region:
 * per-shard lineage (which cell ranges ran, how many attempts each
 * consumed, how each ended), total retry/bisection counts, the
 * quarantined-cell list, and the merged cross-worker salvage totals.
 * The experiment fingerprint here is the fleet fingerprint (execution
 * knobs excluded — grid.hpp), so a fleet and its in-process reference
 * mode sign the same identity.
 *
 * A clean fleet run and a clean `--fleet-workers 0` run of the same
 * experiment produce byte-identical manifests. Once faults strike,
 * lineage legitimately diverges (attempts, retries) while the identity
 * fields — schema, fleetHash, fingerprint, grid shape, quarantined
 * cells, CSV checksum — must still match; scripts/fleet_chaos.sh
 * compares accordingly and docs/FLEET.md spells out the contract.
 *
 * `scripts/verify_manifest.py` re-derives the CSV checksum and the
 * signature from `FILE.fleet-manifest.json` and fails on tampering.
 */

#ifndef VPSIM_FLEET_FLEET_MANIFEST_HPP
#define VPSIM_FLEET_FLEET_MANIFEST_HPP

#include <string>

#include "common/options.hpp"
#include "fleet/grid.hpp"
#include "fleet/supervisor.hpp"

namespace vpsim
{
namespace fleet
{

/**
 * Write `<csv_path>.fleet-manifest.json` describing @p csv_path as it
 * exists on disk right now. Fatal on write failure (a sweep whose
 * provenance cannot be recorded should not look like it succeeded).
 */
void writeFleetManifest(const FleetGrid &grid,
                        const FleetReport &report,
                        const std::string &csv_path);

} // namespace fleet
} // namespace vpsim

#endif // VPSIM_FLEET_FLEET_MANIFEST_HPP
