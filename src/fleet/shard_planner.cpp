#include "fleet/shard_planner.hpp"

#include "common/logging.hpp"

namespace vpsim
{
namespace fleet
{

std::vector<Shard>
ShardPlanner::plan(const std::vector<std::uint32_t> &missing_cells,
                   std::uint32_t shard_cells)
{
    panicIf(shard_cells == 0, "shard size must be positive");
    std::vector<Shard> shards;
    std::size_t i = 0;
    while (i < missing_cells.size()) {
        Shard shard;
        shard.id = shards.size();
        shard.firstCell = missing_cells[i];
        std::uint32_t last = missing_cells[i];
        std::size_t j = i + 1;
        while (j < missing_cells.size() &&
               missing_cells[j] == last + 1 &&
               static_cast<std::uint32_t>(j - i) < shard_cells) {
            last = missing_cells[j];
            ++j;
        }
        shard.lastCell = last;
        shards.push_back(shard);
        i = j;
    }
    return shards;
}

std::pair<Shard, Shard>
ShardPlanner::bisect(const Shard &shard)
{
    panicIf(shard.size() < 2, "cannot bisect a single-cell shard");
    const std::uint32_t mid =
        shard.firstCell + (shard.size() / 2) - 1;
    Shard low;
    low.firstCell = shard.firstCell;
    low.lastCell = mid;
    Shard high;
    high.firstCell = mid + 1;
    high.lastCell = shard.lastCell;
    return {low, high};
}

} // namespace fleet
} // namespace vpsim
