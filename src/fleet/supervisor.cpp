#include "fleet/supervisor.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>
#include <set>
#include <system_error>
#include <thread>

#include "common/io.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "fleet/result_store.hpp"
#include "fleet/retry_policy.hpp"
#include "fleet/shard_planner.hpp"
#include "fleet/worker.hpp"
#include "fleet/worker_handle.hpp"
#include "sim/sim_runner.hpp"

namespace vpsim
{
namespace fleet
{

namespace
{

volatile std::sig_atomic_t fleetSignal = 0;

void
fleetSignalHandler(int signal_number)
{
    fleetSignal = signal_number;
}

/** The FaultKind a worker:N clause drew, as a --fleet-fault value. */
std::string
workerFaultArg(io::FaultKind kind)
{
    switch (kind) {
      case io::FaultKind::Kill9: return "kill9";
      case io::FaultKind::Hang: return "hang";
      case io::FaultKind::Enospc: return "enospc";
      default: return "";
    }
}

/** One shard awaiting (re)execution. */
struct PendingShard
{
    Shard shard;
    int attempts = 0;
    std::chrono::steady_clock::time_point readyAt;
};

/** One live worker process and its hang-detection state. */
struct RunningWorker
{
    WorkerHandle handle;
    Shard shard;
    int attempts = 0; ///< Including the in-flight attempt.
    std::chrono::steady_clock::time_point lastBeatTime;
};

/**
 * Options the supervisor overrides (or withholds) when building a
 * worker command line; everything else passes through verbatim so
 * worker and supervisor agree on the experiment definition.
 */
const std::set<std::string> &
workerOverriddenOptions()
{
    static const std::set<std::string> overridden = {
        // Worker-protocol plumbing, set per launch.
        "fleet-worker", "fleet-cells", "fleet-heartbeat-fd",
        "fleet-fault", "result-store",
        // Supervisor-level execution knobs a worker must not recurse
        // on or duplicate.
        "fleet-workers", "fleet-resume", "jobs", "stats", "csv",
        "checkpoint", "resume",
        // The supervisor's injector drives worker faults; forwarding
        // the spec would double-arm io clauses in every child.
        "fault-inject",
    };
    return overridden;
}

std::vector<std::string>
workerArgvTail(const Options &options, const std::string &store_dir,
               const Shard &shard, const std::string &fault)
{
    std::vector<std::string> argv;
    for (const auto &[name, value] : options.items()) {
        // Replay only options the user set explicitly: the worker
        // re-execs this very binary, so defaults re-derive identically,
        // and several validators reject a default value that is only
        // legal when *omitted* (e.g. --job-timeout 0).
        if (!options.provided(name))
            continue;
        if (workerOverriddenOptions().count(name) != 0)
            continue;
        argv.push_back("--" + name);
        argv.push_back(value);
    }
    const auto push = [&argv](const std::string &name,
                              const std::string &value) {
        argv.push_back(name);
        argv.push_back(value);
    };
    push("--fleet-worker", "1");
    push("--fleet-cells", std::to_string(shard.firstCell) + "-" +
                              std::to_string(shard.lastCell));
    push("--fleet-heartbeat-fd", "3");
    push("--result-store", store_dir);
    push("--jobs", "1");
    push("--stats", "0");
    if (!fault.empty())
        push("--fleet-fault", fault);
    return argv;
}

/** Resolved concurrent-worker budget after the memory budget. */
unsigned
resolveWorkerBudget(const Options &options)
{
    const auto requested =
        static_cast<unsigned>(options.getInt("fleet-workers"));
    const auto mem_budget_mb =
        static_cast<std::uint64_t>(options.getInt("mem-budget"));
    if (requested == 0 || mem_budget_mb == 0)
        return requested;
    const auto worker_mb = static_cast<std::uint64_t>(
        options.getInt("fleet-worker-mem-mb"));
    const std::uint64_t allowed =
        std::max<std::uint64_t>(1, mem_budget_mb / worker_mb);
    if (allowed < requested) {
        warn("fleet: --mem-budget " + std::to_string(mem_budget_mb) +
             " MB supports " + std::to_string(allowed) + " worker(s) at " +
             std::to_string(worker_mb) +
             " MB each; shrinking --fleet-workers from " +
             std::to_string(requested));
        return static_cast<unsigned>(allowed);
    }
    return requested;
}

/** Cells of the grid not yet present in @p merged, ascending. */
std::vector<std::uint32_t>
missingCells(const FleetGrid &grid,
             const std::map<std::uint32_t, double> &merged)
{
    std::vector<std::uint32_t> missing;
    for (std::uint32_t cell = 0; cell < grid.cells(); ++cell) {
        if (merged.find(cell) == merged.end())
            missing.push_back(cell);
    }
    return missing;
}

void
sortLineage(std::vector<ShardOutcome> *shards)
{
    std::sort(shards->begin(), shards->end(),
              [](const ShardOutcome &a, const ShardOutcome &b) {
                  if (a.firstCell != b.firstCell)
                      return a.firstCell < b.firstCell;
                  return a.id < b.id;
              });
}

/** Fill the dense rows × cols report grid from the merged cell map. */
void
fillReportCells(const FleetGrid &grid,
                const std::map<std::uint32_t, double> &merged,
                FleetReport *report)
{
    report->cells.assign(
        grid.rows(),
        std::vector<double>(grid.cols(),
                            std::numeric_limits<double>::quiet_NaN()));
    for (const auto &[cell, value] : merged) {
        report->cells[grid.rowOf(cell)][grid.colOf(cell)] = value;
    }
}

/**
 * The multi-process event loop. Single-threaded by design: every
 * decision (launch, reap, retry, bisect) happens at one sequence
 * point, so there is no lock to get wrong and fork() never races a
 * sibling thread.
 */
void
runWorkerFleet(const Options &options, const FleetGrid &grid,
               const ResultStore &store,
               std::map<std::uint32_t, double> *merged,
               FleetReport *report)
{
    const RetryPolicy policy = {
        static_cast<int>(options.getInt("fleet-max-attempts")),
        std::chrono::milliseconds(
            options.getInt("fleet-retry-base-ms")),
        std::chrono::milliseconds(
            options.getInt("fleet-retry-base-ms") * 25),
        0.25};
    const auto hang_timeout =
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                options.getDouble("fleet-worker-timeout")));
    // Seeded from the experiment identity: retry schedules are
    // reproducible, per the determinism contract.
    Rng rng(static_cast<std::uint64_t>(options.getInt("seed")) ^
            grid.fleetHash());

    std::vector<PendingShard> pending;
    std::uint64_t plan_count = 0;
    {
        const std::vector<Shard> planned = ShardPlanner::plan(
            missingCells(grid, *merged),
            static_cast<std::uint32_t>(
                options.getInt("fleet-shard-cells")));
        const auto now = std::chrono::steady_clock::now();
        for (const Shard &shard : planned)
            pending.push_back({shard, 0, now});
        plan_count = planned.size();
    }

    std::vector<RunningWorker> running;
    const unsigned budget = report->workerBudget;

    // Cooperative shutdown: on SIGINT/SIGTERM the loop kills its
    // children (via the handle destructors) and exits 128+signal,
    // mirroring SimRunner's contract. Published shards survive in the
    // store for --fleet-resume.
    void (*previous_sigint)(int) =
        std::signal(SIGINT, fleetSignalHandler);
    void (*previous_sigterm)(int) =
        std::signal(SIGTERM, fleetSignalHandler);

    const auto handleFailure = [&](const Shard &shard, int attempts,
                                   const char *why) {
        warn("fleet: shard " + std::to_string(shard.id) + " (cells " +
             std::to_string(shard.firstCell) + "-" +
             std::to_string(shard.lastCell) + ") attempt " +
             std::to_string(attempts) + " failed: " + why);
        if (!policy.givesUpAfter(attempts)) {
            ++report->transientRetries;
            pending.push_back({shard, attempts,
                               std::chrono::steady_clock::now() +
                                   policy.delay(attempts, rng)});
            return;
        }
        // Terminal loss: from here on the bookkeeping is deterministic
        // (attempts == the policy budget, child ids derive from the
        // parent id, not from discovery order), so the signed lineage
        // of a poisoned grid reproduces across worker counts and
        // transient-fault schedules.
        report->retries += static_cast<std::uint64_t>(attempts - 1);
        if (shard.size() >= 2) {
            ++report->bisections;
            report->shards.push_back({shard.id, shard.firstCell,
                                      shard.lastCell, attempts,
                                      "bisected"});
            auto halves = ShardPlanner::bisect(shard);
            halves.first.id = 2 * shard.id + plan_count;
            halves.second.id = 2 * shard.id + plan_count + 1;
            const auto now = std::chrono::steady_clock::now();
            pending.push_back({halves.first, 0, now});
            pending.push_back({halves.second, 0, now});
            return;
        }
        // A single cell that keeps killing workers: quarantine it.
        warn("fleet: quarantining poisoned cell " +
             std::to_string(shard.firstCell) + " as NaN");
        report->shards.push_back({shard.id, shard.firstCell,
                                  shard.lastCell, attempts,
                                  "quarantined"});
        report->quarantinedCells.push_back(shard.firstCell);
        merged->emplace(shard.firstCell,
                        std::numeric_limits<double>::quiet_NaN());
    };

    while (!pending.empty() || !running.empty()) {
        if (fleetSignal != 0) {
            // Children die with the handles; exit like SimRunner does.
            running.clear();
            std::exit(128 + static_cast<int>(fleetSignal));
        }

        // Launch: fill free slots with the lowest-cell ready shard
        // (deterministic pick order).
        const auto now = std::chrono::steady_clock::now();
        while (running.size() < budget) {
            std::size_t best = pending.size();
            for (std::size_t i = 0; i < pending.size(); ++i) {
                if (pending[i].readyAt > now)
                    continue;
                if (best == pending.size() ||
                    pending[i].shard.firstCell <
                        pending[best].shard.firstCell)
                    best = i;
            }
            if (best == pending.size())
                break;
            PendingShard next = pending[best];
            pending.erase(pending.begin() +
                          static_cast<std::ptrdiff_t>(best));
            const std::string fault =
                workerFaultArg(io::faultInjector().next("worker"));
            RunningWorker worker;
            worker.shard = next.shard;
            worker.attempts = next.attempts + 1;
            worker.lastBeatTime = now;
            const Status spawned = worker.handle.spawn(workerArgvTail(
                options, store.directory(), next.shard, fault));
            if (!spawned.isOk()) {
                handleFailure(next.shard, next.attempts + 1,
                              spawned.message().c_str());
                continue;
            }
            ++report->workersLaunched;
            running.push_back(std::move(worker));
        }

        // Reap / heartbeat / hang-detect every running worker.
        for (std::size_t i = 0; i < running.size();) {
            RunningWorker &worker = running[i];
            int wait_status = 0;
            if (worker.handle.poll(&wait_status)) {
                const StatusCode code = classifyExit(wait_status);
                if (code == StatusCode::kOk) {
                    ShardResult result;
                    const Status loaded = store.load(
                        worker.shard.firstCell, worker.shard.lastCell,
                        &result);
                    if (loaded.isOk()) {
                        for (const auto &[cell, value] : result.cells)
                            merged->emplace(cell, value);
                        report->salvage.files += result.salvage.files;
                        report->salvage.blocksQuarantined +=
                            result.salvage.blocksQuarantined;
                        report->salvage.recordsLost +=
                            result.salvage.recordsLost;
                        report->salvage.bytesSkipped +=
                            result.salvage.bytesSkipped;
                        // attempts=1 regardless of retried launches:
                        // the lineage records the result that merged,
                        // not the transient faults on the way there
                        // (those are transientRetries, stderr only).
                        report->shards.push_back(
                            {worker.shard.id, worker.shard.firstCell,
                             worker.shard.lastCell, 1, "ok"});
                    } else {
                        // Clean exit but unusable result file: treat
                        // as a failed attempt; a retry re-publishes
                        // over it.
                        handleFailure(worker.shard, worker.attempts,
                                      loaded.message().c_str());
                    }
                } else {
                    handleFailure(worker.shard, worker.attempts,
                                  statusCodeName(code));
                }
                running.erase(running.begin() +
                              static_cast<std::ptrdiff_t>(i));
                continue;
            }
            if (worker.handle.pollHeartbeat())
                worker.lastBeatTime = std::chrono::steady_clock::now();
            if (std::chrono::steady_clock::now() -
                    worker.lastBeatTime >
                hang_timeout) {
                warn("fleet: worker pid " +
                     std::to_string(worker.handle.pid()) +
                     " silent past --fleet-worker-timeout; killing");
                worker.handle.kill9();
                // SIGKILL is prompt; reap synchronously so the slot
                // frees this iteration.
                while (!worker.handle.poll(&wait_status)) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(1));
                }
                handleFailure(worker.shard, worker.attempts,
                              statusCodeName(StatusCode::kTimeout));
                running.erase(running.begin() +
                              static_cast<std::ptrdiff_t>(i));
                continue;
            }
            ++i;
        }

        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    (void)std::signal(SIGINT, previous_sigint);
    (void)std::signal(SIGTERM, previous_sigterm);
}

/**
 * Rebuild the deterministic lineage a fleet would have recorded for
 * @p shard given the set of poisoned (NaN) cells inside it: a clean
 * shard is "ok" in 1 attempt; a poisoned one exhausts the full
 * @p max_attempts budget and bisects (same split math, same
 * tree-derived child ids) until each poisoned cell is quarantined
 * alone. Mirrors handleFailure() in runWorkerFleet byte-for-byte so
 * the two modes sign identical manifests even for poisoned grids.
 */
void
recordInProcessLineage(const Shard &shard,
                       const std::vector<std::uint32_t> &nan_cells,
                       int max_attempts, std::uint64_t plan_count,
                       FleetReport *report)
{
    const bool poisoned = std::any_of(
        nan_cells.begin(), nan_cells.end(),
        [&shard](std::uint32_t cell) {
            return cell >= shard.firstCell && cell <= shard.lastCell;
        });
    if (!poisoned) {
        report->shards.push_back({shard.id, shard.firstCell,
                                  shard.lastCell, 1, "ok"});
        return;
    }
    report->retries += static_cast<std::uint64_t>(max_attempts - 1);
    if (shard.size() < 2) {
        report->shards.push_back({shard.id, shard.firstCell,
                                  shard.lastCell, max_attempts,
                                  "quarantined"});
        return;
    }
    ++report->bisections;
    report->shards.push_back({shard.id, shard.firstCell,
                              shard.lastCell, max_attempts,
                              "bisected"});
    auto halves = ShardPlanner::bisect(shard);
    halves.first.id = 2 * shard.id + plan_count;
    halves.second.id = 2 * shard.id + plan_count + 1;
    recordInProcessLineage(halves.first, nan_cells, max_attempts,
                           plan_count, report);
    recordInProcessLineage(halves.second, nan_cells, max_attempts,
                           plan_count, report);
}

/**
 * In-process reference mode: the same planner and evaluation, no
 * processes. Publishes per-shard results to the store (when one is
 * configured) so a later fleet run can resume off this one.
 */
void
runInProcess(const Options &options, const FleetGrid &grid,
             const ResultStore *store,
             std::map<std::uint32_t, double> *merged,
             FleetReport *report)
{
    SimRunner runner(options);
    const std::vector<Shard> planned = ShardPlanner::plan(
        missingCells(grid, *merged),
        static_cast<std::uint32_t>(
            options.getInt("fleet-shard-cells")));
    const int max_attempts =
        static_cast<int>(options.getInt("fleet-max-attempts"));
    for (const Shard &shard : planned) {
        ShardResult result;
        result.cells = evaluateCells(grid, runner, options,
                                     shard.firstCell, shard.lastCell,
                                     PoisonAction::kQuarantine);
        std::vector<std::uint32_t> nan_cells;
        for (const auto &[cell, value] : result.cells) {
            merged->emplace(cell, value);
            if (std::isnan(value)) {
                report->quarantinedCells.push_back(cell);
                nan_cells.push_back(cell);
            }
        }
        if (store != nullptr) {
            result.salvage = salvageRegistry().totals();
            const Status stored = store->store(
                shard.firstCell, shard.lastCell, result);
            if (!stored.isOk())
                warn("fleet: " + stored.message());
        }
        recordInProcessLineage(shard, nan_cells, max_attempts,
                               planned.size(), report);
    }
    report->salvage = salvageRegistry().totals();
    runner.reportStats();
}

} // namespace

FleetReport
runFleet(const Options &options, const FleetGrid &grid)
{
    FleetReport report;
    report.workerBudget = resolveWorkerBudget(options);
    const bool multi_process = report.workerBudget > 0;

    // Multi-process mode arms the injector here (no SimRunner in this
    // process); in-process mode leaves it to SimRunner's constructor.
    if (multi_process)
        io::configureFaultInjection(options.getString("fault-inject"));

    std::string store_dir = options.getString("result-store");
    bool private_store = false;
    if (store_dir.empty() && multi_process) {
        // Workers need *some* directory to publish through; a private
        // one, torn down at the end, keeps the no-store UX identical
        // to the in-process mode.
        std::error_code ec;
        store_dir = (std::filesystem::temp_directory_path(ec) /
                     ("vpsim-fleet-" + std::to_string(::getpid())))
                        .string();
        fatalIf(static_cast<bool>(ec),
                "cannot resolve a temporary result-store directory: " +
                    ec.message());
        private_store = true;
    }

    std::unique_ptr<ResultStore> store;
    if (!store_dir.empty()) {
        store = std::make_unique<ResultStore>(store_dir,
                                              grid.fleetHash());
        fatalIf(!store->status().isOk(), store->status().message());
    }

    std::map<std::uint32_t, double> merged;
    if (store) {
        if (options.getBool("fleet-resume")) {
            SalvageRegistry::Totals reused_salvage;
            const ResultStore::ScanReport scan =
                store->mergeAll(&merged, &reused_salvage);
            report.reusedCells = scan.cellsMerged;
            report.salvage = reused_salvage;
            if (scan.filesQuarantined > 0) {
                warn("fleet: quarantined " +
                     std::to_string(scan.filesQuarantined) +
                     " corrupt shard result file(s) during resume");
            }
        } else {
            // Fresh start: a stale store must not satisfy this sweep.
            (void)store->removeAll();
        }
    }

    if (multi_process) {
        runWorkerFleet(options, grid, *store, &merged, &report);
    } else {
        runInProcess(options, grid, store.get(), &merged, &report);
    }

    fatalIf(merged.size() != grid.cells(),
            "fleet finished with " + std::to_string(merged.size()) +
                " of " + std::to_string(grid.cells()) + " cells");
    fillReportCells(grid, merged, &report);
    std::sort(report.quarantinedCells.begin(),
              report.quarantinedCells.end());
    sortLineage(&report.shards);

    // Fold worker salvage into the process-global registry so any
    // caller consulting salvageRegistry() (stats parity) sees the
    // fleet-wide damage, not just this process's.
    if (multi_process)
        salvageRegistry().addTotals(report.salvage);

    if (private_store) {
        std::error_code ec;
        std::filesystem::remove_all(store_dir, ec);
    }
    return report;
}

void
reportFleetStats(const Options &options, const FleetReport &report)
{
    if (report.workerBudget > 0) {
        std::fprintf(
            stderr,
            "fleet: %llu worker launch(es) on %u slot(s), %llu "
            "transient retr%s, %llu lineage retr%s, %llu "
            "bisection(s), %zu quarantined cell(s), %llu reused "
            "cell(s)\n",
            static_cast<unsigned long long>(report.workersLaunched),
            report.workerBudget,
            static_cast<unsigned long long>(report.transientRetries),
            report.transientRetries == 1 ? "y" : "ies",
            static_cast<unsigned long long>(report.retries),
            report.retries == 1 ? "y" : "ies",
            static_cast<unsigned long long>(report.bisections),
            report.quarantinedCells.size(),
            static_cast<unsigned long long>(report.reusedCells));
        const SalvageRegistry::Totals &salvage = report.salvage;
        if (salvage.files > 0) {
            // Byte-for-byte the SimRunner salvage line: fleet --stats
            // output must match the in-process mode's.
            std::fprintf(
                stderr,
                "sim: salvage (--salvage-blocks): %llu damaged trace "
                "file(s), %llu block(s) quarantined, %llu record(s) "
                "lost, %llu byte(s) skipped\n",
                static_cast<unsigned long long>(salvage.files),
                static_cast<unsigned long long>(
                    salvage.blocksQuarantined),
                static_cast<unsigned long long>(salvage.recordsLost),
                static_cast<unsigned long long>(salvage.bytesSkipped));
        }
    }
    (void)options;
}

} // namespace fleet
} // namespace vpsim
