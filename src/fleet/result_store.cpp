#include "fleet/result_store.hpp"

#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/crc32.hpp"
#include "common/io.hpp"
#include "common/logging.hpp"

namespace vpsim
{
namespace fleet
{

namespace
{

constexpr char shardMagic[] = "vpsim-shard-result 1";

std::string
hex16(std::uint64_t value)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, value);
    return buffer;
}

std::uint64_t
doubleBits(double value)
{
    std::uint64_t bits = 0;
    std::memcpy(&bits, &value, sizeof(bits));
    return bits;
}

double
bitsToDouble(std::uint64_t bits)
{
    double value = 0.0;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
}

/** Split @p text into lines; a missing final newline is an error. */
bool
splitLines(const std::string &text, std::vector<std::string> *lines)
{
    std::string current;
    for (const char ch : text) {
        if (ch == '\n') {
            lines->push_back(current);
            current.clear();
        } else {
            current.push_back(ch);
        }
    }
    return current.empty();
}

bool
parseHexField(const std::string &text, std::uint64_t *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    *out = std::strtoull(text.c_str(), &end, 16);
    return end == text.c_str() + text.size();
}

bool
parseDecField(const std::string &text, std::uint64_t *out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    *out = std::strtoull(text.c_str(), &end, 10);
    return end == text.c_str() + text.size();
}

std::vector<std::string>
splitWords(const std::string &line)
{
    std::vector<std::string> words;
    std::string current;
    for (const char ch : line) {
        if (ch == ' ') {
            words.push_back(current);
            current.clear();
        } else {
            current.push_back(ch);
        }
    }
    words.push_back(current);
    return words;
}

} // namespace

ResultStore::ResultStore(std::string store_dir,
                         std::uint64_t fleet_hash)
    : dir(std::move(store_dir)), fleetHash(fleet_hash)
{
    fatalIf(dir.empty(), "result store directory must not be empty");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        creationStatus = Status::error(
            StatusCode::kIo, "cannot create result store directory " +
                                 dir + ": " + ec.message());
        return;
    }
    const std::string probe =
        dir + "/.probe.tmp." + std::to_string(::getpid());
    io::File file;
    Status probed = file.openForWrite(probe);
    if (probed.isOk())
        probed = file.writeAll("vpsim", 5);
    file.close();
    std::filesystem::remove(probe, ec);
    if (!probed.isOk()) {
        creationStatus = Status::error(
            probed.code(), "result store directory " + dir +
                               " is not writable: " + probed.message());
    }
}

std::string
ResultStore::pathFor(std::uint32_t first_cell,
                     std::uint32_t last_cell) const
{
    return dir + "/shard-" + hex16(fleetHash) + "-c" +
           std::to_string(first_cell) + "-c" +
           std::to_string(last_cell) + ".vpshard";
}

Status
ResultStore::store(std::uint32_t first_cell, std::uint32_t last_cell,
                   const ShardResult &result) const
{
    std::string body;
    body += shardMagic;
    body += '\n';
    body += "fleet " + hex16(fleetHash) + '\n';
    body += "cells " + std::to_string(result.cells.size()) + '\n';
    for (const auto &[index, value] : result.cells) {
        body += std::to_string(index) + ' ' +
                hex16(doubleBits(value)) + '\n';
    }
    body += "salvage " + std::to_string(result.salvage.files) + ' ' +
            std::to_string(result.salvage.blocksQuarantined) + ' ' +
            std::to_string(result.salvage.recordsLost) + ' ' +
            std::to_string(result.salvage.bytesSkipped) + '\n';
    char footer[24];
    std::snprintf(footer, sizeof(footer), "crc32 %08x\n",
                  crc32(body.data(), body.size()));
    body += footer;

    const std::string path = pathFor(first_cell, last_cell);
    const std::string temp =
        path + ".tmp." + std::to_string(::getpid());
    io::File file;
    Status written = file.openForWrite(temp);
    if (written.isOk())
        written = file.writeAll(body.data(), body.size());
    if (written.isOk())
        written = file.sync();
    file.close();
    if (written.isOk())
        written = io::renameFile(temp, path);
    if (!written.isOk()) {
        (void)io::removeFile(temp);
        return Status::wrap(written.code(),
                            "cannot publish shard result " + path,
                            written);
    }
    return Status::ok();
}

Status
ResultStore::parseFile(const std::string &path, ShardResult *out) const
{
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(path, ec);
    if (ec) {
        return Status::error(StatusCode::kIo, "cannot stat " + path +
                                                  ": " + ec.message());
    }
    std::string text(static_cast<std::size_t>(size), '\0');
    io::File file;
    Status read = file.openForRead(path);
    if (read.isOk() && !text.empty())
        read = file.readExact(text.data(), text.size());
    file.close();
    if (!read.isOk())
        return read;

    const auto corrupt = [&path](const std::string &why) {
        return Status::error(StatusCode::kCorrupt,
                             "corrupt shard result " + path + ": " +
                                 why);
    };

    std::vector<std::string> lines;
    if (!splitLines(text, &lines) || lines.size() < 4)
        return corrupt("truncated");

    // Footer first: nothing above it is trustworthy until the CRC
    // over those bytes checks out.
    const std::string &crc_line = lines.back();
    if (crc_line.rfind("crc32 ", 0) != 0)
        return corrupt("missing crc footer");
    std::uint64_t declared_crc = 0;
    if (!parseHexField(crc_line.substr(6), &declared_crc))
        return corrupt("bad crc footer");
    const std::size_t body_bytes = text.size() - crc_line.size() - 1;
    const std::uint32_t actual_crc = crc32(text.data(), body_bytes);
    if (actual_crc != static_cast<std::uint32_t>(declared_crc))
        return corrupt("crc mismatch");

    if (lines[0] != shardMagic)
        return corrupt("bad magic");
    std::uint64_t declared_hash = 0;
    if (lines[1].rfind("fleet ", 0) != 0 ||
        !parseHexField(lines[1].substr(6), &declared_hash))
        return corrupt("bad fleet line");
    if (declared_hash != fleetHash) {
        return corrupt("fleet hash " + hex16(declared_hash) +
                       " does not match " + hex16(fleetHash));
    }
    std::uint64_t cell_count = 0;
    if (lines[2].rfind("cells ", 0) != 0 ||
        !parseDecField(lines[2].substr(6), &cell_count))
        return corrupt("bad cell count line");
    if (lines.size() != cell_count + 5)
        return corrupt("line count does not match cell count");

    ShardResult result;
    result.cells.reserve(static_cast<std::size_t>(cell_count));
    std::uint64_t previous = 0;
    for (std::uint64_t i = 0; i < cell_count; ++i) {
        const std::vector<std::string> words =
            splitWords(lines[3 + i]);
        std::uint64_t index = 0;
        std::uint64_t bits = 0;
        if (words.size() != 2 || !parseDecField(words[0], &index) ||
            !parseHexField(words[1], &bits))
            return corrupt("bad cell line " + std::to_string(i));
        if (i > 0 && index <= previous)
            return corrupt("cell indices not strictly ascending");
        previous = index;
        result.cells.emplace_back(static_cast<std::uint32_t>(index),
                                  bitsToDouble(bits));
    }

    const std::string &salvage_line = lines[3 + cell_count];
    if (salvage_line.rfind("salvage ", 0) != 0)
        return corrupt("missing salvage line");
    const std::vector<std::string> fields =
        splitWords(salvage_line.substr(8));
    std::uint64_t files = 0;
    std::uint64_t blocks = 0;
    std::uint64_t lost = 0;
    std::uint64_t skipped = 0;
    if (fields.size() != 4 || !parseDecField(fields[0], &files) ||
        !parseDecField(fields[1], &blocks) ||
        !parseDecField(fields[2], &lost) ||
        !parseDecField(fields[3], &skipped))
        return corrupt("bad salvage line");
    result.salvage.files = files;
    result.salvage.blocksQuarantined = blocks;
    result.salvage.recordsLost = lost;
    result.salvage.bytesSkipped = skipped;

    *out = std::move(result);
    return Status::ok();
}

Status
ResultStore::load(std::uint32_t first_cell, std::uint32_t last_cell,
                  ShardResult *out) const
{
    panicIf(out == nullptr, "ResultStore::load needs an output");
    const std::string path = pathFor(first_cell, last_cell);
    Status parsed = parseFile(path, out);
    if (!parsed.isOk())
        return parsed;
    for (const auto &[index, value] : out->cells) {
        if (index < first_cell || index > last_cell) {
            return Status::error(
                StatusCode::kCorrupt,
                "corrupt shard result " + path + ": cell " +
                    std::to_string(index) + " outside range [" +
                    std::to_string(first_cell) + ", " +
                    std::to_string(last_cell) + "]");
        }
    }
    return Status::ok();
}

ResultStore::ScanReport
ResultStore::mergeAll(std::map<std::uint32_t, double> *cells,
                      SalvageRegistry::Totals *salvage) const
{
    panicIf(cells == nullptr || salvage == nullptr,
            "ResultStore::mergeAll needs outputs");
    ScanReport report;
    const std::string prefix = "shard-" + hex16(fleetHash) + "-";
    std::error_code ec;
    std::vector<std::filesystem::path> candidates;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (ec)
            break;
        if (!entry.is_regular_file(ec))
            continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind(prefix, 0) != 0 ||
            name.find(".vpshard") == std::string::npos ||
            name.find(".tmp.") != std::string::npos)
            continue;
        candidates.push_back(entry.path());
    }
    // Deterministic merge order (directory iteration order is not).
    std::sort(candidates.begin(), candidates.end());

    for (const std::filesystem::path &path : candidates) {
        ShardResult result;
        const Status parsed = parseFile(path.string(), &result);
        if (!parsed.isOk()) {
            const std::filesystem::path quarantine =
                path.parent_path() /
                (".corrupt-" + path.filename().string());
            std::filesystem::rename(path, quarantine, ec);
            if (ec)
                std::filesystem::remove(path, ec);
            warn("quarantined corrupt shard result " + path.string() +
                 ": " + parsed.message());
            ++report.filesQuarantined;
            continue;
        }
        for (const auto &[index, value] : result.cells) {
            if (cells->emplace(index, value).second)
                ++report.cellsMerged;
        }
        salvage->files += result.salvage.files;
        salvage->blocksQuarantined +=
            result.salvage.blocksQuarantined;
        salvage->recordsLost += result.salvage.recordsLost;
        salvage->bytesSkipped += result.salvage.bytesSkipped;
        ++report.filesMerged;
    }
    return report;
}

std::uint64_t
ResultStore::removeAll() const
{
    const std::string prefix = "shard-" + hex16(fleetHash) + "-";
    std::error_code ec;
    std::uint64_t removed = 0;
    std::vector<std::filesystem::path> victims;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (ec)
            break;
        if (!entry.is_regular_file(ec))
            continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind(prefix, 0) != 0)
            continue;
        victims.push_back(entry.path());
    }
    for (const std::filesystem::path &path : victims) {
        if (std::filesystem::remove(path, ec) && !ec)
            ++removed;
        ec.clear();
    }
    return removed;
}

} // namespace fleet
} // namespace vpsim
