#include "fleet/fleet_manifest.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "sim/run_manifest.hpp"

namespace vpsim
{
namespace fleet
{

namespace
{

constexpr char fleetManifestSchema[] = "vpsim-fleet-manifest 1";

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char ch : text) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", ch);
                out += buffer;
            } else {
                out += ch;
            }
        }
    }
    return out;
}

std::string
hex32(std::uint32_t value)
{
    char buffer[16];
    std::snprintf(buffer, sizeof(buffer), "%08x", value);
    return buffer;
}

std::string
hex16(std::uint64_t value)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "%016" PRIx64, value);
    return buffer;
}

std::string
joinCells(const std::vector<std::uint32_t> &cells)
{
    std::string out;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i > 0)
            out += ',';
        out += std::to_string(cells[i]);
    }
    return out;
}

/** Canonical one-line shard lineage: id:first:last:attempts:outcome. */
std::string
shardLine(const ShardOutcome &shard)
{
    return std::to_string(shard.id) + ':' +
           std::to_string(shard.firstCell) + ':' +
           std::to_string(shard.lastCell) + ':' +
           std::to_string(shard.attempts) + ':' + shard.outcome;
}

} // namespace

void
writeFleetManifest(const FleetGrid &grid, const FleetReport &report,
                   const std::string &csv_path)
{
    std::ifstream csv(csv_path, std::ios::binary);
    fatalIf(!csv, "cannot read back CSV " + csv_path +
                      " for its fleet manifest");
    std::vector<char> bytes{std::istreambuf_iterator<char>(csv),
                            std::istreambuf_iterator<char>()};
    fatalIf(csv.bad(), "error reading CSV " + csv_path);
    const std::uint32_t csv_crc = crc32(bytes.data(), bytes.size());

    // Canonical signing string: fixed field order, one key=value per
    // line, one line per shard. scripts/verify_manifest.py rebuilds
    // this byte-for-byte from the parsed JSON.
    std::ostringstream signing;
    signing << "vpsim-fleet-signing-v1\n"
            << "schema=" << fleetManifestSchema << '\n'
            << "gitDescribe=" << buildGitDescribe() << '\n'
            << "fleetHash=" << hex16(grid.fleetHash()) << '\n'
            << "rows=" << grid.rows() << '\n'
            << "cols=" << grid.cols() << '\n'
            << "cells=" << grid.cells() << '\n'
            << "retries=" << report.retries << '\n'
            << "bisections=" << report.bisections << '\n'
            << "reusedCells=" << report.reusedCells << '\n'
            << "quarantinedCells=" << joinCells(report.quarantinedCells)
            << '\n';
    for (const ShardOutcome &shard : report.shards)
        signing << "shard=" << shardLine(shard) << '\n';
    signing << "salvagedFiles=" << report.salvage.files << '\n'
            << "salvagedBlocks=" << report.salvage.blocksQuarantined
            << '\n'
            << "salvagedRecordsLost=" << report.salvage.recordsLost
            << '\n'
            << "fingerprint=" << grid.fingerprint() << '\n'
            << "csvFile=" << csv_path << '\n'
            << "csvBytes=" << bytes.size() << '\n'
            << "csvCrc32=" << hex32(csv_crc) << '\n';
    const std::string signed_body = signing.str();
    const std::uint32_t signature =
        crc32(signed_body.data(), signed_body.size());

    const std::string manifest_path =
        csv_path + ".fleet-manifest.json";
    std::ofstream out(manifest_path, std::ios::trunc);
    fatalIf(!out, "cannot write fleet manifest " + manifest_path);
    out << "{\n"
        << "  \"schema\": \"" << jsonEscape(fleetManifestSchema)
        << "\",\n"
        << "  \"gitDescribe\": \"" << jsonEscape(buildGitDescribe())
        << "\",\n"
        << "  \"fleetHash\": \"" << hex16(grid.fleetHash()) << "\",\n"
        << "  \"rows\": " << grid.rows() << ",\n"
        << "  \"cols\": " << grid.cols() << ",\n"
        << "  \"cells\": " << grid.cells() << ",\n"
        << "  \"retries\": " << report.retries << ",\n"
        << "  \"bisections\": " << report.bisections << ",\n"
        << "  \"reusedCells\": " << report.reusedCells << ",\n"
        << "  \"quarantinedCells\": [";
    for (std::size_t i = 0; i < report.quarantinedCells.size(); ++i) {
        if (i > 0)
            out << ", ";
        out << report.quarantinedCells[i];
    }
    out << "],\n"
        << "  \"shards\": [";
    for (std::size_t i = 0; i < report.shards.size(); ++i) {
        if (i > 0)
            out << ", ";
        out << '"' << jsonEscape(shardLine(report.shards[i])) << '"';
    }
    out << "],\n"
        << "  \"salvagedFiles\": " << report.salvage.files << ",\n"
        << "  \"salvagedBlocks\": " << report.salvage.blocksQuarantined
        << ",\n"
        << "  \"salvagedRecordsLost\": " << report.salvage.recordsLost
        << ",\n"
        << "  \"fingerprint\": \"" << jsonEscape(grid.fingerprint())
        << "\",\n"
        << "  \"csvFile\": \"" << jsonEscape(csv_path) << "\",\n"
        << "  \"csvBytes\": " << bytes.size() << ",\n"
        << "  \"csvCrc32\": \"" << hex32(csv_crc) << "\",\n"
        << "  \"signature\": \"crc32:" << hex32(signature) << "\"\n"
        << "}\n";
    out.flush();
    fatalIf(!out, "error writing fleet manifest " + manifest_path);
}

} // namespace fleet
} // namespace vpsim
