/**
 * @file
 * One fleet worker child process: spawn, monitor, classify its death.
 *
 * A worker is this very binary re-executed (via /proc/self/exe) with
 * `--fleet-worker 1 --fleet-cells <first>-<last>` appended, so worker
 * and supervisor can never disagree about code version or option
 * semantics. The child inherits a write end of a heartbeat pipe on a
 * fixed descriptor (fd 3, dup2'd in the forked child before exec, with
 * all other pipe ends closed by O_CLOEXEC), and the supervisor reads
 * progress frames from the other end to distinguish a *slow* worker
 * from a *hung* one.
 *
 * Exit classification is the supervisor's failure taxonomy: a worker
 * that dies reports *how* through its exit status, and the supervisor
 * maps that onto the repo-wide StatusCode classes to pick a recovery
 * (retry transient I/O, recompute corrupt results, bisect repeated
 * internal crashes down to the poisoned cell).
 */

#ifndef VPSIM_FLEET_WORKER_HANDLE_HPP
#define VPSIM_FLEET_WORKER_HANDLE_HPP

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.hpp"
#include "common/status.hpp"

namespace vpsim
{
namespace fleet
{

/** Exit codes a fleet worker uses to report its failure class. */
enum WorkerExitCode : int
{
    kWorkerExitOk = 0,
    kWorkerExitIo = 41,       ///< StatusCode::kIo (e.g. ENOSPC on store).
    kWorkerExitCorrupt = 42,  ///< StatusCode::kCorrupt.
    kWorkerExitTimeout = 44,  ///< StatusCode::kTimeout.
    kWorkerExitInternal = 45, ///< StatusCode::kInternal (model bug).
};

/**
 * Map a waitpid() status to the failure class it reports.
 *
 * Death by signal — SIGKILL, SIGSEGV, an abort() on a poisoned cell —
 * is kInternal: the worker never got to explain itself, and repeated
 * unexplained deaths are what bisection exists for. Unknown exit codes
 * are also kInternal (a worker that can't follow the protocol is not
 * to be trusted about anything else).
 */
StatusCode classifyExit(int wait_status);

/** Map a worker Status to the exit code that reports it. */
int exitCodeForStatus(StatusCode code);

/** A spawned worker child and its heartbeat channel. */
class WorkerHandle
{
  public:
    WorkerHandle() = default;
    ~WorkerHandle();

    WorkerHandle(const WorkerHandle &) = delete;
    WorkerHandle &operator=(const WorkerHandle &) = delete;
    WorkerHandle(WorkerHandle &&other) noexcept;
    WorkerHandle &operator=(WorkerHandle &&other) noexcept;

    /**
     * Fork+exec this binary with @p argv_tail appended to the program
     * name. A heartbeat pipe is created; the child gets the write end
     * on fd 3 (announced to it via `--fleet-heartbeat-fd 3`, which the
     * caller must include in @p argv_tail). kIo on pipe/fork failure.
     */
    [[nodiscard]] Status spawn(
        const std::vector<std::string> &argv_tail);

    bool running() const { return childPid > 0; }
    pid_t pid() const { return childPid; }

    /**
     * Non-blocking reap. Returns true when the child has exited, with
     * the raw waitpid status in @p wait_status; the handle then no
     * longer owns a process.
     */
    bool poll(int *wait_status);

    /**
     * Drain heartbeat frames; true when at least one arrived since the
     * last call. progress() then reports the newest value.
     */
    bool pollHeartbeat();

    std::uint64_t progress() const { return heartbeats.latest(); }

    /** SIGKILL the child (hung or superseded). Safe when not running. */
    void kill9();

  private:
    void reset();

    pid_t childPid = -1;
    HeartbeatReader heartbeats;
};

} // namespace fleet
} // namespace vpsim

#endif // VPSIM_FLEET_WORKER_HANDLE_HPP
