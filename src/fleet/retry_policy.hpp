/**
 * @file
 * Bounded retry with exponential backoff and deterministic jitter.
 *
 * The policy is pure arithmetic over (attempt, Rng) — no clock, no
 * sleeping — so the supervisor owns *when* to act (it turns a delay
 * into a steady_clock deadline) and tests can verify the cap, the
 * jitter bounds, and the give-up point without ever waiting. Jitter
 * comes from the project's seeded Rng, keeping retry schedules
 * reproducible run to run like everything else in the simulator.
 */

#ifndef VPSIM_FLEET_RETRY_POLICY_HPP
#define VPSIM_FLEET_RETRY_POLICY_HPP

#include <chrono>
#include <cstdint>

#include "common/rng.hpp"

namespace vpsim
{
namespace fleet
{

/** Backoff schedule for failed shards. */
struct RetryPolicy
{
    /** Attempts before a shard is bisected / its cell quarantined. */
    int maxAttempts = 3;
    /** Delay before attempt 2 (attempt 1 runs immediately). */
    std::chrono::milliseconds baseDelay{200};
    /** Ceiling the exponential curve saturates at. */
    std::chrono::milliseconds maxDelay{5000};
    /** Jitter as a fraction of the capped delay (0 disables). */
    double jitterFrac = 0.25;

    /** True once @p attempts failures mean this shard is done trying. */
    bool givesUpAfter(int attempts) const
    {
        return attempts >= maxAttempts;
    }

    /**
     * Delay before retrying after @p attempt failures (attempt >= 1):
     * min(maxDelay, baseDelay * 2^(attempt-1)), then +/- jitterFrac
     * drawn from @p rng. Never negative, never above
     * maxDelay * (1 + jitterFrac).
     */
    std::chrono::milliseconds delay(int attempt, Rng &rng) const
    {
        std::uint64_t ms =
            static_cast<std::uint64_t>(baseDelay.count());
        for (int i = 1; i < attempt; ++i) {
            ms *= 2;
            if (ms >= static_cast<std::uint64_t>(maxDelay.count()))
                break;
        }
        const auto cap = static_cast<std::uint64_t>(maxDelay.count());
        if (ms > cap)
            ms = cap;
        if (jitterFrac > 0.0) {
            const auto jitter = static_cast<std::uint64_t>(
                static_cast<double>(ms) * jitterFrac);
            if (jitter > 0) {
                // Uniform in [ms - jitter, ms + jitter].
                ms = ms - jitter + rng.nextBelow(2 * jitter + 1);
            }
        }
        return std::chrono::milliseconds(
            static_cast<std::int64_t>(ms));
    }
};

} // namespace fleet
} // namespace vpsim

#endif // VPSIM_FLEET_RETRY_POLICY_HPP
