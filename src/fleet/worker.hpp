/**
 * @file
 * Cell evaluation and the fleet worker entry point.
 *
 * evaluateCells() is the one function that turns a cell index into a
 * number — worker processes and the supervisor's in-process reference
 * mode both call it, which is what makes "fleet output is byte-identical
 * to single-process output" a structural property instead of a test
 * hope. runFleetWorker() wraps it in the worker process protocol:
 * heartbeats on the inherited pipe, a result file published to the
 * shared store, and an exit code that reports the failure class
 * (worker_handle.hpp) when anything goes wrong.
 */

#ifndef VPSIM_FLEET_WORKER_HPP
#define VPSIM_FLEET_WORKER_HPP

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/options.hpp"
#include "fleet/grid.hpp"
#include "sim/sim_runner.hpp"

namespace vpsim
{
namespace fleet
{

/** What to do when evaluation reaches the --poison-cell index. */
enum class PoisonAction
{
    /** Crash (std::abort) — worker mode, so the supervisor sees an
     *  unexplained death and must bisect its way to this cell. */
    kCrash,
    /** Record NaN — in-process reference mode, matching the NaN the
     *  supervisor's bisection quarantine converges to. */
    kQuarantine,
};

/**
 * Evaluate global cells [first, last] of @p grid: capture (or load from
 * the runner's trace cache) each touched workload's trace, then compute
 * `idealVpSpeedup(trace, column config) - 1.0` per cell — the exact
 * convention the figure benches use.
 *
 * @param after_cell Invoked after each finished cell with the count of
 *        cells completed so far (monotonic; heartbeat hook). May be
 *        empty.
 * @return (cell index, value) pairs in ascending index order.
 */
std::vector<std::pair<std::uint32_t, double>> evaluateCells(
    const FleetGrid &grid, SimRunner &runner, const Options &options,
    std::uint32_t first_cell, std::uint32_t last_cell,
    PoisonAction poison_action,
    const std::function<void(std::uint64_t)> &after_cell = {});

/**
 * Fleet worker main: evaluate the --fleet-cells range, publish the
 * result (plus this process's salvage totals) to the --result-store,
 * heartbeat on --fleet-heartbeat-fd throughout, and apply any
 * supervisor-imposed --fleet-fault after the first completed cell.
 *
 * @return The process exit code (WorkerExitCode).
 */
int runFleetWorker(const Options &options);

} // namespace fleet
} // namespace vpsim

#endif // VPSIM_FLEET_WORKER_HPP
