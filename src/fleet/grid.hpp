/**
 * @file
 * The fleet's experiment grid: the full cross-product the paper's
 * figures sample slices of.
 *
 * A FleetGrid is (workload × predictor × table size × window × fetch
 * rate × misprediction penalty): one row per workload, one column per
 * machine configuration, cells indexed row-major by a single global
 * cell index. Every other fleet component speaks cell indices — the
 * planner shards them, workers evaluate them, the result store keys
 * them — so the grid is the one place that knows what a cell *means*
 * (an ideal-machine VP speedup at that configuration, stored as
 * speedup − 1.0, the same convention the ablation benches use).
 *
 * The grid also owns the fleet's identity: fleetHash() hashes the
 * result-defining option fingerprint (axes, workloads, trace length,
 * seed — not execution knobs like worker count or retry limits), and
 * every shard result file carries it, so a resumed fleet can never
 * merge cells computed under a different experiment definition.
 */

#ifndef VPSIM_FLEET_GRID_HPP
#define VPSIM_FLEET_GRID_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "core/ideal_machine.hpp"

namespace vpsim
{
namespace fleet
{

/**
 * Declare every option a fleet binary understands: the standard
 * experiment options (declareStandardOptions), the grid axes, and the
 * fleet execution knobs. @p defaults overrides per-option default
 * values (bench/fleet_soak ships soak-sized axes this way).
 */
void declareFleetOptions(
    Options &options,
    const std::map<std::string, std::string> &defaults = {});

/**
 * Option names excluded from the fleet fingerprint: everything that
 * changes how the sweep executes but not what any cell computes.
 * Worker count, shard size, retry policy, stores and caches are all
 * here — a 1-worker and a 16-worker fleet of the same experiment share
 * one fingerprint, one fleetHash, and one result store namespace.
 */
const std::vector<std::string> &fleetFingerprintExclusions();

/** The dense experiment grid derived from parsed fleet options. */
class FleetGrid
{
  public:
    explicit FleetGrid(const Options &options);

    std::size_t rows() const { return workloadNames.size(); }
    std::size_t cols() const { return columns.size(); }
    std::uint32_t cells() const
    {
        return static_cast<std::uint32_t>(rows() * cols());
    }

    /** Workload (row) names, in reporting order. */
    const std::vector<std::string> &workloads() const
    {
        return workloadNames;
    }

    /** Human-readable column label, e.g. "stride/t0/w40/bw8/p1". */
    const std::string &columnLabel(std::size_t col) const
    {
        return columns[col].label;
    }

    /** Machine configuration of column @p col. */
    const IdealMachineConfig &columnConfig(std::size_t col) const
    {
        return columns[col].config;
    }

    std::size_t rowOf(std::uint32_t cell) const
    {
        return cell / cols();
    }
    std::size_t colOf(std::uint32_t cell) const
    {
        return cell % cols();
    }

    /** Result-defining fingerprint (axes + workloads + trace knobs). */
    const std::string &fingerprint() const { return fleetFingerprint; }

    /** FNV-1a of fingerprint(): the result store / manifest identity. */
    std::uint64_t fleetHash() const { return fingerprintHash; }

  private:
    struct Column
    {
        std::string label;
        IdealMachineConfig config;
    };

    std::vector<std::string> workloadNames;
    std::vector<Column> columns;
    std::string fleetFingerprint;
    std::uint64_t fingerprintHash = 0;
};

} // namespace fleet
} // namespace vpsim

#endif // VPSIM_FLEET_GRID_HPP
