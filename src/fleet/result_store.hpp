/**
 * @file
 * Content-addressed store of finished shard results.
 *
 * Each fleet worker that completes its shard publishes one small text
 * file — the shard's cell values plus the worker's salvage totals —
 * named by the fleet hash and the shard's cell range, written through
 * the fault-injectable io layer to a temporary and renamed into place
 * (the same torn-write-proof publish protocol the trace cache uses).
 * A CRC-32 footer covers every byte above it, so a supervisor never
 * merges a truncated or bit-flipped file: corrupt files are quarantined
 * to `.corrupt-*` for post-mortem and their cells simply recomputed.
 *
 * Resume: a restarted supervisor scans the directory, merges every
 * intact file carrying its fleet hash — regardless of how shard
 * boundaries were drawn when the file was written — and plans new
 * shards only over the cells still missing. Killing a supervisor with
 * `kill -9` therefore costs at most the shards that were in flight.
 */

#ifndef VPSIM_FLEET_RESULT_STORE_HPP
#define VPSIM_FLEET_RESULT_STORE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "trace/trace_v3.hpp"

namespace vpsim
{
namespace fleet
{

/** One finished shard: its cells and the worker's salvage damage. */
struct ShardResult
{
    /** (global cell index, value) pairs in ascending index order. */
    std::vector<std::pair<std::uint32_t, double>> cells;
    /** The producing process's salvage totals (merged by the
     *  supervisor into the global registry). */
    SalvageRegistry::Totals salvage;
};

/** A directory of per-shard result files for one fleet. */
class ResultStore
{
  public:
    /**
     * @param dir Store directory; created (with parents) if missing.
     *        Failure is recorded in status(), not fatal.
     * @param fleet_hash The owning fleet's identity; files from other
     *        fleets sharing the directory are ignored.
     */
    ResultStore(std::string dir, std::uint64_t fleet_hash);

    /** ok() when the directory exists and is writable. */
    const Status &status() const { return creationStatus; }

    const std::string &directory() const { return dir; }

    /** The file a result for cells [first, last] is published under. */
    std::string pathFor(std::uint32_t first_cell,
                        std::uint32_t last_cell) const;

    /**
     * Publish @p result for cells [first, last]: serialize with a
     * CRC-32 footer to a temporary, fsync, rename into place.
     */
    [[nodiscard]] Status store(std::uint32_t first_cell,
                               std::uint32_t last_cell,
                               const ShardResult &result) const;

    /**
     * Strict-parse the result file for cells [first, last]. kCorrupt
     * on any framing, checksum, hash or count anomaly; kIo when the
     * file cannot be read. The file is not quarantined here — the
     * caller decides (the supervisor quarantines and recomputes).
     */
    [[nodiscard]] Status load(std::uint32_t first_cell,
                              std::uint32_t last_cell,
                              ShardResult *out) const;

    /** Outcome of a directory scan. */
    struct ScanReport
    {
        std::uint64_t filesMerged = 0;
        std::uint64_t cellsMerged = 0;
        std::uint64_t filesQuarantined = 0;
    };

    /**
     * Merge every intact result file of this fleet into @p cells
     * (later files never overwrite earlier cells — shard files of one
     * fleet agree by construction) and fold their salvage totals into
     * @p salvage. Corrupt files are quarantined to `.corrupt-*`.
     */
    ScanReport mergeAll(std::map<std::uint32_t, double> *cells,
                        SalvageRegistry::Totals *salvage) const;

    /**
     * Delete every result file of this fleet (fresh-start mode: a
     * stale store must not silently satisfy a sweep the user asked to
     * recompute).
     */
    std::uint64_t removeAll() const;

  private:
    [[nodiscard]] Status parseFile(const std::string &path,
                                   ShardResult *out) const;

    std::string dir;
    std::uint64_t fleetHash = 0;
    Status creationStatus = Status::ok();
};

} // namespace fleet
} // namespace vpsim

#endif // VPSIM_FLEET_RESULT_STORE_HPP
