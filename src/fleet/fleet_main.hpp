/**
 * @file
 * Shared main() body for fleet binaries.
 *
 * bench/fleet_sweep.cpp and bench/fleet_soak.cpp are thin wrappers
 * around fleetMain(): declare options (with per-binary default
 * overrides), parse, then either run as a worker (--fleet-worker 1,
 * the re-exec'd child path) or drive the whole sweep as supervisor and
 * render the merged table / CSV / signed fleet manifest. Keeping the
 * dispatch in one function guarantees the supervisor's
 * `/proc/self/exe` re-exec lands in a binary that understands the
 * worker protocol, whichever fleet binary it is.
 */

#ifndef VPSIM_FLEET_FLEET_MAIN_HPP
#define VPSIM_FLEET_FLEET_MAIN_HPP

#include <map>
#include <string>

namespace vpsim
{
namespace fleet
{

/**
 * Full fleet binary entry point; returns the process exit code.
 *
 * @param description --help banner for this binary.
 * @param defaults Per-binary option default overrides (soak grids).
 */
int fleetMain(int argc, const char *const *argv,
              const std::string &description,
              const std::map<std::string, std::string> &defaults = {});

} // namespace fleet
} // namespace vpsim

#endif // VPSIM_FLEET_FLEET_MAIN_HPP
