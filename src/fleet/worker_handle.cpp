#include "fleet/worker_handle.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.hpp"

namespace vpsim
{
namespace fleet
{

namespace
{

/** The descriptor the child finds its heartbeat pipe on after exec. */
constexpr int kHeartbeatChildFd = 3;

} // namespace

StatusCode
classifyExit(int wait_status)
{
    if (WIFSIGNALED(wait_status))
        return StatusCode::kInternal;
    if (!WIFEXITED(wait_status))
        return StatusCode::kInternal;
    switch (WEXITSTATUS(wait_status)) {
      case kWorkerExitOk: return StatusCode::kOk;
      case kWorkerExitIo: return StatusCode::kIo;
      case kWorkerExitCorrupt: return StatusCode::kCorrupt;
      case kWorkerExitTimeout: return StatusCode::kTimeout;
      // Explicit, not via default: the default arm is for codes no
      // enumerator declares (a crashed or foreign child), and the
      // taxonomy checker holds every declared code to an explicit
      // classification.
      case kWorkerExitInternal: return StatusCode::kInternal;
      default: return StatusCode::kInternal;
    }
}

int
exitCodeForStatus(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return kWorkerExitOk;
      case StatusCode::kIo: return kWorkerExitIo;
      case StatusCode::kCorrupt: return kWorkerExitCorrupt;
      case StatusCode::kTimeout: return kWorkerExitTimeout;
      case StatusCode::kCanceled:
      case StatusCode::kInternal: return kWorkerExitInternal;
    }
    return kWorkerExitInternal;
}

WorkerHandle::~WorkerHandle()
{
    // A destructed handle must not leak a live child: kill and reap so
    // a supervisor unwinding on error leaves no orphans behind.
    kill9();
    if (childPid > 0) {
        int ignored = 0;
        (void)::waitpid(childPid, &ignored, 0);
    }
    reset();
}

WorkerHandle::WorkerHandle(WorkerHandle &&other) noexcept
    : childPid(other.childPid),
      heartbeats(std::move(other.heartbeats))
{
    other.childPid = -1;
}

WorkerHandle &
WorkerHandle::operator=(WorkerHandle &&other) noexcept
{
    if (this != &other) {
        kill9();
        if (childPid > 0) {
            int ignored = 0;
            (void)::waitpid(childPid, &ignored, 0);
        }
        reset();
        childPid = other.childPid;
        heartbeats = std::move(other.heartbeats);
        other.childPid = -1;
    }
    return *this;
}

Status
WorkerHandle::spawn(const std::vector<std::string> &argv_tail)
{
    panicIf(running(), "WorkerHandle::spawn while a child is running");

    int fds[2] = {-1, -1};
    // O_CLOEXEC on both ends: a later sibling's exec must not inherit
    // this pipe, or the reader would never see EOF/EPIPE semantics and
    // descriptors would leak across the whole fleet. The child re-opens
    // its write end explicitly via dup2 (which clears CLOEXEC on the
    // duplicate).
    if (::pipe2(fds, O_CLOEXEC) != 0) {
        return Status::error(StatusCode::kIo,
                             std::string("pipe2 failed: ") +
                                 std::strerror(errno));
    }

    std::vector<std::string> argv_storage;
    argv_storage.reserve(argv_tail.size() + 1);
    argv_storage.push_back("/proc/self/exe");
    for (const std::string &arg : argv_tail)
        argv_storage.push_back(arg);
    std::vector<char *> argv;
    argv.reserve(argv_storage.size() + 1);
    for (std::string &arg : argv_storage)
        argv.push_back(arg.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        const int fork_errno = errno;
        ::close(fds[0]);
        ::close(fds[1]);
        return Status::error(StatusCode::kIo,
                             std::string("fork failed: ") +
                                 std::strerror(fork_errno));
    }
    if (pid == 0) {
        // Child: only async-signal-safe calls until exec.
        if (::dup2(fds[1], kHeartbeatChildFd) < 0)
            ::_exit(kWorkerExitInternal);
        ::execv("/proc/self/exe", argv.data());
        ::_exit(kWorkerExitInternal);
    }

    ::close(fds[1]);
    childPid = pid;
    heartbeats.attach(fds[0]);
    return Status::ok();
}

bool
WorkerHandle::poll(int *wait_status)
{
    panicIf(wait_status == nullptr, "WorkerHandle::poll needs output");
    if (childPid <= 0)
        return false;
    const pid_t reaped = ::waitpid(childPid, wait_status, WNOHANG);
    if (reaped != childPid)
        return false;
    // Final heartbeat drain: frames written just before death still
    // count as progress for hang accounting.
    (void)heartbeats.poll();
    childPid = -1;
    return true;
}

bool
WorkerHandle::pollHeartbeat()
{
    return heartbeats.poll();
}

void
WorkerHandle::kill9()
{
    if (childPid > 0)
        (void)::kill(childPid, SIGKILL);
}

void
WorkerHandle::reset()
{
    heartbeats.close();
    childPid = -1;
}

} // namespace fleet
} // namespace vpsim
