#include "common/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/logging.hpp"

namespace vpsim
{

void
Options::declare(const std::string &name, const std::string &default_value,
                 const std::string &help)
{
    decls[name] = {default_value, help};
}

std::string
Options::usage(const std::string &program_description) const
{
    std::ostringstream oss;
    oss << programName << " - " << program_description << "\n\noptions:\n";
    for (const auto &[name, decl] : decls) {
        oss << "  --" << name << " <value>  " << decl.help
            << " (default: " << decl.defaultValue << ")\n";
    }
    return oss.str();
}

void
Options::parse(int argc, const char *const *argv,
               const std::string &program_description)
{
    programName = argc > 0 ? argv[0] : "program";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::fputs(usage(program_description).c_str(), stdout);
            std::exit(0);
        }
        fatalIf(arg.size() < 3 || arg.substr(0, 2) != "--",
                "unexpected argument '" + arg + "' (try --help)");
        arg = arg.substr(2);

        std::string name;
        std::string value;
        const auto eq = arg.find('=');
        if (eq != std::string::npos) {
            name = arg.substr(0, eq);
            value = arg.substr(eq + 1);
        } else {
            name = arg;
            fatalIf(i + 1 >= argc,
                    "option --" + name + " is missing a value");
            value = argv[++i];
        }
        fatalIf(decls.find(name) == decls.end(),
                "unknown option --" + name + " (try --help)");
        values[name] = value;
    }

    for (const auto &rule : validators) {
        const std::string problem = rule(*this);
        fatalIf(!problem.empty(), problem);
    }
}

void
Options::addValidator(std::function<std::string(const Options &)> rule)
{
    validators.push_back(std::move(rule));
}

bool
Options::provided(const std::string &name) const
{
    return values.find(name) != values.end();
}

std::string
Options::getString(const std::string &name) const
{
    const auto it = values.find(name);
    if (it != values.end())
        return it->second;
    const auto decl = decls.find(name);
    panicIf(decl == decls.end(), "undeclared option queried: " + name);
    return decl->second.defaultValue;
}

std::int64_t
Options::getInt(const std::string &name) const
{
    const std::string text = getString(name);
    char *end = nullptr;
    const long long parsed = std::strtoll(text.c_str(), &end, 0);
    fatalIf(end == text.c_str() || *end != '\0',
            "option --" + name + " expects an integer, got '" + text + "'");
    return parsed;
}

double
Options::getDouble(const std::string &name) const
{
    const std::string text = getString(name);
    char *end = nullptr;
    const double parsed = std::strtod(text.c_str(), &end);
    fatalIf(end == text.c_str() || *end != '\0',
            "option --" + name + " expects a number, got '" + text + "'");
    return parsed;
}

bool
Options::getBool(const std::string &name) const
{
    const std::string text = getString(name);
    if (text == "1" || text == "true" || text == "yes" || text == "on")
        return true;
    if (text == "0" || text == "false" || text == "no" || text == "off")
        return false;
    fatal("option --" + name + " expects a boolean, got '" + text + "'");
}

std::string
Options::fingerprint(const std::vector<std::string> &exclude) const
{
    std::string out;
    for (const auto &[name, decl] : decls) {
        bool skip = false;
        for (const std::string &excluded : exclude)
            skip = skip || excluded == name;
        if (skip)
            continue;
        out += name + "=" + getString(name) + ";";
    }
    return out;
}

std::vector<std::pair<std::string, std::string>>
Options::items() const
{
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(decls.size());
    for (const auto &[name, decl] : decls)
        out.emplace_back(name, getString(name));
    return out;
}

std::vector<std::string>
Options::getList(const std::string &name) const
{
    const std::string text = getString(name);
    std::vector<std::string> items;
    std::string current;
    for (const char ch : text) {
        if (ch == ',') {
            if (!current.empty())
                items.push_back(current);
            current.clear();
        } else {
            current.push_back(ch);
        }
    }
    if (!current.empty())
        items.push_back(current);
    return items;
}

} // namespace vpsim
