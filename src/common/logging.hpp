/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal() is for user errors (bad configuration, malformed input): it prints
 * the message and exits with status 1. panic() is for internal invariant
 * violations (simulator bugs): it prints the message and aborts.
 */

#ifndef VPSIM_COMMON_LOGGING_HPP
#define VPSIM_COMMON_LOGGING_HPP

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace vpsim
{

/**
 * Receives each complete, prefixed log line ("warn: ...").
 *
 * Sinks run under the logging mutex so concurrent workers' lines never
 * interleave; a sink must therefore not log (self-deadlock) and should
 * return quickly.
 */
using LogSink = std::function<void(std::string_view line)>;

/**
 * Replace the process log sink (empty function restores stderr).
 *
 * @return The previous sink (empty when stderr was active), so tests
 *         can capture warnings and restore the old sink afterwards.
 */
LogSink setLogSink(LogSink sink);

/** Print "fatal: <message>" to stderr and exit(1). For user errors. */
[[noreturn]] void fatal(const std::string &message);

/** Print "panic: <message>" to stderr and abort(). For simulator bugs. */
[[noreturn]] void panic(const std::string &message);

/** Print "warn: <message>" to stderr and continue. */
void warn(const std::string &message);

/** Print "info: <message>" to stderr and continue. */
void inform(const std::string &message);

/**
 * Check an internal invariant; panics with location info when violated.
 *
 * Unlike assert(), the check is always compiled in: simulator results must
 * not silently change between debug and release builds.
 */
inline void
panicIf(bool condition, std::string_view message,
        const char *file = __builtin_FILE(), int line = __builtin_LINE())
{
    if (condition) {
        std::ostringstream oss;
        oss << message << " (" << file << ":" << line << ")";
        panic(oss.str());
    }
}

/** Check a user-facing precondition; fatal()s when violated. */
inline void
fatalIf(bool condition, std::string_view message)
{
    if (condition)
        fatal(std::string(message));
}

} // namespace vpsim

#endif // VPSIM_COMMON_LOGGING_HPP
