#include "common/resource_usage.hpp"

#include <cstdio>

#include <sys/resource.h>
#include <unistd.h>

namespace vpsim
{

std::size_t
RssSampler::currentRssBytes()
{
    // /proc/self/statm: "size resident shared ..." in pages.
    std::FILE *statm = std::fopen("/proc/self/statm", "r");
    if (statm == nullptr)
        return 0;
    unsigned long long size_pages = 0;
    unsigned long long resident_pages = 0;
    const int parsed =
        std::fscanf(statm, "%llu %llu", &size_pages, &resident_pages);
    std::fclose(statm);
    if (parsed != 2)
        return 0;
    const long page = ::sysconf(_SC_PAGESIZE);
    return static_cast<std::size_t>(resident_pages) *
           static_cast<std::size_t>(page > 0 ? page : 4096);
}

std::size_t
RssSampler::processPeakRssBytes()
{
    struct rusage usage
    {};
    if (::getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    // ru_maxrss is kilobytes on Linux.
    return static_cast<std::size_t>(usage.ru_maxrss) * 1024;
}

RssSampler::RssSampler(std::chrono::milliseconds period)
    : samplePeriod(period), worker([this] { samplerLoop(); })
{
}

RssSampler::~RssSampler()
{
    {
        MutexLock lock(mutex);
        stopRequested = true;
    }
    wakeup.notify_one();
    worker.join();
}

void
RssSampler::beginPhase()
{
    const std::size_t now = currentRssBytes();
    MutexLock lock(mutex);
    peak = now;
}

std::size_t
RssSampler::peakBytes() const
{
    MutexLock lock(mutex);
    return peak;
}

void
RssSampler::samplerLoop()
{
    while (true) {
        // Sample outside the lock: the read walks procfs and must not
        // stall a caller's beginPhase()/peakBytes().
        const std::size_t now = currentRssBytes();
        MutexLock lock(mutex);
        if (now > peak)
            peak = now;
        if (stopRequested)
            return;
        wakeup.wait_for(lock.native(), samplePeriod);
        if (stopRequested)
            return;
    }
}

} // namespace vpsim
