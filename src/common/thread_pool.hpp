/**
 * @file
 * Work-stealing thread pool for the experiment runtime.
 *
 * Simulation points in a figure sweep are pure functions of immutable
 * traces, so they parallelize trivially; what the pool provides is the
 * scheduling: one deque per worker, round-robin submission, owners pop
 * their own deque FIFO and idle workers steal from the back of their
 * peers' deques. Tasks may throw — the first exception is captured and
 * rethrown from wait(), after every queued task has drained.
 *
 * A single-threaded pool (threads == 1) executes tasks in exact
 * submission order, which keeps `--jobs 1` runs trivially serial.
 */

#ifndef VPSIM_COMMON_THREAD_POOL_HPP
#define VPSIM_COMMON_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.hpp"

namespace vpsim
{

/** Fixed-size pool executing void() tasks with work stealing. */
class ThreadPool
{
  public:
    /** One schedulable unit of work. */
    using Task = std::function<void()>;

    /** Hardware concurrency, clamped to at least 1. */
    static unsigned defaultThreadCount();

    /**
     * Start the workers.
     *
     * @param threads Worker count; 0 means defaultThreadCount().
     */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains outstanding tasks (exceptions discarded), then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(threads.size());
    }

    /** Enqueue @p task; returns immediately. */
    void submit(Task task);

    /**
     * Block until every submitted task has finished.
     *
     * If any task threw, the first captured exception is rethrown here
     * (subsequent tasks still ran to completion first).
     */
    void wait();

  private:
    /** Per-worker deque; owner pops the front, thieves take the back. */
    struct Worker
    {
        Mutex mutex;
        std::deque<Task> queue GUARDED_BY(mutex);
    };

    void workerLoop(std::size_t index);
    bool tryRun(std::size_t index);

    std::vector<std::unique_ptr<Worker>> workers;
    std::vector<std::thread> threads;

    Mutex poolMutex;
    std::condition_variable workAvailable;
    std::condition_variable allDone;
    /** Tasks submitted but not yet finished (queued or running). */
    std::size_t pending GUARDED_BY(poolMutex) = 0;
    /** Tasks sitting in some queue, not yet claimed by a worker. */
    std::size_t queued GUARDED_BY(poolMutex) = 0;
    std::size_t nextWorker GUARDED_BY(poolMutex) = 0;
    bool stopping GUARDED_BY(poolMutex) = false;
    std::exception_ptr firstError GUARDED_BY(poolMutex);
};

} // namespace vpsim

#endif // VPSIM_COMMON_THREAD_POOL_HPP
