#include "common/table_printer.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace vpsim
{

TablePrinter::TablePrinter(std::string table_title,
                           std::vector<std::string> column_names)
    : title(std::move(table_title)),
      columns(std::move(column_names))
{
    fatalIf(columns.empty(), "TablePrinter needs at least one column");
}

void
TablePrinter::addRow(const std::vector<std::string> &cells)
{
    panicIf(cells.size() != columns.size(),
            "TablePrinter row has wrong number of cells");
    rows.push_back({false, cells});
}

void
TablePrinter::addSeparator()
{
    rows.push_back({true, {}});
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(columns.size());
    for (std::size_t c = 0; c < columns.size(); ++c)
        widths[c] = columns[c].size();
    for (const auto &row : rows) {
        if (row.separator)
            continue;
        for (std::size_t c = 0; c < row.cells.size(); ++c)
            widths[c] = std::max(widths[c], row.cells[c].size());
    }

    const auto render_line = [&](const std::vector<std::string> &cells) {
        std::ostringstream line;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            // setw takes an int; column widths are bounded by cell
            // text lengths, far below INT_MAX.
            const int width = static_cast<int>(widths[c]);
            if (c == 0)
                line << std::left << std::setw(width) << cells[c];
            else
                line << "  " << std::right << std::setw(width)
                     << cells[c];
        }
        return line.str();
    };

    std::size_t line_width = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        line_width += widths[c] + (c == 0 ? 0 : 2);

    std::ostringstream oss;
    if (!title.empty())
        oss << title << "\n";
    oss << std::string(line_width, '=') << "\n";
    oss << render_line(columns) << "\n";
    oss << std::string(line_width, '-') << "\n";
    for (const auto &row : rows) {
        if (row.separator)
            oss << std::string(line_width, '-') << "\n";
        else
            oss << render_line(row.cells) << "\n";
    }
    oss << std::string(line_width, '=') << "\n";
    return oss.str();
}

std::string
TablePrinter::percentCell(double fraction, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << fraction * 100.0
        << "%";
    return oss.str();
}

std::string
TablePrinter::numberCell(double value, int decimals)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(decimals) << value;
    return oss.str();
}

} // namespace vpsim
