/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**).
 *
 * The workload generators need reproducible randomness that is identical
 * across platforms and standard-library versions, so we do not use
 * std::mt19937 / std::uniform_int_distribution (whose outputs are not
 * guaranteed to be portable for all distributions).
 */

#ifndef VPSIM_COMMON_RNG_HPP
#define VPSIM_COMMON_RNG_HPP

#include <cstdint>

namespace vpsim
{

/** xoshiro256** by Blackman & Vigna; public-domain algorithm. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding, as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound), bound > 0. Uses rejection sampling. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % bound);
        std::uint64_t v = next();
        while (v >= limit)
            v = next();
        return v % bound;
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::uint64_t
    nextRange(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + nextBelow(hi - lo + 1);
    }

    /** Bernoulli draw: true with probability numer/denom. */
    bool
    nextChance(std::uint64_t numer, std::uint64_t denom)
    {
        return nextBelow(denom) < numer;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace vpsim

#endif // VPSIM_COMMON_RNG_HPP
