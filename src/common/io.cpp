#include "common/io.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "common/logging.hpp"

namespace vpsim
{
namespace io
{

namespace
{

FaultKind
faultKindFromString(const std::string &text)
{
    if (text == "eio") return FaultKind::Eio;
    if (text == "enospc") return FaultKind::Enospc;
    if (text == "torn") return FaultKind::Torn;
    if (text == "sigint") return FaultKind::Sigint;
    if (text == "throw") return FaultKind::Throw;
    if (text == "mmap-fail") return FaultKind::MmapFail;
    if (text == "block-crc") return FaultKind::BlockCrc;
    if (text == "enospc-capture") return FaultKind::EnospcCapture;
    if (text == "kill9") return FaultKind::Kill9;
    if (text == "hang") return FaultKind::Hang;
    fatal("unknown fault kind '" + text +
          "' (expected eio/enospc/torn/sigint/throw/mmap-fail/"
          "block-crc/enospc-capture/kill9/hang)");
}

bool
isKnownOp(const std::string &op)
{
    return op == "open" || op == "read" || op == "write" ||
           op == "flush" || op == "rename" || op == "remove" ||
           op == "job" || op == "mmap" || op == "block" ||
           op == "capture" || op == "worker";
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> parts;
    std::string current;
    for (const char ch : text) {
        if (ch == sep) {
            parts.push_back(current);
            current.clear();
        } else {
            current.push_back(ch);
        }
    }
    parts.push_back(current);
    return parts;
}

/** The errno an injected fault simulates, as message detail. */
std::string
injectedErrnoDetail(FaultKind kind)
{
    const int err = (kind == FaultKind::Enospc ||
                     kind == FaultKind::EnospcCapture)
                        ? ENOSPC
                        : EIO;
    return std::string(std::strerror(err)) + " (injected)";
}

std::string
errnoDetail()
{
    return std::strerror(errno);
}

/**
 * Apply a fault that is not an error return: Sigint raises and lets
 * the operation proceed; Throw throws. Returns the remaining kind.
 */
FaultKind
applyControlFaults(FaultKind kind, const std::string &where)
{
    if (kind == FaultKind::Sigint) {
        std::raise(SIGINT);
        return FaultKind::None;
    }
    if (kind == FaultKind::Kill9) {
        std::raise(SIGKILL);
        return FaultKind::None;
    }
    if (kind == FaultKind::Throw)
        throw std::runtime_error("injected fault: " + where);
    return kind;
}

} // namespace

void
FaultInjector::configure(const std::string &spec)
{
    MutexLock lock(mutex);
    clauses.clear();
    counts.clear();
    isActive.store(false, std::memory_order_relaxed);
    if (spec.empty())
        return;
    bool armed = false;
    for (const std::string &clause_text : splitOn(spec, ',')) {
        const std::vector<std::string> fields = splitOn(clause_text, ':');
        if (fields.size() == 2 && fields[0] == "seed") {
            rng = Rng(std::strtoull(fields[1].c_str(), nullptr, 0));
            continue;
        }
        fatalIf(fields.size() != 3,
                "bad --fault-inject clause '" + clause_text +
                    "' (expected op:n:kind or seed:n)");
        fatalIf(!isKnownOp(fields[0]),
                "unknown fault-inject op '" + fields[0] +
                    "' (expected open/read/write/flush/rename/remove/"
                    "job)");
        Clause clause;
        clause.op = fields[0];
        char *end = nullptr;
        clause.index = std::strtoull(fields[1].c_str(), &end, 0);
        fatalIf(end == fields[1].c_str() || *end != '\0' ||
                    clause.index == 0,
                "bad fault-inject occurrence '" + fields[1] +
                    "' in clause '" + clause_text + "' (1-based count)");
        clause.kind = faultKindFromString(fields[2]);
        clauses.push_back(clause);
        armed = true;
    }
    isActive.store(armed, std::memory_order_relaxed);
}

FaultKind
FaultInjector::next(const char *op)
{
    if (!active())
        return FaultKind::None;
    MutexLock lock(mutex);
    const std::uint64_t occurrence = ++counts[op];
    for (Clause &clause : clauses) {
        if (clause.fired || clause.op != op ||
            clause.index != occurrence) {
            continue;
        }
        clause.fired = true;
        return clause.kind;
    }
    return FaultKind::None;
}

std::uint64_t
FaultInjector::tornCut(std::uint64_t size)
{
    if (size == 0)
        return 0;
    MutexLock lock(mutex);
    return rng.nextBelow(size);
}

FaultInjector &
faultInjector()
{
    static FaultInjector injector;
    return injector;
}

void
configureFaultInjection(const std::string &spec)
{
    faultInjector().configure(spec);
}

Status
File::openForRead(const std::string &file_path)
{
    panicIf(isOpen(), "io::File reopened while open: " + file_path);
    const FaultKind fault = applyControlFaults(
        faultInjector().next("open"), "open " + file_path);
    if (fault != FaultKind::None) {
        return Status::error(StatusCode::kIo,
                             "cannot open " + file_path + ": " +
                                 injectedErrnoDetail(fault));
    }
    file = std::fopen(file_path.c_str(), "rb");
    if (!file) {
        return Status::error(StatusCode::kIo,
                             "cannot open " + file_path +
                                 " for reading: " + errnoDetail());
    }
    filePath = file_path;
    return Status::ok();
}

Status
File::openForWrite(const std::string &file_path)
{
    panicIf(isOpen(), "io::File reopened while open: " + file_path);
    const FaultKind fault = applyControlFaults(
        faultInjector().next("open"), "open " + file_path);
    if (fault != FaultKind::None) {
        return Status::error(StatusCode::kIo,
                             "cannot open " + file_path + ": " +
                                 injectedErrnoDetail(fault));
    }
    file = std::fopen(file_path.c_str(), "wb");
    if (!file) {
        return Status::error(StatusCode::kIo,
                             "cannot open " + file_path +
                                 " for writing: " + errnoDetail());
    }
    filePath = file_path;
    return Status::ok();
}

Status
File::readExact(void *buffer, std::size_t size)
{
    panicIf(!isOpen(), "read on closed io::File");
    const FaultKind fault = applyControlFaults(
        faultInjector().next("read"), "read " + filePath);
    if (fault != FaultKind::None) {
        return Status::error(StatusCode::kIo,
                             "read error on " + filePath + ": " +
                                 injectedErrnoDetail(fault));
    }
    const std::size_t got = std::fread(buffer, 1, size, file);
    if (got == size)
        return Status::ok();
    if (std::feof(file)) {
        return Status::error(StatusCode::kCorrupt,
                             "unexpected end of file in " + filePath +
                                 " (truncated?)");
    }
    return Status::error(StatusCode::kIo, "read error on " + filePath +
                                              ": " + errnoDetail());
}

Status
File::writeAll(const void *buffer, std::size_t size)
{
    panicIf(!isOpen(), "write on closed io::File");
    const FaultKind fault = applyControlFaults(
        faultInjector().next("write"), "write " + filePath);
    if (fault == FaultKind::Eio || fault == FaultKind::Enospc) {
        return Status::error(StatusCode::kIo,
                             "write error on " + filePath + ": " +
                                 injectedErrnoDetail(fault));
    }
    std::size_t to_write = size;
    if (fault == FaultKind::Torn) {
        // A torn write loses the tail but reports success — the caller
        // believes the data landed, exactly like a crash mid-write
        // followed by a rename. The checksum footer catches it later.
        to_write = static_cast<std::size_t>(
            faultInjector().tornCut(size));
    }
    const std::size_t put = std::fwrite(buffer, 1, to_write, file);
    if (put != to_write) {
        return Status::error(StatusCode::kIo,
                             "write error on " + filePath + ": " +
                                 errnoDetail());
    }
    return Status::ok();
}

Status
File::flush()
{
    panicIf(!isOpen(), "flush on closed io::File");
    const FaultKind fault = applyControlFaults(
        faultInjector().next("flush"), "flush " + filePath);
    if (fault != FaultKind::None) {
        return Status::error(StatusCode::kIo,
                             "flush error on " + filePath + ": " +
                                 injectedErrnoDetail(fault));
    }
    if (std::fflush(file) != 0 || std::ferror(file)) {
        return Status::error(StatusCode::kIo,
                             "I/O error flushing " + filePath + ": " +
                                 errnoDetail());
    }
    return Status::ok();
}

Status
File::sync()
{
    panicIf(!isOpen(), "sync on closed io::File");
    const Status flushed = flush();
    if (!flushed.isOk())
        return flushed;
    if (::fsync(::fileno(file)) != 0) {
        return Status::error(StatusCode::kIo,
                             "I/O error syncing " + filePath + ": " +
                                 errnoDetail());
    }
    return Status::ok();
}

bool
File::atEof()
{
    panicIf(!isOpen(), "atEof on closed io::File");
    const int ch = std::fgetc(file);
    if (ch == EOF)
        return true;
    std::ungetc(ch, file);
    return false;
}

void
File::close()
{
    if (!file)
        return;
    std::fclose(file);
    file = nullptr;
    filePath.clear();
}

Status
MappedFile::map(const std::string &file_path)
{
    panicIf(isMapped(), "io::MappedFile remapped while mapped: " +
                            file_path);
    const FaultKind open_fault = applyControlFaults(
        faultInjector().next("open"), "open " + file_path);
    if (open_fault != FaultKind::None) {
        return Status::error(StatusCode::kIo,
                             "cannot open " + file_path + ": " +
                                 injectedErrnoDetail(open_fault));
    }
    const FaultKind mmap_fault = applyControlFaults(
        faultInjector().next("mmap"), "mmap " + file_path);
    if (mmap_fault != FaultKind::None) {
        return Status::error(StatusCode::kIo,
                             "cannot map " + file_path + ": " +
                                 injectedErrnoDetail(mmap_fault));
    }
    // The mapping is one bulk read of the whole file: count it on the
    // "read" counter so read-class fault specs fire here too, instead
    // of silently skipping the mmap path (torn reads don't exist, so a
    // torn kind degrades to a plain read error).
    const FaultKind read_fault = applyControlFaults(
        faultInjector().next("read"), "read " + file_path);
    if (read_fault != FaultKind::None) {
        return Status::error(StatusCode::kIo,
                             "read error on " + file_path + ": " +
                                 injectedErrnoDetail(read_fault));
    }
    const int fd = ::open(file_path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        return Status::error(StatusCode::kIo,
                             "cannot open " + file_path +
                                 " for reading: " + errnoDetail());
    }
    struct stat info = {};
    if (::fstat(fd, &info) != 0 || !S_ISREG(info.st_mode)) {
        const std::string detail = errnoDetail();
        ::close(fd);
        return Status::error(StatusCode::kIo,
                             "cannot stat " + file_path + ": " + detail);
    }
    if (info.st_size == 0) {
        // mmap rejects zero-length mappings; an empty file has nothing
        // to parse in place anyway, so let the caller fall back.
        ::close(fd);
        return Status::error(StatusCode::kIo,
                             "cannot map empty file " + file_path);
    }
    void *mapping = ::mmap(nullptr, static_cast<std::size_t>(info.st_size),
                           PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // The mapping keeps its own reference to the file.
    if (mapping == MAP_FAILED) {
        return Status::error(StatusCode::kIo, "cannot map " + file_path +
                                                  ": " + errnoDetail());
    }
    base = mapping;
    length = static_cast<std::uint64_t>(info.st_size);
    filePath = file_path;
    return Status::ok();
}

void
MappedFile::unmap()
{
    if (!base)
        return;
    ::munmap(base, static_cast<std::size_t>(length));
    base = nullptr;
    length = 0;
    filePath.clear();
}

Status
removeFile(const std::string &path)
{
    const FaultKind fault = applyControlFaults(
        faultInjector().next("remove"), "remove " + path);
    if (fault != FaultKind::None) {
        return Status::error(StatusCode::kIo, "cannot remove " + path +
                                                  ": " +
                                                  injectedErrnoDetail(
                                                      fault));
    }
    if (std::remove(path.c_str()) != 0) {
        return Status::error(StatusCode::kIo, "cannot remove " + path +
                                                  ": " + errnoDetail());
    }
    return Status::ok();
}

Status
renameFile(const std::string &from, const std::string &to)
{
    const FaultKind fault = applyControlFaults(
        faultInjector().next("rename"), "rename " + from);
    if (fault != FaultKind::None) {
        return Status::error(StatusCode::kIo,
                             "cannot rename " + from + " to " + to +
                                 ": " + injectedErrnoDetail(fault));
    }
    if (std::rename(from.c_str(), to.c_str()) != 0) {
        return Status::error(StatusCode::kIo,
                             "cannot rename " + from + " to " + to +
                                 ": " + errnoDetail());
    }
    return Status::ok();
}

} // namespace io
} // namespace vpsim
