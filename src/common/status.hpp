/**
 * @file
 * Recoverable-error reporting for library code.
 *
 * fatal() and panic() (logging.hpp) terminate the process, which is right
 * for bench mains but wrong for layers whose callers can recover — a
 * corrupt trace-cache entry should be recaptured, not kill an hour-long
 * sweep. Such functions return a Status instead; the caller decides
 * whether to retry, warn, or escalate to fatal().
 */

#ifndef VPSIM_COMMON_STATUS_HPP
#define VPSIM_COMMON_STATUS_HPP

#include <string>
#include <utility>

namespace vpsim
{

/** Success, or an error with a human-readable message. */
class Status
{
  public:
    /** Success value. */
    static Status ok() { return Status(); }

    /** Failure with @p message (should name the offending file/input). */
    static Status error(std::string message)
    {
        Status status;
        status.failed = true;
        status.text = std::move(message);
        return status;
    }

    bool isOk() const { return !failed; }

    /** The error message; empty for ok(). */
    const std::string &message() const { return text; }

  private:
    Status() = default;

    bool failed = false;
    std::string text;
};

} // namespace vpsim

#endif // VPSIM_COMMON_STATUS_HPP
