/**
 * @file
 * Recoverable-error reporting for library code.
 *
 * fatal() and panic() (logging.hpp) terminate the process, which is right
 * for bench mains but wrong for layers whose callers can recover — a
 * corrupt trace-cache entry should be recaptured, not kill an hour-long
 * sweep. Such functions return a Status instead; the caller decides
 * whether to retry, warn, or escalate to fatal().
 *
 * Every error carries a StatusCode so callers can branch on the *class*
 * of failure without parsing message text: transient I/O errors are
 * retried, corrupt data is quarantined and regenerated, cancellation
 * unwinds quietly.
 */

#ifndef VPSIM_COMMON_STATUS_HPP
#define VPSIM_COMMON_STATUS_HPP

#include <memory>
#include <string>
#include <utility>

namespace vpsim
{

/** Failure taxonomy: what kind of error, hence what recovery applies. */
enum class StatusCode
{
    kOk,       ///< No error.
    kIo,       ///< I/O failure (possibly transient: retry may succeed).
    kCorrupt,  ///< Data failed validation (checksum, magic, truncation).
    kCanceled, ///< Operation abandoned (signal, shutdown).
    kTimeout,  ///< Operation exceeded its deadline.
    kInternal, ///< Simulator invariant violated (model bug, not input).
};

/** Human-readable name of @p code ("ok", "io", "corrupt", ...). */
const char *statusCodeName(StatusCode code);

/**
 * Success, or a coded error with a human-readable message.
 *
 * [[nodiscard]] at class level: every function returning a Status by
 * value flags callers that drop it on the floor. A dropped Status is a
 * swallowed failure — in a parallel sweep that means a poisoned cell
 * published as a real number. Intentional discards must write
 * `(void)call();` with a one-line justification (and are audited by
 * scripts/lint_project.py rule status-discard).
 */
class [[nodiscard]] Status
{
  public:
    /** Success value. */
    static Status ok() { return Status(); }

    /**
     * Failure with @p message (should name the offending file/input).
     * Defaults to kIo, the most common recoverable class.
     */
    static Status error(std::string message)
    {
        return error(StatusCode::kIo, std::move(message));
    }

    /** Failure of class @p code with @p message. */
    static Status error(StatusCode code, std::string message)
    {
        Status status;
        status.errorCode = code;
        status.text = std::move(message);
        return status;
    }

    /**
     * Failure of class @p code that was triggered by @p cause.
     *
     * The cause chain is preserved in full: the composed message reads
     * "<message>: [<cause-code>] <cause-message>" recursively down to
     * the root cause, and cause() exposes the wrapped Status so callers
     * can still branch on the original failure class (a kInternal
     * invariant failure wrapping a kCorrupt trace must not hide that
     * the data, not the model, was bad).
     */
    static Status wrap(StatusCode code, std::string message,
                       const Status &cause)
    {
        if (cause.isOk())
            return error(code, std::move(message));
        Status status = error(code, message + ": [" +
                                        statusCodeName(cause.code()) +
                                        "] " + cause.message());
        status.wrapped = std::make_shared<Status>(cause);
        return status;
    }

    bool isOk() const { return errorCode == StatusCode::kOk; }

    /** The failure class; kOk for ok(). */
    StatusCode code() const { return errorCode; }

    /** The error message (with any cause chain); empty for ok(). */
    const std::string &message() const { return text; }

    /** The wrapped cause, or nullptr when this is the root failure. */
    const Status *cause() const { return wrapped.get(); }

    /** The innermost failure class of the cause chain. */
    StatusCode rootCause() const
    {
        const Status *status = this;
        while (status->wrapped)
            status = status->wrapped.get();
        return status->errorCode;
    }

  private:
    Status() = default;

    StatusCode errorCode = StatusCode::kOk;
    std::string text;
    /** Immutable cause; shared so Status stays cheaply copyable. */
    std::shared_ptr<const Status> wrapped;
};

inline const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::kOk: return "ok";
      case StatusCode::kIo: return "io";
      case StatusCode::kCorrupt: return "corrupt";
      case StatusCode::kCanceled: return "canceled";
      case StatusCode::kTimeout: return "timeout";
      case StatusCode::kInternal: return "internal";
    }
    return "unknown";
}

} // namespace vpsim

#endif // VPSIM_COMMON_STATUS_HPP
