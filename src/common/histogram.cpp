#include "common/histogram.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace vpsim
{

Histogram::Histogram(std::vector<std::uint64_t> upper_bounds)
    : bounds(std::move(upper_bounds)),
      counts(bounds.size() + 1, 0)
{
    fatalIf(bounds.empty(), "Histogram needs at least one bucket bound");
    for (std::size_t i = 1; i < bounds.size(); ++i)
        fatalIf(bounds[i] <= bounds[i - 1],
                "Histogram bounds must be strictly ascending");
}

void
Histogram::add(std::uint64_t sample, std::uint64_t weight)
{
    std::size_t bucket = bounds.size();
    for (std::size_t i = 0; i < bounds.size(); ++i) {
        if (sample <= bounds[i]) {
            bucket = i;
            break;
        }
    }
    counts[bucket] += weight;
    total += weight;
    sampleSum += static_cast<long double>(sample) * weight;
}

std::uint64_t
Histogram::bucketCount(std::size_t index) const
{
    panicIf(index >= counts.size(), "Histogram bucket index out of range");
    return counts[index];
}

double
Histogram::bucketFraction(std::size_t index) const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(bucketCount(index)) /
           static_cast<double>(total);
}

std::string
Histogram::bucketLabel(std::size_t index) const
{
    panicIf(index >= counts.size(), "Histogram bucket index out of range");
    std::ostringstream oss;
    if (index == bounds.size()) {
        oss << ">=" << bounds.back() + 1;
    } else {
        const std::uint64_t lo = index == 0 ? 0 : bounds[index - 1] + 1;
        const std::uint64_t hi = bounds[index];
        if (lo == hi)
            oss << lo;
        else
            oss << lo << "-" << hi;
    }
    return oss.str();
}

double
Histogram::mean() const
{
    if (total == 0)
        return 0.0;
    return static_cast<double>(sampleSum / total);
}

void
Histogram::merge(const Histogram &other)
{
    panicIf(bounds != other.bounds,
            "Histogram::merge requires identical bucket bounds");
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    total += other.total;
    sampleSum += other.sampleSum;
}

} // namespace vpsim
