/**
 * @file
 * Saturating up/down counter, the basic confidence-estimation element used
 * by the value-prediction classifier (paper §3.1, §5) and the 2-level
 * branch predictor's pattern history table (paper §5, [27]).
 */

#ifndef VPSIM_COMMON_SAT_COUNTER_HPP
#define VPSIM_COMMON_SAT_COUNTER_HPP

#include <cstdint>

#include "common/logging.hpp"

namespace vpsim
{

/**
 * An n-bit saturating counter.
 *
 * The counter saturates at [0, 2^bits - 1]. The classifier convention used
 * throughout the simulator is "predict when the counter is in the upper
 * half", exposed as isSet().
 */
class SatCounter
{
  public:
    /**
     * @param bits Counter width in bits (1..16).
     * @param initial Initial counter value (clamped to the legal range).
     */
    explicit SatCounter(unsigned bits = 2, unsigned initial = 0)
        : maxValue((1u << bits) - 1),
          threshold(1u << (bits - 1)),
          count(initial > maxValue ? maxValue : initial)
    {
        panicIf(bits == 0 || bits > 16, "SatCounter width out of range");
    }

    /** Increment, saturating at the maximum. */
    void
    increment()
    {
        if (count < maxValue)
            ++count;
    }

    /** Decrement, saturating at zero. */
    void
    decrement()
    {
        if (count > 0)
            --count;
    }

    /** Reset to zero (strongest "do not predict"). */
    void reset() { count = 0; }

    /**
     * One training step as straight-line selects: increment() when
     * @p up; otherwise reset() when @p reset_on_down, else
     * decrement(). Confidence outcomes flip with the simulated data,
     * so the branchy equivalents mispredict; hot classifier paths use
     * this form.
     */
    void
    train(bool up, bool reset_on_down)
    {
        const std::uint16_t raised =
            count < maxValue ? static_cast<std::uint16_t>(count + 1)
                             : count;
        const std::uint16_t dropped =
            count > 0 ? static_cast<std::uint16_t>(count - 1) : count;
        const std::uint16_t lowered = reset_on_down ? 0 : dropped;
        count = up ? raised : lowered;
    }

    /** True when the counter is in the upper half of its range. */
    bool isSet() const { return count >= threshold; }

    /** True when fully saturated high. */
    bool isSaturated() const { return count == maxValue; }

    /** Raw counter value. */
    unsigned value() const { return count; }

    /** Largest representable value. */
    unsigned max() const { return maxValue; }

  private:
    std::uint16_t maxValue;
    std::uint16_t threshold;
    std::uint16_t count;
};

} // namespace vpsim

#endif // VPSIM_COMMON_SAT_COUNTER_HPP
