/**
 * @file
 * The model-integrity invariant engine.
 *
 * The machine models (core/, fetch/) produce every number in the
 * reproduced figures, and a bookkeeping bug there ships a silently
 * wrong speedup table — limit studies live or die on bounds like
 * "IPC never exceeds the fetch rate" actually holding. This engine
 * closes that loop: models register named checks that are evaluated
 * while they run, and a violated check raises an InvariantViolation
 * carrying a StatusCode::kInternal Status, so under `--keep-going`
 * the offending cell becomes a visible NaN instead of a wrong number.
 *
 * Checks come in two tiers, selected by `--check-invariants`:
 *  - cheap: O(1) per run or per coarse step; always on by default.
 *  - full:  per-cycle / per-record bookkeeping audits (window
 *    occupancy, per-cycle retire width, predictor counter balance,
 *    histogram mass). Off by default; CI runs the benches with
 *    `--check-invariants=full`.
 *
 * The catalog of registered checks is documented in docs/VALIDATION.md;
 * every check evaluated and every violation raised is counted so the
 * runtime can report coverage (`--stats`).
 */

#ifndef VPSIM_COMMON_INVARIANT_HPP
#define VPSIM_COMMON_INVARIANT_HPP

#include <atomic>
#include <stdexcept>
#include <string>
#include <type_traits>

#include "common/status.hpp"

namespace vpsim
{

/** How much self-checking the models perform. */
enum class InvariantLevel
{
    Off,   ///< No checks (shaves the last few % off hot loops).
    Cheap, ///< O(1) end-of-run and coarse-grained checks (default).
    Full,  ///< Per-cycle/per-record bookkeeping audits.
};

/** Parse "off" / "cheap" / "full"; fatal() on anything else. */
InvariantLevel invariantLevelFromString(const std::string &text);

/** Name of @p level for reports ("off", "cheap", "full"). */
const char *invariantLevelName(InvariantLevel level);

/** The process-wide checking level (set from --check-invariants). */
InvariantLevel invariantLevel();
void setInvariantLevel(InvariantLevel level);

/**
 * A violated model invariant.
 *
 * Derives from std::runtime_error so the experiment runtime's existing
 * failure isolation (--keep-going, the thread pool's first-exception
 * rethrow) handles it like any job failure; carries a
 * StatusCode::kInternal Status (optionally wrapping the Status that
 * triggered the check, preserving the cause chain) for callers that
 * branch on failure class.
 */
class InvariantViolation : public std::runtime_error
{
  public:
    InvariantViolation(const std::string &check,
                       const std::string &detail,
                       const Status &cause = Status::ok())
        : std::runtime_error("invariant '" + check +
                             "' violated: " + detail +
                             (cause.isOk()
                                  ? std::string()
                                  : ": [" +
                                        std::string(statusCodeName(
                                            cause.code())) +
                                        "] " + cause.message())),
          violationStatus(Status::wrap(StatusCode::kInternal,
                                       "invariant '" + check +
                                           "' violated: " + detail,
                                       cause)),
          checkName(check)
    {
    }

    /** kInternal Status (with any wrapped cause chain). */
    const Status &status() const { return violationStatus; }

    /** The registered name of the violated check. */
    const std::string &check() const { return checkName; }

  private:
    Status violationStatus;
    std::string checkName;
};

namespace detail
{

struct InvariantCounters
{
    std::atomic<std::uint64_t> checksEvaluated{0};
    std::atomic<std::uint64_t> violations{0};
};

InvariantCounters &invariantCounters();

extern std::atomic<int> g_invariantLevel;

} // namespace detail

/** True when checks of @p tier are active under the current level. */
inline bool
invariantsActive(InvariantLevel tier)
{
    return detail::g_invariantLevel.load(std::memory_order_relaxed) >=
           static_cast<int>(tier);
}

/** Count and raise a violation of @p check (never returns). */
[[noreturn]] void invariantFailed(const std::string &check,
                                  const std::string &detail_text,
                                  const Status &cause = Status::ok());

/**
 * Evaluate one registered check: if checks of @p tier are active and
 * @p holds is false, raise an InvariantViolation named @p check with
 * @p detail. The detail string is only built on failure when callers
 * pass a callable.
 */
inline void
checkInvariant(InvariantLevel tier, bool holds, const char *check,
               const std::string &detail_text)
{
    if (!invariantsActive(tier))
        return;
    detail::invariantCounters().checksEvaluated.fetch_add(
        1, std::memory_order_relaxed);
    if (!holds)
        invariantFailed(check, detail_text);
}

/** As above, with the detail built lazily (hot-loop checks). */
template <typename DetailFn,
          typename = std::enable_if_t<std::is_invocable_v<DetailFn &>>>
inline void
checkInvariant(InvariantLevel tier, bool holds, const char *check,
               DetailFn &&detail_fn)
{
    if (!invariantsActive(tier))
        return;
    detail::invariantCounters().checksEvaluated.fetch_add(
        1, std::memory_order_relaxed);
    if (!holds)
        invariantFailed(check, detail_fn());
}

/** Checks evaluated process-wide since start (for --stats). */
std::uint64_t invariantChecksEvaluated();

/** Violations raised process-wide since start. */
std::uint64_t invariantViolations();

} // namespace vpsim

#endif // VPSIM_COMMON_INVARIANT_HPP
