/**
 * @file
 * Bucketed histogram used by the DID analyses (paper Figures 3.3-3.5).
 */

#ifndef VPSIM_COMMON_HISTOGRAM_HPP
#define VPSIM_COMMON_HISTOGRAM_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace vpsim
{

/**
 * A histogram over uint64 samples with caller-defined bucket boundaries.
 *
 * Buckets are defined by an ascending list of upper bounds; a sample x falls
 * into the first bucket whose upper bound is >= x. A final implicit
 * overflow bucket catches everything larger than the last bound.
 */
class Histogram
{
  public:
    /**
     * @param upper_bounds Ascending inclusive upper bounds of the buckets.
     */
    explicit Histogram(std::vector<std::uint64_t> upper_bounds);

    /** Record one sample. */
    void add(std::uint64_t sample, std::uint64_t weight = 1);

    /** Number of buckets including the overflow bucket. */
    std::size_t numBuckets() const { return counts.size(); }

    /** Raw count in bucket @p index. */
    std::uint64_t bucketCount(std::size_t index) const;

    /** Fraction of all samples in bucket @p index (0 when empty). */
    double bucketFraction(std::size_t index) const;

    /** Human-readable label for bucket @p index, e.g. "4-7" or ">=16". */
    std::string bucketLabel(std::size_t index) const;

    /** Total number of samples recorded. */
    std::uint64_t totalSamples() const { return total; }

    /** Arithmetic mean of all recorded samples. */
    double mean() const;

    /** Merge another histogram with identical bucket bounds. */
    void merge(const Histogram &other);

  private:
    std::vector<std::uint64_t> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
    // Sum of samples, for mean(); kept as long double to limit error on
    // 100M-sample traces.
    long double sampleSum = 0;
};

} // namespace vpsim

#endif // VPSIM_COMMON_HISTOGRAM_HPP
