/**
 * @file
 * ASCII table renderer used by the figure-regeneration benches.
 *
 * Each bench prints one table shaped like the corresponding paper figure:
 * a row per benchmark, a column per configuration, and an average row.
 */

#ifndef VPSIM_COMMON_TABLE_PRINTER_HPP
#define VPSIM_COMMON_TABLE_PRINTER_HPP

#include <string>
#include <vector>

namespace vpsim
{

/** A simple column-aligned text table. */
class TablePrinter
{
  public:
    /**
     * @param table_title Title printed above the table.
     * @param column_names Header cells; the first column is the row label.
     */
    TablePrinter(std::string table_title,
                 std::vector<std::string> column_names);

    /** Append a data row; must have one cell per column. */
    void addRow(const std::vector<std::string> &cells);

    /** Append a horizontal separator before the next row. */
    void addSeparator();

    /** Render the full table. */
    std::string render() const;

    /** Format a double as a percentage cell, e.g. "33.4%". */
    static std::string percentCell(double fraction, int decimals = 1);

    /** Format a double with fixed decimals. */
    static std::string numberCell(double value, int decimals = 2);

  private:
    struct Row
    {
        bool separator;
        std::vector<std::string> cells;
    };

    std::string title;
    std::vector<std::string> columns;
    std::vector<Row> rows;
};

} // namespace vpsim

#endif // VPSIM_COMMON_TABLE_PRINTER_HPP
