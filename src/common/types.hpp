/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef VPSIM_COMMON_TYPES_HPP
#define VPSIM_COMMON_TYPES_HPP

#include <cstdint>

namespace vpsim
{

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Program counter / instruction address in the simulated machine. */
using Addr = std::uint64_t;

/** Architectural data value (the mini ISA is a 64-bit machine). */
using Value = std::uint64_t;

/** Dynamic instruction sequence number (appearance order in the trace). */
using SeqNum = std::uint64_t;

/** Architectural register index. */
using RegIndex = std::uint8_t;

/** Sentinel meaning "no register operand". */
inline constexpr RegIndex invalidReg = 0xff;

/** Sentinel for "no cycle" / "not yet scheduled". */
inline constexpr Cycle invalidCycle = ~Cycle{0};

/** Sentinel for "no sequence number" (e.g. no producer). */
inline constexpr SeqNum invalidSeqNum = ~SeqNum{0};

} // namespace vpsim

#endif // VPSIM_COMMON_TYPES_HPP
