#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>

namespace vpsim
{

void
fatal(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

void
panic(const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

void
warn(const std::string &message)
{
    std::fprintf(stderr, "warn: %s\n", message.c_str());
}

void
inform(const std::string &message)
{
    std::fprintf(stderr, "info: %s\n", message.c_str());
}

} // namespace vpsim
