#include "common/logging.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/thread_annotations.hpp"

namespace vpsim
{

namespace
{

Mutex g_logMutex;
/** Empty means stderr. Swapped by tests via setLogSink(). */
LogSink g_logSink GUARDED_BY(g_logMutex);

/**
 * Format and emit one line under the mutex, so lines from concurrent
 * worker threads (watchdog warnings, --keep-going failure reports)
 * reach the sink whole instead of interleaved.
 */
void
emitLine(const char *prefix, const std::string &message)
{
    MutexLock lock(g_logMutex);
    if (g_logSink) {
        g_logSink(std::string(prefix) + ": " + message);
        return;
    }
    std::fprintf(stderr, "%s: %s\n", prefix, message.c_str());
}

} // namespace

LogSink
setLogSink(LogSink sink)
{
    MutexLock lock(g_logMutex);
    LogSink previous = std::move(g_logSink);
    g_logSink = std::move(sink);
    return previous;
}

void
fatal(const std::string &message)
{
    emitLine("fatal", message);
    std::exit(1);
}

void
panic(const std::string &message)
{
    emitLine("panic", message);
    std::abort();
}

void
warn(const std::string &message)
{
    emitLine("warn", message);
}

void
inform(const std::string &message)
{
    emitLine("info", message);
}

} // namespace vpsim
