#include "common/thread_pool.hpp"

namespace vpsim
{

unsigned
ThreadPool::defaultThreadCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned thread_count)
{
    if (thread_count == 0)
        thread_count = defaultThreadCount();
    workers.reserve(thread_count);
    for (unsigned i = 0; i < thread_count; ++i)
        workers.push_back(std::make_unique<Worker>());
    threads.reserve(thread_count);
    for (unsigned i = 0; i < thread_count; ++i)
        threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        // Guarded reads stay in this scope, not inside a wait lambda
        // the thread-safety analysis cannot attribute to the lock.
        MutexLock lock(poolMutex);
        while (pending != 0)
            allDone.wait(lock.native());
        stopping = true;
    }
    workAvailable.notify_all();
    for (std::thread &thread : threads)
        thread.join();
}

void
ThreadPool::submit(Task task)
{
    std::size_t target;
    {
        MutexLock lock(poolMutex);
        target = nextWorker;
        nextWorker = (nextWorker + 1) % workers.size();
        ++pending;
        ++queued;
    }
    {
        MutexLock lock(workers[target]->mutex);
        workers[target]->queue.push_back(std::move(task));
    }
    workAvailable.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        MutexLock lock(poolMutex);
        while (pending != 0)
            allDone.wait(lock.native());
        error = firstError;
        firstError = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

bool
ThreadPool::tryRun(std::size_t index)
{
    Task task;
    // Own queue first (front: submission order), then steal from the
    // back of a peer's queue, scanning from the next worker onward so
    // thieves spread out instead of all hitting worker 0.
    for (std::size_t i = 0; i < workers.size() && !task; ++i) {
        const std::size_t victim = (index + i) % workers.size();
        Worker &worker = *workers[victim];
        MutexLock lock(worker.mutex);
        if (worker.queue.empty())
            continue;
        if (victim == index) {
            task = std::move(worker.queue.front());
            worker.queue.pop_front();
        } else {
            task = std::move(worker.queue.back());
            worker.queue.pop_back();
        }
    }
    if (!task)
        return false;

    {
        MutexLock lock(poolMutex);
        --queued;
    }
    try {
        task();
    } catch (...) {
        MutexLock lock(poolMutex);
        if (!firstError)
            firstError = std::current_exception();
    }
    {
        MutexLock lock(poolMutex);
        if (--pending == 0)
            allDone.notify_all();
    }
    return true;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    for (;;) {
        if (tryRun(index))
            continue;
        MutexLock lock(poolMutex);
        while (!stopping && queued == 0)
            workAvailable.wait(lock.native());
        if (stopping && queued == 0)
            return;
    }
}

} // namespace vpsim
