#include "common/thread_pool.hpp"

namespace vpsim
{

unsigned
ThreadPool::defaultThreadCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned thread_count)
{
    if (thread_count == 0)
        thread_count = defaultThreadCount();
    workers.reserve(thread_count);
    for (unsigned i = 0; i < thread_count; ++i)
        workers.push_back(std::make_unique<Worker>());
    threads.reserve(thread_count);
    for (unsigned i = 0; i < thread_count; ++i)
        threads.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(poolMutex);
        allDone.wait(lock, [this] { return pending == 0; });
        stopping = true;
    }
    workAvailable.notify_all();
    for (std::thread &thread : threads)
        thread.join();
}

void
ThreadPool::submit(Task task)
{
    std::size_t target;
    {
        std::unique_lock<std::mutex> lock(poolMutex);
        target = nextWorker;
        nextWorker = (nextWorker + 1) % workers.size();
        ++pending;
        ++queued;
    }
    {
        std::unique_lock<std::mutex> lock(workers[target]->mutex);
        workers[target]->queue.push_back(std::move(task));
    }
    workAvailable.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(poolMutex);
    allDone.wait(lock, [this] { return pending == 0; });
    if (firstError) {
        const std::exception_ptr error = firstError;
        firstError = nullptr;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

bool
ThreadPool::tryRun(std::size_t index)
{
    Task task;
    // Own queue first (front: submission order), then steal from the
    // back of a peer's queue, scanning from the next worker onward so
    // thieves spread out instead of all hitting worker 0.
    for (std::size_t i = 0; i < workers.size() && !task; ++i) {
        const std::size_t victim = (index + i) % workers.size();
        Worker &worker = *workers[victim];
        std::unique_lock<std::mutex> lock(worker.mutex);
        if (worker.queue.empty())
            continue;
        if (victim == index) {
            task = std::move(worker.queue.front());
            worker.queue.pop_front();
        } else {
            task = std::move(worker.queue.back());
            worker.queue.pop_back();
        }
    }
    if (!task)
        return false;

    {
        std::unique_lock<std::mutex> lock(poolMutex);
        --queued;
    }
    try {
        task();
    } catch (...) {
        std::unique_lock<std::mutex> lock(poolMutex);
        if (!firstError)
            firstError = std::current_exception();
    }
    {
        std::unique_lock<std::mutex> lock(poolMutex);
        if (--pending == 0)
            allDone.notify_all();
    }
    return true;
}

void
ThreadPool::workerLoop(std::size_t index)
{
    for (;;) {
        if (tryRun(index))
            continue;
        std::unique_lock<std::mutex> lock(poolMutex);
        workAvailable.wait(lock,
                           [this] { return stopping || queued > 0; });
        if (stopping && queued == 0)
            return;
    }
}

} // namespace vpsim
