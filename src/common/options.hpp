/**
 * @file
 * Minimal command-line option parser for the bench and example binaries.
 *
 * Supports "--name value" and "--name=value" forms plus boolean flags.
 * Unknown options are fatal so typos do not silently run the default
 * experiment.
 */

#ifndef VPSIM_COMMON_OPTIONS_HPP
#define VPSIM_COMMON_OPTIONS_HPP

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace vpsim
{

/** Parsed command-line options with typed accessors and defaults. */
class Options
{
  public:
    /**
     * Declare an option before parsing.
     *
     * @param name Option name without the leading dashes.
     * @param default_value Default used when the option is absent.
     * @param help One-line description for --help output.
     */
    void declare(const std::string &name, const std::string &default_value,
                 const std::string &help);

    /**
     * Register a cross-option validation rule, run at the end of
     * parse() — a bad option *combination* (--resume without
     * --checkpoint, --cross-check under fault injection) should fail
     * with a one-line usage hint before any trace is captured, not
     * surface as a confusing error forty minutes into a sweep.
     *
     * @param rule Returns an empty string when the parsed options are
     *        acceptable, else the one-line error/usage hint.
     */
    void addValidator(
        std::function<std::string(const Options &)> rule);

    /**
     * Parse argv. Exits with usage text on --help or unknown options,
     * and fatal()s with the rule's hint when a registered validator
     * rejects the parsed combination.
     *
     * @param program_description Shown at the top of --help output.
     */
    void parse(int argc, const char *const *argv,
               const std::string &program_description);

    /** The option was set on the command line (not just defaulted). */
    bool provided(const std::string &name) const;

    /** String value of @p name (declared default if absent). */
    std::string getString(const std::string &name) const;

    /** Integer value of @p name. Fatal on non-numeric input. */
    std::int64_t getInt(const std::string &name) const;

    /** Double value of @p name. Fatal on non-numeric input. */
    double getDouble(const std::string &name) const;

    /** Boolean value: "1/true/yes/on" are true, "0/false/no/off" false. */
    bool getBool(const std::string &name) const;

    /** Comma-separated list value. Empty string yields an empty list. */
    std::vector<std::string> getList(const std::string &name) const;

    /**
     * Canonical "name=value;" string over every declared option (with
     * defaults applied), sorted by name, minus the names in @p exclude.
     * Two runs with the same fingerprint request the same experiment;
     * the grid checkpoint (sim_runner.hpp) keys cells by its hash so
     * --resume never reuses cells from a differently-configured sweep.
     */
    std::string fingerprint(
        const std::vector<std::string> &exclude = {}) const;

    /**
     * Every declared option with its effective value (defaults
     * applied), sorted by name. The fleet supervisor re-materializes a
     * worker process's command line from this — an explicit replay of
     * the parsed configuration, not a forward of raw argv.
     */
    std::vector<std::pair<std::string, std::string>> items() const;

  private:
    struct Decl
    {
        std::string defaultValue;
        std::string help;
    };

    std::string usage(const std::string &program_description) const;

    std::map<std::string, Decl> decls;
    std::map<std::string, std::string> values;
    std::vector<std::function<std::string(const Options &)>> validators;
    std::string programName;
};

} // namespace vpsim

#endif // VPSIM_COMMON_OPTIONS_HPP
