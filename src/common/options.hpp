/**
 * @file
 * Minimal command-line option parser for the bench and example binaries.
 *
 * Supports "--name value" and "--name=value" forms plus boolean flags.
 * Unknown options are fatal so typos do not silently run the default
 * experiment.
 */

#ifndef VPSIM_COMMON_OPTIONS_HPP
#define VPSIM_COMMON_OPTIONS_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vpsim
{

/** Parsed command-line options with typed accessors and defaults. */
class Options
{
  public:
    /**
     * Declare an option before parsing.
     *
     * @param name Option name without the leading dashes.
     * @param default_value Default used when the option is absent.
     * @param help One-line description for --help output.
     */
    void declare(const std::string &name, const std::string &default_value,
                 const std::string &help);

    /**
     * Parse argv. Exits with usage text on --help or unknown options.
     *
     * @param program_description Shown at the top of --help output.
     */
    void parse(int argc, const char *const *argv,
               const std::string &program_description);

    /** String value of @p name (declared default if absent). */
    std::string getString(const std::string &name) const;

    /** Integer value of @p name. Fatal on non-numeric input. */
    std::int64_t getInt(const std::string &name) const;

    /** Double value of @p name. Fatal on non-numeric input. */
    double getDouble(const std::string &name) const;

    /** Boolean value: "1/true/yes/on" are true, "0/false/no/off" false. */
    bool getBool(const std::string &name) const;

    /** Comma-separated list value. Empty string yields an empty list. */
    std::vector<std::string> getList(const std::string &name) const;

    /**
     * Canonical "name=value;" string over every declared option (with
     * defaults applied), sorted by name, minus the names in @p exclude.
     * Two runs with the same fingerprint request the same experiment;
     * the grid checkpoint (sim_runner.hpp) keys cells by its hash so
     * --resume never reuses cells from a differently-configured sweep.
     */
    std::string fingerprint(
        const std::vector<std::string> &exclude = {}) const;

  private:
    struct Decl
    {
        std::string defaultValue;
        std::string help;
    };

    std::string usage(const std::string &program_description) const;

    std::map<std::string, Decl> decls;
    std::map<std::string, std::string> values;
    std::string programName;
};

} // namespace vpsim

#endif // VPSIM_COMMON_OPTIONS_HPP
