/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Every simulator component owns a StatGroup; counters registered with the
 * group can be dumped uniformly by the experiment drivers. This is a small
 * cousin of gem5's stats package: scalars and ratios only, no binning.
 */

#ifndef VPSIM_COMMON_STATS_HPP
#define VPSIM_COMMON_STATS_HPP

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vpsim
{

/** A single named scalar statistic (a counter). */
class Counter
{
  public:
    Counter() = default;

    void increment(std::uint64_t amount = 1) { count += amount; }
    void reset() { count = 0; }
    std::uint64_t value() const { return count; }

    Counter &operator++() { ++count; return *this; }
    Counter &operator+=(std::uint64_t amount) { count += amount; return *this; }

  private:
    std::uint64_t count = 0;
};

/**
 * A named collection of counters belonging to one component.
 *
 * Components register members at construction; dump() renders them with the
 * group prefix, and derived ratios can be registered as (numerator,
 * denominator) counter pairs.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name) : name(std::move(group_name)) {}

    /** Register a counter under @p stat_name; the group does not own it. */
    void addCounter(const std::string &stat_name, const Counter &counter,
                    const std::string &description = "");

    /** Register a ratio statistic numerator/denominator. */
    void addRatio(const std::string &stat_name, const Counter &numerator,
                  const Counter &denominator,
                  const std::string &description = "");

    /** Render all statistics as "group.stat value  # description" lines. */
    std::string dump() const;

    const std::string &groupName() const { return name; }

  private:
    struct ScalarEntry
    {
        std::string name;
        const Counter *counter;
        std::string description;
    };

    struct RatioEntry
    {
        std::string name;
        const Counter *numerator;
        const Counter *denominator;
        std::string description;
    };

    std::string name;
    std::vector<ScalarEntry> scalars;
    std::vector<RatioEntry> ratios;
};

} // namespace vpsim

#endif // VPSIM_COMMON_STATS_HPP
