#include "common/cancellation.hpp"

namespace vpsim
{

namespace
{

thread_local CancellationToken *t_currentToken = nullptr;

} // namespace

CancellationToken *
currentCancellationToken()
{
    return t_currentToken;
}

void
setCurrentCancellationToken(CancellationToken *token)
{
    t_currentToken = token;
}

} // namespace vpsim
