#include "common/cancellation.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace vpsim
{

namespace
{

thread_local CancellationToken *t_currentToken = nullptr;

void
makeNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0)
        (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

} // namespace

void
HeartbeatWriter::attach(int fd)
{
    close();
    pipeFd = fd;
    if (pipeFd >= 0)
        makeNonBlocking(pipeFd);
}

void
HeartbeatWriter::beat(std::uint64_t progress_units)
{
    if (pipeFd < 0)
        return;
    unsigned char frame[8];
    for (int i = 0; i < 8; ++i)
        frame[i] = static_cast<unsigned char>(
            (progress_units >> (8 * i)) & 0xff);
    // One 8-byte write is atomic on a pipe (PIPE_BUF >> 8), so frames
    // never interleave. EAGAIN (pipe full: the supervisor is behind)
    // and EPIPE (supervisor gone) both drop the frame on purpose.
    for (;;) {
        const ssize_t wrote = ::write(pipeFd, frame, sizeof(frame));
        if (wrote >= 0 || errno != EINTR)
            return;
    }
}

void
HeartbeatWriter::close()
{
    if (pipeFd >= 0)
        ::close(pipeFd);
    pipeFd = -1;
}

void
HeartbeatReader::attach(int fd)
{
    close();
    pipeFd = fd;
    latestProgress = 0;
    partialBytes = 0;
    if (pipeFd >= 0)
        makeNonBlocking(pipeFd);
}

bool
HeartbeatReader::poll()
{
    if (pipeFd < 0)
        return false;
    bool saw_frame = false;
    unsigned char buffer[256];
    for (;;) {
        const ssize_t got = ::read(pipeFd, buffer, sizeof(buffer));
        if (got < 0) {
            if (errno == EINTR)
                continue;
            break; // EAGAIN: drained. Other errors: treat as drained.
        }
        if (got == 0)
            break; // Writer closed; whatever arrived already counts.
        for (ssize_t i = 0; i < got; ++i) {
            partial[partialBytes++] = buffer[i];
            if (partialBytes < sizeof(partial))
                continue;
            std::uint64_t value = 0;
            for (int b = 7; b >= 0; --b)
                value = (value << 8) | partial[b];
            latestProgress = value;
            partialBytes = 0;
            saw_frame = true;
        }
        if (static_cast<std::size_t>(got) < sizeof(buffer))
            break;
    }
    return saw_frame;
}

void
HeartbeatReader::close()
{
    if (pipeFd >= 0)
        ::close(pipeFd);
    pipeFd = -1;
}

CancellationToken *
currentCancellationToken()
{
    return t_currentToken;
}

void
setCurrentCancellationToken(CancellationToken *token)
{
    t_currentToken = token;
}

} // namespace vpsim
