#include "common/invariant.hpp"

#include "common/logging.hpp"

namespace vpsim
{

namespace detail
{

// Cheap is the default: the always-on tier costs O(1) per model run.
std::atomic<int> g_invariantLevel{
    static_cast<int>(InvariantLevel::Cheap)};

InvariantCounters &
invariantCounters()
{
    static InvariantCounters counters;
    return counters;
}

} // namespace detail

InvariantLevel
invariantLevelFromString(const std::string &text)
{
    if (text == "off")
        return InvariantLevel::Off;
    if (text == "cheap")
        return InvariantLevel::Cheap;
    if (text == "full")
        return InvariantLevel::Full;
    fatal("--check-invariants expects off, cheap or full, got '" + text +
          "'");
}

const char *
invariantLevelName(InvariantLevel level)
{
    switch (level) {
      case InvariantLevel::Off: return "off";
      case InvariantLevel::Cheap: return "cheap";
      case InvariantLevel::Full: return "full";
    }
    return "unknown";
}

InvariantLevel
invariantLevel()
{
    return static_cast<InvariantLevel>(
        detail::g_invariantLevel.load(std::memory_order_relaxed));
}

void
setInvariantLevel(InvariantLevel level)
{
    detail::g_invariantLevel.store(static_cast<int>(level),
                                   std::memory_order_relaxed);
}

void
invariantFailed(const std::string &check, const std::string &detail_text,
                const Status &cause)
{
    detail::invariantCounters().violations.fetch_add(
        1, std::memory_order_relaxed);
    throw InvariantViolation(check, detail_text, cause);
}

std::uint64_t
invariantChecksEvaluated()
{
    return detail::invariantCounters().checksEvaluated.load(
        std::memory_order_relaxed);
}

std::uint64_t
invariantViolations()
{
    return detail::invariantCounters().violations.load(
        std::memory_order_relaxed);
}

} // namespace vpsim
