/**
 * @file
 * Clang thread-safety annotations and the project mutex wrappers.
 *
 * The experiment runtime is multithreaded (thread_pool.hpp,
 * sim_runner.hpp) and its lock discipline is enforced at compile time:
 * every mutex-protected member is declared GUARDED_BY its mutex, every
 * helper that expects a lock held says REQUIRES, and the build turns
 * the analysis into errors under Clang (-Wthread-safety
 * -Werror=thread-safety, cmake knob VPSIM_THREAD_SAFETY). Under GCC the
 * macros expand to nothing and the code compiles unchanged — the
 * annotations are documentation there, and CI's clang lint job is the
 * enforcement point.
 *
 * Raw std::mutex is banned outside this header (scripts/lint_project.py
 * rule raw-mutex): locking goes through the CAPABILITY-annotated Mutex
 * and the SCOPED_CAPABILITY MutexLock so the analysis can see every
 * acquire and release. Condition variables still use
 * std::condition_variable via MutexLock::native(); a wait keeps the
 * capability held from the analysis' point of view, which matches the
 * invariant the caller relies on (the predicate is re-checked under the
 * lock).
 */

#ifndef VPSIM_COMMON_THREAD_ANNOTATIONS_HPP
#define VPSIM_COMMON_THREAD_ANNOTATIONS_HPP

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#  if __has_attribute(guarded_by)
#    define VPSIM_THREAD_ANNOTATION(x) __attribute__((x))
#  endif
#endif
#ifndef VPSIM_THREAD_ANNOTATION
#  define VPSIM_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** The declared variable may only be accessed while @p x is held. */
#define GUARDED_BY(x) VPSIM_THREAD_ANNOTATION(guarded_by(x))

/** The declared pointer's pointee is protected by @p x. */
#define PT_GUARDED_BY(x) VPSIM_THREAD_ANNOTATION(pt_guarded_by(x))

/** The annotated function must be called with the capabilities held. */
#define REQUIRES(...) \
    VPSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** The annotated function must be called with them NOT held. */
#define EXCLUDES(...) \
    VPSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/** The annotated function acquires the capability and does not release. */
#define ACQUIRE(...) \
    VPSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** The annotated function releases a held capability. */
#define RELEASE(...) \
    VPSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** The annotated type is a capability (a lockable thing). */
#define CAPABILITY(x) VPSIM_THREAD_ANNOTATION(capability(x))

/** RAII type that acquires on construction, releases on destruction. */
#define SCOPED_CAPABILITY VPSIM_THREAD_ANNOTATION(scoped_lockable)

/** The annotated function returns a reference to the capability. */
#define RETURN_CAPABILITY(x) VPSIM_THREAD_ANNOTATION(lock_returned(x))

/** Escape hatch; every use needs a comment justifying it. */
#define NO_THREAD_SAFETY_ANALYSIS \
    VPSIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace vpsim
{

/**
 * The project mutex: std::mutex with a capability annotation.
 *
 * Prefer MutexLock for scoped locking; lock()/unlock() exist for the
 * rare hand-over-hand pattern and for the wrapper itself.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;

    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { impl.lock(); }
    void unlock() RELEASE() { impl.unlock(); }

    /**
     * The wrapped std::mutex, for std::condition_variable interop
     * only (via MutexLock::native()). Never lock it directly — the
     * analysis cannot see acquisitions that bypass the wrapper.
     */
    std::mutex &native() { return impl; }

  private:
    std::mutex impl;
};

/**
 * Scoped lock over a Mutex, visible to the thread-safety analysis.
 *
 * Holds a std::unique_lock so condition variables can wait on it:
 *
 *   MutexLock lock(poolMutex);
 *   while (pending != 0)          // guarded reads stay in this scope,
 *       allDone.wait(lock.native()); // not inside a lambda the
 *                                    // analysis cannot attribute
 */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) ACQUIRE(mutex)
        : lock(mutex.native())
    {
    }

    ~MutexLock() RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    /**
     * The underlying unique_lock, for std::condition_variable::wait
     * and wait_for. The lock is held again when wait returns, so the
     * capability stays held for the analysis throughout — which is the
     * contract the surrounding code depends on anyway.
     */
    std::unique_lock<std::mutex> &native() { return lock; }

  private:
    std::unique_lock<std::mutex> lock;
};

} // namespace vpsim

#endif // VPSIM_COMMON_THREAD_ANNOTATIONS_HPP
