/**
 * @file
 * Cooperative cancellation with progress heartbeats.
 *
 * The experiment runtime's watchdog (`--job-timeout`) must be able to
 * detect a stuck or runaway simulation job and stop it without killing
 * the whole sweep. Threads cannot be killed safely, so cancellation is
 * cooperative: each running job is handed a CancellationToken, the
 * machine models publish progress (cycles simulated) through
 * simHeartbeat() from their main loops, and the watchdog cancels a
 * token whose progress counter stops advancing. The next heartbeat
 * then throws JobCanceledError, which unwinds the job like any other
 * failure (--keep-going: a NaN cell; otherwise: abort the run).
 *
 * The current token is carried in a thread-local so the models' deep
 * call stacks need no plumbing; jobs that never heartbeat (no machine
 * loop) are still *detected* by the watchdog but can only be reported,
 * not stopped.
 *
 * Thread safety: the token is deliberately lock-free — a heartbeat
 * sits on every machine model's inner loop, so it must cost two
 * relaxed atomic accesses, not a mutex. There is therefore nothing
 * here for GUARDED_BY (thread_annotations.hpp) to guard; the
 * shared-state contract is the two std::atomic members below, and the
 * watchdog tolerates the staleness relaxed ordering allows (it only
 * ever compares successive progress samples).
 */

#ifndef VPSIM_COMMON_CANCELLATION_HPP
#define VPSIM_COMMON_CANCELLATION_HPP

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/status.hpp"

namespace vpsim
{

/** Shared flag + progress counter between one job and the watchdog. */
class CancellationToken
{
  public:
    /** Ask the job to stop at its next heartbeat. */
    void requestCancel() { cancelRequested.store(true); }

    /** The watchdog asked this job to stop. */
    bool canceled() const
    {
        return cancelRequested.load(std::memory_order_relaxed);
    }

    /** Publish monotonic progress (e.g. cycles simulated). */
    void beat(std::uint64_t progress_units)
    {
        progressCounter.store(progress_units,
                              std::memory_order_relaxed);
    }

    /** Last published progress value. */
    std::uint64_t progress() const
    {
        return progressCounter.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelRequested{false};
    std::atomic<std::uint64_t> progressCounter{0};
};

/** Thrown by a heartbeat once the job's token was canceled. */
class JobCanceledError : public std::runtime_error
{
  public:
    explicit JobCanceledError(const std::string &reason)
        : std::runtime_error(reason),
          errorStatus(Status::error(StatusCode::kTimeout, reason))
    {
    }

    /** kTimeout Status for callers that branch on failure class. */
    const Status &status() const { return errorStatus; }

  private:
    Status errorStatus;
};

/** The calling thread's active token (nullptr outside a watched job). */
CancellationToken *currentCancellationToken();

/** Install/clear the calling thread's token (runtime use only). */
void setCurrentCancellationToken(CancellationToken *token);

/**
 * Publish @p progress_units from a model's main loop and honor a
 * pending cancellation by throwing JobCanceledError. No-op (one
 * thread-local load) when the thread runs no watched job, so models
 * can call it unconditionally.
 */
inline void
simHeartbeat(std::uint64_t progress_units)
{
    CancellationToken *token = currentCancellationToken();
    if (token == nullptr)
        return;
    token->beat(progress_units);
    if (token->canceled()) {
        throw JobCanceledError(
            "job canceled by the watchdog after " +
            std::to_string(progress_units) + " progress units");
    }
}

} // namespace vpsim

#endif // VPSIM_COMMON_CANCELLATION_HPP
