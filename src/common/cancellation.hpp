/**
 * @file
 * Cooperative cancellation with progress heartbeats.
 *
 * The experiment runtime's watchdog (`--job-timeout`) must be able to
 * detect a stuck or runaway simulation job and stop it without killing
 * the whole sweep. Threads cannot be killed safely, so cancellation is
 * cooperative: each running job is handed a CancellationToken, the
 * machine models publish progress (cycles simulated) through
 * simHeartbeat() from their main loops, and the watchdog cancels a
 * token whose progress counter stops advancing. The next heartbeat
 * then throws JobCanceledError, which unwinds the job like any other
 * failure (--keep-going: a NaN cell; otherwise: abort the run).
 *
 * The current token is carried in a thread-local so the models' deep
 * call stacks need no plumbing; jobs that never heartbeat (no machine
 * loop) are still *detected* by the watchdog but can only be reported,
 * not stopped.
 *
 * Thread safety: the token is deliberately lock-free — a heartbeat
 * sits on every machine model's inner loop, so it must cost two
 * relaxed atomic accesses, not a mutex. There is therefore nothing
 * here for GUARDED_BY (thread_annotations.hpp) to guard; the
 * shared-state contract is the two std::atomic members below, and the
 * watchdog tolerates the staleness relaxed ordering allows (it only
 * ever compares successive progress samples).
 */

#ifndef VPSIM_COMMON_CANCELLATION_HPP
#define VPSIM_COMMON_CANCELLATION_HPP

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/status.hpp"

namespace vpsim
{

/** Shared flag + progress counter between one job and the watchdog. */
class CancellationToken
{
  public:
    /** Ask the job to stop at its next heartbeat. */
    void requestCancel() { cancelRequested.store(true); }

    /** The watchdog asked this job to stop. */
    bool canceled() const
    {
        return cancelRequested.load(std::memory_order_relaxed);
    }

    /** Publish monotonic progress (e.g. cycles simulated). */
    void beat(std::uint64_t progress_units)
    {
        progressCounter.store(progress_units,
                              std::memory_order_relaxed);
    }

    /** Last published progress value. */
    std::uint64_t progress() const
    {
        return progressCounter.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelRequested{false};
    std::atomic<std::uint64_t> progressCounter{0};
};

/** Thrown by a heartbeat once the job's token was canceled. */
class JobCanceledError : public std::runtime_error
{
  public:
    explicit JobCanceledError(const std::string &reason)
        : std::runtime_error(reason),
          errorStatus(Status::error(StatusCode::kTimeout, reason))
    {
    }

    /** kTimeout Status for callers that branch on failure class. */
    const Status &status() const { return errorStatus; }

  private:
    Status errorStatus;
};

/**
 * Worker end of a cross-process heartbeat pipe.
 *
 * The in-process watchdog above reads a CancellationToken's progress
 * counter directly; a fleet worker process (src/fleet) publishes the
 * same monotonic counter to its supervisor by writing 8-byte frames to
 * an inherited pipe fd. Writes are non-blocking and best-effort: a full
 * pipe drops the frame (a later beat supersedes it) and a closed read
 * end (supervisor died) is ignored — the worker must never be killed by
 * SIGPIPE just because nobody is listening anymore.
 */
class HeartbeatWriter
{
  public:
    HeartbeatWriter() = default;
    ~HeartbeatWriter() { close(); }

    HeartbeatWriter(const HeartbeatWriter &) = delete;
    HeartbeatWriter &operator=(const HeartbeatWriter &) = delete;

    /** Adopt pipe write end @p fd (made non-blocking); -1 disables. */
    void attach(int fd);

    bool attached() const { return pipeFd >= 0; }

    /** Publish @p progress_units (monotonic) to the supervisor. */
    void beat(std::uint64_t progress_units);

    /** Close the fd (idempotent). */
    void close();

  private:
    int pipeFd = -1;
};

/**
 * Supervisor end of a worker heartbeat pipe.
 *
 * poll() drains every frame currently buffered and keeps the latest
 * progress value; the supervisor's hang detector compares successive
 * values exactly like the in-process watchdog compares token progress
 * samples.
 */
class HeartbeatReader
{
  public:
    HeartbeatReader() = default;
    ~HeartbeatReader() { close(); }

    HeartbeatReader(const HeartbeatReader &) = delete;
    HeartbeatReader &operator=(const HeartbeatReader &) = delete;

    /** Movable so owners (fleet worker handles) can live in vectors. */
    HeartbeatReader(HeartbeatReader &&other) noexcept { swap(other); }
    HeartbeatReader &operator=(HeartbeatReader &&other) noexcept
    {
        if (this != &other) {
            close();
            swap(other);
        }
        return *this;
    }

    /** Adopt pipe read end @p fd (made non-blocking); -1 disables. */
    void attach(int fd);

    bool attached() const { return pipeFd >= 0; }

    /**
     * Drain buffered frames. Returns true when at least one complete
     * frame arrived since the last poll; latest() then holds the newest
     * progress value. A torn final frame is kept pending until its
     * remaining bytes arrive.
     */
    bool poll();

    /** Newest progress value any poll() has seen. */
    std::uint64_t latest() const { return latestProgress; }

    /** Close the fd (idempotent). */
    void close();

  private:
    void swap(HeartbeatReader &other) noexcept
    {
        std::swap(pipeFd, other.pipeFd);
        std::swap(latestProgress, other.latestProgress);
        for (std::size_t i = 0; i < sizeof(partial); ++i)
            std::swap(partial[i], other.partial[i]);
        std::swap(partialBytes, other.partialBytes);
    }

    int pipeFd = -1;
    std::uint64_t latestProgress = 0;
    unsigned char partial[8] = {};
    std::size_t partialBytes = 0;
};

/** The calling thread's active token (nullptr outside a watched job). */
CancellationToken *currentCancellationToken();

/** Install/clear the calling thread's token (runtime use only). */
void setCurrentCancellationToken(CancellationToken *token);

/**
 * Publish @p progress_units from a model's main loop and honor a
 * pending cancellation by throwing JobCanceledError. No-op (one
 * thread-local load) when the thread runs no watched job, so models
 * can call it unconditionally.
 */
inline void
simHeartbeat(std::uint64_t progress_units)
{
    CancellationToken *token = currentCancellationToken();
    if (token == nullptr)
        return;
    token->beat(progress_units);
    if (token->canceled()) {
        throw JobCanceledError(
            "job canceled by the watchdog after " +
            std::to_string(progress_units) + " progress units");
    }
}

} // namespace vpsim

#endif // VPSIM_COMMON_CANCELLATION_HPP
