#include "common/stats.hpp"

#include <iomanip>
#include <sstream>

namespace vpsim
{

void
StatGroup::addCounter(const std::string &stat_name, const Counter &counter,
                      const std::string &description)
{
    scalars.push_back({stat_name, &counter, description});
}

void
StatGroup::addRatio(const std::string &stat_name, const Counter &numerator,
                    const Counter &denominator,
                    const std::string &description)
{
    ratios.push_back({stat_name, &numerator, &denominator, description});
}

std::string
StatGroup::dump() const
{
    std::ostringstream oss;
    for (const auto &entry : scalars) {
        oss << name << "." << std::left << std::setw(32) << entry.name
            << " " << std::right << std::setw(14) << entry.counter->value();
        if (!entry.description.empty())
            oss << "  # " << entry.description;
        oss << "\n";
    }
    for (const auto &entry : ratios) {
        const double denom =
            static_cast<double>(entry.denominator->value());
        const double ratio = denom == 0.0
            ? 0.0
            : static_cast<double>(entry.numerator->value()) / denom;
        oss << name << "." << std::left << std::setw(32) << entry.name
            << " " << std::right << std::setw(14) << std::fixed
            << std::setprecision(6) << ratio;
        if (!entry.description.empty())
            oss << "  # " << entry.description;
        oss << "\n";
    }
    return oss.str();
}

} // namespace vpsim
