/**
 * @file
 * CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.
 *
 * Used as the integrity footer of the binary trace format: a sweep that
 * silently simulates a bit-flipped cache entry produces wrong figures
 * with no diagnostic, so every trace file carries a checksum and the
 * reader verifies it. The standard reflected CRC-32 ("crc32b", as in
 * zlib/PNG/gzip) keeps files checkable with external tools.
 */

#ifndef VPSIM_COMMON_CRC32_HPP
#define VPSIM_COMMON_CRC32_HPP

#include <array>
#include <cstddef>
#include <cstdint>

namespace vpsim
{

namespace detail
{

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? 0xedb88320u : 0u);
        table[i] = crc;
    }
    return table;
}

inline constexpr std::array<std::uint32_t, 256> crc32Table =
    makeCrc32Table();

} // namespace detail

/** Incremental CRC-32: running checksum over a byte stream. */
class Crc32
{
  public:
    /** Fold @p size bytes at @p data into the checksum. */
    void
    update(const void *data, std::size_t size)
    {
        const auto *bytes = static_cast<const unsigned char *>(data);
        std::uint32_t crc = state;
        for (std::size_t i = 0; i < size; ++i)
            crc = (crc >> 8) ^ detail::crc32Table[(crc ^ bytes[i]) & 0xffu];
        state = crc;
    }

    /** Checksum of everything folded in so far. */
    std::uint32_t value() const { return state ^ 0xffffffffu; }

  private:
    std::uint32_t state = 0xffffffffu;
};

/** One-shot CRC-32 of @p size bytes at @p data. */
inline std::uint32_t
crc32(const void *data, std::size_t size)
{
    Crc32 crc;
    crc.update(data, size);
    return crc.value();
}

} // namespace vpsim

#endif // VPSIM_COMMON_CRC32_HPP
