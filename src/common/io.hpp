/**
 * @file
 * File I/O layer with deterministic fault injection.
 *
 * Every byte the trace pipeline moves to or from disk goes through
 * io::File, which consults a process-global FaultInjector before each
 * operation. In production the injector is inactive and the layer is a
 * thin RAII wrapper over std::FILE; under `--fault-inject` it fails the
 * Nth read/write/open with a chosen errno, tears a write short, raises
 * a signal, or throws — so every failure path of the trace cache and
 * the experiment runtime is exercisable in deterministic tests instead
 * of waiting for a full disk at minute forty of a sweep.
 *
 * Error messages carry strerror(errno) detail and a StatusCode from the
 * taxonomy in status.hpp (kIo for transient failures worth retrying,
 * kCorrupt for short files) so callers can branch on failure class.
 */

#ifndef VPSIM_COMMON_IO_HPP
#define VPSIM_COMMON_IO_HPP

#include <atomic>
#include <cstdio>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/thread_annotations.hpp"

namespace vpsim
{
namespace io
{

/** What an injected fault does to the operation it fires on. */
enum class FaultKind
{
    None,   ///< No fault; operation proceeds normally.
    Eio,    ///< Fail with EIO ("Input/output error").
    Enospc, ///< Fail with ENOSPC ("No space left on device").
    Torn,   ///< Write only a prefix of the bytes, then report success.
    Sigint, ///< raise(SIGINT) — simulates Ctrl-C at this exact point.
    Throw,  ///< Throw std::runtime_error — simulates a crashing job.
    MmapFail,      ///< mmap() itself fails; callers must fall back.
    BlockCrc,      ///< A v3 block CRC check sees a mismatch (bit rot).
    EnospcCapture, ///< ENOSPC mid-capture on a streaming trace writer.
    Kill9,         ///< raise(SIGKILL) — an unannounced process death.
    Hang,          ///< Stop making progress (fleet workers: stop
                   ///< heartbeating and sleep until killed).
};

/**
 * Deterministic, seeded fault injector.
 *
 * Configured from a spec string of comma-separated clauses:
 *
 *   <op>:<n>:<kind>    fire <kind> on the n-th (1-based) <op>
 *   seed:<n>           seed the RNG used for torn-write cut points
 *
 * where <op> is one of open, read, write, flush, rename, remove, job,
 * mmap, block, capture, worker and <kind> is eio, enospc, torn, sigint,
 * throw, mmap-fail, block-crc, enospc-capture, kill9, hang. Example:
 *
 *   --fault-inject write:3:torn,block:2:block-crc,capture:4:enospc-capture
 *
 * The mmap op is counted once per MappedFile::map(); block once per v3
 * block-CRC validation; capture once per streaming-capture append; the
 * worker op once per fleet worker-process launch (the fleet supervisor
 * imposes the drawn kind — kill9, hang, or enospc — on that worker, see
 * src/fleet/supervisor.hpp). kill9 on any other op raises SIGKILL at
 * that operation; hang is only meaningful for workers.
 *
 * Operation counters are global to the process and thread-safe, so the
 * n-th write is the n-th write the whole run performs, wherever it
 * comes from. Each clause fires exactly once.
 */
class FaultInjector
{
  public:
    /** Parse @p spec (empty deactivates). fatal() on malformed spec. */
    void configure(const std::string &spec);

    /** True when any clause is armed (fired clauses stay configured). */
    bool active() const
    {
        return isActive.load(std::memory_order_relaxed);
    }

    /**
     * Record one occurrence of @p op and return the fault to apply, if
     * a clause matches this occurrence. Inactive injectors return None
     * without taking the lock.
     */
    FaultKind next(const char *op);

    /** Seeded cut point in [0, size) for a torn write of @p size bytes. */
    std::uint64_t tornCut(std::uint64_t size);

  private:
    struct Clause
    {
        std::string op;
        std::uint64_t index = 0;
        FaultKind kind = FaultKind::None;
        bool fired = false;
    };

    mutable Mutex mutex;
    std::vector<Clause> clauses GUARDED_BY(mutex);
    std::map<std::string, std::uint64_t> counts GUARDED_BY(mutex);
    Rng rng GUARDED_BY(mutex);
    /**
     * Atomic so the per-operation fast path in next() can skip the
     * lock: a plain bool there was a data race against configure()
     * (benign only by accident of timing, and exactly what
     * -Werror=thread-safety exists to reject).
     */
    std::atomic<bool> isActive{false};
};

/** The process-global injector consulted by every io::File operation. */
FaultInjector &faultInjector();

/** Shorthand: configure the global injector (fatal on bad spec). */
void configureFaultInjection(const std::string &spec);

/**
 * RAII file handle; all operations are full-or-error and routed
 * through the global FaultInjector.
 */
class File
{
  public:
    File() = default;
    ~File() { close(); }

    File(const File &) = delete;
    File &operator=(const File &) = delete;

    /** Open @p file_path for binary reading. */
    [[nodiscard]] Status openForRead(const std::string &file_path);

    /** Open (create/truncate) @p file_path for binary writing. */
    [[nodiscard]] Status openForWrite(const std::string &file_path);

    bool isOpen() const { return file != nullptr; }

    const std::string &path() const { return filePath; }

    /**
     * Read exactly @p size bytes into @p buffer.
     *
     * @return kIo on a read error, kCorrupt("unexpected end of file")
     *         when the file ends early — short files are data
     *         corruption from the caller's point of view.
     */
    [[nodiscard]] Status readExact(void *buffer, std::size_t size);

    /** Write all @p size bytes of @p buffer (kIo on failure). */
    [[nodiscard]] Status writeAll(const void *buffer, std::size_t size);

    /** Flush buffered writes to the OS (kIo on failure). */
    [[nodiscard]] Status flush();

    /**
     * Flush and fsync(2) so the bytes survive a crash or power loss.
     * Routed through the "flush" fault counter like flush(); a capture
     * that skips this before its atomic rename can publish a file whose
     * tail never reached the disk.
     */
    [[nodiscard]] Status sync();

    /** True when the read position is at end of file. */
    bool atEof();

    /** Close the handle (idempotent; errors ignored). */
    void close();

  private:
    std::FILE *file = nullptr;
    std::string filePath;
};

/**
 * Read-only memory mapping of a whole file.
 *
 * The mapping is the bulk-read counterpart of File::readExact: callers
 * that validate and decode a complete file (the trace reader) map it
 * once and parse in place instead of issuing one buffered read per
 * record. map() consults the global FaultInjector's "open" counter like
 * File::openForRead, then the "mmap" counter (for mmap-fail clauses),
 * then records exactly one "read" occurrence — the bulk read of the
 * whole file — and honors read-class kinds on it, so `read:` specs fire
 * on the mmap path too instead of silently skipping it. The v2 trace
 * reader still prefers buffered reads while the injector is active so
 * that long-standing per-record op counts in fault specs stay stable;
 * the v3 streaming sources use the mapping under injection directly.
 *
 * Any map() failure (open error, injected fault, empty or unmappable
 * file) is reported as a Status and leaves the object unmapped; callers
 * are expected to fall back to File rather than treat it as fatal.
 */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile() { unmap(); }

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /** Map @p file_path read-only in its entirety (kIo on failure). */
    [[nodiscard]] Status map(const std::string &file_path);

    bool isMapped() const { return base != nullptr; }

    /** First byte of the mapping (nullptr when not mapped). */
    const unsigned char *data() const
    {
        return static_cast<const unsigned char *>(base);
    }

    /** File size in bytes (0 when not mapped). */
    std::uint64_t size() const { return length; }

    const std::string &path() const { return filePath; }

    /** Release the mapping (idempotent). */
    void unmap();

  private:
    void *base = nullptr;
    std::uint64_t length = 0;
    std::string filePath;
};

/** std::remove with a Status and strerror detail. */
[[nodiscard]] Status removeFile(const std::string &path);

/** std::rename with a Status and strerror detail (injectable). */
[[nodiscard]] Status renameFile(const std::string &from,
                                const std::string &to);

} // namespace io
} // namespace vpsim

#endif // VPSIM_COMMON_IO_HPP
