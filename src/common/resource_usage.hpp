/**
 * @file
 * Process resource measurement for the performance harness
 * (bench/perf_harness.cpp, docs/PERF.md).
 *
 * Two pieces:
 *  - Stopwatch: a monotonic wall-clock timer (std::chrono::steady_clock
 *    only — the determinism lint bans calendar clocks in simulation
 *    code, and elapsed-time measurement needs monotonicity anyway);
 *  - RssSampler: a background thread that polls the process's resident
 *    set and keeps a per-phase peak. getrusage()'s ru_maxrss is a
 *    process-lifetime high-water mark, so it cannot attribute memory to
 *    one benchmarked model once a bigger phase has run; the sampler
 *    resets its own peak at each beginPhase().
 *
 * The sampler's peak/stop state is shared between the caller and the
 * sampling thread; it is guarded by the project Mutex and annotated for
 * clang's thread-safety analysis (thread_annotations.hpp), and the
 * concurrency test in tests/test_thread_pool.cpp runs it under TSan
 * (scripts/tsan_check.sh).
 */

#ifndef VPSIM_COMMON_RESOURCE_USAGE_HPP
#define VPSIM_COMMON_RESOURCE_USAGE_HPP

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <thread>

#include "common/thread_annotations.hpp"

namespace vpsim
{

/** Monotonic wall-clock stopwatch. */
class Stopwatch
{
  public:
    Stopwatch() : start(std::chrono::steady_clock::now()) {}

    /** Restart timing from now. */
    void restart() { start = std::chrono::steady_clock::now(); }

    /** Seconds elapsed since construction or the last restart(). */
    double
    seconds() const
    {
        const auto elapsed = std::chrono::steady_clock::now() - start;
        return std::chrono::duration<double>(elapsed).count();
    }

  private:
    std::chrono::steady_clock::time_point start;
};

/**
 * Peak-resident-set sampler.
 *
 * Spawns one sampling thread on construction; the thread polls the
 * current RSS every @p period and folds it into a peak that
 * beginPhase() resets and peakBytes() reads. Sampling is inherently an
 * underestimate (a spike shorter than the period can be missed), which
 * is fine for the harness's purpose of comparing models against each
 * other; the process-lifetime ru_maxrss is reported alongside as the
 * upper bound.
 */
class RssSampler
{
  public:
    explicit RssSampler(
        std::chrono::milliseconds period = std::chrono::milliseconds(5));

    /** Stops and joins the sampling thread. */
    ~RssSampler();

    RssSampler(const RssSampler &) = delete;
    RssSampler &operator=(const RssSampler &) = delete;

    /** Start a measurement phase: the peak restarts from current RSS. */
    void beginPhase() EXCLUDES(mutex);

    /** Peak RSS in bytes observed since the last beginPhase(). */
    std::size_t peakBytes() const EXCLUDES(mutex);

    /** Current resident set in bytes (/proc/self/statm; 0 if absent). */
    static std::size_t currentRssBytes();

    /** Process-lifetime peak RSS in bytes (getrusage ru_maxrss). */
    static std::size_t processPeakRssBytes();

  private:
    void samplerLoop() EXCLUDES(mutex);

    mutable Mutex mutex;
    std::size_t peak GUARDED_BY(mutex) = 0;
    bool stopRequested GUARDED_BY(mutex) = false;
    /** Signaled under mutex to wake the sampler for prompt shutdown. */
    std::condition_variable wakeup;

    const std::chrono::milliseconds samplePeriod;
    std::thread worker;
};

} // namespace vpsim

#endif // VPSIM_COMMON_RESOURCE_USAGE_HPP
