/**
 * @file
 * Stride value predictor of Gabbay & Mendelson [7][8]: predicts
 * last value + stride, where the stride is the delta between the two most
 * recent outcomes.
 *
 * Following the paper (§3.1), the predictor is by default updated
 * *speculatively* right after the lookup (the table's last-value advances
 * by the stride, so back-to-back copies of the same instruction each get
 * the next value in the sequence), and the correct value is repaired in at
 * train() time if the speculation was wrong.
 */

#ifndef VPSIM_PREDICTOR_STRIDE_HPP
#define VPSIM_PREDICTOR_STRIDE_HPP

#include "predictor/table_storage.hpp"
#include "predictor/value_predictor.hpp"

namespace vpsim
{

/** Classic (last + stride) predictor. */
class StridePredictor : public ValuePredictor
{
  public:
    /**
     * @param table_capacity 0 = infinite, else power-of-two entries.
     * @param speculative_update Advance table state at lookup (paper
     *        default); when false, state changes only at train().
     */
    explicit StridePredictor(std::size_t table_capacity = 0,
                             bool speculative_update = true)
        : table(table_capacity),
          speculativeUpdate(speculative_update)
    {}

    RawPrediction lookup(Addr pc) override;
    void train(Addr pc, Value actual,
               bool spec_was_correct = false) override;
    void abandon(Addr pc) override;
    StrideInfo strideInfo(Addr pc) const override;
    std::string name() const override { return "stride"; }
    void reset() override { table.clear(); }

    std::size_t tableSize() const { return table.size(); }

  private:
    struct Entry
    {
        /** Architectural last value (as trained). */
        Value lastValue = 0;
        /** Speculatively advanced last value (== lastValue when clean). */
        Value specValue = 0;
        Value stride = 0;
        /** 0 = empty, 1 = one outcome seen, 2 = stride established. */
        std::uint8_t timesSeen = 0;
        /**
         * Lookups whose outcomes have not trained yet (copies in
         * flight). A repair after a wrong speculation restores
         * specValue to actual + inFlight * stride, i.e. it re-predicts
         * the squashed in-flight copies instead of rewinding the table
         * behind them.
         */
        std::uint32_t inFlight = 0;
    };

    PredictionTable<Entry> table;
    bool speculativeUpdate;
};

} // namespace vpsim

#endif // VPSIM_PREDICTOR_STRIDE_HPP
