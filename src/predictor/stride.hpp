/**
 * @file
 * Stride value predictor of Gabbay & Mendelson [7][8]: predicts
 * last value + stride, where the stride is the delta between the two most
 * recent outcomes.
 *
 * Following the paper (§3.1), the predictor is by default updated
 * *speculatively* right after the lookup (the table's last-value advances
 * by the stride, so back-to-back copies of the same instruction each get
 * the next value in the sequence), and the correct value is repaired in at
 * train() time if the speculation was wrong.
 */

#ifndef VPSIM_PREDICTOR_STRIDE_HPP
#define VPSIM_PREDICTOR_STRIDE_HPP

#include "predictor/table_storage.hpp"
#include "predictor/value_predictor.hpp"

namespace vpsim
{

/** Classic (last + stride) predictor. */
class StridePredictor : public ValuePredictor
{
  public:
    /**
     * @param table_capacity 0 = infinite, else power-of-two entries.
     * @param speculative_update Advance table state at lookup (paper
     *        default); when false, state changes only at train().
     */
    explicit StridePredictor(std::size_t table_capacity = 0,
                             bool speculative_update = true)
        : table(table_capacity),
          speculativeUpdate(speculative_update)
    {}

    RawPrediction lookup(Addr pc) override;
    void train(Addr pc, Value actual,
               bool spec_was_correct = false) override;

    /**
     * Fusion of lookup() + train() on one table probe, with the state
     * transitions of the unfused pair applied in their original order.
     * Two algebraic simplifications fall out of the fusion: lookup's
     * ++inFlight is immediately undone by train's decrement (no other
     * observer runs in between), and the wrong-speculation repair
     * projects over the *pre-lookup* in-flight count, so inFlight is
     * read but never written. The data-dependent decisions are ternary
     * selects rather than branches: prediction correctness flips with
     * the simulated values, and a mispredicted branch per instruction
     * would dominate this whole path. Defined inline so callers that
     * devirtualize via fusedClass() absorb the body into their loop.
     *
     * The three-argument form also hands out the entry's co-located
     * classifier slot (infinite tables only — see the base class).
     */
    RawPrediction
    lookupTrain(Addr pc, Value actual) override
    {
        ClassifierState *ignored;
        return lookupTrain(pc, actual, ignored);
    }

    RawPrediction
    lookupTrain(Addr pc, Value actual, ClassifierState *&cls) override
    {
        Entry &entry = table.findOrAllocateFused(pc);
        cls = table.isInfinite() ? &entry.cls : nullptr;
        const bool has_history = entry.timesSeen != 0;
        const Value predicted = entry.specValue + entry.stride;
        RawPrediction raw;
        raw.hasPrediction = has_history;
        raw.value = has_history ? predicted : Value{0};
        const bool spec_advance = speculativeUpdate && has_history;
        const bool spec_was_correct = has_history && predicted == actual;

        const Value observed = actual - entry.lastValue;
        const bool stable = has_history && observed == entry.stride;
        entry.stride = has_history ? observed : entry.stride;
        entry.lastValue = actual;
        const Value repaired = stable
            ? actual + entry.stride * static_cast<Value>(entry.inFlight)
            : actual;
        // Wrong speculation → repair; correct speculation keeps lookup's
        // advance (specValue = predicted); no history → specValue would
        // only be touched by train's plain repair.
        entry.specValue = spec_was_correct
            ? (spec_advance ? predicted : entry.specValue)
            : repaired;
        entry.timesSeen = entry.timesSeen < 2
            ? static_cast<std::uint8_t>(entry.timesSeen + 1)
            : entry.timesSeen;
        return raw;
    }

    FusedClass fusedClass() const override { return FusedClass::Stride; }
    void abandon(Addr pc) override;
    StrideInfo strideInfo(Addr pc) const override;
    void prefetchBlock(const Addr *pcs, std::size_t n) override
    {
        table.probeBlock(pcs, n);
    }
    std::string name() const override { return "stride"; }
    void reset() override { table.clear(); }

    std::size_t tableSize() const { return table.size(); }

  private:
    struct Entry
    {
        /** Architectural last value (as trained). */
        Value lastValue = 0;
        /** Speculatively advanced last value (== lastValue when clean). */
        Value specValue = 0;
        Value stride = 0;
        /** 0 = empty, 1 = one outcome seen, 2 = stride established. */
        std::uint8_t timesSeen = 0;
        /**
         * Lookups whose outcomes have not trained yet (copies in
         * flight). A repair after a wrong speculation restores
         * specValue to actual + inFlight * stride, i.e. it re-predicts
         * the squashed in-flight copies instead of rewinding the table
         * behind them.
         */
        std::uint32_t inFlight = 0;
        /** Classifier scratch (owned by ClassifiedPredictor). */
        ClassifierState cls;
    };

    PredictionTable<Entry> table;
    bool speculativeUpdate;
};

} // namespace vpsim

#endif // VPSIM_PREDICTOR_STRIDE_HPP
