#include "predictor/last_value.hpp"

namespace vpsim
{

RawPrediction
LastValuePredictor::lookup(Addr pc)
{
    const Entry *entry = table.find(pc);
    if (!entry || !entry->seen)
        return {};
    return {true, entry->lastValue};
}

void
LastValuePredictor::train(Addr pc, Value actual, bool spec_was_correct)
{
    (void)spec_was_correct; // last-value lookups never advance state

    Entry &entry = table.findOrAllocate(pc);
    entry.lastValue = actual;
    entry.seen = true;
}

StrideInfo
LastValuePredictor::strideInfo(Addr pc) const
{
    const Entry *entry = table.find(pc);
    if (!entry || !entry->seen)
        return {};
    // Last-value prediction is the stride == 0 special case.
    return {true, entry->lastValue, 0};
}

} // namespace vpsim
