/**
 * @file
 * Last-value predictor of Lipasti et al. [13][14]: predicts that an
 * instruction produces the same value it produced last time.
 */

#ifndef VPSIM_PREDICTOR_LAST_VALUE_HPP
#define VPSIM_PREDICTOR_LAST_VALUE_HPP

#include "predictor/table_storage.hpp"
#include "predictor/value_predictor.hpp"

namespace vpsim
{

/** Last-value predictor with infinite or direct-mapped storage. */
class LastValuePredictor : public ValuePredictor
{
  public:
    /** @param table_capacity 0 = infinite, else power-of-two entries. */
    explicit LastValuePredictor(std::size_t table_capacity = 0)
        : table(table_capacity)
    {}

    RawPrediction lookup(Addr pc) override;
    void train(Addr pc, Value actual,
               bool spec_was_correct = false) override;

    /**
     * Fused lookup() + train() on one probe. A fresh allocation reads
     * as "no history" exactly like lookup()'s find() miss (including
     * the finite-table eviction case: the evicted victim had a
     * different tag, so lookup() would have missed too). Inline for
     * the fusedClass() devirtualized path.
     */
    RawPrediction
    lookupTrain(Addr pc, Value actual) override
    {
        ClassifierState *ignored;
        return lookupTrain(pc, actual, ignored);
    }

    RawPrediction
    lookupTrain(Addr pc, Value actual, ClassifierState *&cls) override
    {
        Entry &entry = table.findOrAllocateFused(pc);
        cls = table.isInfinite() ? &entry.cls : nullptr;
        RawPrediction raw;
        if (entry.seen)
            raw = {true, entry.lastValue};
        entry.lastValue = actual;
        entry.seen = true;
        return raw;
    }

    FusedClass
    fusedClass() const override
    {
        return FusedClass::LastValue;
    }

    StrideInfo strideInfo(Addr pc) const override;
    void prefetchBlock(const Addr *pcs, std::size_t n) override
    {
        table.probeBlock(pcs, n);
    }
    std::string name() const override { return "last-value"; }
    void reset() override { table.clear(); }

    /** Resident entries (for tests). */
    std::size_t tableSize() const { return table.size(); }

  private:
    struct Entry
    {
        Value lastValue = 0;
        bool seen = false;
        /** Classifier scratch (owned by ClassifiedPredictor). */
        ClassifierState cls;
    };

    PredictionTable<Entry> table;
};

} // namespace vpsim

#endif // VPSIM_PREDICTOR_LAST_VALUE_HPP
