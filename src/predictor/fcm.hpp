/**
 * @file
 * Finite Context Method (FCM) value predictor, after Sazeides & Smith,
 * "The Predictability of Data Values" [22] (cited by the paper §2.1 as
 * the further study of prediction methods).
 *
 * A first-level table records, per static instruction, a hash of the
 * last @c order outcome values (the context); a shared second-level
 * table maps contexts to the value that followed them last time. FCM
 * catches repeating non-arithmetic sequences (e.g. pointers cycling
 * through a ring, period-k patterns) that defeat last-value and stride
 * predictors. It is an extension beyond the paper's evaluated
 * configuration, used by the predictor ablation benches.
 */

#ifndef VPSIM_PREDICTOR_FCM_HPP
#define VPSIM_PREDICTOR_FCM_HPP

#include <vector>

#include "predictor/table_storage.hpp"
#include "predictor/value_predictor.hpp"

namespace vpsim
{

/** Order-N finite context method predictor. */
class FcmPredictor : public ValuePredictor
{
  public:
    /**
     * @param context_order Number of recent values hashed into the
     *        context (typically 2-4).
     * @param table_capacity First-level capacity (0 = infinite).
     * @param value_table_bits log2 of the shared second-level table.
     */
    explicit FcmPredictor(unsigned context_order = 2,
                          std::size_t table_capacity = 0,
                          unsigned value_table_bits = 16);

    RawPrediction lookup(Addr pc) override;
    void train(Addr pc, Value actual,
               bool spec_was_correct = false) override;
    StrideInfo strideInfo(Addr pc) const override;
    void prefetchBlock(const Addr *pcs, std::size_t n) override
    {
        // Only the first level is pc-indexed; the shared value table's
        // index needs the context hash, which the probe itself builds.
        contexts.probeBlock(pcs, n);
    }
    std::string name() const override;
    void reset() override;

    std::size_t tableSize() const { return contexts.size(); }

  private:
    struct ContextEntry
    {
        /** Ring buffer of the most recent outcome values. */
        Value recent[8] = {};
        /** Next ring slot to overwrite. */
        std::uint8_t head = 0;
        /** How many values have been recorded (for warmup). */
        std::uint8_t valuesSeen = 0;
    };

    struct ValueEntry
    {
        std::uint64_t tag = 0;
        Value value = 0;
        bool valid = false;
    };

    std::uint64_t contextHash(const ContextEntry &entry) const;
    std::size_t valueIndex(Addr pc, std::uint64_t context) const;

    unsigned order;
    PredictionTable<ContextEntry> contexts;
    std::vector<ValueEntry> values;
    std::uint64_t valueMask;
};

} // namespace vpsim

#endif // VPSIM_PREDICTOR_FCM_HPP
