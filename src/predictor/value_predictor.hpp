/**
 * @file
 * Value-predictor interfaces.
 *
 * A raw predictor (ValuePredictor) maps a static instruction address to a
 * predicted destination value; the classification wrapper (classifier.hpp)
 * adds the saturating-counter confidence mechanism of [14]/[8] on top.
 *
 * Predictors follow the paper's update discipline (§3.1): they are updated
 * speculatively right after the lookup, and repaired with the correct
 * value when the real outcome is known.
 */

#ifndef VPSIM_PREDICTOR_VALUE_PREDICTOR_HPP
#define VPSIM_PREDICTOR_VALUE_PREDICTOR_HPP

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace vpsim
{

/** Outcome of a raw predictor lookup. */
struct RawPrediction
{
    /** True when the table had usable history for this pc. */
    bool hasPrediction = false;
    /** The predicted destination value (valid when hasPrediction). */
    Value value = 0;
};

/** Stride state exposed for the value distributor (paper §4.2). */
struct StrideInfo
{
    bool valid = false;
    Value lastValue = 0;
    Value stride = 0;
};

/**
 * Classifier scratch co-located in a predictor's table entry.
 *
 * The paper's classifier (§3.1) is a saturating counter stored *in* the
 * value-prediction table entry, not a separate structure. Predictors
 * reserve this slot in their entries and hand it to the classifier via
 * lookupTrain()'s @c cls output so the classification probe rides on
 * the table walk the raw prediction already paid for. The predictor
 * itself never reads or writes the field; the counter geometry (width,
 * threshold, miss policy) lives in the classifier.
 *
 * Zero-initialized state is exactly a fresh counter (SatCounter's
 * initial value is 0 for every width), so allocation needs no extra
 * bookkeeping.
 */
struct ClassifierState
{
    std::uint16_t count = 0;
};

/**
 * A raw (unclassified) value predictor.
 *
 * Call order per dynamic instruction: lookup(pc) at fetch, then
 * train(pc, actual) when the instruction's outcome is known.
 */
class ValuePredictor
{
  public:
    /**
     * Concrete identity for devirtualized hot paths. A caller holding a
     * ValuePredictor* may switch on fusedClass() and static_cast to the
     * named type so the fused lookupTrain() body inlines into its loop;
     * Generic means "stay on the virtual interface". The tag is
     * per-class constant, so the switch branch predicts perfectly.
     */
    enum class FusedClass
    {
        Generic,
        LastValue,
        Stride,
        TwoDeltaStride,
    };

    virtual ~ValuePredictor() = default;

    /** Which concrete fused fast path this predictor supports. */
    virtual FusedClass fusedClass() const { return FusedClass::Generic; }

    /** Predict the destination value of the instruction at @p pc. */
    virtual RawPrediction lookup(Addr pc) = 0;

    /**
     * Train with the actual produced value.
     *
     * @param pc Static instruction address.
     * @param actual The value the instruction really produced.
     * @param spec_was_correct The speculative lookup-time update for
     *        this dynamic instance predicted @p actual exactly. The
     *        paper repairs the table only "in case of an incorrect
     *        update", so a correct speculation must NOT rewind the
     *        speculatively advanced state (later in-flight copies
     *        already consumed it). Sequential callers can leave the
     *        default: with no copies in flight a full repair of a
     *        correct speculation is a no-op.
     */
    virtual void train(Addr pc, Value actual,
                       bool spec_was_correct = false) = 0;

    /**
     * Fused lookup() + train() for callers that learn the actual value
     * in the same step as the prediction (the ideal machine verifies
     * each instruction immediately). Semantically identical to
     *
     *   raw = lookup(pc);
     *   train(pc, actual, raw.hasPrediction && raw.value == actual);
     *   return raw;
     *
     * but table-backed predictors override it to do both halves on a
     * single table probe, which halves the hot-loop hash work and
     * drops one virtual call per predicted instruction.
     */
    virtual RawPrediction
    lookupTrain(Addr pc, Value actual)
    {
        const RawPrediction raw = lookup(pc);
        train(pc, actual, raw.hasPrediction && raw.value == actual);
        return raw;
    }

    /**
     * lookupTrain() that additionally exposes the classifier scratch
     * co-located in this pc's table entry (see ClassifierState), so the
     * classifier's confidence probe shares the raw prediction's table
     * walk instead of paying its own hash and slot load.
     *
     * @p cls is set to the entry's classifier slot, or nullptr when
     * this predictor cannot co-locate — no table, or a *finite* table:
     * a finite raw table evicts entries on index conflicts at lookup
     * time, while the classifier's own finite counter table evicts at
     * first-confidence time, so co-locating would change Section-5
     * eviction interleavings. Callers must fall back to their own
     * counter storage when @p cls is nullptr.
     */
    virtual RawPrediction
    lookupTrain(Addr pc, Value actual, ClassifierState *&cls)
    {
        cls = nullptr;
        return lookupTrain(pc, actual);
    }

    /**
     * Abandon one outstanding lookup for @p pc without training: the
     * instruction was squashed (wrong-path fetch), so its outcome never
     * materializes. Predictors tracking in-flight lookups release the
     * slot; the speculative state advance is NOT undone (the pollution
     * is the point of modelling wrong paths).
     */
    virtual void abandon(Addr pc) { (void)pc; }

    /**
     * Stride state for @p pc, used by the value distributor to expand
     * merged requests into X, X+stride, X+2*stride sequences. Last-value
     * predictors report a zero stride.
     */
    virtual StrideInfo strideInfo(Addr pc) const = 0;

    /**
     * Batched probe warm-up: prefetch the table slots the given block
     * of upcoming lookup pcs will touch (one call per trace span or
     * fetch bundle). Purely a cache hint — no predictor state changes,
     * and the default is a no-op.
     */
    virtual void prefetchBlock(const Addr *pcs, std::size_t n)
    {
        (void)pcs;
        (void)n;
    }

    /** Human-readable predictor name. */
    virtual std::string name() const = 0;

    /** Drop all state. */
    virtual void reset() = 0;
};

} // namespace vpsim

#endif // VPSIM_PREDICTOR_VALUE_PREDICTOR_HPP
