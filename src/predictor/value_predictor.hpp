/**
 * @file
 * Value-predictor interfaces.
 *
 * A raw predictor (ValuePredictor) maps a static instruction address to a
 * predicted destination value; the classification wrapper (classifier.hpp)
 * adds the saturating-counter confidence mechanism of [14]/[8] on top.
 *
 * Predictors follow the paper's update discipline (§3.1): they are updated
 * speculatively right after the lookup, and repaired with the correct
 * value when the real outcome is known.
 */

#ifndef VPSIM_PREDICTOR_VALUE_PREDICTOR_HPP
#define VPSIM_PREDICTOR_VALUE_PREDICTOR_HPP

#include <string>

#include "common/types.hpp"

namespace vpsim
{

/** Outcome of a raw predictor lookup. */
struct RawPrediction
{
    /** True when the table had usable history for this pc. */
    bool hasPrediction = false;
    /** The predicted destination value (valid when hasPrediction). */
    Value value = 0;
};

/** Stride state exposed for the value distributor (paper §4.2). */
struct StrideInfo
{
    bool valid = false;
    Value lastValue = 0;
    Value stride = 0;
};

/**
 * A raw (unclassified) value predictor.
 *
 * Call order per dynamic instruction: lookup(pc) at fetch, then
 * train(pc, actual) when the instruction's outcome is known.
 */
class ValuePredictor
{
  public:
    virtual ~ValuePredictor() = default;

    /** Predict the destination value of the instruction at @p pc. */
    virtual RawPrediction lookup(Addr pc) = 0;

    /**
     * Train with the actual produced value.
     *
     * @param pc Static instruction address.
     * @param actual The value the instruction really produced.
     * @param spec_was_correct The speculative lookup-time update for
     *        this dynamic instance predicted @p actual exactly. The
     *        paper repairs the table only "in case of an incorrect
     *        update", so a correct speculation must NOT rewind the
     *        speculatively advanced state (later in-flight copies
     *        already consumed it). Sequential callers can leave the
     *        default: with no copies in flight a full repair of a
     *        correct speculation is a no-op.
     */
    virtual void train(Addr pc, Value actual,
                       bool spec_was_correct = false) = 0;

    /**
     * Abandon one outstanding lookup for @p pc without training: the
     * instruction was squashed (wrong-path fetch), so its outcome never
     * materializes. Predictors tracking in-flight lookups release the
     * slot; the speculative state advance is NOT undone (the pollution
     * is the point of modelling wrong paths).
     */
    virtual void abandon(Addr pc) { (void)pc; }

    /**
     * Stride state for @p pc, used by the value distributor to expand
     * merged requests into X, X+stride, X+2*stride sequences. Last-value
     * predictors report a zero stride.
     */
    virtual StrideInfo strideInfo(Addr pc) const = 0;

    /** Human-readable predictor name. */
    virtual std::string name() const = 0;

    /** Drop all state. */
    virtual void reset() = 0;
};

} // namespace vpsim

#endif // VPSIM_PREDICTOR_VALUE_PREDICTOR_HPP
