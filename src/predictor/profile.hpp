/**
 * @file
 * Profiling-based value-prediction classification, after Gabbay &
 * Mendelson, "Can Program Profiling Support Value Prediction?" [9].
 *
 * The paper's Section 4.2 assumes compiler-inserted *opcode hints* that
 * tell the hardware (a) whether an instruction is worth predicting at
 * all and (b) which table of the hybrid predictor (last-value or stride)
 * should serve it. This module produces those hints the way [9] does:
 * by profiling a training run and classifying every static instruction
 * by its observed value behaviour. The hints can then
 *
 *  - gate a HintedHybridPredictor (no confidence counters needed), and
 *  - filter requests entering the Section 4 interleaved table, which
 *    reduces the number of bank conflicts the address router must
 *    resolve (one of Section 4.2's stated advantages).
 */

#ifndef VPSIM_PREDICTOR_PROFILE_HPP
#define VPSIM_PREDICTOR_PROFILE_HPP

#include <vector>

#include "predictor/table_storage.hpp"
#include "predictor/value_predictor.hpp"
#include "trace/record.hpp"

namespace vpsim
{

/** The per-static-instruction hint a profiling compiler would emit. */
enum class ValueHint : std::uint8_t
{
    /** Do not predict this instruction (saves table bandwidth). */
    NotPredictable,
    /** Serve from the last-value table. */
    LastValue,
    /** Serve from the stride table. */
    Stride,
};

/** A profile: one hint per static instruction, plus summary counts. */
class ProfileHints
{
  public:
    /**
     * Profile @p training_records and classify every value-producing
     * static instruction.
     *
     * @param training_records The profiling run's trace.
     * @param accuracy_threshold Minimum simulated accuracy for an
     *        instruction to be hinted predictable (paper [9] uses a
     *        high-confidence cutoff; default 0.75).
     * @param min_executions Instructions seen fewer times than this are
     *        left NotPredictable (too little profile signal).
     */
    static ProfileHints profile(
        const std::vector<TraceRecord> &training_records,
        double accuracy_threshold = 0.75,
        std::uint64_t min_executions = 4);

    /** Hint for @p pc; unseen instructions are NotPredictable. */
    ValueHint hintFor(Addr pc) const;

    /** Warm the hint-table slots for a block of upcoming pcs. */
    void prefetchHints(const Addr *pcs, std::size_t n) const;

    /** @name Summary statistics */
    /// @{
    std::uint64_t staticInstructions() const { return hints.size(); }
    std::uint64_t hintedLastValue() const { return numLastValue; }
    std::uint64_t hintedStride() const { return numStride; }
    std::uint64_t hintedNotPredictable() const { return numNot; }
    /// @}

  private:
    /** One hint per static pc; open-addressed (hintFor() runs on the
     *  per-instruction path of the hinted hybrid predictor). */
    struct HintEntry
    {
        ValueHint hint = ValueHint::NotPredictable;
    };

    PredictionTable<HintEntry> hints;
    std::uint64_t numLastValue = 0;
    std::uint64_t numStride = 0;
    std::uint64_t numNot = 0;
};

/**
 * Hybrid predictor steered by profile hints instead of hardware
 * confidence counters (§4.2): last-value and stride components only see
 * the instructions hinted at them; unhinted instructions never predict.
 */
class HintedHybridPredictor : public ValuePredictor
{
  public:
    /**
     * @param profile_hints The profile; the caller keeps it alive.
     * @param last_capacity Last-value table entries (0 = infinite).
     * @param stride_capacity Stride table entries (0 = infinite).
     */
    explicit HintedHybridPredictor(const ProfileHints &profile_hints,
                                   std::size_t last_capacity = 0,
                                   std::size_t stride_capacity = 1024);

    RawPrediction lookup(Addr pc) override;
    void train(Addr pc, Value actual,
               bool spec_was_correct = false) override;
    void abandon(Addr pc) override;
    StrideInfo strideInfo(Addr pc) const override;
    void prefetchBlock(const Addr *pcs, std::size_t n) override;
    std::string name() const override { return "hinted-hybrid"; }
    void reset() override;

    /** Lookups suppressed by a NotPredictable hint. */
    std::uint64_t suppressedLookups() const { return numSuppressed; }

  private:
    struct LastEntry
    {
        Value lastValue = 0;
        bool seen = false;
    };

    struct StrideEntry
    {
        Value lastValue = 0;
        Value specValue = 0;
        Value stride = 0;
        std::uint8_t timesSeen = 0;
        std::uint32_t inFlight = 0;
    };

    const ProfileHints &profile;
    PredictionTable<LastEntry> lastTable;
    PredictionTable<StrideEntry> strideTable;
    std::uint64_t numSuppressed = 0;
};

} // namespace vpsim

#endif // VPSIM_PREDICTOR_PROFILE_HPP
