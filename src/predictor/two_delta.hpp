/**
 * @file
 * Two-delta stride predictor (Sazeides & Smith style [22]; also evaluated
 * by Gabbay & Mendelson [8]). The stride used for prediction is only
 * replaced after the same new stride is observed twice in a row, which
 * filters out one-off discontinuities (e.g. a loop restarting).
 *
 * This is an extension beyond the paper's evaluated configuration, kept
 * for the ablation benches.
 */

#ifndef VPSIM_PREDICTOR_TWO_DELTA_HPP
#define VPSIM_PREDICTOR_TWO_DELTA_HPP

#include "predictor/table_storage.hpp"
#include "predictor/value_predictor.hpp"

namespace vpsim
{

/** Two-delta stride predictor. */
class TwoDeltaStridePredictor : public ValuePredictor
{
  public:
    explicit TwoDeltaStridePredictor(std::size_t table_capacity = 0,
                                     bool speculative_update = true)
        : table(table_capacity),
          speculativeUpdate(speculative_update)
    {}

    RawPrediction lookup(Addr pc) override;
    void train(Addr pc, Value actual,
               bool spec_was_correct = false) override;
    void abandon(Addr pc) override;
    StrideInfo strideInfo(Addr pc) const override;
    std::string name() const override { return "2-delta-stride"; }
    void reset() override { table.clear(); }

    std::size_t tableSize() const { return table.size(); }

  private:
    struct Entry
    {
        Value lastValue = 0;
        Value specValue = 0;
        /** Stride used for predictions. */
        Value stride1 = 0;
        /** Most recently observed stride (candidate). */
        Value stride2 = 0;
        std::uint8_t timesSeen = 0;
        /** Lookups not yet trained (see StridePredictor::Entry). */
        std::uint32_t inFlight = 0;
    };

    PredictionTable<Entry> table;
    bool speculativeUpdate;
};

} // namespace vpsim

#endif // VPSIM_PREDICTOR_TWO_DELTA_HPP
