/**
 * @file
 * Two-delta stride predictor (Sazeides & Smith style [22]; also evaluated
 * by Gabbay & Mendelson [8]). The stride used for prediction is only
 * replaced after the same new stride is observed twice in a row, which
 * filters out one-off discontinuities (e.g. a loop restarting).
 *
 * This is an extension beyond the paper's evaluated configuration, kept
 * for the ablation benches.
 */

#ifndef VPSIM_PREDICTOR_TWO_DELTA_HPP
#define VPSIM_PREDICTOR_TWO_DELTA_HPP

#include "predictor/table_storage.hpp"
#include "predictor/value_predictor.hpp"

namespace vpsim
{

/** Two-delta stride predictor. */
class TwoDeltaStridePredictor : public ValuePredictor
{
  public:
    explicit TwoDeltaStridePredictor(std::size_t table_capacity = 0,
                                     bool speculative_update = true)
        : table(table_capacity),
          speculativeUpdate(speculative_update)
    {}

    RawPrediction lookup(Addr pc) override;
    void train(Addr pc, Value actual,
               bool spec_was_correct = false) override;

    /**
     * Fusion of lookup() + train() on one table probe, with the same
     * algebraic simplifications and branch-to-select conversions as
     * StridePredictor::lookupTrain (see the comment there). Inline for
     * the fusedClass() devirtualized path.
     */
    RawPrediction
    lookupTrain(Addr pc, Value actual) override
    {
        ClassifierState *ignored;
        return lookupTrain(pc, actual, ignored);
    }

    RawPrediction
    lookupTrain(Addr pc, Value actual, ClassifierState *&cls) override
    {
        Entry &entry = table.findOrAllocateFused(pc);
        cls = table.isInfinite() ? &entry.cls : nullptr;
        const bool has_history = entry.timesSeen != 0;
        const Value predicted = entry.specValue + entry.stride1;
        RawPrediction raw;
        raw.hasPrediction = has_history;
        raw.value = has_history ? predicted : Value{0};
        const bool spec_advance = speculativeUpdate && has_history;
        const bool spec_was_correct = has_history && predicted == actual;

        const Value observed = actual - entry.lastValue;
        const bool promote = has_history && observed == entry.stride2;
        entry.stride1 = promote ? observed : entry.stride1;
        const bool stable = has_history && observed == entry.stride1;
        entry.stride2 = has_history ? observed : entry.stride2;
        entry.lastValue = actual;
        const Value repaired = stable
            ? actual + entry.stride1 * static_cast<Value>(entry.inFlight)
            : actual;
        entry.specValue = spec_was_correct
            ? (spec_advance ? predicted : entry.specValue)
            : repaired;
        entry.timesSeen = entry.timesSeen < 2
            ? static_cast<std::uint8_t>(entry.timesSeen + 1)
            : entry.timesSeen;
        return raw;
    }

    FusedClass
    fusedClass() const override
    {
        return FusedClass::TwoDeltaStride;
    }

    void abandon(Addr pc) override;
    StrideInfo strideInfo(Addr pc) const override;
    void prefetchBlock(const Addr *pcs, std::size_t n) override
    {
        table.probeBlock(pcs, n);
    }
    std::string name() const override { return "2-delta-stride"; }
    void reset() override { table.clear(); }

    std::size_t tableSize() const { return table.size(); }

  private:
    struct Entry
    {
        Value lastValue = 0;
        Value specValue = 0;
        /** Stride used for predictions. */
        Value stride1 = 0;
        /** Most recently observed stride (candidate). */
        Value stride2 = 0;
        std::uint8_t timesSeen = 0;
        /** Lookups not yet trained (see StridePredictor::Entry). */
        std::uint32_t inFlight = 0;
        /** Classifier scratch (owned by ClassifiedPredictor). */
        ClassifierState cls;
    };

    PredictionTable<Entry> table;
    bool speculativeUpdate;
};

} // namespace vpsim

#endif // VPSIM_PREDICTOR_TWO_DELTA_HPP
