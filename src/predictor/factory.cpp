#include "predictor/factory.hpp"

#include "common/logging.hpp"
#include "predictor/fcm.hpp"
#include "predictor/hybrid.hpp"
#include "predictor/last_value.hpp"
#include "predictor/profile.hpp"
#include "predictor/stride.hpp"
#include "predictor/two_delta.hpp"

namespace vpsim
{

PredictorKind
predictorKindFromString(const std::string &text)
{
    if (text == "last-value" || text == "last")
        return PredictorKind::LastValue;
    if (text == "stride")
        return PredictorKind::Stride;
    if (text == "2-delta" || text == "two-delta")
        return PredictorKind::TwoDeltaStride;
    if (text == "hybrid")
        return PredictorKind::Hybrid;
    if (text == "fcm")
        return PredictorKind::Fcm;
    fatal("unknown predictor kind '" + text + "'");
}

std::unique_ptr<ValuePredictor>
makePredictor(PredictorKind kind, std::size_t capacity)
{
    switch (kind) {
      case PredictorKind::LastValue:
        return std::make_unique<LastValuePredictor>(capacity);
      case PredictorKind::Stride:
        return std::make_unique<StridePredictor>(capacity);
      case PredictorKind::TwoDeltaStride:
        return std::make_unique<TwoDeltaStridePredictor>(capacity);
      case PredictorKind::Hybrid:
        // The hybrid's stride table is deliberately small relative to the
        // last-value table (paper §4.2).
        return std::make_unique<HybridPredictor>(
            capacity, capacity == 0 ? 0 : capacity / 8);
      case PredictorKind::Fcm:
        return std::make_unique<FcmPredictor>(2, capacity);
    }
    panic("invalid PredictorKind");
}

std::unique_ptr<ClassifiedPredictor>
makeClassifiedPredictor(PredictorKind kind, std::size_t capacity,
                        unsigned counter_bits, MissPolicy miss_policy)
{
    return std::make_unique<ClassifiedPredictor>(
        makePredictor(kind, capacity), counter_bits, capacity,
        miss_policy);
}

std::unique_ptr<ValuePredictor>
makeHintedHybridPredictor(const ProfileHints &hints,
                          std::size_t last_capacity,
                          std::size_t stride_capacity)
{
    return std::make_unique<HintedHybridPredictor>(hints, last_capacity,
                                                   stride_capacity);
}

} // namespace vpsim
