#include "predictor/hybrid.hpp"

namespace vpsim
{

RawPrediction
HybridPredictor::lookup(Addr pc)
{
    // The stride table has priority: it only holds instructions that
    // demonstrated stride behaviour.
    StrideEntry *stride_entry = strideTable.find(pc);
    if (stride_entry && stride_entry->seen) {
        ++strideHits;
        ++stride_entry->inFlight;
        const Value predicted =
            stride_entry->specValue + stride_entry->stride;
        stride_entry->specValue = predicted; // speculative update
        return {true, predicted};
    }
    const LastEntry *last_entry = lastTable.find(pc);
    if (last_entry && last_entry->timesSeen > 0) {
        ++lastValueHits;
        return {true, last_entry->lastValue};
    }
    return {};
}

void
HybridPredictor::train(Addr pc, Value actual, bool spec_was_correct)
{
    StrideEntry *stride_entry = strideTable.find(pc);
    if (stride_entry && stride_entry->seen) {
        if (stride_entry->inFlight > 0)
            --stride_entry->inFlight;
        const Value observed = actual - stride_entry->lastValue;
        const bool stable = observed == stride_entry->stride;
        stride_entry->stride = observed;
        stride_entry->lastValue = actual;
        if (!spec_was_correct) {
            stride_entry->specValue = stable
                ? actual + observed * static_cast<Value>(
                               stride_entry->inFlight)
                : actual;
        }
        return;
    }

    LastEntry &entry = lastTable.findOrAllocate(pc);
    if (entry.timesSeen > 0) {
        const Value observed = actual - entry.lastValue;
        // Promote to the stride table after two identical nonzero
        // strides (the dynamic equivalent of a profiling opcode hint).
        if (observed != 0 && observed == entry.prevStride &&
            entry.timesSeen >= 2) {
            StrideEntry &promoted = strideTable.findOrAllocate(pc);
            promoted.lastValue = actual;
            promoted.specValue = actual;
            promoted.stride = observed;
            promoted.seen = true;
        }
        entry.prevStride = observed;
    }
    entry.lastValue = actual;
    if (entry.timesSeen < 3)
        ++entry.timesSeen;
}

void
HybridPredictor::abandon(Addr pc)
{
    StrideEntry *entry = strideTable.find(pc);
    if (entry && entry->seen && entry->inFlight > 0)
        --entry->inFlight;
}

StrideInfo
HybridPredictor::strideInfo(Addr pc) const
{
    const StrideEntry *stride_entry = strideTable.find(pc);
    if (stride_entry && stride_entry->seen)
        return {true, stride_entry->specValue, stride_entry->stride};
    const LastEntry *last_entry = lastTable.find(pc);
    if (last_entry && last_entry->timesSeen > 0)
        return {true, last_entry->lastValue, 0};
    return {};
}

void
HybridPredictor::reset()
{
    lastTable.clear();
    strideTable.clear();
    strideHits = 0;
    lastValueHits = 0;
}

} // namespace vpsim
