/**
 * @file
 * Saturating-counter classification for value prediction ([14], [8];
 * paper §3.1 and §5 use a 2-bit counter per instruction).
 *
 * The classifier gates a raw predictor: a prediction is only *used* when
 * the instruction's confidence counter is in the upper half of its range.
 * The counter trains on the raw predictor's correctness whether or not
 * the prediction was used.
 */

#ifndef VPSIM_PREDICTOR_CLASSIFIER_HPP
#define VPSIM_PREDICTOR_CLASSIFIER_HPP

#include <memory>

#include "common/sat_counter.hpp"
#include "common/stats.hpp"
#include "predictor/last_value.hpp"
#include "predictor/stride.hpp"
#include "predictor/table_storage.hpp"
#include "predictor/two_delta.hpp"
#include "predictor/value_predictor.hpp"

namespace vpsim
{

/** One classified prediction, carried with the in-flight instruction. */
struct ClassifiedPrediction
{
    /** The machine should speculate on @c value. */
    bool predicted = false;
    /** Predicted destination value (valid when @c predicted). */
    Value value = 0;
    /** The raw predictor had history (even if confidence gated it off). */
    bool rawAvailable = false;
    /** The raw predictor's value, used to train the classifier. */
    Value rawValue = 0;
};

/** What a wrong raw prediction does to the confidence counter. */
enum class MissPolicy
{
    /** Decrement by one (plain up/down counter). */
    Decrement,
    /**
     * Reset to zero. A misprediction costs real cycles (the dependents
     * reissue), so confidence must be re-earned; this keeps instructions
     * with oscillating values from repeatedly speculating wrongly.
     */
    Reset,
};

/** A raw value predictor gated by per-instruction confidence counters. */
class ClassifiedPredictor
{
  public:
    /**
     * @param raw_predictor The underlying predictor (owned).
     * @param counter_bits Saturating-counter width (paper: 2).
     * @param counter_capacity 0 = a counter per static instruction
     *        (paper's infinite assumption); else a power-of-two table.
     * @param miss_policy Counter reaction to a wrong raw prediction.
     */
    explicit ClassifiedPredictor(
        std::unique_ptr<ValuePredictor> raw_predictor,
        unsigned counter_bits = 2, std::size_t counter_capacity = 0,
        MissPolicy miss_policy = MissPolicy::Reset);

    /** Look up and classification-gate a prediction for @p pc. */
    ClassifiedPrediction predict(Addr pc);

    /**
     * Batched probe warm-up for a whole trace span / fetch bundle of
     * upcoming predict() pcs: prefetches the confidence-counter slots
     * and the raw predictor's table slots. Pure cache hint, no state
     * change; machines call it once per delivered block.
     */
    void
    probeBlock(const Addr *pcs, std::size_t n)
    {
        counters.probeBlock(pcs, n);
        rawPredictor->prefetchBlock(pcs, n);
    }

    /**
     * Train with the actual outcome. Must be called exactly once per
     * predict(), with the ClassifiedPrediction that predict() returned.
     */
    void update(Addr pc, const ClassifiedPrediction &prediction,
                Value actual);

    /**
     * Fused predict() + update() for callers that verify immediately
     * (the ideal machine knows the actual value in the same step).
     * Produces exactly the predict() result and applies exactly the
     * update() training, but touches the confidence table once and
     * reaches the raw predictor through a single fused call
     * (ValuePredictor::lookupTrain) — devirtualized via fusedClass()
     * for the stock predictors, so the whole prediction step inlines
     * into the machine's block loop. Defined inline for that reason.
     */
    ClassifiedPrediction
    predictAndTrain(Addr pc, Value actual)
    {
        ++numLookups;
        ClassifiedPrediction result;
        // rawClass is constant for the predictor's lifetime, so this
        // switch costs one perfectly predicted branch and buys the
        // concrete lookupTrain body inlined here (no virtual call, no
        // spilled registers around an opaque boundary). The co-located
        // classifier slot (cls) rides back on the same table walk.
        RawPrediction raw_result;
        ClassifierState *cls = nullptr;
        switch (rawClass) {
        case ValuePredictor::FusedClass::LastValue:
            raw_result = static_cast<LastValuePredictor &>(*rawPredictor)
                             .lookupTrain(pc, actual, cls);
            break;
        case ValuePredictor::FusedClass::Stride:
            raw_result = static_cast<StridePredictor &>(*rawPredictor)
                             .lookupTrain(pc, actual, cls);
            break;
        case ValuePredictor::FusedClass::TwoDeltaStride:
            raw_result =
                static_cast<TwoDeltaStridePredictor &>(*rawPredictor)
                    .lookupTrain(pc, actual, cls);
            break;
        case ValuePredictor::FusedClass::Generic:
            raw_result = rawPredictor->lookupTrain(pc, actual, cls);
            break;
        }
        if (!raw_result.hasPrediction)
            return result;
        result.rawAvailable = true;
        result.rawValue = raw_result.value;

        // Confidence probe. The fast path reads the classifier state
        // embedded in the raw predictor's entry (the paper stores the
        // counter in the VP table entry too) — no second hash, no
        // second slot walk. Predictors that cannot co-locate (finite
        // tables: distinct eviction interleavings) return cls ==
        // nullptr and use the separate counter table exactly as the
        // split predict()/update() path does.
        std::uint16_t count;
        CounterEntry *entry = nullptr;
        if (cls) {
            count = cls->count;
        } else {
            bool allocated = false;
            entry = &counters.findOrAllocate(pc, &allocated);
            if (allocated)
                entry->counter = SatCounter(counterBits);
            count = static_cast<std::uint16_t>(entry->counter.value());
        }
        const bool predicted = count >= counterThreshold;
        result.predicted = predicted;
        result.value = predicted ? raw_result.value : Value{0};

        // Straight-line bookkeeping: correctness flips with the
        // simulated values, so the branchy form of this (see update())
        // mispredicts on the hot path. When a prediction was issued,
        // its value is the raw value, so value-correct and raw-correct
        // coincide. The counter update mirrors SatCounter::train.
        const bool raw_correct = result.rawValue == actual;
        const std::uint16_t raised =
            count < counterMax ? static_cast<std::uint16_t>(count + 1)
                               : count;
        const std::uint16_t dropped =
            count > 0 ? static_cast<std::uint16_t>(count - 1) : count;
        const std::uint16_t lowered = resetOnMiss ? 0 : dropped;
        const std::uint16_t trained = raw_correct ? raised : lowered;
        if (cls)
            cls->count = trained;
        else
            entry->counter = SatCounter(counterBits, trained);
        numPredicted += predicted ? 1 : 0;
#ifndef VPSIM_MUTATION_CLASSIFIER_DROP_CORRECT
        // Mutation target: see update() — the same drop must stay
        // observable through the fused path.
        numCorrect += (predicted && raw_correct) ? 1 : 0;
#endif
        numWrong += (predicted && !raw_correct) ? 1 : 0;
        numMissed += (!predicted && raw_correct) ? 1 : 0;
        return result;
    }

    /** The underlying raw predictor. */
    ValuePredictor &raw() { return *rawPredictor; }
    const ValuePredictor &raw() const { return *rawPredictor; }

    /**
     * Release a prediction whose instruction was squashed: the raw
     * predictor's in-flight slot is freed; confidence counters are
     * untouched (hardware trains at verify, which never happens).
     */
    void abandon(Addr pc);

    /** Forget all predictor and classifier state. */
    void reset();

    /** @name Statistics */
    /// @{
    /** predict() calls. */
    std::uint64_t lookups() const { return numLookups; }
    /** Gated predictions issued. */
    std::uint64_t predictionsMade() const { return numPredicted; }
    /** Gated predictions that were correct. */
    std::uint64_t predictionsCorrect() const { return numCorrect; }
    /** Gated predictions that were wrong (cost a penalty). */
    std::uint64_t predictionsWrong() const { return numWrong; }
    /** Raw-correct outcomes the classifier declined to use. */
    std::uint64_t missedOpportunities() const { return numMissed; }
    /** Squashed (wrong-path) lookups released without training. */
    std::uint64_t abandonedLookups() const { return numAbandoned; }
    /** Accuracy of issued predictions (1.0 when none issued). */
    double accuracy() const;
    /// @}

  private:
    struct CounterEntry
    {
        SatCounter counter{2};
    };

    std::unique_ptr<ValuePredictor> rawPredictor;
    unsigned counterBits;
    MissPolicy missPolicy;
    /** Cached rawPredictor->fusedClass() for the devirtualized path. */
    ValuePredictor::FusedClass rawClass =
        ValuePredictor::FusedClass::Generic;
    /** @name Cached counter geometry (from counterBits / missPolicy) */
    /// @{
    std::uint16_t counterThreshold = 2;
    std::uint16_t counterMax = 3;
    bool resetOnMiss = true;
    /// @}
    PredictionTable<CounterEntry> counters;

    std::uint64_t numLookups = 0;
    std::uint64_t numPredicted = 0;
    std::uint64_t numCorrect = 0;
    std::uint64_t numWrong = 0;
    std::uint64_t numMissed = 0;
    std::uint64_t numAbandoned = 0;
};

} // namespace vpsim

#endif // VPSIM_PREDICTOR_CLASSIFIER_HPP
