/**
 * @file
 * Saturating-counter classification for value prediction ([14], [8];
 * paper §3.1 and §5 use a 2-bit counter per instruction).
 *
 * The classifier gates a raw predictor: a prediction is only *used* when
 * the instruction's confidence counter is in the upper half of its range.
 * The counter trains on the raw predictor's correctness whether or not
 * the prediction was used.
 */

#ifndef VPSIM_PREDICTOR_CLASSIFIER_HPP
#define VPSIM_PREDICTOR_CLASSIFIER_HPP

#include <memory>

#include "common/sat_counter.hpp"
#include "common/stats.hpp"
#include "predictor/table_storage.hpp"
#include "predictor/value_predictor.hpp"

namespace vpsim
{

/** One classified prediction, carried with the in-flight instruction. */
struct ClassifiedPrediction
{
    /** The machine should speculate on @c value. */
    bool predicted = false;
    /** Predicted destination value (valid when @c predicted). */
    Value value = 0;
    /** The raw predictor had history (even if confidence gated it off). */
    bool rawAvailable = false;
    /** The raw predictor's value, used to train the classifier. */
    Value rawValue = 0;
};

/** What a wrong raw prediction does to the confidence counter. */
enum class MissPolicy
{
    /** Decrement by one (plain up/down counter). */
    Decrement,
    /**
     * Reset to zero. A misprediction costs real cycles (the dependents
     * reissue), so confidence must be re-earned; this keeps instructions
     * with oscillating values from repeatedly speculating wrongly.
     */
    Reset,
};

/** A raw value predictor gated by per-instruction confidence counters. */
class ClassifiedPredictor
{
  public:
    /**
     * @param raw_predictor The underlying predictor (owned).
     * @param counter_bits Saturating-counter width (paper: 2).
     * @param counter_capacity 0 = a counter per static instruction
     *        (paper's infinite assumption); else a power-of-two table.
     * @param miss_policy Counter reaction to a wrong raw prediction.
     */
    explicit ClassifiedPredictor(
        std::unique_ptr<ValuePredictor> raw_predictor,
        unsigned counter_bits = 2, std::size_t counter_capacity = 0,
        MissPolicy miss_policy = MissPolicy::Reset);

    /** Look up and classification-gate a prediction for @p pc. */
    ClassifiedPrediction predict(Addr pc);

    /**
     * Train with the actual outcome. Must be called exactly once per
     * predict(), with the ClassifiedPrediction that predict() returned.
     */
    void update(Addr pc, const ClassifiedPrediction &prediction,
                Value actual);

    /** The underlying raw predictor. */
    ValuePredictor &raw() { return *rawPredictor; }
    const ValuePredictor &raw() const { return *rawPredictor; }

    /**
     * Release a prediction whose instruction was squashed: the raw
     * predictor's in-flight slot is freed; confidence counters are
     * untouched (hardware trains at verify, which never happens).
     */
    void abandon(Addr pc);

    /** Forget all predictor and classifier state. */
    void reset();

    /** @name Statistics */
    /// @{
    /** predict() calls. */
    std::uint64_t lookups() const { return numLookups; }
    /** Gated predictions issued. */
    std::uint64_t predictionsMade() const { return numPredicted; }
    /** Gated predictions that were correct. */
    std::uint64_t predictionsCorrect() const { return numCorrect; }
    /** Gated predictions that were wrong (cost a penalty). */
    std::uint64_t predictionsWrong() const { return numWrong; }
    /** Raw-correct outcomes the classifier declined to use. */
    std::uint64_t missedOpportunities() const { return numMissed; }
    /** Squashed (wrong-path) lookups released without training. */
    std::uint64_t abandonedLookups() const { return numAbandoned; }
    /** Accuracy of issued predictions (1.0 when none issued). */
    double accuracy() const;
    /// @}

  private:
    struct CounterEntry
    {
        SatCounter counter{2};
    };

    std::unique_ptr<ValuePredictor> rawPredictor;
    unsigned counterBits;
    MissPolicy missPolicy;
    PredictionTable<CounterEntry> counters;

    std::uint64_t numLookups = 0;
    std::uint64_t numPredicted = 0;
    std::uint64_t numCorrect = 0;
    std::uint64_t numWrong = 0;
    std::uint64_t numMissed = 0;
    std::uint64_t numAbandoned = 0;
};

} // namespace vpsim

#endif // VPSIM_PREDICTOR_CLASSIFIER_HPP
