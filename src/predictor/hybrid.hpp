/**
 * @file
 * Hybrid value predictor (paper §4.2, after Gabbay & Mendelson [9]):
 * a large last-value table plus a relatively small stride table.
 *
 * The paper's version steers instructions with compiler-inserted opcode
 * hints; we derive the hint dynamically instead: an instruction is
 * promoted into the stride table once it has produced the same nonzero
 * stride twice in a row (i.e. once it has demonstrated stride behaviour),
 * which is the same classification a profile pass would produce. The
 * predictor reports which component served each lookup so the §4.2
 * value-distributor ablation can count the additions it would have to
 * perform.
 */

#ifndef VPSIM_PREDICTOR_HYBRID_HPP
#define VPSIM_PREDICTOR_HYBRID_HPP

#include "predictor/last_value.hpp"
#include "predictor/stride.hpp"
#include "predictor/value_predictor.hpp"

namespace vpsim
{

/** Hybrid last-value + small-stride-table predictor. */
class HybridPredictor : public ValuePredictor
{
  public:
    /**
     * @param last_value_capacity Last-value table size (0 = infinite).
     * @param stride_capacity Stride table size (0 = infinite); the paper
     *        intends this to be much smaller than the last-value table.
     */
    explicit HybridPredictor(std::size_t last_value_capacity = 0,
                             std::size_t stride_capacity = 1024)
        : lastTable(last_value_capacity),
          strideTable(stride_capacity)
    {}

    RawPrediction lookup(Addr pc) override;
    void train(Addr pc, Value actual,
               bool spec_was_correct = false) override;
    void abandon(Addr pc) override;
    StrideInfo strideInfo(Addr pc) const override;
    void prefetchBlock(const Addr *pcs, std::size_t n) override
    {
        lastTable.probeBlock(pcs, n);
        strideTable.probeBlock(pcs, n);
    }
    std::string name() const override { return "hybrid"; }
    void reset() override;

    /** Lookups served by the stride component (needs distributor math). */
    std::uint64_t strideServed() const { return strideHits; }
    /** Lookups served by the last-value component. */
    std::uint64_t lastValueServed() const { return lastValueHits; }

  private:
    struct LastEntry
    {
        Value lastValue = 0;
        /** Previously observed stride, for promotion detection. */
        Value prevStride = 0;
        std::uint8_t timesSeen = 0;
    };

    struct StrideEntry
    {
        Value lastValue = 0;
        Value specValue = 0;
        Value stride = 0;
        bool seen = false;
        /** Lookups not yet trained (see StridePredictor::Entry). */
        std::uint32_t inFlight = 0;
    };

    PredictionTable<LastEntry> lastTable;
    PredictionTable<StrideEntry> strideTable;
    std::uint64_t strideHits = 0;
    std::uint64_t lastValueHits = 0;
};

} // namespace vpsim

#endif // VPSIM_PREDICTOR_HYBRID_HPP
