/**
 * @file
 * Prediction-table storage shared by all predictors.
 *
 * capacity == 0 models the paper's "infinite table" assumption (§3.1);
 * a nonzero capacity models a real direct-mapped, tagged table (entries
 * are evicted on index conflicts), used by the finite configurations in
 * Section 5 style experiments and the hybrid predictor's "relatively
 * small stride table".
 *
 * The infinite table is an open-addressed, linearly probed hash table
 * with inline tags (it grows, it never evicts). It replaced a
 * std::unordered_map: the per-probe pointer chase and per-insert node
 * allocation of the map dominated the whole value-prediction hot path
 * (see docs/PERF.md). Every probe now touches one contiguous slot
 * array, a repeated probe of the same pc (the predict/update pairs all
 * predictors issue) is served by a one-entry memo without re-hashing,
 * and probeBlock() lets machines prefetch a whole span's slots ahead
 * of the scheduling loop.
 *
 * Pointer/reference validity: a pointer returned by find()/
 * findOrAllocate() stays valid only until the next findOrAllocate()
 * on the same table (the open-addressed array may grow). All callers
 * in this repository finish with an entry before the next probe; new
 * callers must do the same. (The old map kept pointers stable forever
 * — code relying on that was never written, and must not be.)
 */

#ifndef VPSIM_PREDICTOR_TABLE_STORAGE_HPP
#define VPSIM_PREDICTOR_TABLE_STORAGE_HPP

#include <cstdint>
#include <vector>

#include "common/logging.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace vpsim
{

/** Portable best-effort cache prefetch of the line holding @p addr. */
inline void
prefetchForRead(const void *addr)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(addr, 0 /*read*/, 3 /*high locality*/);
#else
    (void)addr;
#endif
}

/**
 * Keyed storage for per-static-instruction predictor state.
 *
 * @tparam Entry Plain state struct; default-constructed on allocation.
 */
template <typename Entry>
class PredictionTable
{
  public:
    /**
     * @param table_capacity 0 for an unbounded table; otherwise a
     *        power-of-two number of direct-mapped, tagged entries.
     */
    explicit PredictionTable(std::size_t table_capacity = 0)
        : capacity(table_capacity)
    {
        if (capacity != 0) {
            fatalIf((capacity & (capacity - 1)) != 0,
                    "prediction table capacity must be a power of two");
            slots.resize(capacity);
        } else {
            open.resize(initialOpenSlots);
            openMask = initialOpenSlots - 1;
        }
    }

    /** Find the entry for @p pc, or nullptr on a miss. */
    Entry *
    find(Addr pc)
    {
        if (capacity == 0) {
            if (pc == memoKey)
                return &open[memoIndex].entry;
            const std::size_t index = probe(pc);
            if (open[index].key != pc)
                return nullptr;
            memoKey = pc;
            memoIndex = index;
            return &open[index].entry;
        }
        Slot &slot = slots[indexOf(pc)];
        return (slot.valid && slot.tag == pc) ? &slot.entry : nullptr;
    }

    /** Const find. */
    const Entry *
    find(Addr pc) const
    {
        return const_cast<PredictionTable *>(this)->find(pc);
    }

    /**
     * Return the entry for @p pc, allocating (and possibly evicting the
     * direct-mapped victim) when absent. @p allocated reports whether a
     * fresh entry was created.
     */
    Entry &
    findOrAllocate(Addr pc, bool *allocated = nullptr)
    {
        if (capacity == 0) {
            if (pc == memoKey) {
                if (allocated)
                    *allocated = false;
                return open[memoIndex].entry;
            }
            std::size_t index = probe(pc);
            const bool fresh = open[index].key != pc;
            if (fresh) {
                fatalIf(pc == emptyKey,
                        "prediction table key collides with the empty "
                        "sentinel");
                if ((numLive + 1) * 4 > (openMask + 1) * 3) {
                    grow();
                    index = probe(pc);
                }
                open[index].key = pc;
                open[index].entry = Entry{};
                ++numLive;
            }
            if (allocated)
                *allocated = fresh;
            memoKey = pc;
            memoIndex = index;
            return open[index].entry;
        }
        Slot &slot = slots[indexOf(pc)];
        const bool fresh = !slot.valid || slot.tag != pc;
        if (fresh) {
            slot.valid = true;
            slot.tag = pc;
            slot.entry = Entry{};
        }
        if (allocated)
            *allocated = fresh;
        return slot.entry;
    }

    /**
     * findOrAllocate() for straight-line fused paths (lookupTrain):
     * identical semantics, but skips the one-entry memo. Fused callers
     * probe each pc exactly once per dynamic event, so the memo never
     * hits for them and its read-compare-update is pure overhead on
     * the hottest loop in the simulator. Any memo left behind by other
     * paths stays valid: entries only move in grow(), which resets it.
     */
    Entry &
    findOrAllocateFused(Addr pc)
    {
        if (capacity == 0) {
            std::size_t index = probe(pc);
            if (open[index].key != pc) {
                fatalIf(pc == emptyKey,
                        "prediction table key collides with the empty "
                        "sentinel");
                if ((numLive + 1) * 4 > (openMask + 1) * 3) {
                    grow();
                    index = probe(pc);
                }
                open[index].key = pc;
                open[index].entry = Entry{};
                ++numLive;
            }
            return open[index].entry;
        }
        return findOrAllocate(pc);
    }

    /**
     * Warm the cache lines @p pc's probe would touch. Best effort: a
     * prefetched slot may still move before the probe (growth), and the
     * memo is untouched.
     */
    void
    prefetch(Addr pc) const
    {
        if (capacity == 0) {
            prefetchForRead(&open[hashOf(pc) & openMask]);
        } else {
            prefetchForRead(&slots[indexOf(pc)]);
        }
    }

    /**
     * Batched probe warm-up: prefetch the slots for a whole block of
     * upcoming lookups (one call per trace span / fetch bundle, see
     * docs/PERF.md) so the scheduling loop's probes hit warm lines
     * instead of paying a dependent-load miss per instruction.
     *
     * Self-gating: when the whole slot array fits comfortably in L1
     * (small working sets keep these tables at their initial size),
     * every probe already hits cache and the prefetch pass is pure
     * overhead — one hash and one load-port slot per pc for nothing —
     * so it is skipped.
     */
    void
    probeBlock(const Addr *pcs, std::size_t n) const
    {
        if (!prefetchWorthwhile())
            return;
        for (std::size_t i = 0; i < n; ++i)
            prefetch(pcs[i]);
    }

    /** True when the resident slot array exceeds ~L1 capacity. */
    bool
    prefetchWorthwhile() const
    {
        const std::size_t resident = capacity == 0
            ? (openMask + 1) * sizeof(OpenSlot)
            : capacity * sizeof(Slot);
        return resident > prefetchResidencyBytes;
    }

    /** True for the capacity == 0 "infinite table" configuration. */
    bool isInfinite() const { return capacity == 0; }

    /** Number of live entries (resident static instructions). */
    std::size_t
    size() const
    {
        if (capacity == 0)
            return numLive;
        std::size_t live = 0;
        for (const Slot &slot : slots)
            live += slot.valid ? 1 : 0;
        return live;
    }

    /** Drop all state. */
    void
    clear()
    {
        for (OpenSlot &slot : open)
            slot.key = emptyKey;
        numLive = 0;
        memoKey = emptyKey;
        memoIndex = 0;
        for (Slot &slot : slots)
            slot.valid = false;
    }

  private:
    /** Direct-mapped slot of the finite, tagged configuration. */
    struct Slot
    {
        bool valid = false;
        Addr tag = 0;
        Entry entry{};
    };

    /**
     * Never a valid instruction address (instructions are word
     * aligned); marks unoccupied open-addressed slots.
     */
    static constexpr Addr emptyKey = ~Addr{0};

    /** Initial open-addressed size; must be a power of two. */
    static constexpr std::size_t initialOpenSlots = 1024;

    /**
     * Tables whose slots fit under this many bytes are assumed cache
     * resident and skip prefetch passes (typical L1d is 32-48 KiB;
     * stay under half so the trace stream keeps its share).
     */
    static constexpr std::size_t prefetchResidencyBytes = 16 * 1024;

    /** Open-addressed slot: inline tag, no indirection. */
    struct OpenSlot
    {
        Addr key = emptyKey;
        Entry entry{};
    };

    std::size_t
    indexOf(Addr pc) const
    {
        // Instructions are word aligned; drop the low bits first.
        return (pc / instBytes) & (capacity - 1);
    }

    /** Fibonacci hash of the word-aligned pc, full 64-bit mix. */
    static std::size_t
    hashOf(Addr pc)
    {
        std::uint64_t h =
            (pc / instBytes) * 0x9E3779B97F4A7C15ull;
        h ^= h >> 29;
        return static_cast<std::size_t>(h);
    }

    /**
     * Linear probe: the slot holding @p pc, or the empty slot where it
     * would be inserted. The load factor stays <= 3/4, so an empty
     * slot always terminates the walk.
     */
    std::size_t
    probe(Addr pc) const
    {
        std::size_t index = hashOf(pc) & openMask;
        while (open[index].key != pc && open[index].key != emptyKey)
            index = (index + 1) & openMask;
        return index;
    }

    void
    grow()
    {
        std::vector<OpenSlot> old;
        old.swap(open);
        const std::size_t new_size = (openMask + 1) * 2;
        open.resize(new_size);
        openMask = new_size - 1;
        memoKey = emptyKey;
        memoIndex = 0;
        for (OpenSlot &slot : old) {
            if (slot.key == emptyKey)
                continue;
            std::size_t index = hashOf(slot.key) & openMask;
            while (open[index].key != emptyKey)
                index = (index + 1) & openMask;
            open[index].key = slot.key;
            open[index].entry = slot.entry;
        }
    }

    std::size_t capacity;

    /** @name Infinite (capacity == 0) open-addressed storage */
    /// @{
    std::vector<OpenSlot> open;
    std::size_t openMask = 0;
    std::size_t numLive = 0;
    /**
     * One-entry memo of the last probe: predictors probe the same pc
     * 2-4 times per dynamic instruction (lookup + classifier counter +
     * train), and every repeat skips the hash and walk entirely.
     * mutable: a const find() is still a cache-warming event.
     */
    mutable Addr memoKey = emptyKey;
    mutable std::size_t memoIndex = 0;
    /// @}

    /** Finite direct-mapped storage. */
    std::vector<Slot> slots;
};

} // namespace vpsim

#endif // VPSIM_PREDICTOR_TABLE_STORAGE_HPP
