/**
 * @file
 * Prediction-table storage shared by all predictors.
 *
 * capacity == 0 models the paper's "infinite table" assumption (§3.1)
 * with a hash map; a nonzero capacity models a real direct-mapped, tagged
 * table (entries are evicted on index conflicts), used by the finite
 * configurations in Section 5 style experiments and the hybrid predictor's
 * "relatively small stride table".
 */

#ifndef VPSIM_PREDICTOR_TABLE_STORAGE_HPP
#define VPSIM_PREDICTOR_TABLE_STORAGE_HPP

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.hpp"
#include "common/types.hpp"
#include "isa/instruction.hpp"

namespace vpsim
{

/**
 * Keyed storage for per-static-instruction predictor state.
 *
 * @tparam Entry Plain state struct; default-constructed on allocation.
 */
template <typename Entry>
class PredictionTable
{
  public:
    /**
     * @param table_capacity 0 for an unbounded table; otherwise a
     *        power-of-two number of direct-mapped, tagged entries.
     */
    explicit PredictionTable(std::size_t table_capacity = 0)
        : capacity(table_capacity)
    {
        if (capacity != 0) {
            fatalIf((capacity & (capacity - 1)) != 0,
                    "prediction table capacity must be a power of two");
            slots.resize(capacity);
        }
    }

    /** Find the entry for @p pc, or nullptr on a miss. */
    Entry *
    find(Addr pc)
    {
        if (capacity == 0) {
            const auto it = entries.find(pc);
            return it == entries.end() ? nullptr : &it->second;
        }
        Slot &slot = slots[indexOf(pc)];
        return (slot.valid && slot.tag == pc) ? &slot.entry : nullptr;
    }

    /** Const find. */
    const Entry *
    find(Addr pc) const
    {
        return const_cast<PredictionTable *>(this)->find(pc);
    }

    /**
     * Return the entry for @p pc, allocating (and possibly evicting the
     * direct-mapped victim) when absent. @p allocated reports whether a
     * fresh entry was created.
     */
    Entry &
    findOrAllocate(Addr pc, bool *allocated = nullptr)
    {
        if (capacity == 0) {
            const auto [it, fresh] = entries.try_emplace(pc);
            if (allocated)
                *allocated = fresh;
            return it->second;
        }
        Slot &slot = slots[indexOf(pc)];
        const bool fresh = !slot.valid || slot.tag != pc;
        if (fresh) {
            slot.valid = true;
            slot.tag = pc;
            slot.entry = Entry{};
        }
        if (allocated)
            *allocated = fresh;
        return slot.entry;
    }

    /** Number of live entries (resident static instructions). */
    std::size_t
    size() const
    {
        if (capacity == 0)
            return entries.size();
        std::size_t live = 0;
        for (const Slot &slot : slots)
            live += slot.valid ? 1 : 0;
        return live;
    }

    /** Drop all state. */
    void
    clear()
    {
        entries.clear();
        for (Slot &slot : slots)
            slot.valid = false;
    }

  private:
    struct Slot
    {
        bool valid = false;
        Addr tag = 0;
        Entry entry{};
    };

    std::size_t
    indexOf(Addr pc) const
    {
        // Instructions are word aligned; drop the low bits first.
        return (pc / instBytes) & (capacity - 1);
    }

    std::size_t capacity;
    std::unordered_map<Addr, Entry> entries;
    std::vector<Slot> slots;
};

} // namespace vpsim

#endif // VPSIM_PREDICTOR_TABLE_STORAGE_HPP
