#include "predictor/fcm.hpp"

#include <sstream>

#include "common/logging.hpp"

namespace vpsim
{

FcmPredictor::FcmPredictor(unsigned context_order,
                           std::size_t table_capacity,
                           unsigned value_table_bits)
    : order(context_order),
      contexts(table_capacity),
      values(std::size_t{1} << value_table_bits),
      valueMask((std::uint64_t{1} << value_table_bits) - 1)
{
    fatalIf(order == 0 || order > 8, "FCM order out of range (1-8)");
    fatalIf(value_table_bits == 0 || value_table_bits > 28,
            "FCM value table bits out of range");
}

std::uint64_t
FcmPredictor::contextHash(const ContextEntry &entry) const
{
    // Hash exactly the last `order` values, oldest first, so the
    // context is a true sliding window (a period-k value sequence
    // produces exactly k distinct contexts).
    std::uint64_t hash = 0x9e3779b97f4a7c15ull;
    for (unsigned i = 0; i < order; ++i) {
        const Value value =
            entry.recent[(entry.head + 8 - order + i) % 8];
        const std::uint64_t mixed =
            (value ^ (value >> 23)) * 0x2545f4914f6cdd1dull;
        hash = (hash ^ mixed) * 0x100000001b3ull;
    }
    return hash;
}

std::size_t
FcmPredictor::valueIndex(Addr pc, std::uint64_t context) const
{
    // The second level is shared; mixing the pc in reduces aliasing
    // between instructions with the same value history.
    const std::uint64_t mixed =
        context ^ (static_cast<std::uint64_t>(pc) * 0x9e3779b97f4a7c15ull);
    return static_cast<std::size_t>((mixed ^ (mixed >> 29)) & valueMask);
}

RawPrediction
FcmPredictor::lookup(Addr pc)
{
    const ContextEntry *entry = contexts.find(pc);
    if (!entry || entry->valuesSeen < order)
        return {};
    const std::uint64_t context = contextHash(*entry);
    const ValueEntry &slot = values[valueIndex(pc, context)];
    if (!slot.valid || slot.tag != context)
        return {};
    return {true, slot.value};
}

void
FcmPredictor::train(Addr pc, Value actual, bool spec_was_correct)
{
    (void)spec_was_correct; // FCM state advances only on train
    ContextEntry &entry = contexts.findOrAllocate(pc);
    if (entry.valuesSeen >= order) {
        const std::uint64_t context = contextHash(entry);
        ValueEntry &slot = values[valueIndex(pc, context)];
        slot.tag = context;
        slot.value = actual;
        slot.valid = true;
    }
    entry.recent[entry.head] = actual;
    entry.head = static_cast<std::uint8_t>((entry.head + 1) % 8);
    if (entry.valuesSeen < order)
        ++entry.valuesSeen;
}

StrideInfo
FcmPredictor::strideInfo(Addr pc) const
{
    // FCM predictions are context lookups, not arithmetic sequences:
    // report the predicted value with a zero stride so the value
    // distributor broadcasts it (like a last-value hit).
    const ContextEntry *entry = contexts.find(pc);
    if (!entry || entry->valuesSeen < order)
        return {};
    const std::uint64_t context = contextHash(*entry);
    const ValueEntry &slot = values[valueIndex(pc, context)];
    if (!slot.valid || slot.tag != context)
        return {};
    return {true, slot.value, 0};
}

std::string
FcmPredictor::name() const
{
    std::ostringstream oss;
    oss << "fcm-order" << order;
    return oss.str();
}

void
FcmPredictor::reset()
{
    contexts.clear();
    for (ValueEntry &slot : values)
        slot.valid = false;
}

} // namespace vpsim
