#include "predictor/profile.hpp"

#include "predictor/last_value.hpp"
#include "predictor/stride.hpp"

namespace vpsim
{

ProfileHints
ProfileHints::profile(const std::vector<TraceRecord> &training_records,
                      double accuracy_threshold,
                      std::uint64_t min_executions)
{
    // Simulate both component predictors over the training trace and
    // score each static instruction.
    struct Score
    {
        std::uint64_t executions = 0;
        std::uint64_t lastHits = 0;
        std::uint64_t strideHits = 0;
    };
    std::unordered_map<Addr, Score> scores;
    LastValuePredictor last_value;
    StridePredictor stride;

    for (const TraceRecord &record : training_records) {
        if (!record.producesValue())
            continue;
        Score &score = scores[record.pc];
        ++score.executions;
        const RawPrediction lv = last_value.lookup(record.pc);
        if (lv.hasPrediction && lv.value == record.result)
            ++score.lastHits;
        const RawPrediction st = stride.lookup(record.pc);
        const bool stride_hit =
            st.hasPrediction && st.value == record.result;
        if (stride_hit)
            ++score.strideHits;
        last_value.train(record.pc, record.result);
        stride.train(record.pc, record.result, stride_hit);
    }

    ProfileHints result;
    // lint:allow unordered-iter — per-pc transform into another map;
    // each element is independent, so visit order cannot leak out.
    for (const auto &[pc, score] : scores) {
        ValueHint hint = ValueHint::NotPredictable;
        if (score.executions >= min_executions) {
            const double denom = static_cast<double>(score.executions);
            const double last_acc =
                static_cast<double>(score.lastHits) / denom;
            const double stride_acc =
                static_cast<double>(score.strideHits) / denom;
            // Prefer the cheaper last-value table unless the stride
            // component is clearly better ([9]'s small stride table).
            if (last_acc >= accuracy_threshold &&
                last_acc + 0.05 >= stride_acc) {
                hint = ValueHint::LastValue;
            } else if (stride_acc >= accuracy_threshold) {
                hint = ValueHint::Stride;
            }
        }
        result.hints.findOrAllocate(pc).hint = hint;
        switch (hint) {
          case ValueHint::LastValue:
            ++result.numLastValue;
            break;
          case ValueHint::Stride:
            ++result.numStride;
            break;
          case ValueHint::NotPredictable:
            ++result.numNot;
            break;
        }
    }
    return result;
}

ValueHint
ProfileHints::hintFor(Addr pc) const
{
    const HintEntry *entry = hints.find(pc);
    return entry == nullptr ? ValueHint::NotPredictable : entry->hint;
}

void
ProfileHints::prefetchHints(const Addr *pcs, std::size_t n) const
{
    hints.probeBlock(pcs, n);
}

HintedHybridPredictor::HintedHybridPredictor(
    const ProfileHints &profile_hints, std::size_t last_capacity,
    std::size_t stride_capacity)
    : profile(profile_hints),
      lastTable(last_capacity),
      strideTable(stride_capacity)
{
}

RawPrediction
HintedHybridPredictor::lookup(Addr pc)
{
    switch (profile.hintFor(pc)) {
      case ValueHint::NotPredictable:
        ++numSuppressed;
        return {};
      case ValueHint::LastValue: {
        const LastEntry *entry = lastTable.find(pc);
        if (!entry || !entry->seen)
            return {};
        return {true, entry->lastValue};
      }
      case ValueHint::Stride: {
        StrideEntry &entry = strideTable.findOrAllocate(pc);
        ++entry.inFlight;
        if (entry.timesSeen == 0)
            return {};
        const Value predicted = entry.specValue + entry.stride;
        entry.specValue = predicted; // speculative update
        return {true, predicted};
      }
    }
    panic("invalid value hint");
}

void
HintedHybridPredictor::train(Addr pc, Value actual,
                             bool spec_was_correct)
{
    switch (profile.hintFor(pc)) {
      case ValueHint::NotPredictable:
        return; // hinted-off instructions never touch the tables
      case ValueHint::LastValue: {
        LastEntry &entry = lastTable.findOrAllocate(pc);
        entry.lastValue = actual;
        entry.seen = true;
        return;
      }
      case ValueHint::Stride: {
        StrideEntry &entry = strideTable.findOrAllocate(pc);
        if (entry.inFlight > 0)
            --entry.inFlight;
        const Value prev_stride = entry.stride;
        bool stable = false;
        if (entry.timesSeen > 0) {
            const Value observed = actual - entry.lastValue;
            stable = observed == prev_stride;
            entry.stride = observed;
        }
        entry.lastValue = actual;
        if (!spec_was_correct) {
            entry.specValue = stable
                ? actual +
                      entry.stride *
                          static_cast<Value>(entry.inFlight)
                : actual;
        }
        if (entry.timesSeen < 2)
            ++entry.timesSeen;
        return;
      }
    }
    panic("invalid value hint");
}

void
HintedHybridPredictor::abandon(Addr pc)
{
    if (profile.hintFor(pc) != ValueHint::Stride)
        return;
    StrideEntry *entry = strideTable.find(pc);
    if (entry && entry->inFlight > 0)
        --entry->inFlight;
}

StrideInfo
HintedHybridPredictor::strideInfo(Addr pc) const
{
    switch (profile.hintFor(pc)) {
      case ValueHint::NotPredictable:
        return {};
      case ValueHint::LastValue: {
        const LastEntry *entry = lastTable.find(pc);
        if (!entry || !entry->seen)
            return {};
        return {true, entry->lastValue, 0};
      }
      case ValueHint::Stride: {
        const StrideEntry *entry = strideTable.find(pc);
        if (!entry || entry->timesSeen == 0)
            return {};
        return {true, entry->specValue, entry->stride};
      }
    }
    panic("invalid value hint");
}

void
HintedHybridPredictor::prefetchBlock(const Addr *pcs, std::size_t n)
{
    // The hint decides which component table a pc will touch, but the
    // hint probe itself is the first dependent load — warm it, plus
    // both component tables (over-prefetching a small table is cheaper
    // than a second classification pass).
    profile.prefetchHints(pcs, n);
    lastTable.probeBlock(pcs, n);
    strideTable.probeBlock(pcs, n);
}

void
HintedHybridPredictor::reset()
{
    lastTable.clear();
    strideTable.clear();
    numSuppressed = 0;
}

} // namespace vpsim
