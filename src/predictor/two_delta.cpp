#include "predictor/two_delta.hpp"

namespace vpsim
{

RawPrediction
TwoDeltaStridePredictor::lookup(Addr pc)
{
    Entry &entry = table.findOrAllocate(pc);
    ++entry.inFlight;
    if (entry.timesSeen == 0)
        return {};
    const Value predicted = entry.specValue + entry.stride1;
    if (speculativeUpdate)
        entry.specValue = predicted;
    return {true, predicted};
}

void
TwoDeltaStridePredictor::train(Addr pc, Value actual,
                               bool spec_was_correct)
{
    Entry &entry = table.findOrAllocate(pc);
    if (entry.inFlight > 0)
        --entry.inFlight;
    bool stable = false;
    if (entry.timesSeen > 0) {
        const Value observed = actual - entry.lastValue;
        // Promote the candidate stride only when confirmed twice.
        if (observed == entry.stride2)
            entry.stride1 = observed;
        stable = observed == entry.stride1;
        entry.stride2 = observed;
    }
    entry.lastValue = actual;
    if (!spec_was_correct) {
        entry.specValue = stable
            ? actual + entry.stride1 * static_cast<Value>(entry.inFlight)
            : actual;
    }
    if (entry.timesSeen < 2)
        ++entry.timesSeen;
}

void
TwoDeltaStridePredictor::abandon(Addr pc)
{
    Entry *entry = table.find(pc);
    if (entry && entry->inFlight > 0)
        --entry->inFlight;
}

StrideInfo
TwoDeltaStridePredictor::strideInfo(Addr pc) const
{
    const Entry *entry = table.find(pc);
    if (!entry || entry->timesSeen == 0)
        return {};
    return {true, entry->specValue, entry->stride1};
}

} // namespace vpsim
