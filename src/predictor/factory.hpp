/**
 * @file
 * Predictor construction from configuration.
 */

#ifndef VPSIM_PREDICTOR_FACTORY_HPP
#define VPSIM_PREDICTOR_FACTORY_HPP

#include <memory>
#include <string>

#include "predictor/classifier.hpp"
#include "predictor/value_predictor.hpp"

namespace vpsim
{

/** Which raw value predictor to instantiate. */
enum class PredictorKind
{
    LastValue,
    Stride,
    TwoDeltaStride,
    Hybrid,
    /** Order-2 finite context method (extension; [22]). */
    Fcm,
};

/** Parse "last-value" / "stride" / "2-delta" / "hybrid" / "fcm". */
PredictorKind predictorKindFromString(const std::string &text);

/** Construct a raw predictor (capacity 0 = infinite tables). */
std::unique_ptr<ValuePredictor> makePredictor(PredictorKind kind,
                                              std::size_t capacity = 0);

/**
 * Construct the paper's standard configuration: the chosen raw predictor
 * behind a 2-bit saturating-counter classifier (§3.1, §5).
 */
std::unique_ptr<ClassifiedPredictor>
makeClassifiedPredictor(PredictorKind kind, std::size_t capacity = 0,
                        unsigned counter_bits = 2,
                        MissPolicy miss_policy = MissPolicy::Reset);

class ProfileHints;

/**
 * Construct the §4.2 profile-hinted hybrid (last-value + stride tables
 * gated by compiler hints instead of confidence counters).
 *
 * @param hints The profile; the caller keeps it alive.
 */
std::unique_ptr<ValuePredictor>
makeHintedHybridPredictor(const ProfileHints &hints,
                          std::size_t last_capacity = 0,
                          std::size_t stride_capacity = 1024);

} // namespace vpsim

#endif // VPSIM_PREDICTOR_FACTORY_HPP
