#include "predictor/classifier.hpp"

namespace vpsim
{

ClassifiedPredictor::ClassifiedPredictor(
    std::unique_ptr<ValuePredictor> raw_predictor, unsigned counter_bits,
    std::size_t counter_capacity, MissPolicy miss_policy)
    : rawPredictor(std::move(raw_predictor)),
      counterBits(counter_bits),
      missPolicy(miss_policy),
      counters(counter_capacity)
{
    panicIf(!rawPredictor, "ClassifiedPredictor needs a raw predictor");
    rawClass = rawPredictor->fusedClass();
    // Mirror SatCounter(counterBits)'s geometry for the co-located
    // fast path (the SatCounter ctor validates the width).
    const SatCounter reference(counterBits);
    counterThreshold = static_cast<std::uint16_t>(reference.max() / 2 + 1);
    counterMax = static_cast<std::uint16_t>(reference.max());
    resetOnMiss = missPolicy == MissPolicy::Reset;
}

ClassifiedPrediction
ClassifiedPredictor::predict(Addr pc)
{
    ++numLookups;
    ClassifiedPrediction result;
    const RawPrediction raw_result = rawPredictor->lookup(pc);
    if (!raw_result.hasPrediction)
        return result;
    result.rawAvailable = true;
    result.rawValue = raw_result.value;

    bool allocated = false;
    CounterEntry &entry = counters.findOrAllocate(pc, &allocated);
    if (allocated)
        entry.counter = SatCounter(counterBits);
    if (entry.counter.isSet()) {
        result.predicted = true;
        result.value = raw_result.value;
    }
    return result;
}

void
ClassifiedPredictor::update(Addr pc,
                            const ClassifiedPrediction &prediction,
                            Value actual)
{
    if (prediction.rawAvailable) {
        bool allocated = false;
        CounterEntry &entry = counters.findOrAllocate(pc, &allocated);
        if (allocated)
            entry.counter = SatCounter(counterBits);
        const bool raw_correct = prediction.rawValue == actual;
        if (raw_correct) {
            entry.counter.increment();
        } else if (missPolicy == MissPolicy::Reset) {
            entry.counter.reset();
        } else {
            entry.counter.decrement();
        }

        if (prediction.predicted) {
            if (prediction.value == actual) {
#ifndef VPSIM_MUTATION_CLASSIFIER_DROP_CORRECT
                // Mutation target (scripts/mutation_smoke.sh): building
                // with -DVPSIM_MUTATION=classifier-drop-correct drops
                // this increment, which the vp.hit_miss_balance
                // invariant must catch (made != correct + wrong).
                ++numCorrect;
#endif
            } else {
                ++numWrong;
            }
        } else if (raw_correct) {
            ++numMissed;
        }
    }
    rawPredictor->train(pc, actual,
                        prediction.rawAvailable &&
                            prediction.rawValue == actual);
    if (prediction.predicted)
        ++numPredicted;
}

void
ClassifiedPredictor::abandon(Addr pc)
{
    rawPredictor->abandon(pc);
    ++numAbandoned;
}

double
ClassifiedPredictor::accuracy() const
{
    if (numPredicted == 0)
        return 1.0;
    return static_cast<double>(numCorrect) /
           static_cast<double>(numPredicted);
}

void
ClassifiedPredictor::reset()
{
    rawPredictor->reset();
    counters.clear();
    numLookups = 0;
    numPredicted = 0;
    numCorrect = 0;
    numWrong = 0;
    numMissed = 0;
}

} // namespace vpsim
