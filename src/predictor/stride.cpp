#include "predictor/stride.hpp"

namespace vpsim
{

RawPrediction
StridePredictor::lookup(Addr pc)
{
    Entry &entry = table.findOrAllocate(pc);
    ++entry.inFlight;
    if (entry.timesSeen == 0)
        return {};
    const Value predicted = entry.specValue + entry.stride;
    if (speculativeUpdate) {
        // Advance the table so a second in-flight copy of the same
        // instruction receives the next value in the sequence (§3.1, §4).
        entry.specValue = predicted;
    }
    return {true, predicted};
}

void
StridePredictor::train(Addr pc, Value actual, bool spec_was_correct)
{
    Entry &entry = table.findOrAllocate(pc);
    if (entry.inFlight > 0)
        --entry.inFlight;
    const Value prev_stride = entry.stride;
    bool stable = false;
    if (entry.timesSeen > 0) {
        const Value observed = actual - entry.lastValue;
        stable = observed == prev_stride;
        entry.stride = observed;
    }
    entry.lastValue = actual;
    // Repair only a WRONG speculative advance (paper §3.1). A correct
    // speculation must not be rewound (younger in-flight copies built
    // on it). When the value stream is in a stable stride run, the
    // repair re-predicts the squashed in-flight copies by projecting
    // the stride past them; an unstable stream gets a plain repair (the
    // in-flight copies are unpredictable anyway, and projecting a
    // garbage stride would manufacture confident mispredictions).
    if (!spec_was_correct) {
        entry.specValue = stable
            ? actual + entry.stride * static_cast<Value>(entry.inFlight)
            : actual;
    }
    if (entry.timesSeen < 2)
        ++entry.timesSeen;
}

void
StridePredictor::abandon(Addr pc)
{
    Entry *entry = table.find(pc);
    if (entry && entry->inFlight > 0)
        --entry->inFlight;
}

StrideInfo
StridePredictor::strideInfo(Addr pc) const
{
    const Entry *entry = table.find(pc);
    if (!entry || entry->timesSeen == 0)
        return {};
    return {true, entry->specValue, entry->stride};
}

} // namespace vpsim
