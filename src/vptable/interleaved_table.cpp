#include "vptable/interleaved_table.hpp"

#include <map>

#include "common/logging.hpp"
#include "isa/instruction.hpp"

namespace vpsim
{

InterleavedVpTable::InterleavedVpTable(
    std::unique_ptr<ClassifiedPredictor> predictor,
    const VpTableConfig &config)
    : classified(std::move(predictor)),
      cfg(config)
{
    panicIf(!classified, "InterleavedVpTable needs a predictor");
    fatalIf(cfg.banks == 0, "bank count must be positive");
    fatalIf(cfg.portsPerBank == 0, "ports per bank must be positive");
}

unsigned
InterleavedVpTable::bankOf(Addr pc) const
{
    // Low-order bits of the (word) address select the bank (§4.2).
    return static_cast<unsigned>((pc / instBytes) % cfg.banks);
}

std::vector<VpGrant>
InterleavedVpTable::processBundle(const std::vector<Addr> &pcs)
{
    std::vector<VpGrant> grants(pcs.size());
    numRequests += pcs.size();

    // Router step 1: merge copies of the same instruction. Groups are
    // ordered by the first (lead) occurrence, which also defines the
    // priority used for conflict resolution.
    struct Group
    {
        Addr pc = 0;
        std::vector<std::size_t> members;
    };
    std::vector<Group> groups;
    std::map<Addr, std::size_t> groupOf;
    for (std::size_t i = 0; i < pcs.size(); ++i) {
        // §4.2: opcode hints tell the router which instructions are
        // prediction candidates at all; hinted-off requests never reach
        // the banks (fewer conflicts to resolve).
        if (cfg.hints &&
            cfg.hints->hintFor(pcs[i]) == ValueHint::NotPredictable) {
            ++numHintFiltered;
            continue;
        }
        const auto [it, fresh] = groupOf.try_emplace(pcs[i], groups.size());
        if (fresh)
            groups.push_back({pcs[i], {}});
        groups[it->second].members.push_back(i);
    }

    // Router step 2: per-bank port arbitration in priority order.
    std::vector<unsigned> bankLoad(cfg.banks, 0);
    for (const Group &group : groups) {
        ++numAccesses;
        numMerged += group.members.size() - 1;
        unsigned &load = bankLoad[bankOf(group.pc)];
        if (load >= cfg.portsPerBank) {
            // Denied: every copy is informed its prediction is invalid.
            ++numDeniedAccesses;
            numDeniedRequests += group.members.size();
            continue;
        }
        ++load;

        // Table access + value distribution. The classifier's
        // speculative update advances the stride sequence per copy, so
        // successive copies of the same instruction receive
        // X, X+stride, X+2*stride, ... (Figure 4.2).
        const StrideInfo info =
            classified->raw().strideInfo(group.pc);
        bool lead = true;
        for (const std::size_t member : group.members) {
            VpGrant &grant = grants[member];
            grant.granted = true;
            grant.merged = !lead;
            grant.prediction = classified->predict(group.pc);
            if (!lead && info.valid && info.stride != 0)
                ++numAdditions; // distributor computes X + k*stride
            lead = false;
        }
    }
    return grants;
}

void
InterleavedVpTable::update(Addr pc, const ClassifiedPrediction &prediction,
                           Value actual)
{
    classified->update(pc, prediction, actual);
}

} // namespace vpsim
