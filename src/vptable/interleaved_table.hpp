/**
 * @file
 * The paper's Section 4 hardware: a highly interleaved value prediction
 * table fed by an address router and drained by a value distributor.
 *
 * Per fetch bundle (one trace-cache line or wide fetch group):
 *  1. The trace addresses buffer presents the PCs of the bundle's
 *     value-producing instructions to the address router.
 *  2. The router merges requests from multiple copies of the same
 *     instruction (e.g. several unrolled loop iterations in one trace
 *     line) into a single table access, and resolves bank conflicts by
 *     trace-order priority: each bank can serve portsPerBank (merged)
 *     accesses per cycle; later conflicting accesses are denied and the
 *     corresponding instructions are told their predicted value is not
 *     available (the "valid bit").
 *  3. The prediction table banks return (last value, stride); the value
 *     distributor assigns the k merged copies the expanded sequence
 *     X, X+stride, ..., X+(k-1)*stride (Figure 4.2/4.3), performing k-1
 *     additions only when the stride component answered (§4.2's hybrid
 *     optimization).
 */

#ifndef VPSIM_VPTABLE_INTERLEAVED_TABLE_HPP
#define VPSIM_VPTABLE_INTERLEAVED_TABLE_HPP

#include <cstdint>
#include <memory>
#include <vector>

#include "predictor/classifier.hpp"
#include "predictor/profile.hpp"

namespace vpsim
{

/** Geometry of the interleaved prediction table. */
struct VpTableConfig
{
    /** Number of banks (pc modulo banks selects the bank). */
    unsigned banks = 8;
    /** Accesses each bank can serve per cycle. */
    unsigned portsPerBank = 1;
    /**
     * Optional profile hints (§4.2): instructions hinted NotPredictable
     * are filtered before the router, so they never contend for bank
     * ports. The caller keeps the profile alive.
     */
    const ProfileHints *hints = nullptr;
};

/** Per-instruction outcome of one bundle's table access. */
struct VpGrant
{
    /** The router granted this instruction a table access. */
    bool granted = false;
    /** Served as a non-lead copy of a merged request. */
    bool merged = false;
    /** The classified prediction (meaningful when granted). */
    ClassifiedPrediction prediction;
};

/** Interleaved prediction table + router + distributor. */
class InterleavedVpTable
{
  public:
    /**
     * @param predictor The classified predictor whose storage backs the
     *        banks (owned).
     * @param config Bank geometry.
     */
    InterleavedVpTable(std::unique_ptr<ClassifiedPredictor> predictor,
                       const VpTableConfig &config);

    /**
     * Route one fetch bundle's value-producer PCs through the table.
     *
     * @param pcs PCs in trace order (one per value-producing
     *        instruction of the bundle).
     * @return One VpGrant per input pc, same order.
     */
    std::vector<VpGrant> processBundle(const std::vector<Addr> &pcs);

    /** Train the underlying predictor when an instruction resolves. */
    void update(Addr pc, const ClassifiedPrediction &prediction,
                Value actual);

    /** Release a granted prediction whose instruction was squashed. */
    void abandon(Addr pc) { classified->abandon(pc); }

    /** The classified predictor backing the banks. */
    ClassifiedPredictor &predictor() { return *classified; }

    /** @name Statistics */
    /// @{
    /** Individual instruction requests presented to the router. */
    std::uint64_t requests() const { return numRequests; }
    /** Merged table accesses attempted (groups after merging). */
    std::uint64_t accesses() const { return numAccesses; }
    /** Requests absorbed by merging (copies beyond the lead). */
    std::uint64_t mergedRequests() const { return numMerged; }
    /** Accesses denied by bank-port conflicts. */
    std::uint64_t deniedAccesses() const { return numDeniedAccesses; }
    /** Instructions left without a prediction due to conflicts. */
    std::uint64_t deniedRequests() const { return numDeniedRequests; }
    /** Additions the value distributor performed for merged copies. */
    std::uint64_t distributorAdditions() const { return numAdditions; }
    /** Requests filtered by NotPredictable profile hints (§4.2). */
    std::uint64_t hintFilteredRequests() const { return numHintFiltered; }
    /// @}

  private:
    unsigned bankOf(Addr pc) const;

    std::unique_ptr<ClassifiedPredictor> classified;
    VpTableConfig cfg;

    std::uint64_t numRequests = 0;
    std::uint64_t numAccesses = 0;
    std::uint64_t numMerged = 0;
    std::uint64_t numDeniedAccesses = 0;
    std::uint64_t numDeniedRequests = 0;
    std::uint64_t numAdditions = 0;
    std::uint64_t numHintFiltered = 0;
};

} // namespace vpsim

#endif // VPSIM_VPTABLE_INTERLEAVED_TABLE_HPP
