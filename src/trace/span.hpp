/**
 * @file
 * TraceSpan: a borrowed, contiguous view over trace records, plus the
 * structure-of-arrays (SoA) companion types TraceColumns / TraceSoa.
 *
 * The batched trace-delivery API (TraceSource::nextBlock) hands machine
 * models whole blocks of records at a time instead of one record per
 * virtual call, so the per-instruction simulation path is a plain
 * pointer walk over cache-resident memory. A TraceSpan never owns its
 * records; its lifetime contract is documented on TraceSource.
 *
 * The SoA layout exists because the simulation hot loops touch only a
 * minority of each 48-byte TraceRecord (the ideal machine reads pc,
 * result, op and the three register bytes — about 20 bytes). Iterating
 * the array-of-structs wastes more than half the fetched cache lines;
 * parallel per-field arrays let a block loop stream exactly the columns
 * it uses. TraceColumns is the borrowed view (the SoA analogue of
 * TraceSpan); TraceSoa is the owning backing store. The AoS view stays
 * the interchange format: every column set can reconstitute full
 * TraceRecords via record(), so existing record-oriented consumers keep
 * working against the same data.
 */

#ifndef VPSIM_TRACE_SPAN_HPP
#define VPSIM_TRACE_SPAN_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/record.hpp"

namespace vpsim
{

/**
 * Non-owning view of a contiguous run of TraceRecords.
 *
 * Deliberately minimal (the subset of std::span this codebase needs,
 * which targets C++17): pointer + length, value-semantic, cheap to
 * copy. Indexing is unchecked, like the underlying array.
 */
class TraceSpan
{
  public:
    /** "As many records as available" for nextBlock() requests. */
    static constexpr std::size_t noLimit = ~std::size_t{0};

    constexpr TraceSpan() = default;

    constexpr TraceSpan(const TraceRecord *record_data,
                        std::size_t record_count)
        : ptr(record_data), count(record_count)
    {}

    /** Borrow a whole vector (implicit: vectors are spans of records). */
    TraceSpan(const std::vector<TraceRecord> &records)
        : ptr(records.data()), count(records.size())
    {}

    constexpr const TraceRecord *data() const { return ptr; }
    constexpr std::size_t size() const { return count; }
    constexpr bool empty() const { return count == 0; }

    constexpr const TraceRecord *begin() const { return ptr; }
    constexpr const TraceRecord *end() const { return ptr + count; }

    constexpr const TraceRecord &operator[](std::size_t index) const
    {
        return ptr[index];
    }

    constexpr const TraceRecord &front() const { return ptr[0]; }
    constexpr const TraceRecord &back() const { return ptr[count - 1]; }

    /** The first min(n, size()) records. */
    constexpr TraceSpan first(std::size_t n) const
    {
        return {ptr, n < count ? n : count};
    }

    /**
     * The records from @p offset (clamped to size()) through at most
     * @p n more (noLimit = to the end).
     */
    constexpr TraceSpan subspan(std::size_t offset,
                                std::size_t n = noLimit) const
    {
        const std::size_t start = offset < count ? offset : count;
        const std::size_t avail = count - start;
        return {ptr + start, n < avail ? n : avail};
    }

  private:
    const TraceRecord *ptr = nullptr;
    std::size_t count = 0;
};

/**
 * Non-owning columnar (SoA) view of a contiguous run of trace records:
 * one parallel array per TraceRecord field. The pointers borrow storage
 * owned by a TraceSoa (or a source's internal buffers) and follow the
 * same lifetime rules as TraceSpan.
 *
 * `taken` is stored as uint8_t (0/1) rather than bool so the backing
 * store can be a plain contiguous vector (std::vector<bool> is a
 * bitset and has no element pointers).
 */
struct TraceColumns
{
    const SeqNum *seq = nullptr;
    const Addr *pc = nullptr;
    const Addr *nextPc = nullptr;
    const Addr *memAddr = nullptr;
    const Value *result = nullptr;
    const OpCode *op = nullptr;
    const RegIndex *rd = nullptr;
    const RegIndex *rs1 = nullptr;
    const RegIndex *rs2 = nullptr;
    const std::uint8_t *taken = nullptr;
    std::size_t count = 0;

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Reconstitute the AoS view of element @p index (a gather). */
    TraceRecord
    record(std::size_t index) const
    {
        TraceRecord r;
        r.seq = seq[index];
        r.pc = pc[index];
        r.nextPc = nextPc[index];
        r.memAddr = memAddr[index];
        r.result = result[index];
        r.op = op[index];
        r.rd = rd[index];
        r.rs1 = rs1[index];
        r.rs2 = rs2[index];
        r.taken = taken[index] != 0;
        return r;
    }

    /** Columns for elements [offset, offset + n), clamped like subspan. */
    TraceColumns
    subcolumns(std::size_t offset, std::size_t n = TraceSpan::noLimit) const
    {
        const std::size_t start = offset < count ? offset : count;
        const std::size_t avail = count - start;
        TraceColumns out = *this;
        out.seq += start;
        out.pc += start;
        out.nextPc += start;
        out.memAddr += start;
        out.result += start;
        out.op += start;
        out.rd += start;
        out.rs1 += start;
        out.rs2 += start;
        out.taken += start;
        out.count = n < avail ? n : avail;
        return out;
    }
};

/**
 * Owning SoA backing store for trace records: the parallel arrays a
 * TraceColumns view points into. Sources that can afford a one-time
 * transpose (VectorTraceSource) or that decode records field-by-field
 * anyway (the trace-file readers) build one of these and serve
 * columnar blocks at zero per-block cost.
 */
class TraceSoa
{
  public:
    std::size_t size() const { return seqs.size(); }
    bool empty() const { return seqs.empty(); }

    void
    clear()
    {
        seqs.clear();
        pcs.clear();
        nextPcs.clear();
        memAddrs.clear();
        results.clear();
        ops.clear();
        rds.clear();
        rs1s.clear();
        rs2s.clear();
        takens.clear();
    }

    void
    reserve(std::size_t n)
    {
        seqs.reserve(n);
        pcs.reserve(n);
        nextPcs.reserve(n);
        memAddrs.reserve(n);
        results.reserve(n);
        ops.reserve(n);
        rds.reserve(n);
        rs1s.reserve(n);
        rs2s.reserve(n);
        takens.reserve(n);
    }

    void
    push_back(const TraceRecord &r)
    {
        seqs.push_back(r.seq);
        pcs.push_back(r.pc);
        nextPcs.push_back(r.nextPc);
        memAddrs.push_back(r.memAddr);
        results.push_back(r.result);
        ops.push_back(r.op);
        rds.push_back(r.rd);
        rs1s.push_back(r.rs1);
        rs2s.push_back(r.rs2);
        takens.push_back(r.taken ? 1 : 0);
    }

    /** Replace the contents with a transpose of @p records. */
    void
    assign(TraceSpan records)
    {
        clear();
        reserve(records.size());
        for (const TraceRecord &r : records)
            push_back(r);
    }

    /** Borrowed columnar view of the whole store. */
    TraceColumns
    columns() const
    {
        TraceColumns c;
        c.seq = seqs.data();
        c.pc = pcs.data();
        c.nextPc = nextPcs.data();
        c.memAddr = memAddrs.data();
        c.result = results.data();
        c.op = ops.data();
        c.rd = rds.data();
        c.rs1 = rs1s.data();
        c.rs2 = rs2s.data();
        c.taken = takens.data();
        c.count = seqs.size();
        return c;
    }

    /** Borrowed view of elements [offset, offset + n), clamped. */
    TraceColumns
    columns(std::size_t offset, std::size_t n) const
    {
        return columns().subcolumns(offset, n);
    }

  private:
    std::vector<SeqNum> seqs;
    std::vector<Addr> pcs;
    std::vector<Addr> nextPcs;
    std::vector<Addr> memAddrs;
    std::vector<Value> results;
    std::vector<OpCode> ops;
    std::vector<RegIndex> rds;
    std::vector<RegIndex> rs1s;
    std::vector<RegIndex> rs2s;
    std::vector<std::uint8_t> takens;
};

} // namespace vpsim

#endif // VPSIM_TRACE_SPAN_HPP
