/**
 * @file
 * TraceSpan: a borrowed, contiguous view over trace records.
 *
 * The batched trace-delivery API (TraceSource::nextBlock) hands machine
 * models whole blocks of records at a time instead of one record per
 * virtual call, so the per-instruction simulation path is a plain
 * pointer walk over cache-resident memory. A TraceSpan never owns its
 * records; its lifetime contract is documented on TraceSource.
 */

#ifndef VPSIM_TRACE_SPAN_HPP
#define VPSIM_TRACE_SPAN_HPP

#include <cstddef>
#include <vector>

#include "trace/record.hpp"

namespace vpsim
{

/**
 * Non-owning view of a contiguous run of TraceRecords.
 *
 * Deliberately minimal (the subset of std::span this codebase needs,
 * which targets C++17): pointer + length, value-semantic, cheap to
 * copy. Indexing is unchecked, like the underlying array.
 */
class TraceSpan
{
  public:
    /** "As many records as available" for nextBlock() requests. */
    static constexpr std::size_t noLimit = ~std::size_t{0};

    constexpr TraceSpan() = default;

    constexpr TraceSpan(const TraceRecord *record_data,
                        std::size_t record_count)
        : ptr(record_data), count(record_count)
    {}

    /** Borrow a whole vector (implicit: vectors are spans of records). */
    TraceSpan(const std::vector<TraceRecord> &records)
        : ptr(records.data()), count(records.size())
    {}

    constexpr const TraceRecord *data() const { return ptr; }
    constexpr std::size_t size() const { return count; }
    constexpr bool empty() const { return count == 0; }

    constexpr const TraceRecord *begin() const { return ptr; }
    constexpr const TraceRecord *end() const { return ptr + count; }

    constexpr const TraceRecord &operator[](std::size_t index) const
    {
        return ptr[index];
    }

    constexpr const TraceRecord &front() const { return ptr[0]; }
    constexpr const TraceRecord &back() const { return ptr[count - 1]; }

    /** The first min(n, size()) records. */
    constexpr TraceSpan first(std::size_t n) const
    {
        return {ptr, n < count ? n : count};
    }

    /**
     * The records from @p offset (clamped to size()) through at most
     * @p n more (noLimit = to the end).
     */
    constexpr TraceSpan subspan(std::size_t offset,
                                std::size_t n = noLimit) const
    {
        const std::size_t start = offset < count ? offset : count;
        const std::size_t avail = count - start;
        return {ptr + start, n < avail ? n : avail};
    }

  private:
    const TraceRecord *ptr = nullptr;
    std::size_t count = 0;
};

} // namespace vpsim

#endif // VPSIM_TRACE_SPAN_HPP
