#include "trace/trace_stats.hpp"

#include <iomanip>
#include <sstream>
#include <algorithm>
#include <unordered_set>

namespace vpsim
{

namespace
{

/** Running totals shared by the span and streaming entry points. */
struct StatsAccumulator
{
    TraceStats stats;
    std::unordered_set<Addr> pcs;
    std::uint64_t takenTransfers = 0;
    std::uint64_t blocks = 0;

    void
    fold(TraceSpan records)
    {
        stats.totalInsts += records.size();
        for (const TraceRecord &rec : records) {
            pcs.insert(rec.pc);
            switch (rec.instClass()) {
              case InstClass::IntAlu:
                ++stats.aluOps;
                break;
              case InstClass::IntMul:
              case InstClass::IntDiv:
                ++stats.mulDivOps;
                break;
              case InstClass::Load:
                ++stats.loads;
                break;
              case InstClass::Store:
                ++stats.stores;
                break;
              case InstClass::Branch:
                ++stats.condBranches;
                if (rec.taken)
                    ++stats.takenCondBranches;
                break;
              case InstClass::Jump:
                ++stats.jumps;
                break;
              case InstClass::Nop:
              case InstClass::Halt:
                break;
            }
            if (rec.producesValue())
                ++stats.valueProducers;
            if (rec.isControlFlow()) {
                ++blocks;
                if (rec.taken)
                    ++takenTransfers;
            }
        }
    }

    TraceStats
    finish()
    {
        stats.distinctPcs = pcs.size();
        stats.takenRate = stats.condBranches == 0
            ? 0.0
            : static_cast<double>(stats.takenCondBranches) /
              static_cast<double>(stats.condBranches);
        stats.takenTransferRate = stats.totalInsts == 0
            ? 0.0
            : static_cast<double>(takenTransfers) /
              static_cast<double>(stats.totalInsts);
        stats.avgBasicBlock = blocks == 0
            ? static_cast<double>(stats.totalInsts)
            : static_cast<double>(stats.totalInsts) /
              static_cast<double>(blocks);
        return stats;
    }
};

} // namespace

TraceStats
computeTraceStats(TraceSpan records)
{
    StatsAccumulator acc;
    acc.fold(records);
    return acc.finish();
}

TraceStats
computeTraceStats(TraceSource &source)
{
    // Every counter folds across block boundaries, so the stream is
    // never materialized: each borrowed block is accumulated in turn.
    StatsAccumulator acc;
    source.reset();
    TraceSpan block;
    while (source.nextBlock(block))
        acc.fold(block);
    return acc.finish();
}

std::vector<TraceRecord>
sliceTrace(const std::vector<TraceRecord> &records, std::uint64_t skip,
           std::uint64_t length)
{
    std::vector<TraceRecord> sliced;
    if (skip >= records.size())
        return sliced;
    const std::uint64_t end = length == 0
        ? records.size()
        : std::min<std::uint64_t>(records.size(), skip + length);
    sliced.reserve(end - skip);
    for (std::uint64_t i = skip; i < end; ++i) {
        TraceRecord rec = records[i];
        rec.seq = i - skip;
        sliced.push_back(rec);
    }
    return sliced;
}

std::string
TraceStats::report(const std::string &name) const
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(2);
    oss << "trace " << name << ": " << totalInsts << " insts, "
        << distinctPcs << " static pcs\n"
        << "  mix: alu " << aluOps << ", mul/div " << mulDivOps
        << ", load " << loads << ", store " << stores
        << ", cond-branch " << condBranches << ", jump " << jumps << "\n"
        << "  value producers: " << valueProducers
        << ", avg basic block: " << avgBasicBlock
        << ", taken rate: " << takenRate * 100.0 << "%"
        << ", taken transfers/inst: " << takenTransferRate << "\n";
    return oss.str();
}

} // namespace vpsim
