#include "trace/source.hpp"

namespace vpsim
{

TraceSpan
materializeTrace(TraceSource &source, std::vector<TraceRecord> &storage)
{
    source.reset();
    TraceSpan first;
    if (!source.nextBlock(first, TraceSpan::noLimit))
        return TraceSpan();

    // Common case: the whole trace arrived as one borrowed block. The
    // probe reporting exhaustion leaves `first` valid (see the span
    // lifetime rules in source.hpp).
    TraceSpan probe;
    if (!source.nextBlock(probe, 1))
        return first;

    // Streaming source: a successful second delivery may have
    // invalidated `first`, so rewind and copy every block into owned
    // storage.
    source.reset();
    storage.clear();
    TraceSpan block;
    while (source.nextBlock(block, TraceSpan::noLimit))
        storage.insert(storage.end(), block.begin(), block.end());
    return TraceSpan(storage);
}

} // namespace vpsim
