#include "trace/streaming_source.hpp"

#include <filesystem>
#include <utility>

#include "common/resource_usage.hpp"

namespace vpsim
{

Status
StreamingTraceSource::open(const std::string &path,
                           const StreamingOptions &options)
{
    if (reader.isOpen())
        reader.close();
    filePath = path;
    opts = options;
    window = opts.windowBlocks == 0 ? 1 : opts.windowBlocks;
    degraded = false;
    endOfTrace = false;
    streamStatus = Status::ok();
    blocks.clear();
    posInBlock = 0;
    deliveredRecords = 0;

    TraceV3Reader::Options reader_options;
    reader_options.salvage = opts.salvage;
    reader_options.preferMapped = opts.preferMapped;
    if (opts.preferMapped && opts.memBudgetBytes != 0) {
        // First degradation step, taken up front: a mapping keeps every
        // touched page resident, so a file that cannot fit under the
        // budget next to the current RSS must stream through buffered
        // reads instead.
        std::error_code ec;
        const std::uintmax_t file_bytes =
            std::filesystem::file_size(path, ec);
        if (!ec && RssSampler::currentRssBytes() + file_bytes >
                       opts.memBudgetBytes) {
            reader_options.preferMapped = false;
            degraded = true;
        }
    }
    Status opened = reader.open(path, reader_options);
    if (!opened.isOk()) {
        streamStatus = opened;
        endOfTrace = true;
        return opened;
    }
    if (reader_options.preferMapped && reader.usingBufferedReads())
        degraded = true;
    return Status::ok();
}

/**
 * Decode one more block onto the back of the window; records errors
 * and end-of-trace in the sticky state instead of returning them.
 */
bool
StreamingTraceSource::fillWindow()
{
    if (endOfTrace || !streamStatus.isOk())
        return false;
    if (!reader.isOpen()) {
        // Never opened (or reset after a failed reopen): exhausted.
        endOfTrace = true;
        return false;
    }
    DecodedBlock decoded;
    TraceV3Reader::Block outcome = TraceV3Reader::Block::kEnd;
    if (Status got = reader.nextBlock(&decoded.soa, &outcome);
        !got.isOk()) {
        streamStatus = got;
        endOfTrace = true;
        return false;
    }
    if (outcome == TraceV3Reader::Block::kEnd ||
        decoded.soa.empty()) {
        endOfTrace = true;
        return false;
    }
    blocks.push_back(std::move(decoded));
    enforceBudget();
    return true;
}

void
StreamingTraceSource::enforceBudget()
{
    if (opts.memBudgetBytes == 0)
        return;
    if (RssSampler::currentRssBytes() <= opts.memBudgetBytes)
        return;
    // Second degradation step: give up decode-ahead. Only deep
    // prefetch blocks are dropped — the front block may have live
    // spans pointing into it, and its immediate successor is what an
    // exhausted front advances onto (dropping that would truncate the
    // stream).
    window = 1;
    while (blocks.size() > 2)
        blocks.pop_back();
}

/** True when the front block has unserved records (decoding as needed). */
bool
StreamingTraceSource::ensureCurrentBlock()
{
    for (;;) {
        if (!blocks.empty() &&
            posInBlock < blocks.front().soa.size()) {
            // Top up the decode-ahead window behind the serving block.
            while (blocks.size() < window && fillWindow()) {
            }
            return true;
        }
        if (blocks.size() >= 2) {
            // The front is fully served and a successor exists, so
            // dropping it only invalidates spans the contract already
            // allows us to recycle (we are about to deliver again).
            blocks.pop_front();
            posInBlock = 0;
            continue;
        }
        if (endOfTrace || !streamStatus.isOk())
            return false;
        fillWindow();
    }
}

bool
StreamingTraceSource::nextBlock(TraceSpan &out, std::size_t max_records)
{
    if (!ensureCurrentBlock()) {
        out = TraceSpan();
        return false;
    }
    DecodedBlock &block = blocks.front();
    if (!block.aosBuilt) {
        // Spans need contiguous TraceRecords: gather the AoS mirror
        // once per block, only on the span path (the columnar path
        // never pays for it).
        const TraceColumns cols = block.soa.columns();
        block.aos.clear();
        block.aos.reserve(cols.size());
        for (std::size_t i = 0; i < cols.size(); ++i)
            block.aos.push_back(cols.record(i));
        block.aosBuilt = true;
    }
    const std::size_t remaining = block.soa.size() - posInBlock;
    const std::size_t count =
        max_records < remaining ? max_records : remaining;
    out = TraceSpan(block.aos.data() + posInBlock, count);
    posInBlock += count;
    deliveredRecords += count;
    return true;
}

bool
StreamingTraceSource::nextColumns(TraceColumns &out,
                                  std::size_t max_records)
{
    if (!ensureCurrentBlock()) {
        out = TraceColumns();
        return false;
    }
    DecodedBlock &block = blocks.front();
    const std::size_t remaining = block.soa.size() - posInBlock;
    const std::size_t count =
        max_records < remaining ? max_records : remaining;
    out = block.soa.columns(posInBlock, count);
    posInBlock += count;
    deliveredRecords += count;
    return true;
}

void
StreamingTraceSource::reset()
{
    const Status reopened = open(filePath, opts);
    // open() already recorded any failure in the sticky status; a
    // rewound source that cannot reopen simply reads as exhausted.
    (void)reopened;
}

} // namespace vpsim
