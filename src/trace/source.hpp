/**
 * @file
 * Abstract trace sources: batched, block-at-a-time record delivery.
 *
 * A TraceSource produces TraceRecords in program order. Machine models
 * are written against this interface so they can run from in-memory
 * traces (produced by the VM) or from trace files interchangeably.
 *
 * The delivery contract is the batched nextBlock(): the source hands
 * out a borrowed contiguous TraceSpan of up to the requested number of
 * records, so the virtual-dispatch boundary sits at block granularity
 * and the per-instruction simulation path is a plain pointer walk.
 *
 * Span lifetime/invalidation rules:
 *  - A span returned by nextBlock() (or a record delivered by the
 *    next() shim) borrows storage owned by the source. It stays valid
 *    until the next *successful* nextBlock()/next() call, a reset(),
 *    or the source's destruction — whichever comes first. A
 *    nextBlock() that reports exhaustion (returns false) never
 *    invalidates earlier spans. Sources backed by stable storage
 *    (VectorTraceSource, BorrowedTraceSource) keep earlier spans
 *    valid for the source's lifetime, but callers must not rely on
 *    that: a streaming source may recycle an internal block buffer on
 *    every delivery.
 *  - Callers that need records to outlive the iteration must copy
 *    them (see materializeTrace()).
 */

#ifndef VPSIM_TRACE_SOURCE_HPP
#define VPSIM_TRACE_SOURCE_HPP

#include <cstddef>
#include <vector>

#include "common/logging.hpp"
#include "trace/record.hpp"
#include "trace/span.hpp"

namespace vpsim
{

/** Sequential, resettable, block-delivering stream of trace records. */
class TraceSource
{
  public:
    /**
     * Default nextBlock() request size. Large enough to amortize the
     * virtual call to nothing (< 0.03% of records), small enough that
     * a streaming source's block buffer stays cache- and
     * memory-friendly.
     */
    static constexpr std::size_t defaultBlockRecords = 4096;

    virtual ~TraceSource() = default;

    /**
     * Deliver the next block of records as a borrowed span.
     *
     * @param out On success, a span of 1..max_records records in
     *        program order, contiguous in memory; empty on exhaustion.
     *        See the file comment for the span's lifetime rules.
     * @param max_records Upper bound on the block size; the source may
     *        deliver fewer (e.g. the tail of the trace) but never
     *        more, and never an empty block on success. Must be >= 1;
     *        TraceSpan::noLimit requests everything the source can
     *        deliver in one contiguous block.
     * @retval true A non-empty block was produced.
     * @retval false The trace is exhausted (@p out is empty).
     */
    virtual bool nextBlock(TraceSpan &out,
                           std::size_t max_records =
                               defaultBlockRecords) = 0;

    /** Rewind to the beginning of the trace. */
    virtual void reset() = 0;

    /**
     * True when this source can also deliver blocks in columnar (SoA)
     * form via nextColumns(). Hot consumers that stream only a few
     * record fields (the ideal machine) check this once per run and
     * take the columnar loop when available; nextBlock() remains the
     * universal path.
     */
    virtual bool supportsColumns() const { return false; }

    /**
     * Columnar counterpart of nextBlock(): deliver the next block as a
     * borrowed TraceColumns view over the same stream cursor (the two
     * APIs advance the same position; callers use one or the other).
     * Same block-size and lifetime rules as nextBlock().
     *
     * Only valid on sources where supportsColumns() is true; the
     * default implementation aborts.
     */
    virtual bool
    nextColumns(TraceColumns &out,
                std::size_t max_records = defaultBlockRecords)
    {
        (void)out;
        (void)max_records;
        panic("trace source has no columnar path "
              "(check supportsColumns() first)");
    }

    /**
     * Fetch the next record.
     *
     * @deprecated Compatibility shim over nextBlock(): it pays a
     * virtual call and a record copy per instruction, which is exactly
     * the per-record cost the batched API removes (see docs/PERF.md).
     * New code must iterate spans; the project lint
     * (`trace-per-record`) flags new per-record loops.
     *
     * @param out Filled with the next record on success.
     * @retval true A record was produced.
     * @retval false The trace is exhausted.
     */
    bool
    next(TraceRecord &out)
    {
        TraceSpan block;
        if (!nextBlock(block, 1))
            return false;
        out = block.front();
        return true;
    }
};

/** Trace source backed by an in-memory vector of records. */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<TraceRecord> trace_records)
        : backing(std::move(trace_records))
    {}

    bool
    nextBlock(TraceSpan &out,
              std::size_t max_records = defaultBlockRecords) override
    {
        const std::size_t remaining = backing.size() - position;
        if (remaining == 0) {
            out = TraceSpan();
            return false;
        }
        const std::size_t count =
            max_records < remaining ? max_records : remaining;
        out = TraceSpan(backing.data() + position, count);
        position += count;
        return true;
    }

    void reset() override { position = 0; }

    bool supportsColumns() const override { return true; }

    bool
    nextColumns(TraceColumns &out,
                std::size_t max_records = defaultBlockRecords) override
    {
        const std::size_t remaining = backing.size() - position;
        if (remaining == 0) {
            out = TraceColumns();
            return false;
        }
        // One-time transpose, amortized across every subsequent pass
        // (figure sweeps re-run the same captured trace many times).
        if (soa.size() != backing.size())
            soa.assign(TraceSpan(backing));
        const std::size_t count =
            max_records < remaining ? max_records : remaining;
        out = soa.columns(position, count);
        position += count;
        return true;
    }

    /** Number of records in the backing vector. */
    std::size_t size() const { return backing.size(); }

    /** Random access for analyses that need to revisit records. */
    const TraceRecord &at(std::size_t index) const
    {
        return backing[index];
    }

    /**
     * The full backing vector, independent of the cursor. Pairs with
     * size()/reset(): callers that need the whole trace (cross-check
     * re-simulation, figure tables) borrow it here instead of
     * re-reading the stream record by record.
     */
    const std::vector<TraceRecord> &records() const { return backing; }

  private:
    std::vector<TraceRecord> backing;
    TraceSoa soa;
    std::size_t position = 0;
};

/**
 * Zero-copy trace source over records owned elsewhere (a captured
 * TraceHandle, a VectorTraceSource's backing store, a memory-mapped
 * file). The viewed storage must outlive the source.
 */
class BorrowedTraceSource : public TraceSource
{
  public:
    explicit BorrowedTraceSource(TraceSpan trace_records)
        : span(trace_records)
    {}

    /**
     * Borrow both layouts of the same trace: @p trace_records (AoS)
     * and @p trace_columns (its SoA transpose, e.g. a TraceSoa built
     * once at capture time). The source then serves nextColumns()
     * zero-copy. The two views must describe the same records in the
     * same order; both must outlive the source.
     */
    BorrowedTraceSource(TraceSpan trace_records,
                        TraceColumns trace_columns)
        : span(trace_records), cols(trace_columns)
    {
        panicIf(cols.count != span.size(),
                "BorrowedTraceSource: AoS and SoA views disagree on "
                "record count");
    }

    bool
    nextBlock(TraceSpan &out,
              std::size_t max_records = defaultBlockRecords) override
    {
        const std::size_t remaining = span.size() - position;
        if (remaining == 0) {
            out = TraceSpan();
            return false;
        }
        const std::size_t count =
            max_records < remaining ? max_records : remaining;
        out = TraceSpan(span.data() + position, count);
        position += count;
        return true;
    }

    void reset() override { position = 0; }

    bool
    supportsColumns() const override
    {
        return cols.count != 0 && cols.count == span.size();
    }

    bool
    nextColumns(TraceColumns &out,
                std::size_t max_records = defaultBlockRecords) override
    {
        const std::size_t remaining = span.size() - position;
        if (remaining == 0) {
            out = TraceColumns();
            return false;
        }
        const std::size_t count =
            max_records < remaining ? max_records : remaining;
        out = cols.subcolumns(position, count);
        position += count;
        return true;
    }

    /** Number of records in the viewed storage. */
    std::size_t size() const { return span.size(); }

  private:
    TraceSpan span;
    TraceColumns cols;
    std::size_t position = 0;
};

/**
 * Obtain @p source's full remaining contents as one contiguous span,
 * rewinding first.
 *
 * Sources whose backing store is already contiguous (vector/borrowed)
 * deliver it as a single borrowed block and @p storage stays empty;
 * otherwise the blocks are copied into @p storage and the returned
 * span views that. Either way the span is valid while both @p source
 * and @p storage live and are not further mutated.
 */
TraceSpan materializeTrace(TraceSource &source,
                           std::vector<TraceRecord> &storage);

} // namespace vpsim

#endif // VPSIM_TRACE_SOURCE_HPP
