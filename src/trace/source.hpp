/**
 * @file
 * Abstract trace sources.
 *
 * A TraceSource produces TraceRecords in program order. Machine models are
 * written against this interface so they can run from in-memory traces
 * (produced by the VM) or from trace files interchangeably.
 */

#ifndef VPSIM_TRACE_SOURCE_HPP
#define VPSIM_TRACE_SOURCE_HPP

#include <cstddef>
#include <vector>

#include "trace/record.hpp"

namespace vpsim
{

/** Sequential, resettable stream of trace records. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /**
     * Fetch the next record.
     *
     * @param out Filled with the next record on success.
     * @retval true A record was produced.
     * @retval false The trace is exhausted.
     */
    virtual bool next(TraceRecord &out) = 0;

    /** Rewind to the beginning of the trace. */
    virtual void reset() = 0;
};

/** Trace source backed by an in-memory vector of records. */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<TraceRecord> trace_records)
        : records(std::move(trace_records))
    {}

    bool
    next(TraceRecord &out) override
    {
        if (position >= records.size())
            return false;
        out = records[position++];
        return true;
    }

    void reset() override { position = 0; }

    /** Number of records in the backing vector. */
    std::size_t size() const { return records.size(); }

    /** Random access for analyses that need to revisit records. */
    const TraceRecord &at(std::size_t index) const { return records[index]; }

    /** The full backing vector. */
    const std::vector<TraceRecord> &all() const { return records; }

  private:
    std::vector<TraceRecord> records;
    std::size_t position = 0;
};

} // namespace vpsim

#endif // VPSIM_TRACE_SOURCE_HPP
