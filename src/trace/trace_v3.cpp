#include "trace/trace_v3.hpp"

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "common/crc32.hpp"
#include "common/logging.hpp"
#include "trace/varint.hpp"

namespace vpsim
{

namespace
{

constexpr char v3Magic[4] = {'V', 'P', 'T', 'R'};
constexpr char blockMagic[4] = {'V', 'P', 'B', '3'};
constexpr char trailerMagic[4] = {'V', 'P', 'E', '3'};

/** Upper bound on one record's encoded size (4 deltas + result + 4). */
constexpr std::size_t maxEncodedRecordBytes = 5 * maxVarintBytes + 4;

/** Cap on records-per-block so a corrupt header can't balloon memory. */
constexpr std::uint32_t maxRecordsPerBlock = 1u << 22;

void
packU32(unsigned char *out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<unsigned char>(value >> (8 * i));
}

void
packU64(unsigned char *out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<unsigned char>(value >> (8 * i));
}

std::uint32_t
unpackU32(const unsigned char *in)
{
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
    return value;
}

std::uint64_t
unpackU64(const unsigned char *in)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return value;
}

/**
 * Consult the injector's per-block counter. Control kinds behave as
 * everywhere else (sigint raises, throw throws); any other armed kind
 * reports true, which the caller turns into a forced CRC mismatch.
 */
bool
injectedBlockCorruption(const std::string &path)
{
    const io::FaultKind kind = io::faultInjector().next("block");
    if (kind == io::FaultKind::Sigint) {
        std::raise(SIGINT);
        return false;
    }
    if (kind == io::FaultKind::Throw)
        throw std::runtime_error("injected fault: block " + path);
    return kind != io::FaultKind::None;
}

/** Encode @p records as one block payload into @p out (appended). */
void
encodeBlockPayload(std::vector<unsigned char> &out, TraceSpan records)
{
    SeqNum prev_seq = 0;
    Addr prev_pc = 0;
    Addr prev_mem = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const TraceRecord &r = records[i];
        if (i == 0) {
            putVarint(out, r.seq);
            putVarint(out, r.pc);
        } else {
            putSignedVarint(out, static_cast<std::int64_t>(
                                     r.seq - (prev_seq + 1)));
            putSignedVarint(out,
                            static_cast<std::int64_t>(r.pc - prev_pc));
        }
        putSignedVarint(out, static_cast<std::int64_t>(
                                 r.nextPc - r.fallThrough()));
        if (i == 0)
            putVarint(out, r.memAddr);
        else
            putSignedVarint(out, static_cast<std::int64_t>(r.memAddr -
                                                           prev_mem));
        putVarint(out, r.result);
        out.push_back(static_cast<unsigned char>(
            static_cast<unsigned char>(r.op) |
            (r.taken ? 0x80u : 0x00u)));
        out.push_back(r.rd);
        out.push_back(r.rs1);
        out.push_back(r.rs2);
        prev_seq = r.seq;
        prev_pc = r.pc;
        prev_mem = r.memAddr;
    }
}

/**
 * Decode one block payload of @p count records into @p out (replaced).
 * All deltas reset at the block boundary, so this needs nothing from
 * neighbouring blocks. False on any malformed encoding.
 */
bool
decodeBlockPayload(const unsigned char *payload, std::size_t size,
                   std::uint32_t count, TraceSoa *out)
{
    out->clear();
    out->reserve(count);
    const unsigned char *p = payload;
    const unsigned char *end = payload + size;
    SeqNum prev_seq = 0;
    Addr prev_pc = 0;
    Addr prev_mem = 0;
    for (std::uint32_t i = 0; i < count; ++i) {
        TraceRecord r;
        std::uint64_t raw = 0;
        std::int64_t delta = 0;
        if (i == 0) {
            if (!getVarint(p, end, &raw))
                return false;
            r.seq = raw;
            if (!getVarint(p, end, &raw))
                return false;
            r.pc = raw;
        } else {
            if (!getSignedVarint(p, end, &delta))
                return false;
            r.seq = prev_seq + 1 + static_cast<std::uint64_t>(delta);
            if (!getSignedVarint(p, end, &delta))
                return false;
            r.pc = prev_pc + static_cast<std::uint64_t>(delta);
        }
        if (!getSignedVarint(p, end, &delta))
            return false;
        r.nextPc = r.pc + instBytes + static_cast<std::uint64_t>(delta);
        if (i == 0) {
            if (!getVarint(p, end, &raw))
                return false;
            r.memAddr = raw;
        } else {
            if (!getSignedVarint(p, end, &delta))
                return false;
            r.memAddr = prev_mem + static_cast<std::uint64_t>(delta);
        }
        if (!getVarint(p, end, &raw))
            return false;
        r.result = raw;
        if (end - p < 4)
            return false;
        const unsigned char op_taken = *p++;
        const unsigned char op_byte = op_taken & 0x7fu;
        if (op_byte >= static_cast<unsigned char>(OpCode::NumOpCodes))
            return false;
        r.op = static_cast<OpCode>(op_byte);
        r.taken = (op_taken & 0x80u) != 0;
        r.rd = *p++;
        r.rs1 = *p++;
        r.rs2 = *p++;
        out->push_back(r);
        prev_seq = r.seq;
        prev_pc = r.pc;
        prev_mem = r.memAddr;
    }
    // A valid block's payload is consumed exactly; slack means the
    // declared count or the payload length lied.
    return p == end;
}

Status
corrupt(const std::string &detail)
{
    return Status::error(StatusCode::kCorrupt, detail);
}

} // namespace

// ---------------------------------------------------------------------------
// SalvageRegistry

void
SalvageRegistry::note(const std::string &path,
                      const BlockSalvageReport &report)
{
    if (report.clean())
        return;
    MutexLock lock(mutex);
    sums.files += 1;
    sums.blocksQuarantined += report.blocksQuarantined;
    sums.recordsLost += report.recordsLost;
    sums.bytesSkipped += report.bytesSkipped;
    (void)path;
}

void
SalvageRegistry::addTotals(const Totals &other)
{
    MutexLock lock(mutex);
    sums.files += other.files;
    sums.blocksQuarantined += other.blocksQuarantined;
    sums.recordsLost += other.recordsLost;
    sums.bytesSkipped += other.bytesSkipped;
}

SalvageRegistry::Totals
SalvageRegistry::totals() const
{
    MutexLock lock(mutex);
    return sums;
}

void
SalvageRegistry::reset()
{
    MutexLock lock(mutex);
    sums = Totals();
}

SalvageRegistry &
salvageRegistry()
{
    static SalvageRegistry registry;
    return registry;
}

// ---------------------------------------------------------------------------
// TraceV3Writer

Status
TraceV3Writer::open(const std::string &path,
                    std::uint32_t records_per_block)
{
    panicIf(isOpen(), "TraceV3Writer reopened while open: " + path);
    panicIf(records_per_block == 0 ||
                records_per_block > maxRecordsPerBlock,
            "bad records-per-block for v3 writer");
    if (Status opened = file.openForWrite(path); !opened.isOk())
        return opened;
    recordsPerBlock = records_per_block;
    totalRecords = 0;
    totalBlocks = 0;
    pending.clear();

    unsigned char header[v3HeaderBytes] = {};
    std::memcpy(header, v3Magic, 4);
    header[4] = static_cast<unsigned char>(traceFormatVersionV3);
    packU32(header + 8, recordsPerBlock);
    packU32(header + 12, crc32(header, 12));
    if (Status put = file.writeAll(header, sizeof(header)); !put.isOk())
        return Status::error(put.code(),
                             "trace header: " + put.message());
    return Status::ok();
}

Status
TraceV3Writer::append(TraceSpan records)
{
    panicIf(!isOpen(), "append on closed TraceV3Writer");
    const io::FaultKind kind = io::faultInjector().next("capture");
    if (kind == io::FaultKind::Sigint)
        std::raise(SIGINT);
    else if (kind == io::FaultKind::Throw)
        throw std::runtime_error("injected fault: capture " +
                                 file.path());
    else if (kind != io::FaultKind::None) {
        const int err = (kind == io::FaultKind::Eio) ? EIO : ENOSPC;
        return Status::error(StatusCode::kIo,
                             "capture write error on " + file.path() +
                                 ": " + std::strerror(err) +
                                 " (injected)");
    }
    pending.insert(pending.end(), records.begin(), records.end());
    while (pending.size() >= recordsPerBlock) {
        if (Status put = flushBlock(); !put.isOk())
            return put;
    }
    totalRecords += records.size();
    return Status::ok();
}

Status
TraceV3Writer::flushBlock()
{
    const std::size_t count = std::min<std::size_t>(pending.size(),
                                                    recordsPerBlock);
    panicIf(count == 0, "flushBlock with no pending records");
    scratch.clear();
    encodeBlockPayload(scratch, TraceSpan(pending.data(), count));

    unsigned char frame_header[v3BlockFrameBytes];
    std::memcpy(frame_header, blockMagic, 4);
    packU32(frame_header + 4, static_cast<std::uint32_t>(count));
    packU32(frame_header + 8, static_cast<std::uint32_t>(scratch.size()));
    Crc32 crc;
    crc.update(frame_header, sizeof(frame_header));
    crc.update(scratch.data(), scratch.size());
    unsigned char footer[4];
    packU32(footer, crc.value());

    if (Status put = file.writeAll(frame_header, sizeof(frame_header));
        !put.isOk()) {
        return Status::error(put.code(),
                             "trace block frame: " + put.message());
    }
    if (Status put = file.writeAll(scratch.data(), scratch.size());
        !put.isOk()) {
        return Status::error(put.code(),
                             "trace block payload: " + put.message());
    }
    if (Status put = file.writeAll(footer, sizeof(footer)); !put.isOk())
        return Status::error(put.code(),
                             "trace block footer: " + put.message());
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(count));
    ++totalBlocks;
    return Status::ok();
}

Status
TraceV3Writer::finish()
{
    panicIf(!isOpen(), "finish on closed TraceV3Writer");
    while (!pending.empty()) {
        if (Status put = flushBlock(); !put.isOk())
            return put;
    }
    unsigned char trailer[v3TrailerBytes];
    std::memcpy(trailer, trailerMagic, 4);
    packU64(trailer + 4, totalRecords);
    packU64(trailer + 12, totalBlocks);
    packU32(trailer + 20, crc32(trailer, 20));
    if (Status put = file.writeAll(trailer, sizeof(trailer));
        !put.isOk()) {
        return Status::error(put.code(),
                             "trace trailer: " + put.message());
    }
    // fsync before the caller's atomic rename: a rename that lands
    // before the data does can publish a file whose tail is garbage.
    if (Status synced = file.sync(); !synced.isOk())
        return synced;
    file.close();
    return Status::ok();
}

void
TraceV3Writer::close()
{
    file.close();
    pending.clear();
    scratch.clear();
}

// ---------------------------------------------------------------------------
// TraceV3Reader

Status
TraceV3Reader::open(const std::string &path, const Options &options)
{
    panicIf(opened, "TraceV3Reader reopened while open: " + path);
    opts = options;
    filePath = path;
    done = false;
    cursor = 0;
    declaredRecords = 0;
    report = BlockSalvageReport();

    if (opts.preferMapped) {
        // Any map() failure (including injected open/mmap/read faults)
        // degrades to buffered reads rather than failing the file.
        if (!mapped.map(path).isOk())
            mapped.unmap();
    }
    if (!mapped.isMapped()) {
        if (Status got = file.openForRead(path); !got.isOk())
            return got;
    }

    bool at_end = false;
    if (Status got = readFrame(v3HeaderBytes, &at_end); !got.isOk())
        return Status::error(got.code(),
                             "trace header: " + got.message());
    if (at_end)
        return corrupt("trace header: unexpected end of file in " +
                       filePath + " (truncated?)");
    const unsigned char *h = frameData;
    if (std::memcmp(h, v3Magic, 4) != 0)
        return corrupt("bad trace file magic: " + filePath);
    if (h[4] != traceFormatVersionV3) {
        return corrupt("unsupported trace file version " +
                       std::to_string(h[4]) + " in " + filePath +
                       " (expected " +
                       std::to_string(traceFormatVersionV3) + ")");
    }
    if (unpackU32(h + 12) != crc32(h, 12))
        return corrupt("trace header checksum mismatch in " + filePath);
    blockRecords = unpackU32(h + 8);
    if (blockRecords == 0 || blockRecords > maxRecordsPerBlock) {
        return corrupt("bad records-per-block " +
                       std::to_string(blockRecords) + " in " + filePath);
    }
    opened = true;
    return Status::ok();
}

/**
 * Make the next @p size bytes of the stream available at frameData.
 * Sets *at_end (without error) when the stream is cleanly exhausted
 * before the first byte; a partial frame is kCorrupt truncation.
 */
Status
TraceV3Reader::readFrame(std::size_t size, bool *at_end)
{
    *at_end = false;
    if (mapped.isMapped()) {
        if (cursor == mapped.size()) {
            *at_end = true;
            return Status::ok();
        }
        if (mapped.size() - cursor < size) {
            return corrupt("unexpected end of file in " + filePath +
                           " (truncated?)");
        }
        frameData = mapped.data() + cursor;
        cursor += size;
        return Status::ok();
    }
    if (frame.size() < size)
        frame.resize(size);
    std::size_t have = 0;
    // Drain bytes resync() pushed back before touching the file.
    while (have < size && !pendback.empty()) {
        frame[have++] = pendback.front();
        pendback.erase(pendback.begin());
    }
    if (have < size) {
        if (have == 0 && file.atEof()) {
            *at_end = true;
            return Status::ok();
        }
        if (Status got = file.readExact(frame.data() + have,
                                        size - have);
            !got.isOk()) {
            return got;
        }
    }
    frameData = frame.data();
    return Status::ok();
}

/**
 * Salvage recovery: scan forward for the next block or trailer magic
 * and leave the stream positioned so the next readFrame() returns it.
 * Hitting end-of-stream is not an error — the caller sees at_end.
 */
Status
TraceV3Reader::resync()
{
    if (mapped.isMapped()) {
        const unsigned char *base = mapped.data();
        const std::uint64_t size = mapped.size();
        std::uint64_t pos = cursor;
        while (size - pos >= 4) {
            if (std::memcmp(base + pos, blockMagic, 4) == 0 ||
                std::memcmp(base + pos, trailerMagic, 4) == 0) {
                report.bytesSkipped += pos - cursor;
                cursor = pos;
                return Status::ok();
            }
            ++pos;
        }
        report.bytesSkipped += size - cursor;
        cursor = size;
        return Status::ok();
    }
    unsigned char window[4];
    std::size_t filled = 0;
    // Any pushed-back bytes rejoin the scan first.
    while (filled < 4 && !pendback.empty()) {
        window[filled++] = pendback.front();
        pendback.erase(pendback.begin());
    }
    for (;;) {
        while (filled < 4) {
            if (file.atEof())
                return Status::ok(); // Partial window: skipped bytes.
            unsigned char byte = 0;
            if (Status got = file.readExact(&byte, 1); !got.isOk())
                return got;
            window[filled++] = byte;
        }
        if (std::memcmp(window, blockMagic, 4) == 0 ||
            std::memcmp(window, trailerMagic, 4) == 0) {
            pendback.assign(window, window + 4);
            return Status::ok();
        }
        ++report.bytesSkipped;
        std::memmove(window, window + 1, 3);
        filled = 3;
    }
}

/**
 * One damaged block: fail the file in strict mode; in salvage mode
 * quarantine it (tallying @p declared_count as best-known loss),
 * resync, and tell the caller's loop to continue (outcome untouched).
 */
Status
TraceV3Reader::handleCorrupt(const Status &why,
                             std::uint64_t declared_count)
{
    if (!opts.salvage)
        return why;
    report.blocksQuarantined += 1;
    report.recordsLost += declared_count;
    return resync();
}

Status
TraceV3Reader::nextBlock(TraceSoa *out, Block *outcome)
{
    panicIf(!opened, "nextBlock on closed TraceV3Reader");
    panicIf(out == nullptr || outcome == nullptr,
            "nextBlock needs output parameters");
    if (done) {
        *outcome = Block::kEnd;
        return Status::ok();
    }
    for (;;) {
        bool at_end = false;
        if (Status got = readFrame(v3BlockFrameBytes, &at_end);
            !got.isOk()) {
            // A partial frame header is truncation damage.
            if (got.code() == StatusCode::kCorrupt) {
                if (Status handled = handleCorrupt(
                        corrupt("trace block " +
                                std::to_string(report.blocksDelivered) +
                                ": unexpected end of file in " +
                                filePath + " (truncated?)"),
                        0);
                    !handled.isOk()) {
                    return handled;
                }
                continue;
            }
            return got;
        }
        if (at_end) {
            // Stream ended with no trailer at all.
            if (!opts.salvage) {
                return corrupt("unexpected end of file in " + filePath +
                               " (missing trailer?)");
            }
            done = true;
            *outcome = Block::kEnd;
            return Status::ok();
        }

        if (std::memcmp(frameData, trailerMagic, 4) == 0) {
            // The 12 frame bytes are the trailer's first half; copy
            // them before the next readFrame() recycles the buffer.
            unsigned char trailer[v3TrailerBytes];
            std::memcpy(trailer, frameData, v3BlockFrameBytes);
            if (Status got = readFrame(v3TrailerBytes -
                                           v3BlockFrameBytes,
                                       &at_end);
                !got.isOk() || at_end) {
                const Status why =
                    corrupt("trace trailer: unexpected end of file in " +
                            filePath + " (truncated?)");
                if (!got.isOk() && got.code() != StatusCode::kCorrupt)
                    return got;
                if (Status handled = handleCorrupt(why, 0);
                    !handled.isOk()) {
                    return handled;
                }
                if (at_end) {
                    done = true;
                    *outcome = Block::kEnd;
                    return Status::ok();
                }
                continue;
            }
            std::memcpy(trailer + v3BlockFrameBytes, frameData,
                        v3TrailerBytes - v3BlockFrameBytes);
            if (unpackU32(trailer + 20) != crc32(trailer, 20)) {
                if (Status handled = handleCorrupt(
                        corrupt("trace trailer checksum mismatch in " +
                                filePath),
                        0);
                    !handled.isOk()) {
                    return handled;
                }
                continue;
            }
            declaredRecords = unpackU64(trailer + 4);
            const std::uint64_t declared_blocks = unpackU64(trailer + 12);
            if (!opts.salvage) {
                if (declaredRecords != report.recordsDelivered ||
                    declared_blocks != report.blocksDelivered) {
                    return corrupt(
                        "trace trailer mismatch in " + filePath +
                        " (declared " + std::to_string(declaredRecords) +
                        " records in " + std::to_string(declared_blocks) +
                        " blocks, decoded " +
                        std::to_string(report.recordsDelivered) +
                        " in " + std::to_string(report.blocksDelivered) +
                        ")");
                }
                bool trailing = false;
                if (mapped.isMapped()) {
                    trailing = cursor != mapped.size();
                } else {
                    trailing = !pendback.empty() || !file.atEof();
                }
                if (trailing) {
                    return corrupt("trailing bytes after trailer in "
                                   "trace file: " +
                                   filePath);
                }
            } else if (declaredRecords > report.recordsDelivered) {
                // The trailer is the exact record count; trust it over
                // the per-block running estimate.
                report.recordsLost =
                    declaredRecords - report.recordsDelivered;
            }
            done = true;
            *outcome = Block::kEnd;
            return Status::ok();
        }

        if (std::memcmp(frameData, blockMagic, 4) != 0) {
            if (Status handled = handleCorrupt(
                    corrupt("bad block magic at block " +
                            std::to_string(report.blocksDelivered) +
                            " in " + filePath),
                    0);
                !handled.isOk()) {
                return handled;
            }
            continue;
        }

        unsigned char frame_header[v3BlockFrameBytes];
        std::memcpy(frame_header, frameData, v3BlockFrameBytes);
        const std::uint32_t count = unpackU32(frame_header + 4);
        const std::uint32_t payload_bytes = unpackU32(frame_header + 8);
        const bool sane =
            count >= 1 && count <= blockRecords &&
            payload_bytes >= count * 9 &&
            payload_bytes <= static_cast<std::uint64_t>(count) *
                                 maxEncodedRecordBytes;
        if (!sane) {
            if (Status handled = handleCorrupt(
                    corrupt("corrupt block frame at block " +
                            std::to_string(report.blocksDelivered) +
                            " in " + filePath),
                    0);
                !handled.isOk()) {
                return handled;
            }
            continue;
        }

        if (Status got = readFrame(payload_bytes + 4, &at_end);
            !got.isOk() || at_end) {
            if (!got.isOk() && got.code() != StatusCode::kCorrupt)
                return got;
            if (Status handled = handleCorrupt(
                    corrupt("trace block " +
                            std::to_string(report.blocksDelivered) +
                            ": unexpected end of file in " + filePath +
                            " (truncated?)"),
                    count);
                !handled.isOk()) {
                return handled;
            }
            if (at_end) {
                done = true;
                *outcome = Block::kEnd;
                return Status::ok();
            }
            continue;
        }
        const unsigned char *payload = frameData;

        Crc32 crc;
        crc.update(frame_header, sizeof(frame_header));
        crc.update(payload, payload_bytes);
        const std::uint32_t stored = unpackU32(payload + payload_bytes);
        bool mismatch = stored != crc.value();
        std::string injected_detail;
        if (!mismatch && injectedBlockCorruption(filePath)) {
            mismatch = true;
            injected_detail = " (injected)";
        }
        if (mismatch) {
            char detail[64];
            std::snprintf(detail, sizeof(detail),
                          "stored %08x, computed %08x", stored,
                          crc.value());
            if (Status handled = handleCorrupt(
                    corrupt("block checksum mismatch at block " +
                            std::to_string(report.blocksDelivered) +
                            " in " + filePath + " (" + detail + ")" +
                            injected_detail),
                    count);
                !handled.isOk()) {
                return handled;
            }
            continue;
        }

        if (!decodeBlockPayload(payload, payload_bytes, count, out)) {
            if (Status handled = handleCorrupt(
                    corrupt("corrupt record encoding in block " +
                            std::to_string(report.blocksDelivered) +
                            " of " + filePath),
                    count);
                !handled.isOk()) {
                return handled;
            }
            continue;
        }
        report.blocksDelivered += 1;
        report.recordsDelivered += count;
        *outcome = Block::kDelivered;
        return Status::ok();
    }
}

void
TraceV3Reader::close()
{
    if (!opened)
        return;
    if (opts.salvage)
        salvageRegistry().note(filePath, report);
    mapped.unmap();
    file.close();
    pendback.clear();
    frame.clear();
    opened = false;
}

// ---------------------------------------------------------------------------
// Whole-file convenience wrappers

Status
writeTraceV3(const std::string &path,
             const std::vector<TraceRecord> &records,
             std::uint32_t records_per_block)
{
    TraceV3Writer writer;
    if (Status opened = writer.open(path, records_per_block);
        !opened.isOk()) {
        return opened;
    }
    if (Status put = writer.append(TraceSpan(records)); !put.isOk())
        return put;
    return writer.finish();
}

Status
readTraceV3(const std::string &path, std::vector<TraceRecord> *out,
            bool salvage, BlockSalvageReport *report_out)
{
    panicIf(out == nullptr, "readTraceV3 needs an output vector");
    out->clear();
    TraceV3Reader reader;
    TraceV3Reader::Options options;
    options.salvage = salvage;
    options.preferMapped = true;
    if (Status opened = reader.open(path, options); !opened.isOk())
        return opened;
    TraceSoa block;
    for (;;) {
        TraceV3Reader::Block outcome = TraceV3Reader::Block::kEnd;
        if (Status got = reader.nextBlock(&block, &outcome);
            !got.isOk()) {
            return got;
        }
        if (outcome == TraceV3Reader::Block::kEnd)
            break;
        const TraceColumns cols = block.columns();
        out->reserve(out->size() + cols.size());
        for (std::size_t i = 0; i < cols.size(); ++i)
            out->push_back(cols.record(i));
    }
    if (report_out)
        *report_out = reader.salvageReport();
    reader.close();
    return Status::ok();
}

} // namespace vpsim
