/**
 * @file
 * LEB128 varints and zigzag mapping for the v3 block trace format.
 *
 * Trace fields are strongly clustered: sequence numbers advance by one,
 * PCs advance by one instruction, memory addresses stride through
 * arrays. Encoding each field as a zigzag delta against its natural
 * predecessor turns almost every 8-byte field into a 1-byte varint,
 * which is what makes a 100M-instruction v3 trace a disk-streamable
 * artifact instead of a 4.5 GB one (see docs/TRACE_FORMAT.md §v3).
 *
 * Encoding is unsigned LEB128 (7 payload bits per byte, continuation in
 * the top bit, little-endian groups); signed deltas are first folded to
 * unsigned with the standard zigzag map so small negative deltas stay
 * short. A u64 never needs more than 10 encoded bytes.
 */

#ifndef VPSIM_TRACE_VARINT_HPP
#define VPSIM_TRACE_VARINT_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vpsim
{

/** Largest encoded size of one u64 varint (ceil(64 / 7) bytes). */
inline constexpr std::size_t maxVarintBytes = 10;

/** Map a signed delta to unsigned so small magnitudes encode short. */
inline constexpr std::uint64_t
zigzagEncode(std::int64_t value)
{
    return (static_cast<std::uint64_t>(value) << 1) ^
           static_cast<std::uint64_t>(value >> 63);
}

/** Inverse of zigzagEncode. */
inline constexpr std::int64_t
zigzagDecode(std::uint64_t value)
{
    return static_cast<std::int64_t>(value >> 1) ^
           -static_cast<std::int64_t>(value & 1u);
}

/** Append @p value to @p out as an unsigned LEB128 varint. */
inline void
putVarint(std::vector<unsigned char> &out, std::uint64_t value)
{
    while (value >= 0x80u) {
        out.push_back(static_cast<unsigned char>(value) | 0x80u);
        value >>= 7;
    }
    out.push_back(static_cast<unsigned char>(value));
}

/** putVarint of a zigzag-folded signed delta. */
inline void
putSignedVarint(std::vector<unsigned char> &out, std::int64_t value)
{
    putVarint(out, zigzagEncode(value));
}

/**
 * Decode one varint from [@p p, @p end).
 *
 * @param p Advanced past the varint on success; unspecified on failure.
 * @return false on a truncated varint or one longer than
 *         maxVarintBytes (corrupt data — a valid encoder never emits
 *         either).
 */
inline bool
getVarint(const unsigned char *&p, const unsigned char *end,
          std::uint64_t *value)
{
    std::uint64_t result = 0;
    unsigned shift = 0;
    for (std::size_t i = 0; i < maxVarintBytes; ++i) {
        if (p == end)
            return false;
        const unsigned char byte = *p++;
        result |= static_cast<std::uint64_t>(byte & 0x7fu) << shift;
        if ((byte & 0x80u) == 0) {
            *value = result;
            return true;
        }
        shift += 7;
    }
    return false;
}

/** getVarint + zigzagDecode. */
inline bool
getSignedVarint(const unsigned char *&p, const unsigned char *end,
                std::int64_t *value)
{
    std::uint64_t raw = 0;
    if (!getVarint(p, end, &raw))
        return false;
    *value = zigzagDecode(raw);
    return true;
}

} // namespace vpsim

#endif // VPSIM_TRACE_VARINT_HPP
