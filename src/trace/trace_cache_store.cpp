#include "trace/trace_cache_store.hpp"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "common/logging.hpp"

namespace vpsim
{

TraceCacheStore::TraceCacheStore(std::string cache_dir)
    : dir(std::move(cache_dir))
{
    fatalIf(dir.empty(), "trace cache directory must not be empty");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    fatalIf(static_cast<bool>(ec),
            "cannot create trace cache directory " + dir + ": " +
                ec.message());
}

std::string
TraceCacheStore::pathFor(const TraceCacheKey &key) const
{
    // Workload names are registry identifiers ([a-z0-9]+), so embedding
    // them in the file name is safe and keeps entries human-readable.
    return dir + "/" + key.workload + "-i" + std::to_string(key.insts) +
           "-k" + std::to_string(key.skip) + "-s" +
           std::to_string(key.scale) + "-d" + std::to_string(key.seed) +
           "-v" + std::to_string(key.formatVersion) + ".vptrace";
}

bool
TraceCacheStore::tryLoad(const TraceCacheKey &key,
                         std::vector<TraceRecord> *out,
                         Status *error) const
{
    panicIf(out == nullptr || error == nullptr,
            "tryLoad needs output parameters");
    *error = Status::ok();
    const std::string path = pathFor(key);
    if (!std::filesystem::exists(path)) {
        ++missCount;
        return false;
    }
    const Status read = readTrace(path, out);
    if (!read.isOk()) {
        *error = Status::error("unusable trace cache entry: " +
                               read.message());
        ++missCount;
        return false;
    }
    ++hitCount;
    return true;
}

Status
TraceCacheStore::store(const TraceCacheKey &key,
                       const std::vector<TraceRecord> &records) const
{
    const std::string path = pathFor(key);
    // Unique temporary per process: concurrent bench processes sharing
    // the cache dir race benignly (last rename wins, both files valid).
    const std::string temp =
        path + ".tmp." + std::to_string(::getpid());
    const Status written = writeTrace(temp, records);
    if (!written.isOk()) {
        std::remove(temp.c_str());
        return written;
    }
    std::error_code ec;
    std::filesystem::rename(temp, path, ec);
    if (ec) {
        std::remove(temp.c_str());
        return Status::error("cannot publish trace cache entry " + path +
                             ": " + ec.message());
    }
    return Status::ok();
}

} // namespace vpsim
