#include "trace/trace_cache_store.hpp"

#include <unistd.h>

#include <filesystem>
#include <system_error>
#include <thread>

#include "common/io.hpp"
#include "common/logging.hpp"
#include "trace/trace_v3.hpp"

namespace vpsim
{

namespace
{

/** Bounded retry for transient (kIo) failures: attempts and backoff. */
constexpr int maxIoAttempts = 3;
constexpr std::chrono::milliseconds ioBackoffStep{2};

/** True when @p filename looks like a store temporary (`*.tmp.<pid>`). */
bool
isTemporaryName(const std::string &filename)
{
    return filename.find(".tmp.") != std::string::npos;
}

/** True when @p filename is quarantined corruption evidence. */
bool
isQuarantineName(const std::string &filename)
{
    return filename.rfind(".corrupt-", 0) == 0;
}

void
backoff(int attempt)
{
    // Linear backoff is plenty: the goal is to ride out transient
    // contention, not to implement a distributed system.
    std::this_thread::sleep_for(ioBackoffStep * attempt);
}

} // namespace

TraceCacheStore::TraceCacheStore(std::string cache_dir,
                                 std::chrono::seconds tmp_reap_age,
                                 std::chrono::seconds quarantine_gc_age)
    : dir(std::move(cache_dir))
{
    fatalIf(dir.empty(), "trace cache directory must not be empty");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        creationStatus = Status::error(
            StatusCode::kIo, "cannot create trace cache directory " +
                                 dir + ": " + ec.message());
        return;
    }

    reapOrphanedTemporaries(tmp_reap_age);
    if (quarantine_gc_age > std::chrono::seconds::zero())
        gcQuarantinedEntries(quarantine_gc_age);

    // Probe writability now, through the injectable io layer, so an
    // unwritable or full cache directory degrades the whole run to
    // uncached capture up front instead of failing every store.
    const std::string probe =
        dir + "/.probe.tmp." + std::to_string(::getpid());
    io::File file;
    Status probed = file.openForWrite(probe);
    if (probed.isOk())
        probed = file.writeAll("vpsim", 5);
    file.close();
    std::filesystem::remove(probe, ec);
    if (!probed.isOk()) {
        creationStatus = Status::error(
            probed.code(), "trace cache directory " + dir +
                               " is not writable: " + probed.message());
    }
}

void
TraceCacheStore::reapOrphanedTemporaries(std::chrono::seconds tmp_reap_age)
{
    // A temporary older than the threshold belongs to a process that
    // died mid-store (a live writer renames within seconds); left
    // alone they accumulate forever. Errors are ignored: reaping is
    // best-effort hygiene, and a concurrent reaper may win the race.
    std::error_code ec;
    const auto now = std::filesystem::file_time_type::clock::now();
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (ec)
            break;
        if (!entry.is_regular_file(ec))
            continue;
        const std::string name = entry.path().filename().string();
        if (!isTemporaryName(name))
            continue;
        const auto mtime = entry.last_write_time(ec);
        if (ec) {
            ec.clear();
            continue;
        }
        if (now - mtime < tmp_reap_age)
            continue;
        if (std::filesystem::remove(entry.path(), ec) && !ec) {
            ++reapedCount;
            warn("reaped orphaned trace cache temporary " +
                 entry.path().string());
        }
        ec.clear();
    }
}

void
TraceCacheStore::gcQuarantinedEntries(std::chrono::seconds quarantine_gc_age)
{
    // Quarantined entries exist for post-mortem, and a post-mortem
    // nobody ran within the retention window is never going to happen.
    // Best-effort like the temporary reap: errors skip the file, and a
    // concurrent GC winning the remove race is fine.
    std::error_code ec;
    const auto now = std::filesystem::file_time_type::clock::now();
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (ec)
            break;
        if (!entry.is_regular_file(ec))
            continue;
        const std::string name = entry.path().filename().string();
        if (!isQuarantineName(name))
            continue;
        const auto mtime = entry.last_write_time(ec);
        if (ec) {
            ec.clear();
            continue;
        }
        if (now - mtime < quarantine_gc_age)
            continue;
        if (std::filesystem::remove(entry.path(), ec) && !ec) {
            ++gcCount;
            warn("garbage-collected expired quarantine file " +
                 entry.path().string());
        }
        ec.clear();
    }
}

Status
TraceCacheStore::lastError() const
{
    MutexLock lock(statsMutex);
    return lastErrorStatus;
}

void
TraceCacheStore::noteError(const Status &error) const
{
    MutexLock lock(statsMutex);
    lastErrorStatus = error;
}

std::string
TraceCacheStore::pathFor(const TraceCacheKey &key) const
{
    // Workload names are registry identifiers ([a-z0-9]+), so embedding
    // them in the file name is safe and keeps entries human-readable.
    return dir + "/" + key.workload + "-i" + std::to_string(key.insts) +
           "-k" + std::to_string(key.skip) + "-s" +
           std::to_string(key.scale) + "-d" + std::to_string(key.seed) +
           "-v" + std::to_string(key.formatVersion) + ".vptrace";
}

std::string
TraceCacheStore::quarantinePathFor(const TraceCacheKey &key) const
{
    const std::filesystem::path entry(pathFor(key));
    return (entry.parent_path() /
            (".corrupt-" + entry.filename().string()))
        .string();
}

bool
TraceCacheStore::tryLoad(const TraceCacheKey &key,
                         std::vector<TraceRecord> *out,
                         Status *error) const
{
    panicIf(out == nullptr || error == nullptr,
            "tryLoad needs output parameters");
    *error = Status::ok();
    const std::string path = pathFor(key);
    if (!std::filesystem::exists(path)) {
        ++missCount;
        return false;
    }

    const bool v3 = key.formatVersion >= traceFormatVersionV3;
    Status read = Status::ok();
    for (int attempt = 1; attempt <= maxIoAttempts; ++attempt) {
        read = v3 ? readTraceV3(path, out, salvageBlocks)
                  : readTrace(path, out);
        if (read.isOk()) {
            ++hitCount;
            return true;
        }
        if (read.code() != StatusCode::kIo)
            break;
        if (attempt < maxIoAttempts)
            backoff(attempt);
    }

    if (read.code() == StatusCode::kCorrupt) {
        // Keep the evidence: move the bad entry aside under a name the
        // next lookup ignores, so post-mortem can inspect what rotted
        // while the sweep recaptures and carries on.
        const std::string quarantine = quarantinePathFor(key);
        std::error_code ec;
        std::filesystem::rename(path, quarantine, ec);
        if (ec)
            std::filesystem::remove(path, ec);
        *error = Status::error(
            StatusCode::kCorrupt,
            "corrupt trace cache entry quarantined to " + quarantine +
                ": " + read.message());
    } else {
        *error = Status::error(read.code(),
                               "unusable trace cache entry: " +
                                   read.message());
    }
    noteError(*error);
    ++missCount;
    return false;
}

Status
TraceCacheStore::store(const TraceCacheKey &key,
                       const std::vector<TraceRecord> &records) const
{
    const std::string path = pathFor(key);
    // Unique temporary per process: concurrent bench processes sharing
    // the cache dir race benignly (last rename wins, both files valid).
    const std::string temp =
        path + ".tmp." + std::to_string(::getpid());

    // The v3 writer fsyncs in finish(), so the rename below publishes
    // a fully durable entry even if the machine dies right after — and
    // an ENOSPC mid-write fails here, on the temporary, never the
    // published name.
    const bool v3 = key.formatVersion >= traceFormatVersionV3;
    Status result = Status::ok();
    for (int attempt = 1; attempt <= maxIoAttempts; ++attempt) {
        result = v3 ? writeTraceV3(temp, records)
                    : writeTrace(temp, records);
        if (result.isOk()) {
            result = io::renameFile(temp, path);
            if (result.isOk())
                return result;
            result = Status::error(result.code(),
                                   "cannot publish trace cache entry: " +
                                       result.message());
        }
        // Best-effort cleanup of our own temporary; the reaper catches
        // anything a failed remove leaves behind.
        (void)io::removeFile(temp);
        if (result.code() != StatusCode::kIo)
            break;
        if (attempt < maxIoAttempts)
            backoff(attempt);
    }
    noteError(result);
    return result;
}

Status
TraceCacheStore::storeStreaming(
    const TraceCacheKey &key,
    const std::function<Status(
        const std::function<Status(const std::vector<TraceRecord> &)>
            &)> &produce) const
{
    // Streaming is a v3-only property: the append-only block framing is
    // what lets a capture go straight to disk. Pre-v3 keys exist only in
    // format-compatibility tests; their captures stay materialized.
    if (key.formatVersion < traceFormatVersionV3) {
        return Status::error(
            StatusCode::kInternal,
            "streaming store requires trace format v3 (key has v" +
                std::to_string(key.formatVersion) + ")");
    }

    const std::string path = pathFor(key);
    const std::string temp =
        path + ".tmp." + std::to_string(::getpid());

    Status result = Status::ok();
    for (int attempt = 1; attempt <= maxIoAttempts; ++attempt) {
        TraceV3Writer writer;
        result = writer.open(temp, defaultRecordsPerBlock);
        if (result.isOk()) {
            // Re-run the producer from scratch each attempt: captures
            // are deterministic, so replaying is always safe, whereas
            // resuming a half-written temporary never is.
            result = produce(
                [&writer](const std::vector<TraceRecord> &chunk) {
                    return writer.append(chunk);
                });
        }
        if (result.isOk())
            result = writer.finish();
        else
            writer.close();
        if (result.isOk()) {
            result = io::renameFile(temp, path);
            if (result.isOk())
                return result;
            result = Status::error(result.code(),
                                   "cannot publish trace cache entry: " +
                                       result.message());
        }
        (void)io::removeFile(temp);
        if (result.code() != StatusCode::kIo)
            break;
        if (attempt < maxIoAttempts)
            backoff(attempt);
    }
    noteError(result);
    return result;
}

} // namespace vpsim
