/**
 * @file
 * Summary statistics of a dynamic trace (instruction mix, branch behaviour,
 * basic-block sizes). Used to sanity-check the synthetic workloads against
 * SPECint-like expectations and reported by the examples.
 */

#ifndef VPSIM_TRACE_TRACE_STATS_HPP
#define VPSIM_TRACE_TRACE_STATS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "trace/record.hpp"
#include "trace/source.hpp"

namespace vpsim
{

/** Aggregate statistics over one trace. */
struct TraceStats
{
    std::uint64_t totalInsts = 0;
    std::uint64_t aluOps = 0;
    std::uint64_t mulDivOps = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t takenCondBranches = 0;
    std::uint64_t jumps = 0;
    std::uint64_t valueProducers = 0;
    std::uint64_t distinctPcs = 0;
    /** Average dynamic basic-block length (insts between control flow). */
    double avgBasicBlock = 0.0;
    /** Fraction of conditional branches that were taken. */
    double takenRate = 0.0;
    /** Taken control transfers (cond taken + jumps) per instruction. */
    double takenTransferRate = 0.0;

    /** Render a short human-readable report. */
    std::string report(const std::string &name) const;
};

/**
 * Compute summary statistics over @p records. A
 * std::vector<TraceRecord> converts implicitly.
 */
TraceStats computeTraceStats(TraceSpan records);

/** Compute summary statistics over @p source (rewound first). */
TraceStats computeTraceStats(TraceSource &source);

/**
 * Cut @p records down to [skip, skip + length) and renumber the
 * sequence ids densely from 0, preserving every other field. Standard
 * warm-up exclusion: predictors and caches are trained on the skipped
 * prefix by the caller if desired, or simply never see it.
 *
 * @param length 0 means "to the end".
 */
std::vector<TraceRecord> sliceTrace(const std::vector<TraceRecord> &records,
                                    std::uint64_t skip,
                                    std::uint64_t length = 0);

} // namespace vpsim

#endif // VPSIM_TRACE_TRACE_STATS_HPP
