#include "trace/trace_io.hpp"

#include <cstdio>
#include <cstring>
#include <memory>

#include "common/logging.hpp"

namespace vpsim
{

namespace
{

constexpr char traceMagic[4] = {'V', 'P', 'T', 'R'};

/** Bytes per packed on-disk record. */
constexpr std::size_t packedRecordBytes =
    8 /*seq*/ + 8 /*pc*/ + 8 /*nextPc*/ + 8 /*memAddr*/ + 8 /*result*/ +
    1 /*op*/ + 1 /*rd*/ + 1 /*rs1*/ + 1 /*rs2*/ + 1 /*taken*/;

void
packU64(unsigned char *out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<unsigned char>(value >> (8 * i));
}

std::uint64_t
unpackU64(const unsigned char *in)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return value;
}

struct FileCloser
{
    void operator()(std::FILE *file) const { if (file) std::fclose(file); }
};

using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

} // namespace

Status
writeTrace(const std::string &path,
           const std::vector<TraceRecord> &records)
{
    FilePtr file(std::fopen(path.c_str(), "wb"));
    if (!file)
        return Status::error("cannot open trace file for writing: " +
                             path);

    unsigned char header[16] = {};
    std::memcpy(header, traceMagic, 4);
    packU64(header + 8, records.size());
    header[4] = static_cast<unsigned char>(traceFormatVersion);
    if (std::fwrite(header, 1, sizeof(header), file.get()) !=
        sizeof(header)) {
        return Status::error("short write on trace header: " + path);
    }

    std::vector<unsigned char> buffer(packedRecordBytes);
    for (const TraceRecord &rec : records) {
        unsigned char *p = buffer.data();
        packU64(p, rec.seq); p += 8;
        packU64(p, rec.pc); p += 8;
        packU64(p, rec.nextPc); p += 8;
        packU64(p, rec.memAddr); p += 8;
        packU64(p, rec.result); p += 8;
        *p++ = static_cast<unsigned char>(rec.op);
        *p++ = rec.rd;
        *p++ = rec.rs1;
        *p++ = rec.rs2;
        *p++ = rec.taken ? 1 : 0;
        if (std::fwrite(buffer.data(), 1, buffer.size(), file.get()) !=
            buffer.size()) {
            return Status::error("short write on trace record: " + path);
        }
    }
    if (std::fflush(file.get()) != 0 || std::ferror(file.get()))
        return Status::error("I/O error writing trace file: " + path);
    return Status::ok();
}

Status
readTrace(const std::string &path, std::vector<TraceRecord> *out)
{
    panicIf(out == nullptr, "readTrace needs an output vector");
    out->clear();

    FilePtr file(std::fopen(path.c_str(), "rb"));
    if (!file)
        return Status::error("cannot open trace file for reading: " +
                             path);

    unsigned char header[16];
    if (std::fread(header, 1, sizeof(header), file.get()) !=
        sizeof(header)) {
        return Status::error("short read on trace header: " + path);
    }
    if (std::memcmp(header, traceMagic, 4) != 0)
        return Status::error("bad trace file magic: " + path);
    if (header[4] != traceFormatVersion)
        return Status::error("unsupported trace file version in " + path);
    const std::uint64_t count = unpackU64(header + 8);

    out->reserve(count);
    std::vector<unsigned char> buffer(packedRecordBytes);
    for (std::uint64_t i = 0; i < count; ++i) {
        if (std::fread(buffer.data(), 1, buffer.size(), file.get()) !=
            buffer.size()) {
            return Status::error("truncated trace file: " + path);
        }
        const unsigned char *p = buffer.data();
        TraceRecord rec;
        rec.seq = unpackU64(p); p += 8;
        rec.pc = unpackU64(p); p += 8;
        rec.nextPc = unpackU64(p); p += 8;
        rec.memAddr = unpackU64(p); p += 8;
        rec.result = unpackU64(p); p += 8;
        if (*p >= static_cast<unsigned char>(OpCode::NumOpCodes))
            return Status::error("corrupt opcode in trace file: " + path);
        rec.op = static_cast<OpCode>(*p); ++p;
        rec.rd = *p++;
        rec.rs1 = *p++;
        rec.rs2 = *p++;
        rec.taken = *p != 0;
        out->push_back(rec);
    }
    // A well-formed file ends exactly after the declared records; bytes
    // beyond that mean the header lied (e.g. two writers raced).
    if (std::fgetc(file.get()) != EOF)
        return Status::error("trailing bytes after " +
                             std::to_string(count) +
                             " records in trace file: " + path);
    return Status::ok();
}

void
writeTraceFile(const std::string &path,
               const std::vector<TraceRecord> &records)
{
    const Status status = writeTrace(path, records);
    fatalIf(!status.isOk(), status.message());
}

std::vector<TraceRecord>
readTraceFile(const std::string &path)
{
    std::vector<TraceRecord> records;
    const Status status = readTrace(path, &records);
    fatalIf(!status.isOk(), status.message());
    return records;
}

} // namespace vpsim
