#include "trace/trace_io.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/crc32.hpp"
#include "common/io.hpp"
#include "common/logging.hpp"

namespace vpsim
{

namespace
{

constexpr char traceMagic[4] = {'V', 'P', 'T', 'R'};

/** Bytes per packed on-disk record. */
constexpr std::size_t packedRecordBytes =
    8 /*seq*/ + 8 /*pc*/ + 8 /*nextPc*/ + 8 /*memAddr*/ + 8 /*result*/ +
    1 /*op*/ + 1 /*rd*/ + 1 /*rs1*/ + 1 /*rs2*/ + 1 /*taken*/;

/** Bytes in the CRC-32 footer. */
constexpr std::size_t footerBytes = 4;

void
packU64(unsigned char *out, std::uint64_t value)
{
    for (int i = 0; i < 8; ++i)
        out[i] = static_cast<unsigned char>(value >> (8 * i));
}

std::uint64_t
unpackU64(const unsigned char *in)
{
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i)
        value |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    return value;
}

void
packU32(unsigned char *out, std::uint32_t value)
{
    for (int i = 0; i < 4; ++i)
        out[i] = static_cast<unsigned char>(value >> (8 * i));
}

std::uint32_t
unpackU32(const unsigned char *in)
{
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i)
        value |= static_cast<std::uint32_t>(in[i]) << (8 * i);
    return value;
}

/**
 * Decode a complete in-memory trace image (a mapped file) into @p out.
 *
 * Must stay behaviourally identical to the buffered loop in
 * readTrace(): same validation order, same StatusCode classes, and the
 * same messages — the corruption tests and the trace cache's
 * quarantine logic match on both.
 */
Status
parseTraceImage(const unsigned char *data, std::uint64_t size,
                const std::string &path, std::vector<TraceRecord> *out)
{
    const auto truncated = [&path](const std::string &where) {
        // Wording matches io::File::readExact for a short file.
        return Status::error(StatusCode::kCorrupt,
                             where + ": unexpected end of file in " +
                                 path + " (truncated?)");
    };

    if (size < 16)
        return truncated("trace header");
    if (std::memcmp(data, traceMagic, 4) != 0)
        return Status::error(StatusCode::kCorrupt,
                             "bad trace file magic: " + path);
    if (data[4] != traceFormatVersion) {
        return Status::error(
            StatusCode::kCorrupt,
            "unsupported trace file version " +
                std::to_string(data[4]) + " in " + path + " (expected " +
                std::to_string(traceFormatVersion) + ")");
    }
    const std::uint64_t count = unpackU64(data + 8);

    // Decode whole records in place; whether the header's count is a
    // lie is settled when the payload runs out or the footer mismatches.
    const std::uint64_t whole_records = (size - 16) / packedRecordBytes;
    const std::uint64_t available = std::min(count, whole_records);
    out->reserve(static_cast<std::size_t>(available));
    const unsigned char *p = data + 16;
    for (std::uint64_t i = 0; i < available; ++i) {
        TraceRecord rec;
        rec.seq = unpackU64(p); p += 8;
        rec.pc = unpackU64(p); p += 8;
        rec.nextPc = unpackU64(p); p += 8;
        rec.memAddr = unpackU64(p); p += 8;
        rec.result = unpackU64(p); p += 8;
        if (*p >= static_cast<unsigned char>(OpCode::NumOpCodes))
            return Status::error(StatusCode::kCorrupt,
                                 "corrupt opcode in trace file: " +
                                     path);
        rec.op = static_cast<OpCode>(*p); ++p;
        rec.rd = *p++;
        rec.rs1 = *p++;
        rec.rs2 = *p++;
        rec.taken = *p++ != 0;
        out->push_back(rec);
    }
    if (available < count) {
        return truncated("trace record " + std::to_string(available) +
                         " of " + std::to_string(count));
    }

    const std::uint64_t payload_end =
        16 + count * packedRecordBytes;
    if (size - payload_end < footerBytes)
        return truncated("trace footer");
    Crc32 crc;
    crc.update(data, static_cast<std::size_t>(payload_end));
    const std::uint32_t stored = unpackU32(data + payload_end);
    if (stored != crc.value()) {
        char detail[64];
        std::snprintf(detail, sizeof(detail),
                      "stored %08x, computed %08x", stored, crc.value());
        return Status::error(StatusCode::kCorrupt,
                             "trace checksum mismatch in " + path +
                                 " (" + detail + ")");
    }
    if (size != payload_end + footerBytes) {
        return Status::error(StatusCode::kCorrupt,
                             "trailing bytes after " +
                                 std::to_string(count) +
                                 " records in trace file: " + path);
    }
    return Status::ok();
}

} // namespace

Status
writeTrace(const std::string &path,
           const std::vector<TraceRecord> &records)
{
    io::File file;
    if (Status opened = file.openForWrite(path); !opened.isOk())
        return opened;

    Crc32 crc;
    unsigned char header[16] = {};
    std::memcpy(header, traceMagic, 4);
    packU64(header + 8, records.size());
    header[4] = static_cast<unsigned char>(traceFormatVersion);
    crc.update(header, sizeof(header));
    if (Status put = file.writeAll(header, sizeof(header)); !put.isOk())
        return Status::error(put.code(),
                             "trace header: " + put.message());

    std::vector<unsigned char> buffer(packedRecordBytes);
    for (const TraceRecord &rec : records) {
        unsigned char *p = buffer.data();
        packU64(p, rec.seq); p += 8;
        packU64(p, rec.pc); p += 8;
        packU64(p, rec.nextPc); p += 8;
        packU64(p, rec.memAddr); p += 8;
        packU64(p, rec.result); p += 8;
        *p++ = static_cast<unsigned char>(rec.op);
        *p++ = rec.rd;
        *p++ = rec.rs1;
        *p++ = rec.rs2;
        *p++ = rec.taken ? 1 : 0;
        crc.update(buffer.data(), buffer.size());
        if (Status put = file.writeAll(buffer.data(), buffer.size());
            !put.isOk()) {
            return Status::error(put.code(),
                                 "trace record: " + put.message());
        }
    }

    unsigned char footer[footerBytes];
    packU32(footer, crc.value());
    if (Status put = file.writeAll(footer, sizeof(footer)); !put.isOk())
        return Status::error(put.code(),
                             "trace footer: " + put.message());
    return file.flush();
}

Status
readTrace(const std::string &path, std::vector<TraceRecord> *out)
{
    panicIf(out == nullptr, "readTrace needs an output vector");
    out->clear();

    // Fast path: map the whole file and decode in place — no per-record
    // read calls, one bulk CRC pass. Only taken while the fault
    // injector is inactive so injected read faults keep hitting the
    // buffered loop below with deterministic operation counts; any
    // map() failure (including an empty file) falls back the same way.
    if (!io::faultInjector().active()) {
        io::MappedFile mapped;
        if (mapped.map(path).isOk())
            return parseTraceImage(mapped.data(), mapped.size(), path,
                                   out);
        out->clear();
    }

    io::File file;
    if (Status opened = file.openForRead(path); !opened.isOk())
        return opened;

    Crc32 crc;
    unsigned char header[16];
    if (Status got = file.readExact(header, sizeof(header)); !got.isOk())
        return Status::error(got.code(),
                             "trace header: " + got.message());
    crc.update(header, sizeof(header));
    if (std::memcmp(header, traceMagic, 4) != 0)
        return Status::error(StatusCode::kCorrupt,
                             "bad trace file magic: " + path);
    if (header[4] != traceFormatVersion) {
        return Status::error(
            StatusCode::kCorrupt,
            "unsupported trace file version " +
                std::to_string(header[4]) + " in " + path +
                " (expected " + std::to_string(traceFormatVersion) +
                ")");
    }
    const std::uint64_t count = unpackU64(header + 8);

    // The count is untrusted on-disk data: cap the up-front reservation
    // so a corrupt header cannot trigger a huge allocation — a lying
    // count is caught by truncation/checksum a few reads later.
    out->reserve(static_cast<std::size_t>(
        std::min<std::uint64_t>(count, 1u << 20)));
    std::vector<unsigned char> buffer(packedRecordBytes);
    for (std::uint64_t i = 0; i < count; ++i) {
        if (Status got = file.readExact(buffer.data(), buffer.size());
            !got.isOk()) {
            return Status::error(got.code(),
                                 "trace record " + std::to_string(i) +
                                     " of " + std::to_string(count) +
                                     ": " + got.message());
        }
        crc.update(buffer.data(), buffer.size());
        const unsigned char *p = buffer.data();
        TraceRecord rec;
        rec.seq = unpackU64(p); p += 8;
        rec.pc = unpackU64(p); p += 8;
        rec.nextPc = unpackU64(p); p += 8;
        rec.memAddr = unpackU64(p); p += 8;
        rec.result = unpackU64(p); p += 8;
        if (*p >= static_cast<unsigned char>(OpCode::NumOpCodes))
            return Status::error(StatusCode::kCorrupt,
                                 "corrupt opcode in trace file: " +
                                     path);
        rec.op = static_cast<OpCode>(*p); ++p;
        rec.rd = *p++;
        rec.rs1 = *p++;
        rec.rs2 = *p++;
        rec.taken = *p != 0;
        out->push_back(rec);
    }

    unsigned char footer[footerBytes];
    if (Status got = file.readExact(footer, sizeof(footer)); !got.isOk())
        return Status::error(got.code(),
                             "trace footer: " + got.message());
    const std::uint32_t stored = unpackU32(footer);
    if (stored != crc.value()) {
        char detail[64];
        std::snprintf(detail, sizeof(detail),
                      "stored %08x, computed %08x", stored, crc.value());
        return Status::error(StatusCode::kCorrupt,
                             "trace checksum mismatch in " + path +
                                 " (" + detail + ")");
    }

    // A well-formed file ends exactly after the footer; bytes beyond
    // that mean the header lied (e.g. two writers raced).
    if (!file.atEof())
        return Status::error(StatusCode::kCorrupt,
                             "trailing bytes after " +
                                 std::to_string(count) +
                                 " records in trace file: " + path);
    return Status::ok();
}

void
writeTraceFile(const std::string &path,
               const std::vector<TraceRecord> &records)
{
    const Status status = writeTrace(path, records);
    fatalIf(!status.isOk(), status.message());
}

std::vector<TraceRecord>
readTraceFile(const std::string &path)
{
    std::vector<TraceRecord> records;
    const Status status = readTrace(path, &records);
    fatalIf(!status.isOk(), status.message());
    return records;
}

} // namespace vpsim
