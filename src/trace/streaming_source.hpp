/**
 * @file
 * StreamingTraceSource: bounded-memory TraceSource over a v3 trace file.
 *
 * Serves the standard nextBlock()/nextColumns() span contract from a
 * sliding window of decoded v3 blocks, so a 1B-instruction trace file
 * is simulated with the memory footprint of a handful of blocks (a few
 * tens of MB) instead of the whole trace. The window holds the block
 * currently being served plus up to windowBlocks - 1 decoded-ahead
 * blocks; delivered spans never cross a block boundary, and a span
 * stays valid until the next successful delivery, exactly as the
 * TraceSource lifetime rules allow for a recycling source.
 *
 * Resource-budget degradation: when opened with a memory budget the
 * source checks the process RSS (common/resource_usage.hpp) as it
 * streams — over budget it first abandons the mmap backend for buffered
 * reads, then shrinks the decode-ahead window toward a single block,
 * instead of letting a sweep OOM forty minutes in. Corrupt blocks are
 * handled per the reader's mode: strict mode ends the stream with a
 * sticky error Status; salvage mode (--salvage-blocks) quarantines and
 * skips them, with the loss tallied in the global salvage registry.
 */

#ifndef VPSIM_TRACE_STREAMING_SOURCE_HPP
#define VPSIM_TRACE_STREAMING_SOURCE_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "trace/source.hpp"
#include "trace/trace_v3.hpp"

namespace vpsim
{

/** Tuning and containment knobs for a StreamingTraceSource. */
struct StreamingOptions
{
    /** Quarantine + skip corrupt blocks instead of failing the file. */
    bool salvage = false;

    /**
     * Try the mmap backend first (fastest for cache-sized traces).
     * Buffered reads are the default: a mapped multi-GB trace keeps
     * every touched page resident until memory pressure, which defeats
     * the bounded-RSS contract the streaming source exists for.
     */
    bool preferMapped = false;

    /** Decoded blocks held at once (current + decode-ahead), >= 1. */
    std::size_t windowBlocks = 4;

    /**
     * Soft process-RSS ceiling in bytes (0 = unlimited). Crossing it
     * degrades mmap -> buffered -> single-block window.
     */
    std::uint64_t memBudgetBytes = 0;
};

/** Bounded-memory trace source streaming a v3 file block by block. */
class StreamingTraceSource : public TraceSource
{
  public:
    StreamingTraceSource() = default;

    /** Open @p path; on error the source reads as exhausted. */
    [[nodiscard]] Status open(const std::string &path,
                              const StreamingOptions &options = {});

    bool nextBlock(TraceSpan &out,
                   std::size_t max_records =
                       defaultBlockRecords) override;

    bool supportsColumns() const override { return true; }

    bool nextColumns(TraceColumns &out,
                     std::size_t max_records =
                         defaultBlockRecords) override;

    /** Rewind to the first block (reopens the underlying file). */
    void reset() override;

    /**
     * Sticky stream health: ok while streaming normally and after a
     * clean end; the first unrecoverable error otherwise. nextBlock()
     * reports exhaustion on error, so callers that care must check
     * this after the stream ends.
     */
    const Status &status() const { return streamStatus; }

    /** Records delivered to the consumer so far. */
    std::uint64_t recordsDelivered() const { return deliveredRecords; }

    /** Damage tally from salvage mode (all-zero when clean/strict). */
    const BlockSalvageReport &salvageReport() const
    {
        return reader.salvageReport();
    }

    /** Current decode-ahead window size (shrinks under budget). */
    std::size_t windowBlocks() const { return window; }

    /** True when the mmap backend was abandoned for buffered reads. */
    bool degradedToBuffered() const { return degraded; }

  private:
    struct DecodedBlock
    {
        TraceSoa soa;
        std::vector<TraceRecord> aos; ///< Lazy AoS mirror for spans.
        bool aosBuilt = false;
    };

    bool ensureCurrentBlock();
    bool fillWindow();
    void enforceBudget();

    std::string filePath;
    StreamingOptions opts;
    TraceV3Reader reader;
    Status streamStatus = Status::ok();
    bool endOfTrace = false;

    std::deque<DecodedBlock> blocks; ///< [0] = serving, rest decode-ahead.
    std::size_t posInBlock = 0;
    std::size_t window = 1;
    bool degraded = false;
    std::uint64_t deliveredRecords = 0;
};

} // namespace vpsim

#endif // VPSIM_TRACE_STREAMING_SOURCE_HPP
