/**
 * @file
 * On-disk cache of captured workload traces.
 *
 * Capturing the eight workload traces dominates the start-up time of
 * every figure bench, and each bench binary used to redo it. The cache
 * stores each capture once per machine, in the versioned binary trace
 * format (trace_io.hpp), keyed by everything that determines the
 * capture's content: (workload, insts, skip, scale, seed,
 * format-version). The key is encoded in the file name, so any change
 * to a parameter — or a bump of traceFormatVersion — misses cleanly and
 * old entries are simply never read again.
 *
 * Concurrency: entries are written to a temporary name and renamed into
 * place, so concurrent jobs (or concurrent bench processes sharing a
 * --trace-cache-dir) never observe partial files. Temporaries orphaned
 * by killed processes are reaped on construction once they are older
 * than a safety threshold, so live concurrent writers are untouched.
 *
 * Fault tolerance: reads and writes go through the fault-injectable
 * io layer (common/io.hpp) and transient (kIo) failures are retried a
 * bounded number of times with backoff. An entry that fails validation
 * (kCorrupt: bad checksum, truncation, wrong magic) is quarantined to a
 * `.corrupt-<key>` name for post-mortem and reported as a miss, so the
 * caller recaptures instead of simulating bit-flipped data. A store
 * whose directory cannot be created or written reports a non-ok
 * status(); callers (SimRunner) degrade to uncached in-memory capture.
 *
 * Formats: keys with formatVersion >= 3 are stored and loaded in the
 * block-framed v3 format (trace_v3.hpp), whose writer fsyncs before the
 * atomic rename so a capture that hits ENOSPC or a crash never
 * publishes a torn entry. With salvage enabled (--salvage-blocks), a
 * v3 entry with rotted blocks loads anyway — the damage is quarantined
 * block by block and tallied in the global salvage registry — instead
 * of quarantining the whole file and recapturing.
 *
 * Hygiene: alongside the orphaned-temporary reap, quarantined
 * `.corrupt-*` evidence files are garbage-collected once they are older
 * than a retention age (--cache-gc-days; default one week), so a flaky
 * disk cannot slowly fill the cache directory with corpses.
 */

#ifndef VPSIM_TRACE_TRACE_CACHE_STORE_HPP
#define VPSIM_TRACE_TRACE_CACHE_STORE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "trace/record.hpp"
#include "trace/trace_io.hpp"

namespace vpsim
{

/** Everything that determines a captured trace's content. */
struct TraceCacheKey
{
    std::string workload;
    /** Measured-window length (after warm-up exclusion). */
    std::uint64_t insts = 0;
    /** Warm-up instructions executed and discarded before the window. */
    std::uint64_t skip = 0;
    unsigned scale = 1;
    std::uint64_t seed = 0;
    std::uint32_t formatVersion = traceFormatVersion;
};

/** A directory of cached trace captures, one file per key. */
class TraceCacheStore
{
  public:
    /** Orphaned `*.tmp.<pid>` files younger than this are left alone. */
    static constexpr std::chrono::seconds defaultTmpReapAge{3600};

    /** Quarantined `.corrupt-*` files younger than this are kept. */
    static constexpr std::chrono::seconds defaultQuarantineGcAge{
        7 * 24 * 3600};

    /**
     * @param cache_dir Directory for entries; created (with parents)
     *        if it does not exist. Creation or writability failure is
     *        recorded in status(), not fatal — callers degrade.
     * @param tmp_reap_age Orphaned-temporary age threshold (tests
     *        shorten it).
     * @param quarantine_gc_age Retention age for `.corrupt-*` evidence
     *        files (zero disables the GC entirely).
     */
    explicit TraceCacheStore(
        std::string cache_dir,
        std::chrono::seconds tmp_reap_age = defaultTmpReapAge,
        std::chrono::seconds quarantine_gc_age = defaultQuarantineGcAge);

    /**
     * Load v3 entries in salvage mode: quarantine + skip damaged
     * blocks (loss tallied in salvageRegistry()) instead of failing
     * the entry. Call before lookups start; not thread-safe against
     * concurrent tryLoad().
     */
    void setSalvageBlocks(bool salvage) { salvageBlocks = salvage; }

    const std::string &directory() const { return dir; }

    /**
     * ok() when the directory exists and a write probe succeeded at
     * construction; otherwise the error explaining why the cache is
     * unusable (callers should fall back to uncached capture).
     */
    const Status &status() const { return creationStatus; }

    /** The entry file an exact @p key match would live in. */
    std::string pathFor(const TraceCacheKey &key) const;

    /** Where a corrupt entry for @p key is quarantined. */
    std::string quarantinePathFor(const TraceCacheKey &key) const;

    /**
     * Look up @p key. Transient read failures are retried with backoff;
     * corrupt entries are quarantined to quarantinePathFor(key).
     *
     * @param out Replaced with the cached records on a hit.
     * @param error Set when an entry exists but cannot be used (corrupt,
     *        unreadable); such entries count as misses and the message
     *        names the offending file (and its quarantine destination
     *        when it was moved).
     * @return true on a hit.
     */
    [[nodiscard]] bool tryLoad(const TraceCacheKey &key,
                               std::vector<TraceRecord> *out,
                               Status *error) const;

    /**
     * Store @p records under @p key (atomic rename into place).
     * Transient failures are retried with backoff before giving up.
     */
    [[nodiscard]] Status store(
        const TraceCacheKey &key,
        const std::vector<TraceRecord> &records) const;

    /**
     * Streaming store for v3 keys: open a temporary, hand @p produce a
     * sink that appends record chunks to the entry's TraceV3Writer,
     * and publish with the same fsync + atomic-rename contract as
     * store() — so the capture never materializes in this process.
     * @p produce is re-invoked from scratch on each transient-failure
     * retry (a capture is deterministic, a half-written file is not).
     * Returns kInternal for pre-v3 keys; callers fall back to the
     * materializing store().
     */
    [[nodiscard]] Status storeStreaming(
        const TraceCacheKey &key,
        const std::function<Status(
            const std::function<Status(
                const std::vector<TraceRecord> &)> &)> &produce) const;

    /** @name Hit/miss counters (cumulative over this store's lifetime). */
    /// @{
    std::uint64_t hits() const { return hitCount.load(); }
    std::uint64_t misses() const { return missCount.load(); }
    /// @}

    /**
     * The most recent per-entry failure (quarantined corruption,
     * exhausted store retries), ok() when none has occurred. Lookups
     * and stores run concurrently on pool workers, so the slot is
     * guarded; the accessor returns a snapshot.
     */
    Status lastError() const EXCLUDES(statsMutex);

    /** Orphaned temporaries deleted by the constructor's reap. */
    std::uint64_t reapedTmpFiles() const { return reapedCount; }

    /** Expired `.corrupt-*` files deleted by the constructor's GC. */
    std::uint64_t gcRemovedQuarantineFiles() const { return gcCount; }

  private:
    void reapOrphanedTemporaries(std::chrono::seconds tmp_reap_age);
    void gcQuarantinedEntries(std::chrono::seconds quarantine_gc_age);
    void noteError(const Status &error) const EXCLUDES(statsMutex);

    std::string dir;
    Status creationStatus = Status::ok();
    bool salvageBlocks = false;
    std::uint64_t reapedCount = 0;
    std::uint64_t gcCount = 0;
    mutable std::atomic<std::uint64_t> hitCount{0};
    mutable std::atomic<std::uint64_t> missCount{0};
    /** mutable: tryLoad()/store() are const but record failures. */
    mutable Mutex statsMutex;
    mutable Status lastErrorStatus GUARDED_BY(statsMutex) =
        Status::ok();
};

} // namespace vpsim

#endif // VPSIM_TRACE_TRACE_CACHE_STORE_HPP
