/**
 * @file
 * On-disk cache of captured workload traces.
 *
 * Capturing the eight workload traces dominates the start-up time of
 * every figure bench, and each bench binary used to redo it. The cache
 * stores each capture once per machine, in the versioned binary trace
 * format (trace_io.hpp), keyed by everything that determines the
 * capture's content: (workload, insts, skip, scale, seed,
 * format-version). The key is encoded in the file name, so any change
 * to a parameter — or a bump of traceFormatVersion — misses cleanly and
 * old entries are simply never read again.
 *
 * Concurrency: entries are written to a temporary name and renamed into
 * place, so concurrent jobs (or concurrent bench processes sharing a
 * --trace-cache-dir) never observe partial files. Temporaries orphaned
 * by killed processes are reaped on construction once they are older
 * than a safety threshold, so live concurrent writers are untouched.
 *
 * Fault tolerance: reads and writes go through the fault-injectable
 * io layer (common/io.hpp) and transient (kIo) failures are retried a
 * bounded number of times with backoff. An entry that fails validation
 * (kCorrupt: bad checksum, truncation, wrong magic) is quarantined to a
 * `.corrupt-<key>` name for post-mortem and reported as a miss, so the
 * caller recaptures instead of simulating bit-flipped data. A store
 * whose directory cannot be created or written reports a non-ok
 * status(); callers (SimRunner) degrade to uncached in-memory capture.
 */

#ifndef VPSIM_TRACE_TRACE_CACHE_STORE_HPP
#define VPSIM_TRACE_TRACE_CACHE_STORE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/thread_annotations.hpp"
#include "trace/record.hpp"
#include "trace/trace_io.hpp"

namespace vpsim
{

/** Everything that determines a captured trace's content. */
struct TraceCacheKey
{
    std::string workload;
    /** Measured-window length (after warm-up exclusion). */
    std::uint64_t insts = 0;
    /** Warm-up instructions executed and discarded before the window. */
    std::uint64_t skip = 0;
    unsigned scale = 1;
    std::uint64_t seed = 0;
    std::uint32_t formatVersion = traceFormatVersion;
};

/** A directory of cached trace captures, one file per key. */
class TraceCacheStore
{
  public:
    /** Orphaned `*.tmp.<pid>` files younger than this are left alone. */
    static constexpr std::chrono::seconds defaultTmpReapAge{3600};

    /**
     * @param cache_dir Directory for entries; created (with parents)
     *        if it does not exist. Creation or writability failure is
     *        recorded in status(), not fatal — callers degrade.
     * @param tmp_reap_age Orphaned-temporary age threshold (tests
     *        shorten it).
     */
    explicit TraceCacheStore(
        std::string cache_dir,
        std::chrono::seconds tmp_reap_age = defaultTmpReapAge);

    const std::string &directory() const { return dir; }

    /**
     * ok() when the directory exists and a write probe succeeded at
     * construction; otherwise the error explaining why the cache is
     * unusable (callers should fall back to uncached capture).
     */
    const Status &status() const { return creationStatus; }

    /** The entry file an exact @p key match would live in. */
    std::string pathFor(const TraceCacheKey &key) const;

    /** Where a corrupt entry for @p key is quarantined. */
    std::string quarantinePathFor(const TraceCacheKey &key) const;

    /**
     * Look up @p key. Transient read failures are retried with backoff;
     * corrupt entries are quarantined to quarantinePathFor(key).
     *
     * @param out Replaced with the cached records on a hit.
     * @param error Set when an entry exists but cannot be used (corrupt,
     *        unreadable); such entries count as misses and the message
     *        names the offending file (and its quarantine destination
     *        when it was moved).
     * @return true on a hit.
     */
    [[nodiscard]] bool tryLoad(const TraceCacheKey &key,
                               std::vector<TraceRecord> *out,
                               Status *error) const;

    /**
     * Store @p records under @p key (atomic rename into place).
     * Transient failures are retried with backoff before giving up.
     */
    [[nodiscard]] Status store(
        const TraceCacheKey &key,
        const std::vector<TraceRecord> &records) const;

    /** @name Hit/miss counters (cumulative over this store's lifetime). */
    /// @{
    std::uint64_t hits() const { return hitCount.load(); }
    std::uint64_t misses() const { return missCount.load(); }
    /// @}

    /**
     * The most recent per-entry failure (quarantined corruption,
     * exhausted store retries), ok() when none has occurred. Lookups
     * and stores run concurrently on pool workers, so the slot is
     * guarded; the accessor returns a snapshot.
     */
    Status lastError() const EXCLUDES(statsMutex);

    /** Orphaned temporaries deleted by the constructor's reap. */
    std::uint64_t reapedTmpFiles() const { return reapedCount; }

  private:
    void reapOrphanedTemporaries(std::chrono::seconds tmp_reap_age);
    void noteError(const Status &error) const EXCLUDES(statsMutex);

    std::string dir;
    Status creationStatus = Status::ok();
    std::uint64_t reapedCount = 0;
    mutable std::atomic<std::uint64_t> hitCount{0};
    mutable std::atomic<std::uint64_t> missCount{0};
    /** mutable: tryLoad()/store() are const but record failures. */
    mutable Mutex statsMutex;
    mutable Status lastErrorStatus GUARDED_BY(statsMutex) =
        Status::ok();
};

} // namespace vpsim

#endif // VPSIM_TRACE_TRACE_CACHE_STORE_HPP
