/**
 * @file
 * On-disk cache of captured workload traces.
 *
 * Capturing the eight workload traces dominates the start-up time of
 * every figure bench, and each bench binary used to redo it. The cache
 * stores each capture once per machine, in the versioned binary trace
 * format (trace_io.hpp), keyed by everything that determines the
 * capture's content: (workload, insts, skip, scale, seed,
 * format-version). The key is encoded in the file name, so any change
 * to a parameter — or a bump of traceFormatVersion — misses cleanly and
 * old entries are simply never read again.
 *
 * Concurrency: entries are written to a temporary name and renamed into
 * place, so concurrent jobs (or concurrent bench processes sharing a
 * --trace-cache-dir) never observe partial files. Corrupt or truncated
 * entries are rejected by the trace reader and reported to the caller,
 * which recaptures and overwrites.
 */

#ifndef VPSIM_TRACE_TRACE_CACHE_STORE_HPP
#define VPSIM_TRACE_TRACE_CACHE_STORE_HPP

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "trace/record.hpp"
#include "trace/trace_io.hpp"

namespace vpsim
{

/** Everything that determines a captured trace's content. */
struct TraceCacheKey
{
    std::string workload;
    /** Measured-window length (after warm-up exclusion). */
    std::uint64_t insts = 0;
    /** Warm-up instructions executed and discarded before the window. */
    std::uint64_t skip = 0;
    unsigned scale = 1;
    std::uint64_t seed = 0;
    std::uint32_t formatVersion = traceFormatVersion;
};

/** A directory of cached trace captures, one file per key. */
class TraceCacheStore
{
  public:
    /**
     * @param cache_dir Directory for entries; created (with parents)
     *        if it does not exist. fatal() if creation fails.
     */
    explicit TraceCacheStore(std::string cache_dir);

    const std::string &directory() const { return dir; }

    /** The entry file an exact @p key match would live in. */
    std::string pathFor(const TraceCacheKey &key) const;

    /**
     * Look up @p key.
     *
     * @param out Replaced with the cached records on a hit.
     * @param error Set when an entry exists but cannot be read (corrupt,
     *        truncated, wrong version); such entries count as misses and
     *        the message names the offending file.
     * @return true on a hit.
     */
    bool tryLoad(const TraceCacheKey &key, std::vector<TraceRecord> *out,
                 Status *error) const;

    /** Store @p records under @p key (atomic rename into place). */
    Status store(const TraceCacheKey &key,
                 const std::vector<TraceRecord> &records) const;

    /** @name Hit/miss counters (cumulative over this store's lifetime). */
    /// @{
    std::uint64_t hits() const { return hitCount.load(); }
    std::uint64_t misses() const { return missCount.load(); }
    /// @}

  private:
    std::string dir;
    mutable std::atomic<std::uint64_t> hitCount{0};
    mutable std::atomic<std::uint64_t> missCount{0};
};

} // namespace vpsim

#endif // VPSIM_TRACE_TRACE_CACHE_STORE_HPP
