/**
 * @file
 * Trace file format v3: block-framed, delta/varint-compressed records
 * with per-block CRC-32 containment.
 *
 * v2 (trace_io.hpp) guards a whole file with one trailing CRC-32, so a
 * single flipped bit in a 100M-instruction capture discards hours of
 * work and the reader must materialize every record to verify anything.
 * v3 generalizes the footer to the block level:
 *
 *   header  "VPTR" ver=3 reserved[3] recordsPerBlock:u32 headerCrc:u32
 *   block*  "VPB3" recordCount:u32 payloadBytes:u32 payload frameCrc:u32
 *   trailer "VPE3" totalRecords:u64 blockCount:u64 trailerCrc:u32
 *
 * Every multi-byte integer is little-endian. Each block's payload is
 * delta/varint-encoded (trace/varint.hpp) with all deltas reset at the
 * block boundary, so blocks decode independently; the frame CRC covers
 * the block's own 12-byte frame header plus its payload. The trailer is
 * append-only bookkeeping (no header back-patching), which is what
 * keeps a streaming capture a pure sequence of appends — a capture
 * interrupted mid-stream leaves a prefix of intact blocks, nothing
 * half-updated.
 *
 * Corruption containment: a reader in salvage mode quarantines the
 * damaged block (Status kCorrupt per block, not per file), scans
 * forward for the next block magic, and resumes — losing exactly the
 * quarantined blocks. Every salvage is tallied in a BlockSalvageReport
 * and noted in the process-global salvage registry so SimRunner can
 * fold the loss into --stats output and the signed run manifest.
 * Full layout and semantics: docs/TRACE_FORMAT.md.
 */

#ifndef VPSIM_TRACE_TRACE_V3_HPP
#define VPSIM_TRACE_TRACE_V3_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "common/io.hpp"
#include "common/status.hpp"
#include "trace/span.hpp"

namespace vpsim
{

/** Version byte written by the v3 writer. */
inline constexpr std::uint32_t traceFormatVersionV3 = 3;

/** Default records per v3 block (~1 MiB encoded, ~6 MiB decoded). */
inline constexpr std::uint32_t defaultRecordsPerBlock = 65536;

/** Fixed sizes of the v3 framing structures, in bytes. */
inline constexpr std::size_t v3HeaderBytes = 16;
inline constexpr std::size_t v3BlockFrameBytes = 12;
inline constexpr std::size_t v3TrailerBytes = 24;

/** Running tally of what block salvage skipped in one file. */
struct BlockSalvageReport
{
    std::uint64_t blocksDelivered = 0;   ///< Blocks decoded intact.
    std::uint64_t blocksQuarantined = 0; ///< Blocks skipped as corrupt.
    std::uint64_t recordsDelivered = 0;  ///< Records decoded intact.
    std::uint64_t recordsLost = 0;       ///< Best-known records skipped.
    std::uint64_t bytesSkipped = 0;      ///< Raw bytes resync scanned over.

    bool clean() const { return blocksQuarantined == 0; }
};

/**
 * Process-global, thread-safe accumulator of per-file salvage damage.
 *
 * Readers running in salvage mode note every file that actually lost
 * blocks; SimRunner snapshots the totals into --stats output and the
 * signed run manifest so a sweep that silently dropped records cannot
 * masquerade as a clean one.
 */
class SalvageRegistry
{
  public:
    struct Totals
    {
        std::uint64_t files = 0;
        std::uint64_t blocksQuarantined = 0;
        std::uint64_t recordsLost = 0;
        std::uint64_t bytesSkipped = 0;
    };

    /** Fold one damaged file's report in (no-op when report.clean()). */
    void note(const std::string &path, const BlockSalvageReport &report);

    /**
     * Fold another process's totals in. The registry is process-global,
     * so a fleet worker's salvage damage would otherwise vanish with
     * the worker: workers serialize their totals into their shard
     * result files (src/fleet/result_store.hpp) and the supervisor
     * merges them here, making fleet --stats and manifests report the
     * same salvaged_blocks / salvaged_records_lost as a single-process
     * run.
     */
    void addTotals(const Totals &other);

    /** Consistent snapshot of the totals so far. */
    Totals totals() const;

    /** Clear all tallies (tests and per-run isolation). */
    void reset();

  private:
    mutable Mutex mutex;
    Totals sums GUARDED_BY(mutex);
};

/** The process-global registry fed by salvage-mode readers. */
SalvageRegistry &salvageRegistry();

/**
 * Streaming, append-only v3 trace writer.
 *
 * append() buffers records and flushes every full block; finish()
 * flushes the partial tail block, the trailer, and fsyncs, so a
 * successful finish() means the bytes survive a crash. The writer never
 * seeks — publishing atomically is the caller's job (write to a
 * temporary name, then io::renameFile; see TraceCacheStore).
 *
 * Each append() consults the fault injector's "capture" counter, so
 * ENOSPC-mid-capture (`capture:N:enospc-capture`) is deterministically
 * testable. After any error the writer is dead: close() discards state
 * and the caller removes the temporary file.
 */
class TraceV3Writer
{
  public:
    ~TraceV3Writer() { close(); }

    /** Open @p path (truncating) and write the v3 header. */
    [[nodiscard]] Status open(const std::string &path,
                              std::uint32_t records_per_block =
                                  defaultRecordsPerBlock);

    /** Buffer @p records, flushing every completed block. */
    [[nodiscard]] Status append(TraceSpan records);

    /** Flush the tail block + trailer, then fsync. Closes the file. */
    [[nodiscard]] Status finish();

    /** Records accepted by append() so far. */
    std::uint64_t recordsWritten() const { return totalRecords; }

    bool isOpen() const { return file.isOpen(); }

    /** Abandon the file without a trailer (idempotent). */
    void close();

  private:
    [[nodiscard]] Status flushBlock();

    io::File file;
    std::vector<TraceRecord> pending;
    std::vector<unsigned char> scratch;
    std::uint32_t recordsPerBlock = defaultRecordsPerBlock;
    std::uint64_t totalRecords = 0;
    std::uint64_t totalBlocks = 0;
};

/**
 * Sequential block-at-a-time v3 reader with strict and salvage modes.
 *
 * Strict mode (the default, used for trace-cache entries) fails the
 * whole file on the first damaged block, exactly like v2 — the cache
 * then quarantines and recaptures, keeping figure outputs bit-exact.
 * Salvage mode (--salvage-blocks) quarantines the damaged block,
 * resyncs on the next block magic, and keeps going; the damage tally is
 * available via salvageReport() and is noted in salvageRegistry() when
 * the file closes with losses.
 *
 * Two framing backends share all validation and decoding: a mapped one
 * (one MappedFile over the file; fastest for cache-sized traces) and a
 * buffered one (io::File with a reusable frame buffer; bounded memory
 * for arbitrarily large traces). Block CRC checks consult the fault
 * injector's "block" counter (`block:N:block-crc` forces a mismatch),
 * and the mapped backend honors open/mmap/read faults via MappedFile.
 */
class TraceV3Reader
{
  public:
    struct Options
    {
        bool salvage = false;      ///< Skip-resync corrupt blocks.
        bool preferMapped = false; ///< Try mmap first, else buffered.
    };

    /** Outcome of one nextBlock() call. */
    enum class Block
    {
        kDelivered, ///< @p out holds the next decoded block.
        kEnd,       ///< Clean end of trace (trailer validated).
    };

    ~TraceV3Reader() { close(); }

    /** Open @p path and validate the v3 header. */
    [[nodiscard]] Status open(const std::string &path,
                              const Options &options);

    /**
     * Decode the next block into @p out (replaced, not appended).
     *
     * @return ok with *outcome = kDelivered/kEnd, kCorrupt on damage in
     *         strict mode (or unsalvageable damage in salvage mode),
     *         kIo on read errors. Every message names the path.
     */
    [[nodiscard]] Status nextBlock(TraceSoa *out, Block *outcome);

    /** Damage tally so far (all-zero in strict mode). */
    const BlockSalvageReport &salvageReport() const { return report; }

    /** Block size the file was written with (valid after open()). */
    std::uint32_t recordsPerBlock() const { return blockRecords; }

    /** Total records the trailer declared (valid after kEnd). */
    std::uint64_t trailerRecords() const { return declaredRecords; }

    bool isOpen() const { return opened; }

    /** True when open() fell back from mmap to buffered reads. */
    bool usingBufferedReads() const { return opened && !mapped.isMapped(); }

    /** Close, noting salvage losses in the global registry. */
    void close();

  private:
    [[nodiscard]] Status readFrame(std::size_t size, bool *at_end);
    [[nodiscard]] Status resync();
    [[nodiscard]] Status handleCorrupt(const Status &why,
                                       std::uint64_t declared_count);

    Options opts;
    std::string filePath;
    bool opened = false;
    bool done = false;

    io::MappedFile mapped;
    std::uint64_t cursor = 0; ///< Mapped-mode read offset.
    io::File file;
    std::vector<unsigned char> frame;    ///< Buffered-mode frame bytes.
    std::vector<unsigned char> pendback; ///< Bytes resync() un-read.
    const unsigned char *frameData = nullptr;

    std::uint32_t blockRecords = 0;
    std::uint64_t declaredRecords = 0;
    BlockSalvageReport report;
};

/**
 * Write @p records to @p path as one complete v3 file.
 *
 * Convenience wrapper over TraceV3Writer for whole-in-memory traces
 * (tests, the trace cache's capture path for cache-sized workloads).
 */
[[nodiscard]] Status writeTraceV3(const std::string &path,
                                  const std::vector<TraceRecord> &records,
                                  std::uint32_t records_per_block =
                                      defaultRecordsPerBlock);

/**
 * Read a whole v3 file into @p out.
 *
 * @param salvage When true, damaged blocks are quarantined and skipped
 *        (the per-file tally lands in @p reportOut when non-null and in
 *        the global registry); when false the first damaged block fails
 *        the file with kCorrupt.
 */
[[nodiscard]] Status readTraceV3(const std::string &path,
                                 std::vector<TraceRecord> *out,
                                 bool salvage = false,
                                 BlockSalvageReport *report_out = nullptr);

} // namespace vpsim

#endif // VPSIM_TRACE_TRACE_V3_HPP
