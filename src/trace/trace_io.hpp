/**
 * @file
 * Versioned binary trace file format.
 *
 * Layout: a fixed header (magic "VPTR", format version, record count)
 * followed by packed little-endian records. This lets users capture a
 * workload trace once and re-run experiments against the file, mirroring
 * how the paper's authors drove their simulator from Shade trace files.
 */

#ifndef VPSIM_TRACE_TRACE_IO_HPP
#define VPSIM_TRACE_TRACE_IO_HPP

#include <string>
#include <vector>

#include "trace/record.hpp"

namespace vpsim
{

/** Current trace file format version. */
inline constexpr std::uint32_t traceFormatVersion = 1;

/**
 * Write @p records to @p path in the binary trace format.
 *
 * Calls fatal() on I/O failure.
 */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceRecord> &records);

/**
 * Read a binary trace file written by writeTraceFile().
 *
 * Calls fatal() on I/O failure, bad magic, or version mismatch.
 */
std::vector<TraceRecord> readTraceFile(const std::string &path);

} // namespace vpsim

#endif // VPSIM_TRACE_TRACE_IO_HPP
