/**
 * @file
 * Versioned binary trace file format.
 *
 * Layout: a fixed header (magic "VPTR", format version, record count)
 * followed by packed little-endian records. This lets users capture a
 * workload trace once and re-run experiments against the file, mirroring
 * how the paper's authors drove their simulator from Shade trace files.
 *
 * The Status-returning readTrace()/writeTrace() are the primary API:
 * short, corrupt, or over-long files are reported (with the offending
 * path) instead of killing the process, so callers like the trace cache
 * can fall back to recapturing. The fatal() wrappers remain for tools
 * where dying with the message is the right behaviour.
 */

#ifndef VPSIM_TRACE_TRACE_IO_HPP
#define VPSIM_TRACE_TRACE_IO_HPP

#include <string>
#include <vector>

#include "common/status.hpp"
#include "trace/record.hpp"

namespace vpsim
{

/** Current trace file format version. */
inline constexpr std::uint32_t traceFormatVersion = 1;

/**
 * Write @p records to @p path in the binary trace format.
 *
 * @return ok, or an error naming the path on I/O failure (the file may
 *         be left partially written; callers wanting atomicity should
 *         write to a temporary name and rename).
 */
Status writeTrace(const std::string &path,
                  const std::vector<TraceRecord> &records);

/**
 * Read a binary trace file written by writeTrace().
 *
 * @param out Replaced with the file's records on success; unspecified
 *        contents on error.
 * @return ok, or an error naming the path on I/O failure, bad magic,
 *         version mismatch, truncation, corrupt records, or trailing
 *         garbage after the declared record count.
 */
Status readTrace(const std::string &path, std::vector<TraceRecord> *out);

/** writeTrace() wrapper that fatal()s on error. */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceRecord> &records);

/** readTrace() wrapper that fatal()s on error. */
std::vector<TraceRecord> readTraceFile(const std::string &path);

} // namespace vpsim

#endif // VPSIM_TRACE_TRACE_IO_HPP
