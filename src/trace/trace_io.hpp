/**
 * @file
 * Versioned binary trace file format.
 *
 * Layout: a fixed header (magic "VPTR", format version, record count),
 * packed little-endian records, and a CRC-32 footer over everything
 * before it. This lets users capture a workload trace once and re-run
 * experiments against the file, mirroring how the paper's authors drove
 * their simulator from Shade trace files — and lets the trace cache
 * detect a bit-flipped or torn entry instead of silently simulating it.
 *
 * The Status-returning readTrace()/writeTrace() are the primary API:
 * short, corrupt, or over-long files are reported (with the offending
 * path, the failure class from status.hpp, and strerror(errno) detail
 * for I/O errors) instead of killing the process, so callers like the
 * trace cache can fall back to recapturing. All I/O goes through the
 * fault-injectable io::File layer (common/io.hpp), so every error
 * branch here is reachable in tests. The fatal() wrappers remain for
 * tools where dying with the message is the right behaviour.
 */

#ifndef VPSIM_TRACE_TRACE_IO_HPP
#define VPSIM_TRACE_TRACE_IO_HPP

#include <string>
#include <vector>

#include "common/status.hpp"
#include "trace/record.hpp"

namespace vpsim
{

/** Current trace file format version (2 added the CRC-32 footer). */
inline constexpr std::uint32_t traceFormatVersion = 2;

/**
 * Write @p records to @p path in the binary trace format.
 *
 * @return ok, or a kIo error naming the path on failure (the file may
 *         be left partially written; callers wanting atomicity should
 *         write to a temporary name and rename).
 */
[[nodiscard]] Status writeTrace(const std::string &path,
                                const std::vector<TraceRecord> &records);

/**
 * Read a binary trace file written by writeTrace().
 *
 * @param out Replaced with the file's records on success; unspecified
 *        contents on error.
 * @return ok, a kIo error on open/read failure, or a kCorrupt error on
 *         bad magic, version mismatch (reporting found vs. expected),
 *         truncation, corrupt records, checksum mismatch, or trailing
 *         garbage after the footer. Every message names the path.
 */
[[nodiscard]] Status readTrace(const std::string &path,
                               std::vector<TraceRecord> *out);

/** writeTrace() wrapper that fatal()s on error. */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceRecord> &records);

/** readTrace() wrapper that fatal()s on error. */
std::vector<TraceRecord> readTraceFile(const std::string &path);

} // namespace vpsim

#endif // VPSIM_TRACE_TRACE_IO_HPP
