/**
 * @file
 * Dynamic trace record: one executed instruction with its outcome.
 *
 * This plays the role of the Shade-produced SPARC traces in the paper
 * (§3.1): a stream of executed instructions annotated with the value each
 * one produced, the memory address it touched, and the actual control-flow
 * successor. All simulators and analyses in this repository are driven by
 * streams of these records.
 */

#ifndef VPSIM_TRACE_RECORD_HPP
#define VPSIM_TRACE_RECORD_HPP

#include <cstdint>

#include "common/types.hpp"
#include "isa/instruction.hpp"
#include "isa/opcodes.hpp"

namespace vpsim
{

/** One dynamically executed instruction. */
struct TraceRecord
{
    /** Appearance order in the trace (0-based). */
    SeqNum seq = 0;
    /** Instruction address. */
    Addr pc = 0;
    /** Address of the next instruction actually executed. */
    Addr nextPc = 0;
    /** Effective address for loads/stores, 0 otherwise. */
    Addr memAddr = 0;
    /** Value written to the destination register (0 when none). */
    Value result = 0;
    /** Opcode. */
    OpCode op = OpCode::Nop;
    /** Destination register, invalidReg when none. */
    RegIndex rd = invalidReg;
    /** First source register, invalidReg when unused. */
    RegIndex rs1 = invalidReg;
    /** Second source register, invalidReg when unused. */
    RegIndex rs2 = invalidReg;
    /** For control instructions: was the transfer taken? */
    bool taken = false;

    /** Functional class of the executed opcode. */
    InstClass instClass() const { return instClassOf(op); }

    /** True for any control transfer (branch or jump). */
    bool isControlFlow() const { return isControl(op); }

    /** True for conditional branches. */
    bool isConditional() const { return isConditionalBranch(op); }

    /**
     * True when this record produces a register value eligible for value
     * prediction (writes a non-zero destination register).
     */
    bool
    producesValue() const
    {
        return writesDest(op) && rd != invalidReg && rd != 0;
    }

    /** Fall-through address (pc + instruction size). */
    Addr fallThrough() const { return pc + instBytes; }
};

} // namespace vpsim

#endif // VPSIM_TRACE_RECORD_HPP
