#include "bpred/two_level.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "isa/instruction.hpp"

namespace vpsim
{

TwoLevelPApPredictor::TwoLevelPApPredictor(const TwoLevelConfig &config)
    : cfg(config)
{
    fatalIf(cfg.ways == 0 || cfg.entries % cfg.ways != 0,
            "BTB entries must divide evenly into ways");
    numSets = cfg.entries / cfg.ways;
    fatalIf((numSets & (numSets - 1)) != 0,
            "BTB set count must be a power of two");
    fatalIf(cfg.historyBits == 0 || cfg.historyBits > 16,
            "history register width out of range");
    entries.resize(cfg.entries);
    ras.resize(cfg.rasEntries, 0);
}

bool
TwoLevelPApPredictor::isCall(const TraceRecord &record)
{
    // The mini ISA's calling convention links through r1.
    return record.op == OpCode::Jal && record.rd == 1;
}

bool
TwoLevelPApPredictor::isReturn(const TraceRecord &record)
{
    return record.op == OpCode::Jalr && record.rs1 == 1 &&
           record.rd == 0;
}

std::size_t
TwoLevelPApPredictor::setIndex(Addr pc) const
{
    return (pc / instBytes) & (numSets - 1);
}

TwoLevelPApPredictor::Entry *
TwoLevelPApPredictor::find(Addr pc)
{
    const std::size_t base = setIndex(pc) * cfg.ways;
    for (std::size_t way = 0; way < cfg.ways; ++way) {
        Entry &entry = entries[base + way];
        if (entry.valid && entry.tag == pc)
            return &entry;
    }
    return nullptr;
}

TwoLevelPApPredictor::Entry &
TwoLevelPApPredictor::allocate(Addr pc)
{
    const std::size_t base = setIndex(pc) * cfg.ways;
    Entry *victim = &entries[base];
    for (std::size_t way = 0; way < cfg.ways; ++way) {
        Entry &entry = entries[base + way];
        if (!entry.valid) {
            victim = &entry;
            break;
        }
        if (entry.lastUse < victim->lastUse)
            victim = &entry;
    }
    victim->valid = true;
    victim->tag = pc;
    victim->target = 0;
    victim->history = 0;
    victim->pattern.assign(std::size_t{1} << cfg.historyBits,
                           SatCounter(cfg.counterBits, 1));
    victim->lastUse = ++useClock;
    return *victim;
}

BranchPrediction
TwoLevelPApPredictor::predict(const TraceRecord &record)
{
    panicIf(!record.isControlFlow(),
            "branch predictor consulted for a non-control instruction");
    // Returns are served by the return address stack.
    if (!ras.empty() && isReturn(record)) {
        const std::size_t top = (rasTop + ras.size() - 1) % ras.size();
        return {true, ras[top], true};
    }
    Entry *entry = find(record.pc);
    if (!entry) {
        // BTB miss: predict not-taken / fall-through.
        return {false, record.fallThrough(), false};
    }
    entry->lastUse = ++useClock;
    BranchPrediction prediction;
    prediction.btbHit = true;
    prediction.target = entry->target;
    if (record.isConditional()) {
        const SatCounter &counter = entry->pattern[entry->history];
        prediction.taken = counter.isSet();
    } else {
        prediction.taken = true; // jumps are always taken
    }
    if (!prediction.taken)
        prediction.target = record.fallThrough();
    return prediction;
}

void
TwoLevelPApPredictor::update(const TraceRecord &record,
                             const BranchPrediction &prediction)
{
    ++numPredictions;
    if (correct(record, prediction))
        ++numCorrect;

    // Maintain the return address stack at resolve time.
    if (!ras.empty()) {
        if (isCall(record)) {
            ras[rasTop] = record.fallThrough();
            rasTop = (rasTop + 1) % ras.size();
        } else if (isReturn(record)) {
            rasTop = (rasTop + ras.size() - 1) % ras.size();
            return; // returns are not BTB-allocated
        }
    }

    Entry *entry = find(record.pc);
    if (!entry) {
        ++numBtbMisses;
        // Classic BTB policy: allocate only for taken transfers.
        if (!record.taken)
            return;
        entry = &allocate(record.pc);
    }
    if (record.isConditional()) {
        SatCounter &counter = entry->pattern[entry->history];
        if (record.taken)
            counter.increment();
        else
            counter.decrement();
        const unsigned mask = (1u << cfg.historyBits) - 1;
        entry->history =
            ((entry->history << 1) | (record.taken ? 1 : 0)) & mask;
    }
    if (record.taken)
        entry->target = record.nextPc;
    entry->lastUse = ++useClock;
}

double
TwoLevelPApPredictor::accuracy() const
{
    if (numPredictions == 0)
        return 1.0;
    return static_cast<double>(numCorrect) /
           static_cast<double>(numPredictions);
}

void
TwoLevelPApPredictor::reset()
{
    for (Entry &entry : entries)
        entry.valid = false;
    std::fill(ras.begin(), ras.end(), 0);
    rasTop = 0;
    useClock = 0;
    numPredictions = 0;
    numCorrect = 0;
    numBtbMisses = 0;
}

} // namespace vpsim
