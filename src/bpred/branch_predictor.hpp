/**
 * @file
 * Branch predictor interface and the perfect predictor.
 *
 * The machine models are trace driven, so a predictor is consulted with
 * the dynamic record of the branch being fetched and its prediction is
 * compared against the recorded outcome; a mismatch (direction or target)
 * is a misprediction and costs the paper's 3-cycle redirect (§5).
 */

#ifndef VPSIM_BPRED_BRANCH_PREDICTOR_HPP
#define VPSIM_BPRED_BRANCH_PREDICTOR_HPP

#include <cstdint>
#include <string>

#include "trace/record.hpp"

namespace vpsim
{

/** A direction + target prediction for one control instruction. */
struct BranchPrediction
{
    /** Predicted direction (jumps are always predicted taken on a hit). */
    bool taken = false;
    /** Predicted target when taken (valid when btbHit). */
    Addr target = 0;
    /** The BTB had an entry for this pc. */
    bool btbHit = false;
};

/** Abstract branch predictor consulted at fetch, trained at resolve. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the control instruction described by @p record. */
    virtual BranchPrediction predict(const TraceRecord &record) = 0;

    /** Train with the actual outcome after the branch resolves. */
    virtual void update(const TraceRecord &record,
                        const BranchPrediction &prediction) = 0;

    /** Predictor name for reports. */
    virtual std::string name() const = 0;

    /** Drop all state. */
    virtual void reset() = 0;

    /**
     * Was @p prediction fully correct for @p record? Direction must match
     * and, for a taken transfer, the predicted target must equal the
     * recorded successor.
     */
    static bool
    correct(const TraceRecord &record, const BranchPrediction &prediction)
    {
        if (prediction.taken != record.taken)
            return false;
        if (record.taken && prediction.target != record.nextPc)
            return false;
        return true;
    }
};

/** Oracle predictor: echoes the trace (paper's "ideal BTB"). */
class PerfectBranchPredictor : public BranchPredictor
{
  public:
    BranchPrediction
    predict(const TraceRecord &record) override
    {
        return {record.taken, record.nextPc, true};
    }

    void
    update(const TraceRecord &record,
           const BranchPrediction &prediction) override
    {
        (void)record;
        (void)prediction;
    }

    std::string name() const override { return "perfect"; }
    void reset() override {}
};

} // namespace vpsim

#endif // VPSIM_BPRED_BRANCH_PREDICTOR_HPP
