/**
 * @file
 * 2-level adaptive branch predictor in a PAp configuration with an
 * integrated BTB, as configured in the paper's Section 5: first level of
 * 2K entries, 2-way set associative, a 4-bit history register per branch,
 * and a per-address pattern table of 2-bit saturating counters (Yeh &
 * Patt [27]). The BTB is allowed to deliver multiple predictions per
 * cycle ([18]), which the fetch engines exploit.
 */

#ifndef VPSIM_BPRED_TWO_LEVEL_HPP
#define VPSIM_BPRED_TWO_LEVEL_HPP

#include <array>
#include <vector>

#include "bpred/branch_predictor.hpp"
#include "common/sat_counter.hpp"
#include "common/stats.hpp"

namespace vpsim
{

/** Configuration of the 2-level PAp BTB. */
struct TwoLevelConfig
{
    /** Total first-level entries (paper: 2K). */
    std::size_t entries = 2048;
    /** Set associativity (paper: 2-way). */
    std::size_t ways = 2;
    /** Per-branch history register width (paper: 4 bits). */
    unsigned historyBits = 4;
    /** Pattern-table counter width (2-bit counters). */
    unsigned counterBits = 2;
    /**
     * Return-address-stack depth (0 disables). Calls (jal with the link
     * register) push; returns (jalr through the link register) pop.
     * Standard front-end equipment by 1998 and necessary for the BTB to
     * reach the paper's ~86% average accuracy on call-heavy code.
     */
    std::size_t rasEntries = 16;
};

/** 2-level PAp predictor with an embedded BTB. */
class TwoLevelPApPredictor : public BranchPredictor
{
  public:
    explicit TwoLevelPApPredictor(const TwoLevelConfig &config = {});

    BranchPrediction predict(const TraceRecord &record) override;
    void update(const TraceRecord &record,
                const BranchPrediction &prediction) override;
    std::string name() const override { return "2-level-PAp"; }
    void reset() override;

    /** @name Statistics */
    /// @{
    std::uint64_t predictions() const { return numPredictions; }
    std::uint64_t correctPredictions() const { return numCorrect; }
    std::uint64_t btbMisses() const { return numBtbMisses; }
    /** Overall control-flow prediction accuracy. */
    double accuracy() const;
    /// @}

  private:
    struct Entry
    {
        bool valid = false;
        Addr tag = 0;
        Addr target = 0;
        /** Branch history register (low historyBits bits). */
        unsigned history = 0;
        /** Per-address pattern table, one counter per history pattern. */
        std::vector<SatCounter> pattern;
        /** LRU stamp. */
        std::uint64_t lastUse = 0;
    };

    Entry *find(Addr pc);
    Entry &allocate(Addr pc);
    std::size_t setIndex(Addr pc) const;

    static bool isCall(const TraceRecord &record);
    static bool isReturn(const TraceRecord &record);

    TwoLevelConfig cfg;
    std::size_t numSets;
    std::vector<Entry> entries; // numSets x ways
    std::uint64_t useClock = 0;
    /** Return address stack (circular, silently wraps). */
    std::vector<Addr> ras;
    std::size_t rasTop = 0;

    std::uint64_t numPredictions = 0;
    std::uint64_t numCorrect = 0;
    std::uint64_t numBtbMisses = 0;
};

} // namespace vpsim

#endif // VPSIM_BPRED_TWO_LEVEL_HPP
