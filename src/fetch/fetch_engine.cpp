#include "fetch/fetch_engine.hpp"

#include "common/invariant.hpp"
#include "common/logging.hpp"

namespace vpsim
{

TraceFetchBase::TraceFetchBase(
    TraceSpan trace_records,
    BranchPredictor &branch_predictor)
    : trace(trace_records),
      bpred(branch_predictor)
{
}

bool
TraceFetchBase::stalled(Cycle now) const
{
    return pendingBranch != invalidSeqNum || now < resumeCycle;
}

void
TraceFetchBase::branchResolved(SeqNum seq, Cycle resolve_cycle)
{
    if (seq != pendingBranch)
        return;
    pendingBranch = invalidSeqNum;
    resumeCycle = resolve_cycle + 1;
}

bool
TraceFetchBase::consumeRecord(std::vector<FetchedInst> &out)
{
    panicIf(cursor >= trace.size(), "fetch past the end of the trace");
    const TraceRecord &record = trace[cursor];
    FetchedInst inst;
    inst.record = record;
    if (record.isControlFlow()) {
        const BranchPrediction prediction = bpred.predict(record);
        bpred.update(record, prediction);
        inst.mispredicted = !BranchPredictor::correct(record, prediction);
        if (inst.mispredicted) {
            pendingBranch = record.seq;
            pendingPrediction = prediction;
            ++numMispredicts;
        }
    }
    out.push_back(inst);
    ++cursor;
    ++numFetched;
    // Every fetched instruction is a trace record consumed exactly
    // once; a drift here means duplicated or dropped delivery.
    checkInvariant(InvariantLevel::Cheap, numFetched == cursor,
                   "fetch.delivered_matches_consumed", [&] {
                       return std::to_string(numFetched) +
                              " fetched but trace cursor at " +
                              std::to_string(cursor);
                   });
    return inst.mispredicted;
}

} // namespace vpsim
