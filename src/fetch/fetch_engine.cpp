#include "fetch/fetch_engine.hpp"

namespace vpsim
{

TraceFetchBase::TraceFetchBase(
    TraceSpan trace_records,
    BranchPredictor &branch_predictor)
    : trace(trace_records),
      bpred(branch_predictor)
{
}

bool
TraceFetchBase::stalled(Cycle now) const
{
    return pendingBranch != invalidSeqNum || now < resumeCycle;
}

void
TraceFetchBase::branchResolved(SeqNum seq, Cycle resolve_cycle)
{
    if (seq != pendingBranch)
        return;
    pendingBranch = invalidSeqNum;
    resumeCycle = resolve_cycle + 1;
}

} // namespace vpsim
