#include "fetch/sequential_fetch.hpp"

#include <sstream>

namespace vpsim
{

SequentialFetch::SequentialFetch(
    TraceSpan trace_records,
    BranchPredictor &branch_predictor, unsigned max_taken_branches,
    InstructionCache *instruction_cache,
    const Program *wrong_path_program)
    : TraceFetchBase(trace_records, branch_predictor),
      maxTaken(max_taken_branches),
      icache(instruction_cache),
      wpProgram(wrong_path_program)
{
}

void
SequentialFetch::branchResolved(SeqNum seq, Cycle resolve_cycle)
{
    if (seq == pendingBranch)
        wpActive = false;
    TraceFetchBase::branchResolved(seq, resolve_cycle);
}

void
SequentialFetch::fetchWrongPath(unsigned max_insts,
                                std::vector<FetchedInst> &out)
{
    unsigned taken_seen = 0;
    unsigned fetched = 0;
    while (wpActive && fetched < max_insts) {
        if (!wpProgram->contains(wpPc)) {
            wpActive = false; // walked off the image: fetch goes idle
            break;
        }
        const Instruction &inst =
            wpProgram->at(wpProgram->indexOf(wpPc));
        if (inst.op == OpCode::Halt) {
            wpActive = false;
            break;
        }

        TraceRecord rec;
        rec.seq = wpNextSeq++;
        rec.pc = wpPc;
        rec.op = inst.op;
        rec.rd = writesDest(inst.op) ? inst.rd : invalidReg;
        rec.rs1 = readsSrc1(inst.op) ? inst.rs1 : invalidReg;
        rec.rs2 = readsSrc2(inst.op) ? inst.rs2 : invalidReg;

        Addr next = rec.fallThrough();
        if (inst.op == OpCode::Jal) {
            rec.taken = true;
            next = wpProgram->pcOf(inst.target);
        } else if (inst.op == OpCode::Jalr) {
            // Navigate indirect jumps through the BTB (peek only).
            const BranchPrediction p = bpred.predict(rec);
            if (p.btbHit) {
                rec.taken = true;
                next = p.target;
            } else {
                wpActive = false; // no target to follow
            }
        } else if (inst.isConditional()) {
            const BranchPrediction p = bpred.predict(rec);
            rec.taken = p.taken;
            if (p.taken)
                next = wpProgram->pcOf(inst.target);
        }
        rec.nextPc = next;

        FetchedInst fetched_inst;
        fetched_inst.record = rec;
        fetched_inst.wrongPath = true;
        out.push_back(fetched_inst);
        ++fetched;
        ++numWrongPath;

        if (!wpActive)
            break;
        if (rec.taken) {
            ++taken_seen;
            if (maxTaken != 0 && taken_seen >= maxTaken)
                break;
        }
        wpPc = next;
    }
}

void
SequentialFetch::fetch(Cycle now, unsigned max_insts,
                       std::vector<FetchedInst> &out)
{
    if (stalled(now) || done()) {
        // While a misprediction resolves, a wrong-path-enabled front
        // end keeps fetching down the predicted path.
        if (wpProgram && wpActive && pendingBranch != invalidSeqNum)
            fetchWrongPath(max_insts, out);
        return;
    }

    unsigned taken_seen = 0;
    unsigned fetched = 0;
    while (fetched < max_insts && !done()) {
        const TraceRecord &record = trace[cursor];
        // Instruction cache: a missing line ends the bundle and stalls
        // fetch while the line fills (it is resident afterwards).
        if (icache && !icache->access(record.pc)) {
            resumeCycle = now + icache->missPenalty();
            break;
        }
        const bool mispredicted = consumeRecord(out);
        ++fetched;
        if (mispredicted) {
            if (wpProgram) {
                // Arm the wrong-path walker at the predicted target.
                wpPc = pendingPrediction.taken
                    ? pendingPrediction.target
                    : record.fallThrough();
                wpActive = true;
            }
            break;
        }
        if (record.isControlFlow() && record.taken) {
            ++taken_seen;
            if (maxTaken != 0 && taken_seen >= maxTaken)
                break;
        }
    }
}

std::string
SequentialFetch::name() const
{
    std::ostringstream oss;
    oss << "sequential(maxTaken=";
    if (maxTaken == 0)
        oss << "unlimited";
    else
        oss << maxTaken;
    oss << ")";
    return oss.str();
}

} // namespace vpsim
