/**
 * @file
 * Trace cache fetch engine (Rotenberg, Bennett & Smith [18]; paper §5,
 * Figure 5.3 uses a 64-entry direct-mapped cache whose lines hold up to
 * 32 instructions or up to 6 basic blocks).
 *
 * A trace line records the dynamic path (sequence of PCs) that was
 * observed when the line was filled. On a hit the whole line is delivered
 * in a single cycle; delivery is truncated where the current execution
 * path diverges from the stored path (a partial hit: no penalty unless
 * the divergence is an actual branch misprediction). On a miss the engine
 * falls back to conventional contiguous fetch up to the first taken
 * transfer, and the fill unit builds new lines from the fetched path.
 */

#ifndef VPSIM_FETCH_TRACE_CACHE_HPP
#define VPSIM_FETCH_TRACE_CACHE_HPP

#include <vector>

#include "fetch/fetch_engine.hpp"

namespace vpsim
{

/** Trace cache geometry. */
struct TraceCacheConfig
{
    /** Number of lines (paper: 64, direct mapped). */
    std::size_t lines = 64;
    /** Maximum instructions per line (paper: 32). */
    unsigned maxLineInsts = 32;
    /** Maximum basic blocks per line (paper: 6). */
    unsigned maxLineBlocks = 6;
    /** Conventional-fetch width on a trace cache miss. */
    unsigned missFetchWidth = 16;
};

/** Trace cache + fill unit front end. */
class TraceCacheFetch : public TraceFetchBase
{
  public:
    TraceCacheFetch(TraceSpan trace_records,
                    BranchPredictor &branch_predictor,
                    const TraceCacheConfig &config = {});

    void fetch(Cycle now, unsigned max_insts,
               std::vector<FetchedInst> &out) override;

    std::string name() const override { return "trace-cache"; }

    /** @name Statistics */
    /// @{
    std::uint64_t lookups() const { return numLookups; }
    std::uint64_t hits() const { return numHits; }
    /** Instructions delivered from trace cache lines. */
    std::uint64_t lineInstsDelivered() const { return numLineInsts; }
    /** Lines installed by the fill unit (including replacements). */
    std::uint64_t linesFilled() const { return numFills; }
    double hitRate() const;
    /// @}

  private:
    struct Line
    {
        bool valid = false;
        Addr startPc = 0;
        /** The recorded dynamic path. */
        std::vector<Addr> path;
    };

    std::size_t lineIndex(Addr pc) const;
    void feedFillUnit(const TraceRecord &record);

    TraceCacheConfig cfg;
    std::vector<Line> lines;

    /** Fill unit state: the line under construction. */
    std::vector<Addr> pendingPath;
    Addr pendingStart = 0;
    unsigned pendingBlocks = 0;

    std::uint64_t numLookups = 0;
    std::uint64_t numHits = 0;
    std::uint64_t numLineInsts = 0;
    std::uint64_t numFills = 0;
};

} // namespace vpsim

#endif // VPSIM_FETCH_TRACE_CACHE_HPP
