/**
 * @file
 * Conventional multi-branch fetch engine (paper §5, Figures 5.1/5.2):
 * fetches up to the machine width each cycle but stops after n taken
 * control transfers (n = 1..4 or unlimited). The branch predictor may be
 * consulted multiple times per cycle ([18]).
 */

#ifndef VPSIM_FETCH_SEQUENTIAL_FETCH_HPP
#define VPSIM_FETCH_SEQUENTIAL_FETCH_HPP

#include "fetch/fetch_engine.hpp"
#include "fetch/icache.hpp"
#include "vm/program.hpp"

namespace vpsim
{

/** Width-and-taken-branch-limited fetch. */
class SequentialFetch : public TraceFetchBase
{
  public:
    /**
     * @param trace_records The dynamic trace.
     * @param branch_predictor Consulted for every control instruction.
     * @param max_taken_branches Taken transfers allowed per cycle;
     *        0 means unlimited.
     * @param instruction_cache Optional icache; a miss ends the bundle
     *        and stalls fetch for the miss penalty (not owned).
     * @param wrong_path_program When non-null, fetch continues down the
     *        mispredicted path (navigated through this static program
     *        image and the branch predictor) while the machine resolves
     *        the branch; those instructions are marked wrongPath and
     *        squashed at resolution (not owned).
     */
    SequentialFetch(TraceSpan trace_records,
                    BranchPredictor &branch_predictor,
                    unsigned max_taken_branches,
                    InstructionCache *instruction_cache = nullptr,
                    const Program *wrong_path_program = nullptr);

    void fetch(Cycle now, unsigned max_insts,
               std::vector<FetchedInst> &out) override;

    void branchResolved(SeqNum seq, Cycle resolve_cycle) override;

    std::string name() const override;

    /** Wrong-path instructions delivered (squashed later). */
    std::uint64_t wrongPathFetched() const { return numWrongPath; }

  private:
    void fetchWrongPath(unsigned max_insts,
                        std::vector<FetchedInst> &out);

    unsigned maxTaken;
    InstructionCache *icache;
    const Program *wpProgram;

    bool wpActive = false;
    Addr wpPc = 0;
    /** Synthetic sequence numbers, far above any real trace. */
    SeqNum wpNextSeq = SeqNum{1} << 62;
    std::uint64_t numWrongPath = 0;
};

} // namespace vpsim

#endif // VPSIM_FETCH_SEQUENTIAL_FETCH_HPP
