/**
 * @file
 * Simple instruction cache model.
 *
 * The paper lists the instruction-cache hit rate among the factors that
 * bound effective fetch bandwidth (§1) but deliberately studies only the
 * control-flow factors. This model completes the library: a set
 * associative cache of instruction lines with LRU replacement and a
 * fixed miss penalty, pluggable into the sequential fetch engine for
 * sensitivity studies.
 */

#ifndef VPSIM_FETCH_ICACHE_HPP
#define VPSIM_FETCH_ICACHE_HPP

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace vpsim
{

/** Instruction cache geometry. */
struct ICacheConfig
{
    /** Total capacity in bytes (e.g. 16 KiB). */
    std::size_t capacityBytes = 16 * 1024;
    /** Line size in bytes. */
    std::size_t lineBytes = 32;
    /** Set associativity. */
    std::size_t ways = 2;
    /** Cycles fetch stalls on a miss. */
    unsigned missPenalty = 6;
};

/** Set associative instruction cache with LRU replacement. */
class InstructionCache
{
  public:
    explicit InstructionCache(const ICacheConfig &config = {});

    /**
     * Access the line containing @p pc, filling it on a miss.
     *
     * @retval true Hit.
     * @retval false Miss (the line is now resident).
     */
    bool access(Addr pc);

    /** Miss penalty in cycles (from the configuration). */
    unsigned missPenalty() const { return cfg.missPenalty; }

    /** @name Statistics */
    /// @{
    std::uint64_t accesses() const { return numAccesses; }
    std::uint64_t misses() const { return numMisses; }
    double hitRate() const;
    /// @}

    /** Invalidate everything. */
    void reset();

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    ICacheConfig cfg;
    std::size_t numSets;
    std::vector<Line> lines;
    std::uint64_t useClock = 0;

    std::uint64_t numAccesses = 0;
    std::uint64_t numMisses = 0;
};

} // namespace vpsim

#endif // VPSIM_FETCH_ICACHE_HPP
