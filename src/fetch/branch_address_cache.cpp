#include "fetch/branch_address_cache.hpp"

#include "common/logging.hpp"
#include "isa/instruction.hpp"

namespace vpsim
{

BranchAddressCacheFetch::BranchAddressCacheFetch(
    TraceSpan trace_records,
    BranchPredictor &branch_predictor, const BacConfig &config)
    : TraceFetchBase(trace_records, branch_predictor),
      cfg(config)
{
    fatalIf(cfg.entries == 0 || (cfg.entries & (cfg.entries - 1)) != 0,
            "BAC entry count must be a power of two");
    fatalIf(cfg.maxBlocksPerCycle == 0,
            "BAC must fetch at least one block per cycle");
    fatalIf(cfg.icacheBanks == 0, "icache bank count must be positive");
    entries.resize(cfg.entries);
}

std::size_t
BranchAddressCacheFetch::indexOf(Addr pc) const
{
    return (pc / instBytes) & (cfg.entries - 1);
}

unsigned
BranchAddressCacheFetch::bankOf(Addr pc) const
{
    return static_cast<unsigned>((pc / cfg.lineBytes) % cfg.icacheBanks);
}

void
BranchAddressCacheFetch::fetch(Cycle now, unsigned max_insts,
                               std::vector<FetchedInst> &out)
{
    if (stalled(now) || done())
        return;

    std::vector<bool> bank_busy(cfg.icacheBanks, false);
    unsigned blocks = 0;
    unsigned fetched = 0;

    while (blocks < cfg.maxBlocksPerCycle && fetched < max_insts &&
           !done()) {
        const Addr block_start = trace[cursor].pc;

        // Interleaved icache constraint: the block's starting line bank
        // must be free this cycle.
        const unsigned bank = bankOf(block_start);
        if (bank_busy[bank]) {
            ++numBankConflicts;
            break;
        }
        bank_busy[bank] = true;

        // The first block of a cycle always fetches (the fetch address
        // itself needs no BAC entry); continuing to FURTHER blocks
        // requires the BAC to know this block so it can produce the
        // next block's address this same cycle.
        if (blocks > 0) {
            ++numLookups;
            Entry &entry = entries[indexOf(block_start)];
            if (!entry.valid || entry.startPc != block_start) {
                // BAC miss: learn the block, end the bundle.
                entry.valid = true;
                entry.startPc = block_start;
                break;
            }
            ++numHits;
        } else {
            Entry &entry = entries[indexOf(block_start)];
            entry.valid = true;
            entry.startPc = block_start;
        }

        // Deliver the block: instructions up to and including the next
        // control transfer (or the width limit).
        bool block_ended = false;
        while (fetched < max_insts && !done() && !block_ended) {
            const TraceRecord &record = trace[cursor];
            const bool mispredicted = consumeRecord(out);
            ++fetched;
            if (mispredicted)
                return; // stall armed inside consumeRecord
            if (record.isControlFlow())
                block_ended = true;
        }
        ++blocks;
        if (!block_ended)
            break; // width limit hit inside the block
    }
}

double
BranchAddressCacheFetch::hitRate() const
{
    if (numLookups == 0)
        return 0.0;
    return static_cast<double>(numHits) /
           static_cast<double>(numLookups);
}

} // namespace vpsim
