#include "fetch/collapsing_buffer.hpp"

#include "common/logging.hpp"

namespace vpsim
{

CollapsingBufferFetch::CollapsingBufferFetch(
    TraceSpan trace_records,
    BranchPredictor &branch_predictor,
    const CollapsingBufferConfig &config)
    : TraceFetchBase(trace_records, branch_predictor),
      cfg(config)
{
    fatalIf(cfg.lineBytes == 0 ||
                (cfg.lineBytes & (cfg.lineBytes - 1)) != 0,
            "collapsing buffer line size must be a power of two");
    fatalIf(cfg.linesPerCycle == 0, "need at least one line per cycle");
    fatalIf(cfg.banks == 0, "icache bank count must be positive");
}

unsigned
CollapsingBufferFetch::bankOf(Addr pc) const
{
    return static_cast<unsigned>(lineOf(pc) % cfg.banks);
}

void
CollapsingBufferFetch::fetch(Cycle now, unsigned max_insts,
                             std::vector<FetchedInst> &out)
{
    if (stalled(now) || done())
        return;

    std::vector<bool> bank_busy(cfg.banks, false);
    unsigned lines_used = 0;
    Addr current_line = 0;
    bool have_line = false;
    unsigned fetched = 0;

    while (fetched < max_insts && !done()) {
        const TraceRecord &record = trace[cursor];
        const Addr record_line = lineOf(record.pc);

        if (!have_line || record_line != current_line) {
            // Need a (new) line window.
            if (lines_used >= cfg.linesPerCycle)
                break;
            const unsigned bank = bankOf(record.pc);
            if (bank_busy[bank]) {
                ++numBankConflicts;
                break;
            }
            bank_busy[bank] = true;
            current_line = record_line;
            have_line = true;
            ++lines_used;
        }

        const bool mispredicted = consumeRecord(out);
        ++fetched;
        if (mispredicted)
            return;

        if (record.isControlFlow() && record.taken) {
            const Addr target_line = lineOf(record.nextPc);
            if (target_line == current_line &&
                record.nextPc > record.pc) {
                // Short forward branch inside the line: the collapsing
                // buffer splices the gap out; fetch continues for free.
                ++numCollapsed;
            } else {
                // Leaving the line: the next iteration will try to
                // allocate the second line window for the target.
                have_line = false;
            }
        }
    }
}

} // namespace vpsim
