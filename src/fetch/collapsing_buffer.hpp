/**
 * @file
 * Collapsing-buffer fetch, after Conte et al. [1] (the second §2.2
 * mechanism): fetch two (possibly noncontiguous) instruction cache
 * lines per cycle through a two-ported/interleaved cache, and use a
 * collapsing buffer to splice out the instructions a short
 * intra-line forward branch jumps over.
 *
 * Trace-driven model. Per cycle the engine owns up to two cache-line
 * windows. Instructions stream from the trace while they fall inside
 * the current line; a taken transfer is handled as:
 *   - target inside the SAME line and forward: collapsed — fetch
 *     continues within the line for free (the buffer purges the gap);
 *   - target elsewhere: consumes the second line window (once per
 *     cycle); after both line windows are used, the bundle ends.
 * Both lines must come from distinct cache banks; a bank conflict ends
 * the bundle after the first line.
 */

#ifndef VPSIM_FETCH_COLLAPSING_BUFFER_HPP
#define VPSIM_FETCH_COLLAPSING_BUFFER_HPP

#include "fetch/fetch_engine.hpp"

namespace vpsim
{

/** Collapsing-buffer front-end geometry. */
struct CollapsingBufferConfig
{
    /** Instruction cache line size in bytes (a 32B line = 8 insts). */
    std::size_t lineBytes = 32;
    /** Cache lines fetchable per cycle (the paper's mechanism uses 2). */
    unsigned linesPerCycle = 2;
    /** Interleaved instruction cache banks. */
    unsigned banks = 8;
};

/** Two-line fetch with intra-line branch collapsing. */
class CollapsingBufferFetch : public TraceFetchBase
{
  public:
    CollapsingBufferFetch(TraceSpan trace_records,
                          BranchPredictor &branch_predictor,
                          const CollapsingBufferConfig &config = {});

    void fetch(Cycle now, unsigned max_insts,
               std::vector<FetchedInst> &out) override;

    std::string name() const override { return "collapsing-buffer"; }

    /** @name Statistics */
    /// @{
    /** Taken branches collapsed inside a line (no bandwidth cost). */
    std::uint64_t collapsedBranches() const { return numCollapsed; }
    /** Bundles cut short by an icache bank conflict. */
    std::uint64_t bankConflicts() const { return numBankConflicts; }
    /// @}

  private:
    Addr lineOf(Addr pc) const { return pc / cfg.lineBytes; }
    unsigned bankOf(Addr pc) const;

    CollapsingBufferConfig cfg;

    std::uint64_t numCollapsed = 0;
    std::uint64_t numBankConflicts = 0;
};

} // namespace vpsim

#endif // VPSIM_FETCH_COLLAPSING_BUFFER_HPP
