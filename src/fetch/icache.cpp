#include "fetch/icache.hpp"

#include "common/logging.hpp"

namespace vpsim
{

InstructionCache::InstructionCache(const ICacheConfig &config)
    : cfg(config)
{
    fatalIf(cfg.lineBytes == 0 ||
                (cfg.lineBytes & (cfg.lineBytes - 1)) != 0,
            "icache line size must be a power of two");
    fatalIf(cfg.ways == 0, "icache needs at least one way");
    fatalIf(cfg.capacityBytes % (cfg.lineBytes * cfg.ways) != 0,
            "icache capacity must divide into lines and ways");
    numSets = cfg.capacityBytes / (cfg.lineBytes * cfg.ways);
    fatalIf((numSets & (numSets - 1)) != 0,
            "icache set count must be a power of two");
    lines.resize(numSets * cfg.ways);
}

bool
InstructionCache::access(Addr pc)
{
    ++numAccesses;
    const Addr line_addr = pc / cfg.lineBytes;
    const std::size_t set = line_addr & (numSets - 1);
    const std::size_t base = set * cfg.ways;

    for (std::size_t way = 0; way < cfg.ways; ++way) {
        Line &line = lines[base + way];
        if (line.valid && line.tag == line_addr) {
            line.lastUse = ++useClock;
            return true;
        }
    }

    // Miss: fill into the LRU way.
    ++numMisses;
    Line *victim = &lines[base];
    for (std::size_t way = 1; way < cfg.ways; ++way) {
        if (!lines[base + way].valid ||
            lines[base + way].lastUse < victim->lastUse) {
            victim = &lines[base + way];
        }
        if (!victim->valid)
            break;
    }
    victim->valid = true;
    victim->tag = line_addr;
    victim->lastUse = ++useClock;
    return false;
}

double
InstructionCache::hitRate() const
{
    if (numAccesses == 0)
        return 1.0;
    return static_cast<double>(numAccesses - numMisses) /
           static_cast<double>(numAccesses);
}

void
InstructionCache::reset()
{
    for (Line &line : lines)
        line.valid = false;
    useClock = 0;
    numAccesses = 0;
    numMisses = 0;
}

} // namespace vpsim
