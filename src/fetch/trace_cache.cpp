#include "fetch/trace_cache.hpp"

#include "common/invariant.hpp"
#include "common/logging.hpp"
#include "isa/instruction.hpp"

namespace vpsim
{

TraceCacheFetch::TraceCacheFetch(
    TraceSpan trace_records,
    BranchPredictor &branch_predictor, const TraceCacheConfig &config)
    : TraceFetchBase(trace_records, branch_predictor),
      cfg(config)
{
    fatalIf(cfg.lines == 0 || (cfg.lines & (cfg.lines - 1)) != 0,
            "trace cache line count must be a power of two");
    fatalIf(cfg.maxLineInsts == 0 || cfg.maxLineBlocks == 0,
            "trace cache line limits must be positive");
    lines.resize(cfg.lines);
}

std::size_t
TraceCacheFetch::lineIndex(Addr pc) const
{
    return (pc / instBytes) & (cfg.lines - 1);
}

void
TraceCacheFetch::feedFillUnit(const TraceRecord &record)
{
    if (pendingPath.empty()) {
        pendingStart = record.pc;
        pendingBlocks = 0;
    }
    pendingPath.push_back(record.pc);
    if (record.isControlFlow())
        ++pendingBlocks;

    const bool full = pendingPath.size() >= cfg.maxLineInsts ||
                      pendingBlocks >= cfg.maxLineBlocks;
    if (full) {
        // The fill unit must never install a line beyond the cache's
        // geometry: an oversized line delivers more than a line's worth
        // per cycle and inflates every Figure 5.3 speedup.
        checkInvariant(InvariantLevel::Cheap,
                       pendingPath.size() <= cfg.maxLineInsts &&
                           pendingBlocks <= cfg.maxLineBlocks,
                       "tc.line_geometry", [&] {
                           return "filled line of " +
                                  std::to_string(pendingPath.size()) +
                                  " insts / " +
                                  std::to_string(pendingBlocks) +
                                  " blocks exceeds " +
                                  std::to_string(cfg.maxLineInsts) +
                                  "/" +
                                  std::to_string(cfg.maxLineBlocks);
                       });
        Line &line = lines[lineIndex(pendingStart)];
        line.valid = true;
        line.startPc = pendingStart;
        line.path = pendingPath;
        ++numFills;
        pendingPath.clear();
        pendingBlocks = 0;
    }
}

void
TraceCacheFetch::fetch(Cycle now, unsigned max_insts,
                       std::vector<FetchedInst> &out)
{
    if (stalled(now) || done())
        return;

    const Addr fetch_pc = trace[cursor].pc;
    ++numLookups;
    const Line &line = lines[lineIndex(fetch_pc)];
    const bool hit = line.valid && line.startPc == fetch_pc;

    if (hit) {
        ++numHits;
        // Deliver the stored path, truncating where the actual path
        // diverges from the line (partial hit) or at a misprediction.
        // Snapshot the path first: the fill unit can overwrite this
        // very line mid-delivery (hardware reads the whole line at hit
        // time), and assigning line.path would invalidate iterators.
        const std::vector<Addr> path = line.path;
        unsigned delivered = 0;
        for (const Addr expected_pc : path) {
            if (delivered >= max_insts || done())
                break;
            const TraceRecord &record = trace[cursor];
            if (record.pc != expected_pc)
                break; // execution diverged from the stored trace
            const bool mispredicted = consumeRecord(out);
            feedFillUnit(record);
            ++delivered;
            ++numLineInsts;
            if (mispredicted)
                break;
        }
        return;
    }

    // Miss path: conventional contiguous fetch up to the first taken
    // transfer (or the miss-fetch width), feeding the fill unit.
    unsigned fetched = 0;
    const unsigned budget = std::min(max_insts, cfg.missFetchWidth);
    while (fetched < budget && !done()) {
        const TraceRecord &record = trace[cursor];
        const bool mispredicted = consumeRecord(out);
        feedFillUnit(record);
        ++fetched;
        if (mispredicted)
            break;
        if (record.isControlFlow() && record.taken)
            break;
    }
}

double
TraceCacheFetch::hitRate() const
{
    if (numLookups == 0)
        return 0.0;
    return static_cast<double>(numHits) /
           static_cast<double>(numLookups);
}

} // namespace vpsim
