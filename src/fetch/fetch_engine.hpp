/**
 * @file
 * Front-end fetch engine interface shared by the Section 5 experiments.
 *
 * A fetch engine walks the dynamic trace (the correct path) and decides,
 * cycle by cycle, which prefix of the remaining trace the machine gets to
 * see, given its bandwidth rules (taken-branch limits, trace-cache lines)
 * and the branch predictor's behaviour. A branch whose prediction
 * disagrees with the recorded outcome ends the cycle's bundle and stalls
 * fetch until the machine reports the branch resolved; fetch resumes the
 * cycle after resolution, which together with the 2-cycle front-end gives
 * the paper's 3-cycle misprediction penalty.
 */

#ifndef VPSIM_FETCH_FETCH_ENGINE_HPP
#define VPSIM_FETCH_FETCH_ENGINE_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "bpred/branch_predictor.hpp"
#include "common/invariant.hpp"
#include "common/logging.hpp"
#include "common/types.hpp"
#include "trace/record.hpp"
#include "trace/span.hpp"

namespace vpsim
{

/** One fetched instruction plus its front-end fate. */
struct FetchedInst
{
    TraceRecord record;
    /** The branch predictor got this control instruction wrong. */
    bool mispredicted = false;
    /**
     * Fetched down the mispredicted path (synthetic record from the
     * static program image, values unknown); squashed at resolution.
     */
    bool wrongPath = false;
};

/** Abstract per-cycle fetch engine. */
class FetchEngine
{
  public:
    virtual ~FetchEngine() = default;

    /**
     * Fetch the bundle for cycle @p now.
     *
     * @param now Current cycle.
     * @param max_insts Bundle budget for this cycle (machine width and
     *        free window slots).
     * @param out Fetched instructions are appended here.
     */
    virtual void fetch(Cycle now, unsigned max_insts,
                       std::vector<FetchedInst> &out) = 0;

    /** All trace records have been fetched. */
    virtual bool done() const = 0;

    /**
     * The machine resolved the mispredicted branch @p seq in cycle
     * @p resolve_cycle; fetch may resume the following cycle.
     */
    virtual void branchResolved(SeqNum seq, Cycle resolve_cycle) = 0;

    /** Engine name for reports. */
    virtual std::string name() const = 0;
};

/**
 * Common machinery: a trace cursor, a branch predictor, and the
 * mispredict stall state machine.
 */
class TraceFetchBase : public FetchEngine
{
  public:
    /**
     * @param trace_records Borrowed view of the dynamic trace; the
     *        viewed storage must outlive the engine. A
     *        std::vector<TraceRecord> converts implicitly.
     */
    TraceFetchBase(TraceSpan trace_records,
                   BranchPredictor &branch_predictor);

    bool done() const override { return cursor >= trace.size(); }
    void branchResolved(SeqNum seq, Cycle resolve_cycle) override;

    /** Dynamic instructions fetched so far. */
    std::uint64_t fetchedInsts() const { return numFetched; }
    /** Mispredicted control transfers encountered. */
    std::uint64_t mispredicts() const { return numMispredicts; }

  protected:
    /** True while fetch is blocked on an unresolved misprediction. */
    bool stalled(Cycle now) const;

    /**
     * Consume the record at the cursor: consult/train the predictor for
     * control instructions and arm the stall machine on a misprediction.
     * Appends to @p out and advances the cursor.
     *
     * Inline: every front end calls this once per fetched instruction,
     * and as an out-of-line routine it was ~10% of the pipeline-machine
     * profile (mostly the call itself and re-loading cursor/counters
     * each time).
     *
     * @retval true The consumed instruction mispredicted (bundle over).
     */
    bool
    consumeRecord(std::vector<FetchedInst> &out)
    {
        panicIf(cursor >= trace.size(),
                "fetch past the end of the trace");
        const TraceRecord &record = trace[cursor];
        // Build the instruction in place: a local FetchedInst would be
        // copied wholesale into the bundle once per fetched
        // instruction.
        FetchedInst &inst = out.emplace_back();
        inst.record = record;
        if (record.isControlFlow()) {
            const BranchPrediction prediction = bpred.predict(record);
            bpred.update(record, prediction);
            inst.mispredicted =
                !BranchPredictor::correct(record, prediction);
            if (inst.mispredicted) {
                pendingBranch = record.seq;
                pendingPrediction = prediction;
                ++numMispredicts;
            }
        }
        ++cursor;
        ++numFetched;
        // Every fetched instruction is a trace record consumed exactly
        // once; a drift here means duplicated or dropped delivery.
        checkInvariant(InvariantLevel::Cheap, numFetched == cursor,
                       "fetch.delivered_matches_consumed", [&] {
                           return std::to_string(numFetched) +
                                  " fetched but trace cursor at " +
                                  std::to_string(cursor);
                       });
        return inst.mispredicted;
    }

    const TraceSpan trace;
    BranchPredictor &bpred;
    std::size_t cursor = 0;

    /** Sequence number of the unresolved mispredicted branch. */
    SeqNum pendingBranch = invalidSeqNum;
    /** The (wrong) prediction that armed the stall, for wrong-path
     *  navigation. */
    BranchPrediction pendingPrediction{};
    /** First cycle fetch may run again after a resolved mispredict. */
    Cycle resumeCycle = 0;

    std::uint64_t numFetched = 0;
    std::uint64_t numMispredicts = 0;
};

} // namespace vpsim

#endif // VPSIM_FETCH_FETCH_ENGINE_HPP
