/**
 * @file
 * Branch Address Cache front end, after Yeh, Marr & Patt [28] (surveyed
 * by the paper in §2.2 as the first multiple-branch-prediction fetch
 * mechanism).
 *
 * The BAC extends the branch target buffer so that, starting from one
 * fetch address, it can name the start addresses of the next several
 * basic blocks in one cycle; a highly interleaved instruction cache then
 * fetches those (possibly noncontiguous) blocks simultaneously. Unlike a
 * trace cache, instructions are not stored as traces: every block still
 * comes from the instruction cache, so two blocks whose lines collide on
 * a cache bank cannot be fetched in the same cycle.
 *
 * Trace-driven model: a block may be appended to the cycle's bundle only
 * if (a) the BAC has an entry for the block's start address (it learned
 * the block's extent on a previous visit), and (b) the interleaved
 * instruction cache has a free bank for the block's starting line. A
 * block whose branch mispredicts ends the bundle and stalls fetch.
 */

#ifndef VPSIM_FETCH_BRANCH_ADDRESS_CACHE_HPP
#define VPSIM_FETCH_BRANCH_ADDRESS_CACHE_HPP

#include <vector>

#include "fetch/fetch_engine.hpp"

namespace vpsim
{

/** Branch-address-cache front-end geometry. */
struct BacConfig
{
    /** BAC entries (direct mapped by block start address). */
    std::size_t entries = 1024;
    /** Maximum basic blocks fetched per cycle (the BAC's fanout). */
    unsigned maxBlocksPerCycle = 3;
    /** Interleaved instruction cache banks. */
    unsigned icacheBanks = 8;
    /** Instruction cache line size in bytes. */
    std::size_t lineBytes = 32;
};

/** Multiple-basic-block fetch through a branch address cache. */
class BranchAddressCacheFetch : public TraceFetchBase
{
  public:
    BranchAddressCacheFetch(TraceSpan trace_records,
                            BranchPredictor &branch_predictor,
                            const BacConfig &config = {});

    void fetch(Cycle now, unsigned max_insts,
               std::vector<FetchedInst> &out) override;

    std::string name() const override { return "branch-address-cache"; }

    /** @name Statistics */
    /// @{
    std::uint64_t bacLookups() const { return numLookups; }
    std::uint64_t bacHits() const { return numHits; }
    /** Blocks cut from a bundle by an icache bank conflict. */
    std::uint64_t bankConflicts() const { return numBankConflicts; }
    double hitRate() const;
    /// @}

  private:
    struct Entry
    {
        bool valid = false;
        Addr startPc = 0;
    };

    std::size_t indexOf(Addr pc) const;
    unsigned bankOf(Addr pc) const;

    BacConfig cfg;
    std::vector<Entry> entries;

    std::uint64_t numLookups = 0;
    std::uint64_t numHits = 0;
    std::uint64_t numBankConflicts = 0;
};

} // namespace vpsim

#endif // VPSIM_FETCH_BRANCH_ADDRESS_CACHE_HPP
